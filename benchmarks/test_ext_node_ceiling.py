"""Extension benchmark — the node ceiling: dense vs sparse vs reduced.

The paper's nets stop at a few hundred nodes; extracted modern
interconnect does not.  This benchmark charts what actually bounds the
reproduction's usable net size, end to end (`AweAnalyzer` construction
through a fixed-order response), on uniform RC ladders:

* **dense** — ``sparse=False``: O(n²) memory, O(n³) factorisation; the
  historical ceiling.
* **sparse** — the default backend above ``_SPARSE_THRESHOLD``: SuperLU
  on the near-tridiagonal MNA system, near-linear on ladders.
* **reduced** — :func:`repro.reduce.reduce_circuit` pre-collapse (taps
  pinned) feeding the sparse path: ~9x fewer unknowns before stamping.
  Note the pre-pass itself is pure Python, so a *one-shot* reduced run
  is not faster than plain sparse at these sizes — the payoff is the
  ~9x smaller system (memory, factor size) and batch runs where one
  reduced circuit serves many jobs.

The quick run (always on) records the three curves at modest sizes into
``BENCH_scaling.json`` under ``node_scaling``.  Set
``REPRO_SCALING_FULL=1`` (the nightly CI job does) for the full study:
the 10⁴-node regression floor — sparse must beat dense end-to-end by at
least 5x — and the 10⁵-node ceiling proof: a hundred-thousand-node net
must complete under sparse+reduced without ever materialising a dense
matrix.  ``docs/scaling.md`` walks through reading the recorded numbers.
"""

import os
import time

import numpy as np
import pytest

from _bench_utils import record_bench, report
from repro import AweAnalyzer, Step
from repro.papercircuits import rc_ladder
from repro.rctree import elmore_delays
from repro.reduce import reduce_circuit

STIMULI = {"Vin": Step(0.0, 5.0)}

FULL = os.environ.get("REPRO_SCALING_FULL") == "1"

#: Node counts for the always-on quick curve; dense is measured at every
#: one of these (the largest takes ~a second).
QUICK_SIZES = (256, 512, 1024, 2048)


def _measure(sections: int, sparse: bool | None, reduce: bool,
             repeat: int = 3) -> dict:
    """Best-of wall time for one end-to-end analysis of an RC ladder.

    Everything the pipeline does is on the clock: circuit pre-reduction
    (when ``reduce``), MNA assembly, factorisation, moments, Padé and
    waveform construction — so the curves compare what a user actually
    waits for, not just the factor.
    """
    node = str(sections)
    best = float("inf")
    for _ in range(repeat):
        circuit = rc_ladder(sections)
        start = time.perf_counter()
        if reduce:
            circuit = reduce_circuit(circuit, keep=(node,)).circuit
        analyzer = AweAnalyzer(circuit, STIMULI, sparse=sparse, max_order=2)
        response = analyzer.response(node, order=2)
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": best,
        "dimension": analyzer.system.index.dimension,
        "use_sparse": bool(analyzer.system.use_sparse),
        "delay_50_s": response.delay_50(),
    }


def test_node_ceiling_quick(benchmark):
    """Dense vs sparse vs reduced end-to-end curve at modest sizes."""
    benchmark.pedantic(
        lambda: _measure(QUICK_SIZES[0], None, False, repeat=1),
        rounds=3, iterations=1,
    )

    curve = {}
    for sections in QUICK_SIZES:
        curve[sections] = {
            "dense": _measure(sections, False, False),
            "sparse": _measure(sections, None, False),
            "reduced": _measure(sections, None, True),
        }

    largest = curve[QUICK_SIZES[-1]]
    report(
        "Extension — node ceiling, end-to-end analyze of RC ladders",
        [
            (f"n={n}",
             "sparse < dense",
             " / ".join(f"{kind} {curve[n][kind]['seconds']*1e3:.1f} ms"
                        for kind in ("dense", "sparse", "reduced")))
            for n in QUICK_SIZES
        ],
    )

    # Shape claims, deliberately loose for shared CI machines: the sparse
    # backend must clearly beat dense at the largest quick size, and the
    # pre-reduction must shrink the system ~9x without moving the delay.
    assert largest["sparse"]["use_sparse"] and not largest["dense"]["use_sparse"]
    assert largest["dense"]["seconds"] > 2.0 * largest["sparse"]["seconds"]
    assert largest["reduced"]["dimension"] < largest["sparse"]["dimension"] / 4
    assert largest["reduced"]["delay_50_s"] == pytest.approx(
        largest["sparse"]["delay_50_s"], rel=0.01
    )
    # The quick largest size sanity-anchors against the Elmore tree walk:
    # a 2-pole fit of a long uniform ladder lands within a few percent.
    elmore = elmore_delays(rc_ladder(QUICK_SIZES[-1]))[str(QUICK_SIZES[-1])]
    assert largest["sparse"]["delay_50_s"] == pytest.approx(
        0.693 * elmore, rel=0.15
    )

    record_bench(
        "node_scaling",
        {
            "sections": list(QUICK_SIZES),
            "curve": {str(n): curve[n] for n in QUICK_SIZES},
            "dense_over_sparse_at_largest":
                largest["dense"]["seconds"] / largest["sparse"]["seconds"],
        },
    )


@pytest.mark.skipif(not FULL, reason="set REPRO_SCALING_FULL=1 (nightly job)")
def test_node_ceiling_full():
    """The 10⁴ regression floor and the 10⁵ sparse+reduced ceiling."""
    n4 = 10_000
    dense4 = _measure(n4, False, False, repeat=1)
    sparse4 = _measure(n4, None, False, repeat=2)
    reduced4 = _measure(n4, None, True, repeat=2)
    floor = dense4["seconds"] / sparse4["seconds"]

    # 10⁵ nodes: pre-reduce, then the sparse backend must be auto-picked
    # and carry the analysis end to end (a dense matrix at this size
    # would be 80 GB — ``use_sparse`` proves it never existed).
    n5 = 100_000
    reduced5 = _measure(n5, None, True, repeat=1)

    report(
        "Extension — node ceiling, full study (nightly)",
        [
            ("10^4 dense", "seconds", f"{dense4['seconds']:.2f} s"),
            ("10^4 sparse", ">= 5x faster", f"{sparse4['seconds']:.3f} s ({floor:.0f}x)"),
            ("10^4 reduced", "Python pre-pass dominates",
             f"{reduced4['seconds']:.3f} s"),
            ("10^5 sparse+reduced", "completes, never dense",
             f"{reduced5['seconds']:.2f} s, dim {reduced5['dimension']}"),
        ],
    )

    assert floor >= 5.0, (
        f"sparse regression: only {floor:.1f}x faster than dense at 10^4 nodes"
    )
    assert reduced5["use_sparse"], "10^5-node net fell back to dense assembly"
    assert np.isfinite(reduced5["delay_50_s"]) and reduced5["delay_50_s"] > 0
    # Reduction shrinks the ladder ~9x before stamping.
    assert reduced5["dimension"] < n5 / 4

    record_bench(
        "node_scaling_full",
        {
            "dense_1e4_s": dense4["seconds"],
            "sparse_1e4_s": sparse4["seconds"],
            "reduced_1e4_s": reduced4["seconds"],
            "sparse_over_dense_1e4": floor,
            "reduced_1e5_s": reduced5["seconds"],
            "reduced_1e5_dimension": reduced5["dimension"],
            "reduced_1e5_delay_50_s": reduced5["delay_50_s"],
        },
    )
