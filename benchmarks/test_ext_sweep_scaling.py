"""What-if sweep amortisation: one factorization vs per-point re-analysis.

AWE's economy (Sec. 3.2) is one LU for all the moments; ``repro.sweep``
extends it across netlist deltas.  This benchmark asks the same 1000+
what-if questions of one 40-node RC tree two ways:

* **incremental** — one :class:`~repro.sweep.SweepEngine` (one base
  factorization, then first-order / Sherman–Morrison updates per point,
  exact re-stamp only where forced), and
* **per-point re-analysis** — :meth:`SweepEngine.direct_point` for every
  point: a fresh MNA stamp and factorization each time, the way a naive
  ECO loop would hammer ``/analyze``.

The acceptance claims:

* the incremental pass is at least 10x faster end to end (engine
  construction included),
* every exact-tier point (the deliberately fallback-forced near-open
  resistors) is **bit-identical** to its from-scratch reference,
* every incremental point stays within its tier's stated bound.

Results land in ``BENCH_scaling.json`` under ``sweep_scaling``.
"""

import time

from _bench_utils import record_bench, report
from repro.analysis.sources import Step
from repro.circuit.elements import Capacitor, Resistor
from repro.papercircuits.generators import random_rc_tree
from repro.sweep import SweepEngine, SweepPlan, SweepPoint

NODES = 40
SEED = 11
POINTS = 1000
FORCED = 4  # near-open resistors that must demote to the exact tier
STIMULI = {"Vin": Step(0.0, 1.0)}

#: Alternating small (gradient-tier) and large (rank-1) perturbations.
_SMALL = (1.01, 1.02, 1.03, 0.98)
_LARGE = (0.5, 1.5, 2.0, 3.0)


def make_plan(circuit) -> SweepPlan:
    resistors = sorted(e.name for e in circuit if isinstance(e, Resistor))
    capacitors = sorted(e.name for e in circuit if isinstance(e, Capacitor))
    names = resistors + capacitors
    points = []
    for i in range(POINTS - FORCED):
        scales = _SMALL if (i // len(names)) % 2 == 0 else _LARGE
        points.append(SweepPoint(element=names[i % len(names)],
                                 scale=scales[i % len(scales)]))
    # Every tree resistor is a bridge: near-open drives the
    # Sherman-Morrison denominator degenerate, forcing the exact tier.
    points.extend(SweepPoint(element=resistors[i], scale=1e10,
                             label=f"force-open-{i}")
                  for i in range(FORCED))
    return SweepPlan(node=str(NODES), points=tuple(points))


def run_both():
    circuit = random_rc_tree(NODES, seed=SEED)
    plan = make_plan(circuit)

    t0 = time.perf_counter()
    engine = SweepEngine(circuit, STIMULI)
    result = engine.evaluate(plan)
    incremental_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    references = [engine.direct_point(point, plan.node)
                  for point in plan.points]
    direct_s = time.perf_counter() - t0
    return plan, result, references, incremental_s, direct_s


def test_incremental_sweep_is_10x_faster_and_exact_points_bitwise(benchmark):
    plan, result, references, incremental_s, direct_s = run_both()
    speedup = direct_s / max(incremental_s, 1e-9)

    assert len(result.points) == POINTS
    assert result.stats["exact"] == FORCED
    assert result.stats["fallbacks"] == FORCED
    assert result.incremental_points == POINTS - FORCED

    bitwise = 0
    for got, want in zip(result.points, references):
        if got.mode == "exact":
            assert got.dc == want.dc
            assert got.m1 == want.m1
            assert got.elmore_delay == want.elmore_delay
            bitwise += 1
        else:
            bound = plan.error_bound if got.mode == "first_order" else 1e-9
            err = abs(got.elmore_delay - want.elmore_delay) / abs(want.elmore_delay)
            assert err <= bound, (got.label or got.element, got.mode, err)
    assert bitwise == FORCED

    # Steady-state number for the record: a warm engine re-evaluating
    # the full plan (the shape an ECO loop actually runs in).
    circuit = random_rc_tree(NODES, seed=SEED)
    engine = SweepEngine(circuit, STIMULI)
    engine.evaluate(plan)
    benchmark(lambda: engine.evaluate(plan))

    report(
        f"Incremental sweep — {POINTS} points on a {NODES}-node RC tree",
        [
            ("per-point re-analysis", f"{POINTS} stamp+factor", f"{direct_s:.3f} s"),
            ("incremental sweep", "1 factorization (+4 forced)", f"{incremental_s:.3f} s"),
            ("speedup", ">= 10x", f"{speedup:.0f}x"),
            ("tier mix", "fo/r1/exact",
             f"{result.stats['first_order']}/{result.stats['rank1']}"
             f"/{result.stats['exact']}"),
            ("exact points", "bit-identical", "yes"),
        ],
    )
    record_bench(
        "sweep_scaling",
        {
            "circuit": f"random_rc_tree({NODES}, seed={SEED})",
            "node": plan.node,
            "points": POINTS,
            "incremental_s": incremental_s,
            "direct_s": direct_s,
            "speedup": speedup,
            "first_order": result.stats["first_order"],
            "rank1": result.stats["rank1"],
            "exact": result.stats["exact"],
            "fallbacks": result.stats["fallbacks"],
            "factorizations": result.stats["factorizations"],
            "exact_points_bitwise": bitwise == FORCED,
        },
    )
    assert speedup >= 10.0
