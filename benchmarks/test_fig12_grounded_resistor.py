"""Paper Fig. 12: first-order AWE with a grounded resistor (Fig. 9, R₅ = 4 Ω).

Sec. 4.2: a resistor to ground makes the steady state *inexplicit* — the
tree/link partition needs one resistive link and the final value is no
longer the supply.  The first moment changes "not only by the change in
steady state … but also by the change in G⁻¹".

Reproduced claims:
* the steady state is the resistive divider value 5·4/7 ≈ 2.857 V,
* the first-order AWE waveform tracks the reference closely (the paper's
  Fig. 12 shows near overlap),
* tree/link analysis (which must solve the eq. 61 link equation here)
  yields the same first moment as the MNA engine.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Step
from repro.papercircuits import fig9_grounded_resistor
from repro.rctree import TreeLinkAnalysis, treelink_moments

STIMULI = {"Vin": Step(0.0, 5.0)}
T_STOP = 40.0  # normalised 1 Ω / 1 F time units


def run_experiment():
    circuit = fig9_grounded_resistor()
    analyzer = AweAnalyzer(circuit, STIMULI)
    response = analyzer.response("4", order=1)
    reference = reference_waveform(circuit, STIMULI, T_STOP, "4")
    return circuit, response, reference


def test_fig12_grounded_resistor(benchmark):
    circuit, response, reference = run_experiment()

    benchmark(lambda: AweAnalyzer(fig9_grounded_resistor(), STIMULI).response("4", order=1))

    v_final = response.waveform.final_value()
    true_error = awe_error(reference, response)
    treelink = TreeLinkAnalysis(circuit)
    m_tl = treelink_moments(circuit, {"Vin": 5.0}, 1)["C4"]

    report(
        "Fig. 12 — grounded-resistor first-order response at C4 (Fig. 9)",
        [
            ("steady state", "scaled by divider (eq. 3)", f"{v_final:.4f} V (5·4/7 = {5*4/7:.4f})"),
            ("resistive links", "1 (Fig. 10)", str(len(treelink.resistive_links))),
            ("true L2 error (1st order)", "near overlap in Fig. 12", fmt_pct(true_error)),
            ("m₋₁/m₀ via tree/link", "matches general AWE", f"{m_tl[0]:.4f} / {m_tl[1]:.4f}"),
        ],
    )

    assert v_final == pytest.approx(5.0 * 4.0 / 7.0, rel=1e-12)
    # First order on this 4-pole circuit: ~10 % L2 — the same "plot-level
    # agreement" regime as the paper's Fig. 12.
    assert true_error < 0.2
    assert len(treelink.resistive_links) == 1
    # Tree/link m₋₁ is the negated swing at C4.
    assert m_tl[0] == pytest.approx(-v_final, rel=1e-12)
