"""Extension benchmark — Foster macromodel export.

Reduce a 20-section RC line's driving-point admittance to a 4-branch
Foster network (a *circuit*, not just numbers) and measure what survives
the reduction:

* total capacitance (y₁) preserved exactly,
* admittance magnitude within 1 % over 3.5 decades,
* the gate-delay a driver computes against the macromodel vs the full
  net — the end-to-end quantity a library characterisation flow cares
  about,
* size: 41 elements → 9.
"""

import numpy as np
import pytest

from _bench_utils import report
from repro import AweAnalyzer, Circuit, MnaSystem, Step
from repro.core.macromodel import synthesize_rc_load
from repro.papercircuits import rc_ladder

FULL = rc_ladder(20, resistance=200.0, capacitance=100e-15)
DRIVER_R = 800.0


def delay_through_driver(load_builder) -> float:
    """50 % delay at a driver output loaded by the given network."""
    ckt = Circuit("driver test")
    ckt.add_voltage_source("Vdrv", "in", "0")
    ckt.add_resistor("Rdrv", "in", "drv", DRIVER_R)
    load_builder(ckt)
    analyzer = AweAnalyzer(ckt, {"Vdrv": Step(0.0, 5.0)})
    return analyzer.response("drv", error_target=1e-3).delay(2.5)


def attach_full(ckt):
    previous = "drv"
    for i in range(1, 21):
        node = f"w{i}"
        ckt.add_resistor(f"Rw{i}", previous, node, 200.0)
        ckt.add_capacitor(f"Cw{i}", node, "0", 100e-15)
        previous = node


def test_ext_foster_macromodel(benchmark):
    system = MnaSystem(FULL, sparse=False)
    net = benchmark(lambda: synthesize_rc_load(MnaSystem(FULL, sparse=False), "Vin", 4))

    def attach_foster(ckt):
        for i, branch in enumerate(net.branches, start=1):
            mid = f"f{i}"
            ckt.add_resistor(f"Rf{i}", "drv", mid, branch.resistance)
            ckt.add_capacitor(f"Cf{i}", mid, "0", branch.capacitance)

    delay_full = delay_through_driver(attach_full)
    delay_foster = delay_through_driver(attach_foster)

    omegas = np.logspace(6, 9.5, 40)
    exact = []
    for omega in omegas:
        x = np.linalg.solve(system.G + 1j * omega * system.C, system.B[:, 0])
        exact.append(-x[system.index.current("Vin")])
    exact = np.array(exact)
    model = net.admittance(1j * omegas)
    adm_err = (np.abs(model - exact) / np.abs(exact)).max()

    report(
        "Extension — Foster macromodel of a 20-section line (4 branches)",
        [
            ("elements", "41 → 9", f"{len(FULL)} → {4 * 2 + 1}"),
            ("total capacitance", "preserved (y₁)",
             f"{net.total_capacitance*1e15:.1f} fF = ΣC"),
            ("max |Y| error, 3.5 decades", "≈1%", f"{adm_err:.2%}"),
            ("driver 50% delay", "macromodel ≈ full net",
             f"full {delay_full*1e12:.1f} ps vs Foster {delay_foster*1e12:.1f} ps"),
        ],
    )

    assert net.total_capacitance == pytest.approx(2e-12, rel=1e-9)
    assert adm_err < 0.01
    assert delay_foster == pytest.approx(delay_full, rel=0.02)
