"""Ablation — frequency scaling (paper Sec. 3.5).

"Without frequency scaling, the moment matrix in (24) can become
numerically unstable before an accurate solution may be reached."

For nanosecond-scale circuits the moments shrink by ~9 decades per index;
by fourth order the unscaled Hankel determinant mixes entries spanning
~70 decades.  With γ = m₋₁/m₀ scaling every entry is O(1).

Measured here on the Fig. 16 stiff tree:
* the highest order extractable WITHOUT scaling,
* the highest order extractable WITH scaling,
* the Hankel condition numbers at order 3 in both modes.
"""

import numpy as np
import pytest

from _bench_utils import report
from repro import AweAnalyzer, Step
from repro.core.pade import match_poles
from repro.errors import MomentMatrixError
from repro.papercircuits import fig16_stiff_rc_tree

STIMULI = {"Vin": Step(0.0, 5.0)}


def moment_sequence():
    analyzer = AweAnalyzer(fig16_stiff_rc_tree(), STIMULI, max_order=8)
    subproblem = analyzer.subproblems()[0]
    row = analyzer.system.index.node("7")
    return subproblem.moments.sequence_for(row)


def max_feasible_order(sequence, use_scaling):
    best = 0
    for q in range(1, 8):
        if 2 * q > len(sequence):
            break
        try:
            result = match_poles(sequence[: 2 * q], q, use_scaling=use_scaling)
        except MomentMatrixError:
            continue
        if result.is_stable:
            best = q
    return best


def test_ablation_frequency_scaling(benchmark):
    sequence = moment_sequence()
    benchmark(lambda: match_poles(sequence[:6], 3, use_scaling=True))

    with_scaling = max_feasible_order(sequence, True)
    without = max_feasible_order(sequence, False)

    def condition(q, use_scaling):
        try:
            return match_poles(sequence[: 2 * q], q, use_scaling=use_scaling).condition_number
        except MomentMatrixError as exc:
            return f"rejected ({type(exc).__name__})"

    report(
        "Ablation — frequency scaling (Sec. 3.5), Fig. 16 tree, node 7",
        [
            ("moment magnitude span (m₀→m₆)", "~9 decades per index",
             f"{abs(sequence[1]):.1e} → {abs(sequence[7]):.1e}"),
            ("max stable order, scaled", "higher orders reachable", str(with_scaling)),
            ("max stable order, unscaled", "breaks down early", str(without)),
            ("Hankel cond at q=3, scaled", "O(1) entries", str(condition(3, True))),
            ("Hankel cond at q=3, unscaled", "astronomically worse", str(condition(3, False))),
        ],
    )

    assert with_scaling >= 4
    assert without < with_scaling
    scaled_cond = match_poles(sequence[:6], 3, use_scaling=True).condition_number
    assert scaled_cond < 1e12
