"""Paper Fig. 14: first-order AWE response of the Fig. 4 tree to a
finite-rise-time input (Sec. 4.3).

The 5 V input ramps over 1 ms; AWE superposes a positive and a delayed
negative infinite ramp (Fig. 13).  The paper notes: "The first-order AWE
ramp response approximation makes a good prediction of the delay.  The
largest error in this waveform approximation occurs near time t = 0"
(the initial-slope glitch that Sec. 4.3's m₋₂ matching would remove).

Reproduced claims:
* the particular solution is the slope-following v_p = (5×10³)·t − 3.5
  (slope 5 V/ms and offset −slope·T_D with T_D = 0.7 ms),
* the 50 %-threshold delay is predicted to ~1 % by first order,
* the worst pointwise error indeed sits near t = 0,
* the glitch: the first-order model starts with a (slightly) negative
  slope, impossible for the true response.
"""

import numpy as np
import pytest

from _bench_utils import fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Ramp
from repro.papercircuits import fig4_rc_tree

STIMULI = {"Vin": Ramp(0.0, 5.0, rise_time=1e-3)}
T_STOP = 7e-3


def run_experiment():
    circuit = fig4_rc_tree()
    analyzer = AweAnalyzer(circuit, STIMULI)
    response = analyzer.response("4", order=1)
    reference = reference_waveform(circuit, STIMULI, T_STOP, "4")
    return analyzer, response, reference


def test_fig14_ramp_response(benchmark):
    analyzer, response, reference = run_experiment()
    benchmark(lambda: AweAnalyzer(fig4_rc_tree(), STIMULI).response("4", order=1))

    main = response.waveform.models[0]
    candidate = response.waveform.to_waveform(reference.times)
    errors = np.abs(candidate.values - reference.values)
    t_worst = reference.times[errors.argmax()]

    true_delay = reference.threshold_delay(2.5)
    awe_delay = response.delay(2.5)

    dt = 1e-7
    initial_slope = float(response.waveform.evaluate(dt) - response.waveform.evaluate(0.0)) / dt

    report(
        "Fig. 14 — first-order ramp response at C4 (1 ms rise)",
        [
            ("particular solution", "5e3·t − 3.5 (eq. 63)",
             f"{main.slope:.4g}·t {main.offset:+.4g}"),
            ("50% delay", "good prediction", f"AWE {awe_delay*1e3:.4f} ms vs ref {true_delay*1e3:.4f} ms"),
            ("worst-error location", "at a ramp corner (paper: near t = 0)",
             f"t = {t_worst*1e3:.3f} ms"),
            ("initial slope", "negative (the Sec. 4.3 glitch)", f"{initial_slope:.3f} V/s"),
            ("max pointwise error", "small", fmt_pct(errors.max() / 5.0)),
        ],
    )

    assert main.slope == pytest.approx(5e3, rel=1e-12)
    assert main.offset == pytest.approx(-5e3 * 0.7e-3, rel=1e-12)
    assert awe_delay == pytest.approx(true_delay, rel=0.02)
    # The worst error concentrates at a ramp corner, where the s = 0
    # moment expansion is weakest (the paper highlights the t = 0 corner;
    # with our element values the ramp-end corner error is the larger of
    # the two comparably small corner errors).
    assert t_worst < 0.3e-3 or abs(t_worst - 1e-3) < 0.3e-3
    assert errors.max() / 5.0 < 0.05
    # The glitch exists: the model leaves t = 0 downward.
    assert initial_slope < 0.0
