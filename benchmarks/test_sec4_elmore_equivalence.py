"""Paper Sec. IV: first-order AWE ≡ the RC-tree (Elmore) methods.

The section proves two equivalences on the Fig. 4 tree, both asserted
here exactly (to solver precision, not approximately):

* eq. 56: the tree/link m₀ solve produces the Elmore delays of every node
  simultaneously — identical to the eq. 50 tree walk,
* eq. 60: the first-order AWE step response is v(∞)(1 − e^{−t/T_D}) with
  the Elmore delay as the time constant — i.e. exactly the
  Penfield–Rubinstein estimate (eq. 2).

This also benchmarks the O(n) claims: the tree walk and the tree/link
moment evaluation on a 500-node random tree.
"""

import numpy as np
import pytest

from _bench_utils import report
from repro import AweAnalyzer, Step
from repro.papercircuits import fig4_elmore_delays, fig4_rc_tree, random_rc_tree
from repro.rctree import (
    elmore_delays,
    penfield_rubinstein_model,
    treelink_elmore_delays,
)


def test_sec4_equivalences(benchmark):
    circuit = fig4_rc_tree()
    hand = fig4_elmore_delays()

    benchmark(lambda: treelink_elmore_delays(fig4_rc_tree(), 5.0))

    walk = elmore_delays(circuit)
    treelink = treelink_elmore_delays(circuit, 5.0)
    analyzer = AweAnalyzer(circuit, {"Vin": Step(0.0, 5.0)})

    rows = []
    for node in ("1", "2", "3", "4"):
        awe_pole = analyzer.response(node, order=1).poles[0].real
        rows.append(
            (f"T_D node {node}",
             f"{hand[node]*1e3:.2f} ms (eq. 50/56)",
             f"walk {walk[node]*1e3:.4f} / treelink {treelink[f'C{node}']*1e3:.4f} "
             f"/ −1/p₁ {(-1/awe_pole)*1e3:.4f} ms"),
        )
        assert walk[node] == pytest.approx(hand[node], rel=1e-12)
        assert treelink[f"C{node}"] == pytest.approx(hand[node], rel=1e-10)
        assert awe_pole == pytest.approx(-1.0 / hand[node], rel=1e-10)

    # First-order AWE waveform == Penfield–Rubinstein estimate, pointwise.
    response = analyzer.response("4", order=1)
    pr = penfield_rubinstein_model(circuit, "4", 5.0)
    t = np.linspace(0, 5e-3, 512)
    np.testing.assert_allclose(response.waveform.evaluate(t), pr.evaluate(t),
                               rtol=1e-9, atol=1e-9)
    rows.append(("first-order waveform", "≡ eq. 2 single exponential",
                 "pointwise identical (rtol 1e-9)"))
    report("Sec. IV — first-order AWE ≡ Elmore / tree-walk / tree-link", rows)


def test_sec4_linear_complexity(benchmark):
    """The O(n) claim: one tree walk over a 500-node tree."""
    circuit = random_rc_tree(500, seed=17)
    delays = benchmark(lambda: elmore_delays(circuit))
    assert len(delays) == 501


def test_sec4_treelink_moments_scale(benchmark):
    """Tree/link moment evaluation on a 200-node tree (the generalised
    tree walk of Sec. IV)."""
    from repro.rctree import treelink_moments

    circuit = random_rc_tree(200, seed=17)
    moments = benchmark(lambda: treelink_moments(circuit, {"Vin": 5.0}, 1))
    assert len(moments) == 200
