"""Cost of the tracing layer when it is switched *off*.

The trace layer's contract (docs/observability.md) is "zero overhead when
off": every traced object defaults to the shared :data:`NULL_TRACER`,
whose ``span`` returns one preallocated context manager and whose
``event`` is a bare no-op.  This benchmark turns that claim into a
number and an assertion:

* count how many tracer call sites (``span`` + ``event``) an untraced
  run of the 50-job batch benchmark actually hits, using a counting
  ``NullTracer`` subclass wired through the same analyzer-reuse loop the
  engine runs,
* microbenchmark the per-call cost of the real ``NULL_TRACER``,
* bound the total: ``calls x cost_per_call`` must stay under 2 % of the
  batch wall time.
"""

import time

from _bench_utils import record_bench, report
from repro import AweAnalyzer, AweJob, BatchEngine, Step
from repro.papercircuits import random_rc_tree
from repro.trace import NULL_TRACER, NullTracer

STIMULI = {"Vin": Step(0.0, 5.0)}


class CountingNullTracer(NullTracer):
    """A no-op tracer that only counts how often it is called."""

    __slots__ = ("calls",)

    def __init__(self):
        self.calls = 0

    def span(self, name, stats=None, **meta):
        self.calls += 1
        return super().span(name, stats, **meta)

    def event(self, name, **data):
        self.calls += 1


def batch_jobs(n_circuits=10, nodes_per_circuit=5, tree_nodes=180):
    """Same shape as the batch-engine speedup benchmark: 50 RC-tree
    timing jobs over 10 distinct interconnect nets."""
    jobs = []
    for s in range(n_circuits):
        circuit = random_rc_tree(tree_nodes, seed=200 + s)
        for i in range(nodes_per_circuit):
            node = str(tree_nodes - i * 7)
            jobs.append(AweJob(circuit, (node,), stimuli=STIMULI, order=3))
    return jobs


def count_tracer_calls(jobs) -> int:
    """Replay the engine's analyzer-reuse loop with a counting tracer.

    One analyzer per distinct circuit, then every job's responses on the
    reused analyzer — exactly the call pattern ``BatchEngine.run`` drives
    through ``NULL_TRACER`` when tracing is off.
    """
    counter = CountingNullTracer()
    analyzers = {}
    for job in jobs:
        analyzer = analyzers.get(id(job.circuit))
        if analyzer is None:
            analyzer = AweAnalyzer(
                job.circuit, job.stimuli, max_order=job.max_order,
                tracer=counter,
            )
            analyzers[id(job.circuit)] = analyzer
        for node in job.nodes:
            analyzer.response(node, order=job.order)
    return counter.calls


def best_of(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def per_call_seconds(fn, iterations=200_000) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def test_null_tracer_overhead_under_two_percent(benchmark):
    jobs = batch_jobs()
    assert len(jobs) >= 50

    engine = BatchEngine()
    benchmark(lambda: engine.run(jobs, workers=1))

    t_batch = best_of(lambda: engine.run(jobs, workers=1))
    calls = count_tracer_calls(jobs)
    assert calls > 0  # the hot path really does go through the tracer

    def span_site():
        with NULL_TRACER.span("phase", stats=None, node="x"):
            pass

    def event_site():
        NULL_TRACER.event("decision", order=3, reason="bench")

    cost = max(per_call_seconds(span_site), per_call_seconds(event_site))
    overhead_s = calls * cost
    fraction = overhead_s / t_batch

    report(
        "Trace layer — NULL_TRACER overhead on the 50-job batch",
        [
            ("tracer call sites hit", "per batch run", f"{calls}"),
            ("cost per no-op call", "sub-microsecond", f"{cost*1e9:.0f} ns"),
            ("total no-op cost", "negligible", f"{overhead_s*1e6:.1f} us"),
            ("batch wall time", "milliseconds", f"{t_batch*1e3:.1f} ms"),
            ("overhead fraction", "< 2%", f"{100.0*fraction:.4f}%"),
        ],
    )
    record_bench(
        "trace_overhead",
        {
            "jobs": len(jobs),
            "tracer_calls": calls,
            "null_call_cost_s": cost,
            "overhead_s": overhead_s,
            "batch_time_s": t_batch,
            "overhead_fraction": fraction,
        },
    )
    assert fraction < 0.02
