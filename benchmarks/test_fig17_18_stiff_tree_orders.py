"""Paper Figs. 17–18: first- and second-order responses of the stiff
Fig. 16 RC tree to a 1 ns-rise input (Sec. 5.1, "MOS interconnect").

The paper reports error terms of 4.4 % at first order and 0.15 % at
second order, with the second-order plot "difficult to distinguish" from
SPICE — and stresses that stiff circuits (4 decades of time constants)
trouble timing simulators while AWE simply never computes the fast modes
it does not need.

Reproduced claims:
* single-digit-percent error at first order, dropping by an order of
  magnitude or more at second order,
* the second-order dominant pole sits on the exact dominant pole
  (−1.7818×10⁹, Table I),
* the error estimator tracks the true error within a small factor.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Ramp
from repro.papercircuits import fig16_stiff_rc_tree

STIMULI = {"Vin": Ramp(0.0, 5.0, rise_time=1e-9)}
T_STOP = 6e-9


def run_experiment():
    circuit = fig16_stiff_rc_tree()
    analyzer = AweAnalyzer(circuit, STIMULI)
    first = analyzer.response("7", order=1)
    second = analyzer.response("7", order=2)
    reference = reference_waveform(circuit, STIMULI, T_STOP, "7")
    return first, second, reference


def test_fig17_first_order(benchmark):
    first, second, reference = run_experiment()
    benchmark(lambda: AweAnalyzer(fig16_stiff_rc_tree(), STIMULI).response("7", order=1))

    err_true = awe_error(reference, first)
    report(
        "Fig. 17 — first-order ramp response at C7 (stiff Fig. 16 tree)",
        [
            ("error estimate", "4.4%", fmt_pct(first.error_estimate)),
            ("true L2 error", "—", fmt_pct(err_true)),
        ],
    )
    assert 0.001 < err_true < 0.1
    assert first.error_estimate < 0.1


def test_fig18_second_order(benchmark):
    first, second, reference = run_experiment()

    analyzer = AweAnalyzer(fig16_stiff_rc_tree(), STIMULI)
    analyzer.subproblems()
    benchmark(lambda: analyzer.response("7", order=2))

    err1 = awe_error(reference, first)
    err2 = awe_error(reference, second)
    dominant = second.poles[np.argmin(np.abs(second.poles))].real

    report(
        "Fig. 18 — second-order ramp response at C7 (stiff Fig. 16 tree)",
        [
            ("error estimate", "0.15%", fmt_pct(second.error_estimate)),
            ("true L2 error", "indistinguishable from SPICE", fmt_pct(err2)),
            ("improvement over order 1", "~30x", f"{err1/err2:.1f}x"),
            ("dominant pole", "−1.7818e9 (Table I)", f"{dominant:.4e}"),
        ],
    )
    assert err2 < err1 / 10.0
    assert err2 < 0.005
    assert dominant == pytest.approx(-1.7818e9, rel=1e-3)
