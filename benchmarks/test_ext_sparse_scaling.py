"""Extension benchmark — sparse factorisation and large-net AWE.

The paper's complexity argument (Sec. 3.2): one factorisation, then each
moment is a pair of triangular substitutions.  This benchmark measures,
on random RC trees:

* the factorisation itself: SuperLU (sparse) vs dense LAPACK at 1000 and
  2000 unknowns — the sparse factor wins by an order of magnitude and
  grows near-linearly (tree fill-in is trivial),
* a full second-order AWE evaluation of a 2000-node net end-to-end
  (sub-second in pure Python), anchored for correctness against the
  Elmore tree walk.
"""

import time

import numpy as np
import pytest

from _bench_utils import report
from repro import AweAnalyzer, MnaSystem, Step
from repro.papercircuits import random_rc_tree
from repro.rctree import elmore_delays


def factor_time(nodes: int, sparse: bool) -> float:
    circuit = random_rc_tree(nodes, seed=31)
    best = float("inf")
    for _ in range(3):
        system = MnaSystem(circuit, sparse=sparse)
        start = time.perf_counter()
        system.lu()
        best = min(best, time.perf_counter() - start)
    return best


def test_ext_sparse_scaling(benchmark):
    circuit = random_rc_tree(2000, seed=31)
    leaf = circuit.nodes[-1]

    def full_awe():
        return AweAnalyzer(circuit, {"Vin": Step(0, 5)}, max_order=2).response(
            leaf, order=2
        )

    response = benchmark.pedantic(full_awe, rounds=3, iterations=1)

    # Correctness anchor at scale: first-moment pole == 1/Elmore.
    first = AweAnalyzer(circuit, {"Vin": Step(0, 5)}).response(leaf, order=1)
    elmore = elmore_delays(circuit)[leaf]
    assert first.poles[0].real == pytest.approx(-1.0 / elmore, rel=1e-8)

    times = {
        (n, sparse): factor_time(n, sparse)
        for n in (1000, 2000)
        for sparse in (False, True)
    }

    report(
        "Extension — factorisation scaling, random RC trees",
        [
            ("factor 1000 unknowns", "sparse ≪ dense",
             f"dense {times[(1000, False)]*1e3:.1f} ms / sparse {times[(1000, True)]*1e3:.1f} ms"),
            ("factor 2000 unknowns", "gap widens",
             f"dense {times[(2000, False)]*1e3:.1f} ms / sparse {times[(2000, True)]*1e3:.1f} ms"),
            ("sparse speedup at 2000", "order(s) of magnitude",
             f"{times[(2000, False)]/times[(2000, True)]:.0f}x"),
        ],
    )

    assert times[(1000, True)] < times[(1000, False)]
    assert times[(2000, False)] / times[(2000, True)] > 5
