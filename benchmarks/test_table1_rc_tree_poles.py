"""Paper Table I: approximating vs actual poles of the Fig. 16 tree,
without and with the V(C₆) = 5 V nonequilibrium initial condition.

The table's structure (reproduced here):

* no IC: first order lands near the dominant pole (−1.7358e9 vs actual
  −1.7818e9); second order locks the first pole and approximates the
  second (−1.2572e10 vs −1.3830e10) — poles "creep up on" the actual ones,
* with the IC: the initial state excites/suppresses natural frequencies;
  the paper finds the first-order pole pushed away (−9.69e8) and the
  second-order pair landing near actual poles 1 and 3 because a
  low-frequency zero partially cancels pole 2.

Our circuit reproduces the no-IC creep-up quantitatively (the dominant
pole was tuned to the table's −1.7818e9; the second actual pole is within
0.2 % of the table's) and the IC-induced pole migration qualitatively.
"""

import numpy as np
import pytest

from _bench_utils import fmt_pole, report
from repro import AweAnalyzer, MnaSystem, Ramp, circuit_poles
from repro.papercircuits import fig16_stiff_rc_tree

STIMULI = {"Vin": Ramp(0.0, 5.0, rise_time=1e-9)}


def poles_for(sharing_voltage, order):
    circuit = fig16_stiff_rc_tree(sharing_voltage=sharing_voltage)
    analyzer = AweAnalyzer(circuit, STIMULI)
    return analyzer.response("7", order=order).poles


def run_experiment():
    exact = np.sort(circuit_poles(MnaSystem(fig16_stiff_rc_tree())).poles.real)[::-1]
    q1 = poles_for(None, 1)
    q2 = poles_for(None, 2)
    q1_ic = poles_for(5.0, 1)
    q2_ic = poles_for(5.0, 2)
    return exact, q1, q2, q1_ic, q2_ic


def test_table1_rc_tree_poles(benchmark):
    exact, q1, q2, q1_ic, q2_ic = run_experiment()

    benchmark(lambda: poles_for(None, 2))

    rows = [
        ("actual pole 1", "-1.7818e9", fmt_pole(complex(exact[0]))),
        ("actual pole 2", "-1.3830e10", fmt_pole(complex(exact[1]))),
        ("1st order (no IC)", "-1.7358e9", fmt_pole(q1[0])),
        ("2nd order (no IC)", "-1.7818e9, -1.2572e10",
         ", ".join(fmt_pole(p) for p in q2)),
        ("1st order (V(C6)=5)", "-9.6949e8", fmt_pole(q1_ic[0])),
        ("2nd order (V(C6)=5)", "-1.7818e9, -2.6920e10",
         ", ".join(fmt_pole(p) for p in q2_ic)),
    ]
    report("Table I — approximating and exact poles, Fig. 16 RC tree", rows)

    # Tuned identities.
    assert exact[0] == pytest.approx(-1.7818e9, rel=1e-4)
    assert exact[1] == pytest.approx(-1.3830e10, rel=0.01)

    # Creep-up, no IC: q1 within 5 % of dominant; q2 dominant within 0.1 %.
    assert q1[0].real == pytest.approx(exact[0], rel=0.05)
    assert q2[0].real == pytest.approx(exact[0], rel=1e-3)
    assert exact[2] < q2[1].real < exact[0]  # second fitted pole in range

    # IC case: the first-order pole migrates away from the no-IC value...
    assert abs(q1_ic[0].real - q1[0].real) > 0.05 * abs(q1[0].real)
    # ...while second order still pins the true dominant pole...
    assert q2_ic[0].real == pytest.approx(exact[0], rel=1e-3)
    # ...and its second pole lands deeper than the second actual pole
    # (partial cancellation of pole 2 by the IC-induced zero).
    assert q2_ic[1].real < exact[1]
