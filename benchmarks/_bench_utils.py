"""Shared helpers for the reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper's
evaluation (Sec. IV–V).  The convention:

* the experiment logic lives in a plain function returning the measured
  quantities,
* a ``test_*`` wrapper times the AWE-side work with pytest-benchmark and
  asserts the *shape* claims (who wins, error ordering, pole structure) —
  absolute agreement with 1989 plots is not expected since the original
  element values are unrecoverable (see DESIGN.md),
* :func:`report` prints a paper-vs-measured table (visible with ``-s`` /
  ``-rA``; EXPERIMENTS.md records a captured run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import simulate
from repro.waveform import Waveform, l2_error


def report(title: str, rows: list[tuple], headers: tuple = ("quantity", "paper", "measured")):
    """Print a small aligned comparison table."""
    widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def reference_waveform(circuit, stimuli, t_stop, node, tolerance=1e-4) -> Waveform:
    """The SPICE-stand-in reference (converged TR-BDF2 transient)."""
    return simulate(circuit, stimuli, t_stop, refine_tolerance=tolerance).voltage(node)


def awe_error(reference: Waveform, response) -> float:
    """Relative L2 error of an AWE response against the reference."""
    return l2_error(reference, response.waveform.to_waveform(reference.times))


def fmt_pole(pole: complex) -> str:
    """Format a pole the way the paper's tables print them."""
    if abs(pole.imag) < 1e-6 * abs(pole.real):
        return f"{pole.real:.4e}"
    return f"{pole.real:.4e} {pole.imag:+.4e}j"


def fmt_pct(x: float) -> str:
    return f"{100.0 * x:.2f}%"
