"""Shared helpers for the reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper's
evaluation (Sec. IV–V).  The convention:

* the experiment logic lives in a plain function returning the measured
  quantities,
* a ``test_*`` wrapper times the AWE-side work with pytest-benchmark and
  asserts the *shape* claims (who wins, error ordering, pole structure) —
  absolute agreement with 1989 plots is not expected since the original
  element values are unrecoverable (see DESIGN.md),
* :func:`report` prints a paper-vs-measured table (visible with ``-s`` /
  ``-rA``; EXPERIMENTS.md records a captured run).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro import simulate
from repro.waveform import Waveform, l2_error

#: Machine-readable benchmark results land next to the repo root so CI can
#: archive them; see :func:`record_bench`.
BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_scaling.json")


def record_bench(name: str, payload: dict, path: str | None = None) -> dict:
    """Merge one benchmark's measurements into ``BENCH_scaling.json``.

    Each benchmark records under its own ``name`` key, so repeated runs of
    a subset of the suite refresh only their own entries.  The stored
    payload gains a ``recorded_at`` timestamp; the merged document is
    returned (and written atomically via a temp file).
    """
    path = os.path.abspath(path or BENCH_JSON)
    document: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            document = {}
    document[name] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **payload,
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return document


def report(title: str, rows: list[tuple], headers: tuple = ("quantity", "paper", "measured")):
    """Print a small aligned comparison table."""
    widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def reference_waveform(circuit, stimuli, t_stop, node, tolerance=1e-4) -> Waveform:
    """The SPICE-stand-in reference (converged TR-BDF2 transient)."""
    return simulate(circuit, stimuli, t_stop, refine_tolerance=tolerance).voltage(node)


def awe_error(reference: Waveform, response) -> float:
    """Relative L2 error of an AWE response against the reference."""
    return l2_error(reference, response.waveform.to_waveform(reference.times))


def fmt_pole(pole: complex) -> str:
    """Format a pole the way the paper's tables print them."""
    if abs(pole.imag) < 1e-6 * abs(pole.real):
        return f"{pole.real:.4e}"
    return f"{pole.real:.4e} {pole.imag:+.4e}j"


def fmt_pct(x: float) -> str:
    return f"{100.0 * x:.2f}%"
