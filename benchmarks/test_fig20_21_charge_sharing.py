"""Paper Figs. 20–21: nonequilibrium initial conditions / charge sharing
(Sec. 5.2) on the Fig. 16 tree with V(C₆, t=0) = 5 V.

"Obviously, a first-order approximation, or single exponential function,
cannot be used to approximate this nonmonotone response.  The error term
for this first-order approximation is 150 percent.  The second-order AWE
response, which has an error estimate of 0.65 percent, is
indistinguishable from the SPICE response."  Sec. 3.3 adds the other
possible first-order outcome: "The low-order AWE approximation may prove
in such cases to have no solution, or may result in a positive
approximating pole."

Two scenarios are reproduced:

* **pure redistribution** (input held low): the C₆ charge spreads and
  leaks away; the response at C₇ is a nonmonotone hump.  First order hits
  the paper's "no solution" branch (our output starts at 0 with a nonzero
  transient — no single decaying exponential exists); second order
  captures the hump to sub-percent error.
* **ramp input + IC** (the Table I stimulus): first order is far off
  (the "cannot be used" branch, double-digit estimate), second order
  recovers sub-percent accuracy.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, DC, Ramp
from repro.errors import ApproximationError, MomentMatrixError
from repro.papercircuits import fig16_stiff_rc_tree

T_STOP = 6e-9


def run_redistribution():
    circuit = fig16_stiff_rc_tree(sharing_voltage=5.0)
    stimuli = {"Vin": DC(0.0)}
    analyzer = AweAnalyzer(circuit, stimuli)
    reference = reference_waveform(circuit, stimuli, T_STOP, "7")
    return analyzer, reference


def run_ramp_with_ic():
    circuit = fig16_stiff_rc_tree(sharing_voltage=5.0)
    stimuli = {"Vin": Ramp(0.0, 5.0, rise_time=1e-9)}
    analyzer = AweAnalyzer(circuit, stimuli)
    reference = reference_waveform(circuit, stimuli, T_STOP, "7")
    return analyzer, reference


def test_fig20_21_pure_redistribution(benchmark):
    analyzer, reference = run_redistribution()
    benchmark(lambda: run_redistribution()[0].response("7", order=2))

    assert not reference.is_monotone(1e-6), "charge sharing must be nonmonotone"

    first_order_outcome = "solved"
    try:
        analyzer.response("7", order=1)
    except (MomentMatrixError, ApproximationError) as exc:
        first_order_outcome = f"no solution ({type(exc).__name__})"

    second = analyzer.response("7", order=2)
    err2 = awe_error(reference, second)

    report(
        "Figs. 20–21 — charge redistribution at C7 (V(C6)=5, input low)",
        [
            ("response shape", "nonmonotone", f"peak {reference.values.max():.3f} V, returns to 0"),
            ("first order", "150% error or no solution (Sec. 3.3)", first_order_outcome),
            ("second order error", "0.65%", fmt_pct(err2)),
        ],
    )

    assert first_order_outcome != "solved"
    assert err2 < 0.05
    # Area (m0) matching: charge transferred is exact.
    candidate = second.waveform.to_waveform(reference.times)
    assert candidate.integral() == pytest.approx(reference.integral(), rel=5e-3)


def test_fig20_21_ramp_with_ic(benchmark):
    analyzer, reference = run_ramp_with_ic()
    benchmark(lambda: run_ramp_with_ic()[0].response("7", order=2))

    assert not reference.is_monotone(1e-6)

    first = analyzer.response("7", order=1)
    second = analyzer.response("7", order=2)
    err1, err2 = awe_error(reference, first), awe_error(reference, second)

    report(
        "Figs. 20–21 — ramp + V(C6)=5 at C7 (the Table I stimulus)",
        [
            ("first-order estimate", "150% (unusable)", fmt_pct(first.error_estimate)),
            ("first-order true error", "—", fmt_pct(err1)),
            ("second-order estimate", "0.65%", fmt_pct(second.error_estimate)),
            ("second-order true error", "indistinguishable", fmt_pct(err2)),
        ],
    )

    assert err1 > 10 * err2
    assert err2 < 0.01
    assert first.error_estimate > 0.1  # "cannot be used"
