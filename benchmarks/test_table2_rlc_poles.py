"""Paper Table II: approximating vs actual poles of the Fig. 25 RLC circuit.

The circuit has three complex pole pairs.  The paper's table shows:

* 2nd order: one pair near (but not on) the dominant actual pair
  (−1.0881e9 ± 2.6125e9j vs −1.3532e9 ± 2.5967e9j),
* 4th order: the dominant pair matched to the shown digits and a second
  pair approximating the true second pair (−7.3532e8 ± 6.7541e9j vs
  −8.194e8 ± 6.810e9j),
* the third pair is beyond a 4th-order model.

Our tuned ladder reproduces exactly that structure (actual dominant pair
(−0.833 ± 2.10j)×10⁹, see fig25 module docs).
"""

import numpy as np
import pytest

from _bench_utils import fmt_pole, report
from repro import AweAnalyzer, MnaSystem, Step, circuit_poles
from repro.papercircuits import fig25_rlc_ladder

STIMULI = {"Vin": Step(0.0, 5.0)}


def run_experiment():
    circuit = fig25_rlc_ladder()
    exact = circuit_poles(MnaSystem(circuit)).sorted_by_dominance()
    analyzer = AweAnalyzer(circuit, STIMULI, max_order=8)
    q2 = analyzer.response("3", order=2).poles
    q4 = analyzer.response("3", order=4).poles
    q6 = analyzer.response("3", order=6).poles
    return exact, q2, q4, q6


def test_table2_rlc_poles(benchmark):
    exact, q2, q4, q6 = run_experiment()
    benchmark(lambda: AweAnalyzer(fig25_rlc_ladder(), STIMULI).response("3", order=4))

    def pair(poles, index):
        """The index-th conjugate pair (positive-imag member)."""
        upper = sorted([p for p in poles if p.imag > 0], key=abs)
        return upper[index]

    rows = [
        ("actual pair 1", "-1.3532e9 ± 2.5967e9j", fmt_pole(pair(exact, 0))),
        ("actual pair 2", "-8.194e8 ± 6.810e9j", fmt_pole(pair(exact, 1))),
        ("actual pair 3", "-3.278e8 ± 1.6225e10j", fmt_pole(pair(exact, 2))),
        ("2nd order", "-1.0881e9 ± 2.6125e9j", fmt_pole(pair(q2, 0))),
        ("4th order pair 1", "-1.3532e9 ± 2.5967e9j (exact digits)", fmt_pole(pair(q4, 0))),
        ("4th order pair 2", "-7.3532e8 ± 6.7541e9j", fmt_pole(pair(q4, 1))),
        ("6th order pair 3", "(beyond the paper's table)", fmt_pole(pair(q6, 2))),
    ]
    report("Table II — RLC circuit poles and approximate poles", rows)

    # Structure: all approximating poles are complex pairs.
    assert len(q2) == 2 and len(q4) == 4
    assert np.all(np.abs(q2.imag) > 0) and np.all(np.abs(q4.imag) > 0)

    # 2nd order lands near (within ~25 %) but not on the dominant pair.
    assert abs(pair(q2, 0) - pair(exact, 0)) < 0.25 * abs(pair(exact, 0))

    # 4th order: dominant pair locked to 4+ digits ("creep up", Sec. 5.1).
    assert abs(pair(q4, 0) - pair(exact, 0)) < 1e-3 * abs(pair(exact, 0))
    # ... second pair approximated within ~15 %.
    assert abs(pair(q4, 1) - pair(exact, 1)) < 0.15 * abs(pair(exact, 1))

    # Full order recovers everything to machine-ish precision.
    for k in range(3):
        assert abs(pair(q6, k) - pair(exact, k)) < 1e-6 * abs(pair(exact, k))
