"""Paper Figs. 23–24: the floating coupling capacitor (Sec. 5.3, Fig. 22).

The Fig. 16 tree gains C₁₁ from the output to a side node carrying C₁₂.
The paper reports:

* the 4.0 V-threshold delay grows from 1.6 ns to 1.7 ns from charge
  sharing through C₁₁,
* the floating path *degrades* the second-order fit (error 15 % vs
  0.15 % without it), recovering at third order (0.14 %),
* Fig. 24: the charge dumped onto C₁₂ — "since we match the m₀ term …
  the area under these voltage curves, hence the charge transferred, is
  always exact."

Fig. 23 runs on the default Fig. 22 variant (victim node resistively
held, the configuration that stresses second order the way the paper
describes); Fig. 24's exact-charge claim is additionally exercised on the
purely capacitive variant, where node 12 is governed by the Sec. III
charge-conservation equation.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, MnaSystem, Step
from repro.papercircuits import fig16_stiff_rc_tree, fig22_floating_cap

STIMULI = {"Vin": Step(0.0, 5.0)}
T_STOP = 1.5e-8


def test_fig23_output_degradation_and_delay(benchmark):
    coupled = fig22_floating_cap()
    analyzer = AweAnalyzer(coupled, STIMULI)
    analyzer_base = AweAnalyzer(fig16_stiff_rc_tree(), STIMULI)
    ref7 = reference_waveform(coupled, STIMULI, T_STOP, "7")
    base_ref = reference_waveform(fig16_stiff_rc_tree(), STIMULI, 8e-9, "7")

    benchmark(lambda: AweAnalyzer(fig22_floating_cap(), STIMULI).response("7", order=3))

    err_base2 = awe_error(base_ref, analyzer_base.response("7", order=2))
    err2 = awe_error(ref7, analyzer.response("7", order=2))
    err3 = awe_error(ref7, analyzer.response("7", order=3))

    delay_base = analyzer_base.response("7", order=3).delay(4.0)
    delay_coupled = analyzer.response("7", order=3).delay(4.0)

    report(
        "Fig. 23 — output response with the floating capacitor (Fig. 22)",
        [
            ("2nd-order error, no C11", "0.15%", fmt_pct(err_base2)),
            ("2nd-order error, with C11", "15%", fmt_pct(err2)),
            ("3rd-order error, with C11", "0.14%", fmt_pct(err3)),
            ("4.0 V delay, no C11", "1.6 ns", f"{delay_base*1e9:.3f} ns"),
            ("4.0 V delay, with C11", "1.7 ns", f"{delay_coupled*1e9:.3f} ns"),
        ],
    )

    # The floating path degrades second order; third order recovers.
    assert err2 > 10 * err_base2
    assert err2 > 0.02
    assert err3 < err2 / 10
    # Charge sharing slows the threshold crossing.
    assert delay_coupled > delay_base * 1.05


def test_fig24_charge_dumped_is_exact(benchmark):
    # Default (leaky) variant: the victim waveform rises and decays.
    coupled = fig22_floating_cap()
    analyzer = AweAnalyzer(coupled, STIMULI)
    ref12 = reference_waveform(coupled, STIMULI, T_STOP, "12")
    benchmark(lambda: AweAnalyzer(fig22_floating_cap(), STIMULI).response("12", order=3))

    response = analyzer.response("12", order=3)
    candidate = response.waveform.to_waveform(ref12.times)
    err = awe_error(ref12, response)
    area_awe = candidate.integral()
    area_ref = ref12.integral()

    # Purely capacitive variant: trapped charge fixes the final value.
    capacitive = fig22_floating_cap(leak_resistance=None)
    assert len(MnaSystem(capacitive).floating_groups) == 1
    cap_analyzer = AweAnalyzer(capacitive, STIMULI)
    cap_response = cap_analyzer.response("12", order=2)
    cap_ref = reference_waveform(capacitive, STIMULI, 8e-9, "12")

    report(
        "Fig. 24 — charge dumped onto C12 through the floating capacitor",
        [
            ("victim peak", "visible coupling bump", f"{ref12.values.max():.4f} V"),
            ("L2 error (3rd order)", "small", fmt_pct(err)),
            ("area ∫v dt (∝ charge)", "exact (m₀ matched)",
             f"AWE {area_awe:.5e} vs ref {area_ref:.5e}"),
            ("capacitive variant final", "charge conservation",
             f"AWE {cap_response.waveform.final_value():.4f} V vs ref {cap_ref.values[-1]:.4f} V"),
        ],
    )

    assert ref12.values.max() > 0.1  # real coupling noise
    assert err < 0.05
    assert area_awe == pytest.approx(area_ref, rel=5e-3)
    assert cap_response.waveform.final_value() == pytest.approx(
        cap_ref.values[-1], rel=1e-3
    )
