"""Extension benchmark — variational timing from the adjoint gradient.

The delay gradient (4 solves, any circuit size) replaces both corner
enumeration and per-sample re-solving:

* the gradient-built fast/slow corners equal the true extremes of the
  2^n corner space (verified by brute force on a small net),
* 2000 linearised Monte Carlo samples cost less than a handful of exact
  re-solves and agree with exact sampling to sub-percent statistics,
* a 16-leaf clock tree's full skew report (every leaf's threshold delay)
  runs from one shared moment computation.
"""

import itertools
import time

import dataclasses

import numpy as np
import pytest

from _bench_utils import report
from repro import Step
from repro.core.sensitivity import delay_sensitivities
from repro.papercircuits import clock_h_tree, fig4_rc_tree, random_rc_tree
from repro.timing import (
    delay_corners,
    delay_distribution,
    skew_report,
    tree_leaves,
    uniform_tolerances,
)


def test_ext_corner_construction(benchmark):
    circuit = random_rc_tree(4, seed=6)
    node = circuit.nodes[-1]
    tolerances = uniform_tolerances(circuit, 0.25)

    corners = benchmark(
        lambda: delay_corners(circuit, node, tolerances, {"Vin": 1.0})
    )

    # Brute force all 2^8 corners.
    names = sorted(tolerances)
    delays = []
    for signs in itertools.product((-1, 1), repeat=len(names)):
        sample = circuit.copy()
        for name, sign in zip(names, signs):
            element = sample[name]
            factor = 1 + sign * tolerances[name]
            if hasattr(element, "resistance"):
                sample.replace(dataclasses.replace(
                    element, resistance=element.resistance * factor))
            else:
                sample.replace(dataclasses.replace(
                    element, capacitance=element.capacitance * factor))
        delays.append(delay_sensitivities(sample, node, {"Vin": 1.0}).elmore_delay)

    report(
        "Extension — gradient-built corners vs brute force (2^8 corners)",
        [
            ("slow corner", "true maximum", f"{corners.corner_high:.6e} vs {max(delays):.6e}"),
            ("fast corner", "true minimum", f"{corners.corner_low:.6e} vs {min(delays):.6e}"),
            ("evaluations", "2 vs 256", "2 (plus 1 gradient)"),
        ],
    )
    assert corners.corner_high == pytest.approx(max(delays), rel=1e-9)
    assert corners.corner_low == pytest.approx(min(delays), rel=1e-9)


def test_ext_linear_monte_carlo(benchmark):
    circuit = fig4_rc_tree()
    tolerances = uniform_tolerances(circuit, 0.08)

    linear = benchmark(
        lambda: delay_distribution(circuit, "4", tolerances, samples=2000,
                                   seed=11, source_values={"Vin": 5.0},
                                   method="linear")
    )
    start = time.perf_counter()
    exact = delay_distribution(circuit, "4", tolerances, samples=200, seed=11,
                               source_values={"Vin": 5.0}, method="exact")
    t_exact_200 = time.perf_counter() - start

    report(
        "Extension — linearised Monte Carlo vs exact resampling (Fig. 4)",
        [
            ("mean", "agree sub-%", f"linear {linear.mean:.4e} vs exact {exact.mean:.4e}"),
            ("std", "agree few %", f"linear {linear.std:.3e} vs exact {exact.std:.3e}"),
            ("exact 200 samples", "—", f"{t_exact_200*1e3:.0f} ms"),
        ],
    )
    assert linear.mean == pytest.approx(exact.mean, rel=5e-3)
    assert linear.std == pytest.approx(exact.std, rel=0.15)


def test_ext_clock_skew_report(benchmark):
    circuit = clock_h_tree(4, imbalance_seed=13, imbalance=0.25)
    leaves = tree_leaves(circuit)

    result = benchmark(
        lambda: skew_report(circuit, {"Vclk": Step(0, 1)}, leaves, threshold=0.5)
    )
    report(
        "Extension — 16-leaf clock-tree skew from one shared analysis",
        [
            ("leaves analysed", "16", str(len(result.delays))),
            ("nominal skew", "—", f"{result.skew*1e12:.1f} ps"),
            ("earliest/latest", "—",
             f"{result.earliest[0]} {result.earliest[1]*1e12:.1f} ps / "
             f"{result.latest[0]} {result.latest[1]*1e12:.1f} ps"),
        ],
    )
    assert len(result.delays) == 16
    assert result.skew > 0
