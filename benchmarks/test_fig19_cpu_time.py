"""Paper Fig. 19: CPU time of the first-order approximation vs the
*incremental* cost of going to second order (Sec. 5.1).

"The first-order approximation time is the CPU time required to set up
the equations, find the steady state and m₀, and solve for the dominant
pole and residue.  The second-order approximation incremental CPU time is
that required to find the next two moments, and the two approximating
poles and residues."  The figure shows the increment to be a small
fraction of the first-order cost — the economic argument for order
escalation.

Hardware changed since 1989; the *ratio* is the reproduced claim: the
incremental second-order work (two LU back-substitutions + a 2×2 solve)
costs well under the full first-order setup (matrix assembly + LU
factorisation + the first solves).
"""

import numpy as np
import pytest

from _bench_utils import record_bench, report
from repro import MnaSystem
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.core.moments import homogeneous_moments
from repro.core.pade import match_poles
from repro.core.residues import solve_residues
from repro.papercircuits import fig16_stiff_rc_tree

CIRCUIT = fig16_stiff_rc_tree()


def first_order_setup():
    """Everything the paper charges to the first-order estimate."""
    system = MnaSystem(CIRCUIT)
    state = resolve_initial_storage_state(system, {"Vin": 0.0})
    x0 = initial_operating_point(CIRCUIT, system, state, {"Vin": 5.0})
    x_final = dc_operating_point(system, {"Vin": 5.0})
    moments = homogeneous_moments(system, x0 - x_final, 1)
    sequence = moments.sequence_for(system.index.node("7"))
    pade = match_poles(sequence[:2], 1)
    solve_residues(pade.poles, sequence)
    return system, moments


def second_order_increment(system, moments):
    """The paper's incremental cost: two more moments + the 2-pole solve."""
    extended = moments.extended(system, 2)
    sequence = extended.sequence_for(system.index.node("7"))
    pade = match_poles(sequence[:4], 2)
    solve_residues(pade.poles, sequence)
    return extended


class TestFig19CpuTime:
    def test_first_order_setup(self, benchmark):
        benchmark(first_order_setup)

    def test_second_order_increment(self, benchmark):
        system, moments = first_order_setup()
        benchmark(lambda: second_order_increment(system, moments))

    def test_increment_is_cheap(self, benchmark):
        import time

        def measure(fn, repeat=30):
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        t_setup = measure(first_order_setup)
        system, moments = first_order_setup()
        t_increment = measure(lambda: second_order_increment(system, moments))
        # Register the increment with pytest-benchmark as well, so this
        # ratio check also runs under --benchmark-only.
        benchmark(lambda: second_order_increment(system, moments))

        report(
            "Fig. 19 — CPU time: first-order setup vs second-order increment",
            [
                ("first-order setup", "dominant cost", f"{t_setup*1e3:.3f} ms"),
                ("second-order increment", "small fraction", f"{t_increment*1e3:.3f} ms"),
                ("increment / setup", "≪ 1", f"{t_increment/t_setup:.2f}"),
            ],
        )
        record_bench(
            "fig19_cpu_time",
            {
                "first_order_setup_s": t_setup,
                "second_order_increment_s": t_increment,
                "increment_over_setup": t_increment / t_setup,
            },
        )
        assert t_increment < 0.6 * t_setup
