"""Paper Fig. 7: first-order AWE step response of the Fig. 4 RC tree.

The paper plots the first-order approximation ``v₄ = 5 − 5e^{−t/τ₁}``
(its eq. 60, τ₁ = the Elmore delay) against SPICE, noting visible error
that motivates Sec. 4.4's escalation to second order (Fig. 15 reports the
first-order error term as 36 %).

Reproduced claims:
* the fitted pole is exactly −1/T_D (T_D = 0.7 ms for our element values),
* the first-order waveform is qualitatively right but visibly off
  (double-digit relative error),
* the final value is exact (m₀ matching ⇒ exact area, Sec. 3.3).
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Step
from repro.papercircuits import fig4_elmore_delays, fig4_rc_tree

STIMULI = {"Vin": Step(0.0, 5.0)}
T_STOP = 6e-3


def run_experiment():
    circuit = fig4_rc_tree()
    analyzer = AweAnalyzer(circuit, STIMULI)
    response = analyzer.response("4", order=1)
    reference = reference_waveform(circuit, STIMULI, T_STOP, "4")
    return analyzer, response, reference


def test_fig07_first_order_step(benchmark):
    analyzer, response, reference = run_experiment()

    def awe_first_order():
        return AweAnalyzer(fig4_rc_tree(), STIMULI).response("4", order=1)

    benchmark(awe_first_order)

    pole = response.poles[0].real
    elmore = fig4_elmore_delays()["4"]
    true_error = awe_error(reference, response)
    estimate = response.error_estimate

    report(
        "Fig. 7 — first-order AWE step response at C4 (Fig. 4 tree)",
        [
            ("pole (1/s)", "−1/T_D (eq. 60)", f"{pole:.4e} vs −1/T_D = {-1/elmore:.4e}"),
            ("error estimate", "36% (from Fig. 15 text)", fmt_pct(estimate)),
            ("true L2 error vs reference", "visible mismatch", fmt_pct(true_error)),
            ("final value", "5 V (exact)", f"{response.waveform.final_value():.6f} V"),
        ],
    )

    assert pole == pytest.approx(-1.0 / elmore, rel=1e-9)
    assert response.waveform.final_value() == pytest.approx(5.0, rel=1e-12)
    # First order is usable but visibly wrong — double-digit percent range.
    assert 0.05 < true_error < 0.5
    assert 0.05 < estimate < 0.6
    # The model is monotone, like the true RC-tree response.
    sampled = response.waveform.to_waveform(reference.times)
    assert sampled.is_monotone(1e-9)
