"""Ablation — automatic order escalation and the error estimator
(paper Secs. 3.3–3.4).

"Instead of attempting to bound the response waveforms … we approximate
quickly the accuracy and move to higher orders as required."  The whole
strategy rests on the q-vs-(q+1) estimate being a usable proxy for the
true error, and on escalation stopping at a sensible order.

Measured across a mixed circuit population (stiff tree, ladder, RLC,
charge sharing):

* correlation between estimate and true error (within a factor of ~5 at
  every point where both are defined),
* the order the auto-escalation picks vs the smallest order whose true
  error meets the target,
* that escalation skips unstable low orders (the Sec. 3.3 remedy).
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, DC, Ramp, Step
from repro.papercircuits import (
    fig16_stiff_rc_tree,
    fig25_rlc_ladder,
    fig4_rc_tree,
    rc_ladder,
)

TARGET = 0.01

CASES = [
    ("fig4 step", fig4_rc_tree(), {"Vin": Step(0, 5)}, "4", 6e-3),
    ("fig16 ramp", fig16_stiff_rc_tree(), {"Vin": Ramp(0, 5, rise_time=1e-9)}, "7", 6e-9),
    ("fig16 charge share", fig16_stiff_rc_tree(sharing_voltage=5.0), {"Vin": DC(0.0)}, "7", 6e-9),
    ("fig25 step", fig25_rlc_ladder(), {"Vin": Step(0, 5)}, "3", 1.2e-8),
    ("8-seg ladder", rc_ladder(8), {"Vin": Step(0, 5)}, "8", 5e-9),
]


def run_case(name, circuit, stimuli, node, t_stop):
    analyzer = AweAnalyzer(circuit, stimuli, max_order=8)
    reference = reference_waveform(circuit, stimuli, t_stop, node)
    auto = analyzer.response(node, error_target=TARGET)
    true_error = awe_error(reference, auto)

    # Smallest order whose TRUE error meets the target (oracle).
    oracle = None
    for q in range(1, 9):
        try:
            response = analyzer.response(node, order=q)
        except Exception:
            continue
        if response.waveform.is_stable and awe_error(reference, response) <= TARGET:
            oracle = q
            break
    return auto, true_error, oracle


def test_ablation_order_escalation(benchmark):
    benchmark(
        lambda: AweAnalyzer(
            fig25_rlc_ladder(), {"Vin": Step(0, 5)}, max_order=8
        ).response("3", error_target=TARGET)
    )

    rows = []
    for name, circuit, stimuli, node, t_stop in CASES:
        auto, true_error, oracle = run_case(name, circuit, stimuli, node, t_stop)
        rows.append(
            (name,
             f"target {fmt_pct(TARGET)}",
             f"picked q={auto.order} (oracle q={oracle}), est {fmt_pct(auto.error_estimate)}, "
             f"true {fmt_pct(true_error)}"),
        )
        # Estimate is a usable proxy: within 5x of truth (when both > 0).
        if true_error > 1e-4 and auto.error_estimate and auto.error_estimate > 1e-4:
            ratio = auto.error_estimate / true_error
            assert 0.2 < ratio < 25.0, f"{name}: estimator off by {ratio}"
        # Escalation never picks more than 2 orders above the oracle.
        assert oracle is not None
        assert oracle <= auto.order <= oracle + 2
        # And the delivered model genuinely meets ~the target.
        assert true_error < 3 * TARGET

    report("Ablation — order escalation & error estimator (Secs. 3.3–3.4)", rows)

    # The charge-sharing case must have skipped order 1 (unstable or
    # unsolvable single-pole fit, the Sec. 3.3 scenario).
    auto, _, _ = run_case(*CASES[2])
    assert auto.order >= 2
