"""Extension benchmark — transfer-function reduction (the eq. 30 form).

The paper notes (Sec. 3.1) that its moment matching "arises also in the
model order reduction problem much studied in linear control system
theory".  This benchmark runs AWE in exactly that frequency-domain form —
the way the successor tools (RICE/PVL/PRIMA) consumed it — and measures:

* worst-case |Ĥ(jω) − H(jω)| over 4 decades vs reduction order, on a
  20-pole RC line (monotone improvement, machine-precision at full order),
* reduced-model evaluation speed vs the exact per-frequency LU sweep —
  the economic reason reduced-order interconnect macromodels exist.
"""

import numpy as np
import pytest

from _bench_utils import report
from repro import MnaSystem
from repro.core.transfer import exact_frequency_response, reduce_transfer, transfer_moments
from repro.papercircuits import rc_ladder

CIRCUIT = rc_ladder(20)
OMEGAS = np.logspace(6, 10, 80)


def run_experiment():
    system = MnaSystem(CIRCUIT, sparse=False)
    exact = exact_frequency_response(system, "Vin", "20", OMEGAS)
    moments = transfer_moments(system, "Vin", "20", 12)
    errors = {}
    # Order 5 is where the (scaled) Hankel conditioning of this 20-pole
    # line tops out in double precision — the same practical ceiling the
    # AWE literature reports for single-point moment matching (and the
    # reason the successors moved to Krylov projection).
    for order in (1, 2, 4, 5):
        model = reduce_transfer(system, "Vin", "20", order, moments=moments)
        errors[order] = np.abs(model.frequency_response(OMEGAS) - exact).max()
    return system, exact, errors, moments


def test_ext_transfer_reduction(benchmark):
    system, exact, errors, moments = run_experiment()
    model = reduce_transfer(system, "Vin", "20", 4, moments=moments)

    benchmark(lambda: model.frequency_response(OMEGAS))

    import time

    start = time.perf_counter()
    exact_frequency_response(system, "Vin", "20", OMEGAS)
    t_exact = time.perf_counter() - start
    start = time.perf_counter()
    model.frequency_response(OMEGAS)
    t_reduced = time.perf_counter() - start

    rows = [
        (f"max |Ĥ−H|, order {q}", "monotone improvement", f"{errors[q]:.2e}")
        for q in sorted(errors)
    ]
    rows.append(("sweep speedup (80 points)", "macromodels exist for a reason",
                 f"{t_exact / max(t_reduced, 1e-9):.0f}x"))
    report("Extension — transfer-function reduction on a 20-pole RC line", rows)

    assert errors[1] > errors[2] > errors[4] > errors[5]
    assert errors[4] < 1e-3        # 4 poles ≈ plot-exact over 4 decades
    assert errors[5] < 1e-6
    assert t_exact > 5 * t_reduced
