"""Extension benchmark — gateway scale-out and request coalescing.

The serving-layer extension of the paper's economics: once a request is
content-addressed, *never compute it twice* — across a fleet.  Two
mechanisms, two mixes (see ``repro.gateway.loadgen``):

* **cache-miss mix** — every request distinct: throughput should scale
  with shard count, because key-affinity routing gives each shard an
  independent engine and a disjoint working set.  This is a *core-bound*
  claim: on a single-CPU host the shards time-share one core and the
  gateway's extra hop makes it a regression, so the ≥2x floor is
  asserted only where ``len(os.sched_getaffinity(0)) >= 2``.  The
  measured numbers are recorded either way.
* **hot-key mix** — rounds of identical requests: the gateway's
  in-flight coalescing computes each round once and fans out, while the
  single daemon computes every copy.  That advantage is *algorithmic*
  (work elimination, not parallelism), so the ≥5x floor holds even on
  one core and is asserted unconditionally.

Results land in ``BENCH_scaling.json`` under ``gateway_scaling`` —
the CI nightly scaling job enforces the floors from there.
"""

import os

from _bench_utils import record_bench, report
from repro.gateway import GatewayServer, build_mix, coalesced_delta, run_loadgen
from repro.service import AnalysisClient, ServiceServer

#: Enough requests for stable percentiles, few enough for CI smoke.
REQUESTS = int(os.environ.get("REPRO_GATEWAY_BENCH_REQUESTS", "48"))
#: Herd width per hot round.  16 concurrent copies of one request is the
#: shape the coalescing claim is about; the miss mix uses the same
#: concurrency so the two mixes differ only in key distribution.
CONCURRENCY = 16
#: Large enough that one analysis dominates the gateway's forwarding
#: hop — the coalescing ratio measures work elimination, not framing.
SECTIONS = 40
GATEWAY_SHARDS = 4


def _drive(url: str, mix: str, seed: int) -> dict:
    payloads = build_mix(mix, REQUESTS, concurrency=CONCURRENCY,
                         seed=seed, sections=SECTIONS)
    probe = AnalysisClient(url, retries=0)
    before = probe.metrics()
    outcome = run_loadgen(url, payloads, concurrency=CONCURRENCY)
    outcome["coalesced"] = coalesced_delta(before, probe.metrics())
    assert outcome["failed"] == 0, outcome["failures"]
    return outcome


def test_gateway_scaling(tmp_path):
    cores = len(os.sched_getaffinity(0))

    # Baseline: one daemon, one engine — what the gateway must beat.
    with ServiceServer(port=0, workers=1) as daemon:
        daemon_miss = _drive(daemon.url, "miss", seed=11)
        daemon_hot = _drive(daemon.url, "hot", seed=23)

    with GatewayServer(shards=GATEWAY_SHARDS,
                       cache_dir=str(tmp_path / "cache"),
                       shard_queue_size=REQUESTS) as gateway:
        gateway_miss = _drive(gateway.url, "miss", seed=11)
        gateway_hot = _drive(gateway.url, "hot", seed=23)

    miss_speedup = gateway_miss["rps"] / daemon_miss["rps"]
    hot_speedup = gateway_hot["rps"] / daemon_hot["rps"]

    report(
        f"Extension — gateway scale-out, {GATEWAY_SHARDS} shards vs one "
        f"daemon ({cores} core(s), {REQUESTS} requests @ {CONCURRENCY})",
        [
            ("miss mix, daemon", "baseline",
             f"{daemon_miss['rps']:.1f} RPS  p99 {daemon_miss['p99_ms']:.0f} ms"),
            ("miss mix, gateway", ">= 2x on >= 2 cores",
             f"{gateway_miss['rps']:.1f} RPS  p99 {gateway_miss['p99_ms']:.0f} ms"
             f"  ({miss_speedup:.2f}x)"),
            ("hot mix, daemon", "computes every copy",
             f"{daemon_hot['rps']:.1f} RPS"),
            ("hot mix, gateway", ">= 5x (coalesced)",
             f"{gateway_hot['rps']:.1f} RPS  ({hot_speedup:.2f}x, "
             f"{gateway_hot['coalesced']} joined)"),
        ],
    )

    record_bench(
        "gateway_scaling",
        {
            "shards": GATEWAY_SHARDS,
            "cores": cores,
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "miss": {"daemon_rps": daemon_miss["rps"],
                     "gateway_rps": gateway_miss["rps"],
                     "speedup": round(miss_speedup, 3),
                     "daemon_p99_ms": daemon_miss["p99_ms"],
                     "gateway_p99_ms": gateway_miss["p99_ms"]},
            "hot": {"daemon_rps": daemon_hot["rps"],
                    "gateway_rps": gateway_hot["rps"],
                    "speedup": round(hot_speedup, 3),
                    "coalesced": gateway_hot["coalesced"]},
        },
    )

    # Coalescing must have actually happened: every hot round beyond its
    # leader joined an in-flight computation instead of recomputing.
    rounds = (REQUESTS + CONCURRENCY - 1) // CONCURRENCY
    assert gateway_hot["coalesced"] >= REQUESTS - rounds - CONCURRENCY

    # The algorithmic floor: work elimination is core-count independent.
    assert hot_speedup >= 5.0, (
        f"coalescing speedup {hot_speedup:.2f}x under the 5x floor")

    # The parallelism floor only exists where parallelism does.
    if cores >= 2:
        assert miss_speedup >= 2.0, (
            f"scale-out speedup {miss_speedup:.2f}x under the 2x floor "
            f"on a {cores}-core host")
