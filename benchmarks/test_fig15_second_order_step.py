"""Paper Fig. 15: second-order step response of the Fig. 4 tree.

Sec. 4.4: "the error term is decreased to 1.6 percent [from 36 percent].
The AWE and SPICE response plots are indistinguishable at the resolution
shown" — higher orders come "at an incremental cost to the first-order
approximation".

Reproduced claims:
* the Sec. 3.4 error estimate drops by more than an order of magnitude
  from first to second order,
* the true L2 error at second order is ~1 %-scale,
* the second-order waveform is pointwise within plot resolution (< 1 % of
  swing) of the reference.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Step
from repro.papercircuits import fig4_rc_tree

STIMULI = {"Vin": Step(0.0, 5.0)}
T_STOP = 6e-3


def run_experiment():
    circuit = fig4_rc_tree()
    analyzer = AweAnalyzer(circuit, STIMULI)
    first = analyzer.response("4", order=1)
    second = analyzer.response("4", order=2)
    reference = reference_waveform(circuit, STIMULI, T_STOP, "4")
    return first, second, reference


def test_fig15_second_order_step(benchmark):
    first, second, reference = run_experiment()

    analyzer = AweAnalyzer(fig4_rc_tree(), STIMULI)
    analyzer.subproblems()  # moments precomputed: time the incremental fit
    benchmark(lambda: analyzer.response("4", order=2))

    err1_est, err2_est = first.error_estimate, second.error_estimate
    err1_true = awe_error(reference, first)
    err2_true = awe_error(reference, second)
    candidate = second.waveform.to_waveform(reference.times)
    pointwise = np.abs(candidate.values - reference.values).max() / 5.0

    report(
        "Fig. 15 — second-order step response at C4 (Fig. 4 tree)",
        [
            ("error estimate, order 1", "36%", fmt_pct(err1_est)),
            ("error estimate, order 2", "1.6%", fmt_pct(err2_est)),
            ("true L2 error, order 1", "—", fmt_pct(err1_true)),
            ("true L2 error, order 2", "indistinguishable", fmt_pct(err2_true)),
            ("max pointwise error / swing", "below plot resolution", fmt_pct(pointwise)),
        ],
    )

    assert err2_est < err1_est / 8.0
    assert err2_true < 0.03
    assert pointwise < 0.01
