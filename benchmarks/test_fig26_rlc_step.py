"""Paper Fig. 26: step response of the underdamped RLC circuit (Sec. 5.4).

"A first-order approximation produces a single real dominant pole … The
error term for this first-order approximation is large — 74 percent."
Second order "is able to detect the overshoot but there is still a
significant waveform difference" (22 %); only at fourth order does the
error drop below 1 % and "all of the response waveform detail is
matched".

Reproduced error trajectory (our values): ~60 % → ~13 % → ~2 %, with the
same qualitative signatures: the first-order model is monotone (cannot
overshoot), the second-order model rings with roughly the right overshoot,
the fourth-order model traces the waveform.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Step
from repro.papercircuits import fig25_rlc_ladder

STIMULI = {"Vin": Step(0.0, 5.0)}
T_STOP = 1.2e-8


def run_experiment():
    circuit = fig25_rlc_ladder()
    analyzer = AweAnalyzer(circuit, STIMULI)
    reference = reference_waveform(circuit, STIMULI, T_STOP, "3")
    responses = {q: analyzer.response("3", order=q) for q in (1, 2, 4)}
    return reference, responses


def test_fig26_rlc_step(benchmark):
    reference, responses = run_experiment()
    benchmark(lambda: AweAnalyzer(fig25_rlc_ladder(), STIMULI).response("3", order=4))

    errors = {q: awe_error(reference, r) for q, r in responses.items()}
    overshoot_ref = reference.overshoot()
    sampled = {
        q: r.waveform.to_waveform(reference.times) for q, r in responses.items()
    }
    overshoots = {q: w.overshoot() for q, w in sampled.items()}

    report(
        "Fig. 26 — RLC step response across orders (Fig. 25 circuit)",
        [
            ("order 1 error", "74%", fmt_pct(errors[1])),
            ("order 2 error", "22%", fmt_pct(errors[2])),
            ("order 4 error", "<1%", fmt_pct(errors[4])),
            ("reference overshoot", "pronounced ringing", fmt_pct(overshoot_ref)),
            ("order 1 overshoot", "0 (single exponential)", fmt_pct(overshoots[1])),
            ("order 2 overshoot", "detected", fmt_pct(overshoots[2])),
            ("order 4 overshoot", "matched", fmt_pct(overshoots[4])),
        ],
    )

    # Error trajectory: steeply decreasing, q1 useless, q4 plot-accurate.
    assert errors[1] > 0.3
    assert 0.03 < errors[2] < errors[1] / 2
    assert errors[4] < 0.05
    assert errors[4] < errors[2] / 3

    # Order 1: real pole, no overshoot possible.
    assert np.all(np.abs(responses[1].poles.imag) == 0)
    assert overshoots[1] == pytest.approx(0.0, abs=1e-6)

    # Order 2 detects the overshoot; order 4 matches it closely.
    assert overshoots[2] > 0.5 * overshoot_ref
    assert overshoots[4] == pytest.approx(overshoot_ref, rel=0.15)
