"""Ablation — initial-slope (m₋₂) matching for ramp inputs (paper Sec. 4.3).

"From Fig. 14 it is apparent that the AWE approximation starts out with a
negative slope.  In reality, this is not possible for an RC tree … if
necessary, this glitch can be removed by proper matching of the m₋₂
terms."

Measured on the Fig. 4 tree with the 1 ms-rise ramp, order 2:

* the free fit leaves t = 0 with a wrong (negative) slope,
* the slope-matched fit leaves t = 0 with (near-)zero slope — the
  physically correct value for a ramp into a relaxed RC tree,
* the overall waveform error does not materially degrade.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Ramp
from repro.papercircuits import fig4_rc_tree

STIMULI = {"Vin": Ramp(0.0, 5.0, rise_time=1e-3)}
T_STOP = 7e-3


def initial_slope(waveform, dt=1e-8):
    return float(waveform.evaluate(dt) - waveform.evaluate(0.0)) / dt


def run_experiment():
    circuit = fig4_rc_tree()
    analyzer = AweAnalyzer(circuit, STIMULI)
    free = analyzer.response("4", order=2)
    matched = analyzer.response("4", order=2, match_initial_slope=True)
    reference = reference_waveform(circuit, STIMULI, T_STOP, "4")
    return free, matched, reference


def test_ablation_slope_matching(benchmark):
    free, matched, reference = run_experiment()
    benchmark(
        lambda: AweAnalyzer(fig4_rc_tree(), STIMULI).response(
            "4", order=2, match_initial_slope=True
        )
    )

    slope_free = initial_slope(free.waveform)
    slope_matched = initial_slope(matched.waveform)
    err_free = awe_error(reference, free)
    err_matched = awe_error(reference, matched)

    report(
        "Ablation — m₋₂ slope matching (Sec. 4.3), Fig. 4 tree + 1 ms ramp",
        [
            ("initial slope, free fit", "wrong sign (the glitch)", f"{slope_free:.3f} V/s"),
            ("initial slope, matched", "≈ 0 (physical)", f"{slope_matched:.3f} V/s"),
            ("true slope of an RC tree ramp response", "0 V/s", "0 (analytic)"),
            ("L2 error, free", "—", fmt_pct(err_free)),
            ("L2 error, matched", "not materially worse", fmt_pct(err_matched)),
        ],
    )

    assert abs(slope_matched) < 0.05 * abs(slope_free)
    # The constraint trades one matched moment for the slope; the global
    # error may grow a little but must stay sub-percent.
    assert err_matched < max(10.0 * err_free, 0.01)
