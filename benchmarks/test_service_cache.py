"""Request-level amortisation: the daemon's result cache, cold vs warm.

The batch engine amortises one LU across the outputs of one run; the
service (docs/service.md) amortises whole analyses across requests.
This benchmark runs a real `ServiceServer` on an ephemeral port, submits
the paper's Fig. 16 stiff tree cold, then replays an *equivalent but
cosmetically different* deck and measures the server-side handling time
of the content-addressed hit.  The acceptance claims:

* the warm body is bit-identical to the cold body,
* the warm hit is at least 10x faster server-side than the cold run.

Results land in ``BENCH_scaling.json`` under ``service_cache``.
"""

from _bench_utils import record_bench, report
from repro import AnalysisClient, ServiceServer, Step
from repro.circuit.writer import write_netlist
from repro.papercircuits import FIG16_OUTPUT, fig16_stiff_rc_tree


def make_decks():
    """The Fig. 16 deck and an equivalent respelling of it."""
    cold_deck = write_netlist(fig16_stiff_rc_tree(), {"Vin": Step(0.0, 5.0)})
    body = cold_deck.splitlines()
    # Same circuit, different bytes: shuffled element order, a comment,
    # and extra whitespace — the canonicaliser must see through all of it.
    warm_deck = "\n".join(
        [body[0], "* equivalent respelling of the same deck"]
        + [line.replace(" ", "  ") for line in reversed(body[1:-1])]
        + [body[-1]]
    ) + "\n"
    assert warm_deck != cold_deck
    return cold_deck, warm_deck


def run_cold_warm(warm_requests=5):
    cold_deck, warm_deck = make_decks()
    with ServiceServer(port=0, workers=1) as server:
        client = AnalysisClient(server.url)
        cold = client.analyze(cold_deck, FIG16_OUTPUT, threshold=2.5)
        assert cold.ok and not cold.cached
        warms = [client.analyze(warm_deck, FIG16_OUTPUT, threshold=2.5)
                 for _ in range(warm_requests)]
        metrics = client.metrics()
    return cold, warms, metrics


def test_warm_hit_is_bit_identical_and_10x_faster(benchmark):
    cold, warms, metrics = run_cold_warm()

    for warm in warms:
        assert warm.cached
        assert warm.key == cold.key
        assert warm.body == cold.body        # bit-identical, not re-rendered

    assert metrics["cache_misses"] == 1
    assert metrics["cache_hits"] == len(warms)

    cold_s = cold.server_elapsed_s
    warm_s = min(w.server_elapsed_s for w in warms)
    speedup = cold_s / max(warm_s, 1e-9)

    # Benchmark the steady state a deployed daemon lives in: every
    # request after the first is a hit.
    with ServiceServer(port=0, workers=1) as server:
        client = AnalysisClient(server.url)
        cold_deck, warm_deck = make_decks()
        client.analyze(cold_deck, FIG16_OUTPUT, threshold=2.5)
        benchmark(lambda: client.analyze(warm_deck, FIG16_OUTPUT, threshold=2.5))

    report(
        "Service cache — Fig. 16 deck, cold analysis vs content-addressed hit",
        [
            ("cold server-side", "full AWE analysis", f"{cold_s*1e3:.2f} ms"),
            ("warm server-side (best)", "cache lookup", f"{warm_s*1e3:.3f} ms"),
            ("speedup", ">= 10x", f"{speedup:.0f}x"),
            ("warm body", "bit-identical", "yes"),
        ],
    )
    record_bench(
        "service_cache",
        {
            "deck": "fig16_stiff_rc_tree",
            "node": FIG16_OUTPUT,
            "cold_s": cold_s,
            "warm_best_s": warm_s,
            "warm_requests": len(warms),
            "speedup": speedup,
            "bit_identical": all(w.body == cold.body for w in warms),
            "cache_hits": metrics["cache_hits"],
            "cache_misses": metrics["cache_misses"],
        },
    )
    assert speedup >= 10.0
