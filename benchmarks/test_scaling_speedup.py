"""Scaling study: AWE cost vs circuit size, and the speedup over the
SPICE-style reference (the paper's opening motivation: RC-tree methods
run "at faster than 1000x the speed" of SPICE while AWE generalises them
at comparable cost).

Two measurements on uniform RC ladders of growing size:

* wall-clock of a full second-order AWE evaluation (assembly + LU +
  moments + Padé) vs a converged transient simulation of the same net —
  the speedup should be large (hundreds to thousands) and grow with the
  accuracy demanded of the transient,
* the moment recursion's near-linear growth: each extra moment is one
  forward/back substitution, so doubling the order far less than doubles
  the total time.
"""

import time

import numpy as np
import pytest

from _bench_utils import record_bench, report
from repro import AweAnalyzer, AweJob, BatchEngine, Step, simulate
from repro.papercircuits import random_rc_tree, rc_ladder

STIMULI = {"Vin": Step(0.0, 5.0)}


def awe_delay(circuit, node):
    analyzer = AweAnalyzer(circuit, STIMULI)
    return analyzer.response(node, order=2).delay_50()


def transient_delay(circuit, node, t_stop):
    result = simulate(circuit, STIMULI, t_stop)
    v_final = result.voltage(node).values[-1]
    return result.voltage(node).threshold_delay(0.5 * v_final)


def best_of(fn, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_awe_vs_spice_speedup(benchmark):
    sections = 30
    circuit = rc_ladder(sections)
    node = str(sections)
    t_stop = 10 * 100.0 * 50e-15 * sections**2  # ~10 Elmore delays

    benchmark(lambda: awe_delay(rc_ladder(sections), node))

    t_awe = best_of(lambda: awe_delay(circuit, node))
    t_spice = best_of(lambda: transient_delay(circuit, node, t_stop), repeat=2)
    d_awe = awe_delay(circuit, node)
    d_spice = transient_delay(circuit, node, t_stop)

    report(
        "Scaling — AWE vs SPICE-style transient, 30-section RC ladder",
        [
            ("50% delay agreement", "within a few %",
             f"AWE {d_awe:.4g} s vs transient {d_spice:.4g} s"),
            ("AWE time", "milliseconds", f"{t_awe*1e3:.2f} ms"),
            ("transient time", "orders slower", f"{t_spice*1e3:.2f} ms"),
            ("speedup", '"faster than 1000x" (paper Sec. I)', f"{t_spice/t_awe:.0f}x"),
        ],
    )

    assert d_awe == pytest.approx(d_spice, rel=0.05)
    assert t_spice / t_awe > 20  # conservative floor; typically ≫ 100

    record_bench(
        "awe_vs_spice",
        {
            "sections": sections,
            "awe_delay_s": d_awe,
            "transient_delay_s": d_spice,
            "awe_time_s": t_awe,
            "transient_time_s": t_spice,
            "speedup": t_spice / t_awe,
        },
    )


def test_moment_cost_is_incremental(benchmark):
    """Each extra order costs back-substitutions, not re-factorisation."""
    circuit = rc_ladder(60)
    analyzer = AweAnalyzer(circuit, STIMULI, max_order=8)
    analyzer.subproblems()  # everything up to max order precomputed once

    def fits():
        for q in (1, 2, 3, 4):
            analyzer.response("60", order=q)

    benchmark(fits)

    t_low = best_of(lambda: AweAnalyzer(circuit, STIMULI, max_order=2).subproblems())
    t_high = best_of(lambda: AweAnalyzer(circuit, STIMULI, max_order=8).subproblems())

    report(
        "Scaling — moment recursion cost vs max order (60-section ladder)",
        [
            ("moments to order 2", "setup-dominated", f"{t_low*1e3:.2f} ms"),
            ("moments to order 8", "+12 back-substitutions", f"{t_high*1e3:.2f} ms"),
            ("ratio", "far below 4x", f"{t_high/t_low:.2f}x"),
        ],
    )
    assert t_high < 4.0 * t_low

    record_bench(
        "moment_cost_incremental",
        {
            "sections": 60,
            "time_to_order_2_s": t_low,
            "time_to_order_8_s": t_high,
            "ratio": t_high / t_low,
        },
    )


def _batch_jobs(n_circuits=10, nodes_per_circuit=5, tree_nodes=180):
    """50 RC-tree timing jobs over 10 distinct interconnect nets — the
    shape of a static-timing sweep where many sinks of the same net are
    queried."""
    jobs = []
    for s in range(n_circuits):
        circuit = random_rc_tree(tree_nodes, seed=200 + s)
        for i in range(nodes_per_circuit):
            node = str(tree_nodes - i * 7)
            jobs.append(AweJob(circuit, (node,), stimuli=STIMULI, order=3))
    return jobs


def test_batch_engine_speedup(benchmark):
    """Batch engine vs the naive per-job loop (fresh analyzer every job).

    The engine wins by amortising MNA assembly, the LU factorisation and
    the shared moment recursion across all jobs that target the same
    circuit — the multi-RHS layer keeps the triangular-solve count
    independent of how many subproblems each analysis carries.  Results
    must stay bit-identical to the naive loop.
    """
    jobs = _batch_jobs()
    assert len(jobs) >= 50

    def naive_sequential():
        out = []
        for job in jobs:
            analyzer = AweAnalyzer(job.circuit, job.stimuli, max_order=job.max_order)
            out.append({n: analyzer.response(n, order=job.order) for n in job.nodes})
        return out

    engine = BatchEngine()
    benchmark(lambda: engine.run(jobs, workers=1))

    t_seq = best_of(naive_sequential, repeat=2)
    t_batch = best_of(lambda: engine.run(jobs, workers=4), repeat=2)
    speedup = t_seq / t_batch

    reference = naive_sequential()
    engine.reset_stats()  # so the recorded stats cover exactly one run
    results = engine.run(jobs, workers=4)
    times = np.linspace(0.0, 20e-9, 200)
    for expected, result in zip(reference, results):
        assert result.ok, result.error
        for node, response in result.responses.items():
            assert np.array_equal(expected[node].poles, response.poles)
            assert np.array_equal(
                expected[node].waveform.evaluate(times),
                response.waveform.evaluate(times),
            )

    stats = engine.stats()
    report(
        "Batch engine — 50 RC-tree jobs (10 nets x 5 sinks), workers=4",
        [
            ("results", "bit-identical", "bit-identical"),
            ("naive sequential", "one analyzer per job", f"{t_seq*1e3:.1f} ms"),
            ("batch engine", "one analyzer per net", f"{t_batch*1e3:.1f} ms"),
            ("speedup", ">= 1.5x", f"{speedup:.2f}x"),
        ],
    )
    record_bench(
        "batch_engine_speedup",
        {
            "jobs": len(jobs),
            "distinct_circuits": 10,
            "tree_nodes": 180,
            "workers": 4,
            "sequential_time_s": t_seq,
            "batch_time_s": t_batch,
            "speedup": speedup,
            "bit_identical": True,
            "engine_stats": {
                k: v for k, v in stats.items() if not k.endswith("_s")
            },
        },
    )
    assert speedup >= 1.5
