"""Paper Fig. 27: the Fig. 25 RLC circuit driven with a 1 ns rise time.

"If the input voltage rise time were changed from 0 to 1 ns, the residues
would be changed such that there would be only one complex pole pair
dominating the response" — so a second-order model suffices, and "in
general, the step response approximation will exhibit the largest error
term since its transient response is more significant than for the case
of finite input signal slope."

Reproduced claims:
* the second-order ramp-response error is far below the second-order
  *step*-response error on the same circuit,
* the finite rise time shrinks the overshoot,
* second order suffices for plot-level agreement.
"""

import numpy as np
import pytest

from _bench_utils import awe_error, fmt_pct, report, reference_waveform
from repro import AweAnalyzer, Ramp, Step
from repro.papercircuits import fig25_rlc_ladder

RAMP = {"Vin": Ramp(0.0, 5.0, rise_time=1e-9)}
STEP = {"Vin": Step(0.0, 5.0)}
T_STOP = 1.2e-8


def run_experiment():
    circuit = fig25_rlc_ladder()
    ramp_analyzer = AweAnalyzer(circuit, RAMP)
    step_analyzer = AweAnalyzer(circuit, STEP)
    ramp_ref = reference_waveform(circuit, RAMP, T_STOP, "3")
    step_ref = reference_waveform(circuit, STEP, T_STOP, "3")
    return ramp_analyzer, step_analyzer, ramp_ref, step_ref


def test_fig27_rlc_ramp(benchmark):
    ramp_analyzer, step_analyzer, ramp_ref, step_ref = run_experiment()
    benchmark(lambda: AweAnalyzer(fig25_rlc_ladder(), RAMP).response("3", order=2))

    ramp2 = ramp_analyzer.response("3", order=2)
    step2 = step_analyzer.response("3", order=2)
    err_ramp = awe_error(ramp_ref, ramp2)
    err_step = awe_error(step_ref, step2)

    report(
        "Fig. 27 — RLC response to a 5 V input with 1 ns rise time",
        [
            ("2nd-order error (ramp)", "good agreement", fmt_pct(err_ramp)),
            ("2nd-order error (step, Fig. 26)", "22%", fmt_pct(err_step)),
            ("step/ramp error ratio", "step is the worst case", f"{err_step/err_ramp:.1f}x"),
            ("overshoot (ramp ref)", "reduced vs step", fmt_pct(ramp_ref.overshoot())),
            ("overshoot (step ref)", "—", fmt_pct(step_ref.overshoot())),
        ],
    )

    assert err_ramp < 0.5 * err_step
    assert err_ramp < 0.1
    assert ramp_ref.overshoot() < step_ref.overshoot()
    # Second order is enough for a usable delay estimate.
    true_delay = ramp_ref.threshold_delay(2.5)
    assert ramp2.delay(2.5) == pytest.approx(true_delay, rel=0.05)
