"""Extension benchmark — π-model and effective capacitance (driver side).

The successor work to AWE (O'Brien–Savarino π-models; Qian–Pullela–
Pillage effective capacitance) reduces a net's driving-point admittance —
three AWE moments — to the single load number gate libraries consume.
Measured here on a resistive 8-section line:

* the π-model preserves total capacitance exactly (y₁ matching),
* resistive shielding: a fast driver sees a small fraction of the total
  capacitance, a slow driver sees nearly all of it, a slow input edge
  raises C_eff — the canonical C_eff phenomenology,
* the delay-equivalence defect of C_eff is below 0.5 %.
"""

import numpy as np
import pytest

from _bench_utils import report
from repro import MnaSystem
from repro.papercircuits import rc_ladder
from repro.timing import effective_capacitance, pi_model

CIRCUIT = rc_ladder(8, resistance=200.0, capacitance=100e-15)


def run_experiment():
    system = MnaSystem(CIRCUIT)
    pi = pi_model(system, "Vin")
    points = {
        "fast driver (50 Ω)": effective_capacitance(pi, 50.0),
        "medium driver (1 kΩ)": effective_capacitance(pi, 1e3),
        "slow driver (50 kΩ)": effective_capacitance(pi, 50e3),
        "1 kΩ + 2 ns edge": effective_capacitance(pi, 1e3, rise_time=2e-9),
    }
    return pi, points


def test_ext_effective_capacitance(benchmark):
    pi, points = run_experiment()
    benchmark(lambda: pi_model(MnaSystem(CIRCUIT), "Vin"))

    total = pi.total_capacitance
    rows = [
        ("pi model", "C1-R-C2 from y1..y3",
         f"C1={pi.c_near*1e15:.0f}f R={pi.resistance:.0f} C2={pi.c_far*1e15:.0f}f"),
        ("total capacitance", "preserved (y1)", f"{total*1e15:.1f} fF = ΣC"),
    ]
    for label, value in points.items():
        rows.append((f"C_eff, {label}", "shielding-dependent",
                     f"{value*1e15:.0f} fF ({value/total:.0%} of total)"))
    report("Extension — effective capacitance of an 8-section line", rows)

    assert total == pytest.approx(8 * 100e-15, rel=1e-9)
    assert points["fast driver (50 Ω)"] < 0.3 * total
    assert points["slow driver (50 kΩ)"] > 0.9 * total
    assert points["1 kΩ + 2 ns edge"] > points["medium driver (1 kΩ)"]
