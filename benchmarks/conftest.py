"""Benchmark-suite conftest: ensures the helper module is importable and
registers nothing else; see _bench_utils for the shared helpers."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
