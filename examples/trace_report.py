"""Trace + run report: observing one analysis end to end.

Runs the paper's Fig. 22 circuit (the stiff RC tree with a floating
coupling capacitor) through the batch engine with tracing on, then
renders the run report: per-phase wall-time breakdown, pole/residue
tables, the order-escalation trajectory with its error estimates, and
the achieved multi-RHS batching factor.  Writes ``trace_report.md``
next to nothing — straight into the current directory — and prints the
highlights.

Run:  python examples/trace_report.py
"""

import json

from repro import AweJob, BatchEngine, Step
from repro.circuit.units import format_engineering as fmt
from repro.papercircuits import fig16_stiff_rc_tree, fig22_floating_cap
from repro.report import build_report, render_markdown, validate_report
from repro.trace import iter_events


def main():
    # 1. Two related jobs: the paper's Fig. 16 stiff tree and its Fig. 22
    #    variant with the floating coupling capacitor.  Node 7 is the
    #    victim the paper studies; the 5 V step is the Sec. V stimulus.
    jobs = [
        AweJob(fig16_stiff_rc_tree(), ("7",), stimuli={"Vin": Step(0.0, 5.0)},
               error_target=0.01, label="fig16 stiff tree"),
        AweJob(fig22_floating_cap(), ("7", "12"), stimuli={"Vin": Step(0.0, 5.0)},
               error_target=0.01, label="fig22 floating cap"),
    ]

    # 2. Run with tracing on: each result carries a serialised span tree.
    engine = BatchEngine()
    results = engine.run(jobs, trace=True)
    for result in results:
        status = "ok" if result.ok else f"FAILED: {result.error}"
        print(f"{result.label}: {status} in {fmt(result.elapsed_s, 's')}")

    # 3. The raw trace is a plain dict — poke at it directly.
    print("\norder-trajectory events of the fig22 job:")
    for span_name, event in iter_events(results[1].trace):
        if event["name"] in ("order_escalation", "order_accepted"):
            data = event["data"]
            estimate = data.get("error_estimate")
            estimate_text = f"{estimate:.3%}" if estimate is not None else "n/a"
            print(f"  [{span_name}] {event['name']}: subproblem "
                  f"{data['subproblem']}, node {data['node']}, "
                  f"order {data['order']}, estimate {estimate_text}")

    # 4. Build, validate, and render the run report.
    document = validate_report(
        build_report(results, engine_stats=engine.stats(),
                     title="Fig. 16 / Fig. 22 traced run")
    )
    totals = document["totals"]
    print(f"\nreport totals: {totals['jobs']} job(s), "
          f"{fmt(totals['wall_time_s'], 's')} wall time, "
          f"batching factor {totals['batching_factor']:.2f}")
    print("phase breakdown:")
    for phase, seconds in sorted(totals["phase_seconds"].items(),
                                 key=lambda item: -item[1]):
        print(f"  {phase:<18} {fmt(seconds, 's')}")

    # 5. Persist both renderings.
    with open("trace_report.json", "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    markdown = render_markdown(document)
    with open("trace_report.md", "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print("\nwrote trace_report.json and trace_report.md "
          f"({len(markdown.splitlines())} lines of Markdown)")


if __name__ == "__main__":
    main()
