"""Inductive + capacitive crosstalk on a PCB bus pair.

The paper's introduction argues that board-level timing needs "general
RLC interconnect models" — including mutual coupling no RC tree can
express.  This example drives an aggressor trace beside a terminated
victim, where noise arrives through *two* mechanisms with opposite
signatures:

* capacitive coupling injects current proportional to dV/dt (same
  polarity at both victim ends),
* inductive coupling induces a voltage proportional to dI/dt (opposite
  polarities at the near and far ends — the classic backward/forward
  crosstalk split).

AWE handles the coupled system like any other linear circuit; the example
quantifies near-/far-end noise vs the coupling coefficient and checks a
sample point against the transient simulator.

Run:  python examples/inductive_crosstalk.py
"""

import numpy as np

from repro import AweAnalyzer, Ramp, simulate
from repro.circuit.units import format_engineering as fmt
from repro.papercircuits import magnetically_coupled_lines


def noise_profile(k_inductive, c_coupling, rise_time=0.3e-9):
    circuit = magnetically_coupled_lines(
        4, inductive_k=k_inductive, c_coupling=c_coupling
    )
    stimuli = {"Vagg": Ramp(0.0, 3.3, rise_time=rise_time)}
    analyzer = AweAnalyzer(circuit, stimuli, max_order=10)
    peaks = {}
    for label, node in (("near end", "v0"), ("far end", "v4")):
        response = analyzer.response(node, error_target=0.05)
        window = response.waveform.suggested_window()
        waveform = response.waveform.to_waveform(np.linspace(0, window, 6000))
        extreme = max(waveform.values.max(), -waveform.values.min())
        sign = "+" if waveform.values.max() >= -waveform.values.min() else "-"
        peaks[label] = (extreme, sign, response.order)
    return circuit, stimuli, peaks


def main():
    print("victim noise peaks vs coupling mechanism (3.3 V aggressor, 300 ps edge)")
    print(f"  {'configuration':<34} {'near end':>12} {'far end':>12}")
    cases = [
        ("capacitive only (k=0)", 1e-9, 100e-15),
        ("inductive only (Cc~0)", 0.35, 1e-18),
        ("both mechanisms", 0.35, 100e-15),
        ("strong inductive (k=0.6)", 0.6, 100e-15),
    ]
    for label, k, cc in cases:
        _, _, peaks = noise_profile(k, cc)
        near = f"{peaks['near end'][1]}{peaks['near end'][0]*1e3:.0f} mV"
        far = f"{peaks['far end'][1]}{peaks['far end'][0]*1e3:.0f} mV"
        print(f"  {label:<34} {near:>12} {far:>12}")

    # Cross-check one configuration against the transient simulator.
    circuit, stimuli, peaks = noise_profile(0.35, 100e-15)
    reference = simulate(circuit, stimuli, 1e-8, refine_tolerance=5e-4).voltage("v4")
    analyzer = AweAnalyzer(circuit, stimuli, max_order=10)
    response = analyzer.response("v4", error_target=0.05)
    candidate = response.waveform.to_waveform(reference.times)
    err = np.abs(candidate.values - reference.values).max()
    peak = np.abs(reference.values).max()
    print(f"\nfar-end check vs transient: max |Δ| = {err*1e3:.1f} mV "
          f"on a {peak*1e3:.0f} mV signal (AWE order {response.order}, "
          f"{err/peak:.0%} worst-case)")
    print("(deep-sub-signal crosstalk detail is the hard case for")
    print(" single-expansion-point moment matching: s=0 moments barely see")
    print(" well-damped ringing - the blind spot AWE's multipoint successors")
    print(" addressed. Peak levels and polarities above are solid.)")
    print("\nnote the polarity flip between capacitive-only and")
    print("inductive-dominated far-end noise - the RLC physics an RC model")
    print("cannot represent, and the reason the paper generalises beyond RC trees.")


if __name__ == "__main__":
    main()
