"""A small timing analyzer: gate stages + AWE nets + slope propagation.

The application the paper aims at (Sec. II, Fig. 1): divide a path into
stages — gate output driving an interconnect net — model gates as
switched resistances, evaluate each net with AWE, and propagate the
threshold-crossing time and output slew to the next stage.

The path here: a clock buffer driving a long spine, a branchy local tree,
then a final buffer into two latch inputs.  The AWE-based path delay is
cross-checked against a flat transient simulation of each stage.

Run:  python examples/timing_analyzer.py
"""

import numpy as np

from repro import Ramp, Step, simulate
from repro.circuit.units import format_engineering as fmt
from repro.timing import PathTimingAnalyzer, Receiver, Stage


def spine_net(ckt):
    """A long, resistive clock spine: 4 wire segments."""
    previous = "drv"
    for i in range(1, 5):
        node = f"w{i}" if i < 4 else "spine_end"
        ckt.add_resistor(f"Rs{i}", previous, node, 180.0)
        ckt.add_capacitor(f"Cs{i}", node, "0", 120e-15)
        previous = node


def local_tree_net(ckt):
    """A branching local distribution net."""
    ckt.add_resistor("Rt1", "drv", "m", 150.0)
    ckt.add_capacitor("Ct1", "m", "0", 60e-15)
    ckt.add_resistor("Rt2", "m", "leafA", 220.0)
    ckt.add_resistor("Rt3", "m", "leafB", 90.0)
    ckt.add_capacitor("Ct2", "leafA", "0", 40e-15)
    ckt.add_capacitor("Ct3", "leafB", "0", 25e-15)


def latch_net(ckt):
    """Final hop with a coupling capacitor to a neighbouring net."""
    ckt.add_resistor("Rf1", "drv", "latch1", 120.0)
    ckt.add_resistor("Rf2", "drv", "latch2", 200.0)
    ckt.add_capacitor("Cc", "latch1", "latch2", 15e-15)  # coupling


def build_path():
    s1 = Stage("clk_buf", driver_resistance=400.0, net=spine_net,
               sinks=[Receiver("spine_end", 50e-15)])
    s2 = Stage("local_buf", driver_resistance=700.0, net=local_tree_net,
               sinks=[Receiver("leafA", 35e-15), Receiver("leafB", 20e-15)])
    s3 = Stage("final_buf", driver_resistance=900.0, net=latch_net,
               sinks=[Receiver("latch1", 30e-15), Receiver("latch2", 30e-15)])
    return PathTimingAnalyzer([(s1, "spine_end"), (s2, "leafA"), (s3, "latch1")])


def transient_stage_check(stage, event_time, slew, sink):
    """Golden check: simulate the stage circuit and measure directly."""
    circuit = stage.build_circuit()
    stimulus = stage.stimulus(event_time, slew)
    horizon = max(4e-9, event_time * 3 + 4e-9)
    waveform = simulate(circuit, {"Vdrv": stimulus}, horizon).voltage(sink)
    return waveform.threshold_delay(2.5)


def main():
    analyzer = build_path()
    timings = analyzer.analyze(start_time=0.0, start_slew=80e-12)

    print("stage-by-stage timing (AWE engine):")
    print(f"  {'stage':<10} {'in event':>10} {'in slew':>9} "
          f"{'out event':>10} {'out slew':>9} {'order':>5}")
    for timing in timings:
        sink = analyzer.path[[t.stage_name for t in timings].index(timing.stage_name)][1]
        order = timing.result.responses[sink].order
        print(f"  {timing.stage_name:<10} {fmt(timing.input_event_time,'s'):>10} "
              f"{fmt(timing.input_slew,'s'):>9} {fmt(timing.output_event_time,'s'):>10} "
              f"{fmt(timing.output_slew,'s'):>9} {order:>5}")

    print(f"\npath delay (AWE): {fmt(analyzer.path_delay(start_slew=80e-12), 's')}")

    # Golden cross-check: re-simulate each stage with its resolved inputs.
    print("\nper-stage cross-check against the transient simulator:")
    for (stage, sink), timing in zip(analyzer.path, timings):
        golden = transient_stage_check(stage, timing.input_event_time,
                                       timing.input_slew, sink)
        awe = timing.result.delay(sink)
        print(f"  {stage.name:<10} AWE {fmt(awe,'s')}  transient {fmt(golden,'s')}  "
              f"({abs(awe-golden)/golden:.2%} apart)")

    # Fanout report of the middle stage.
    mid = timings[1].result
    print("\nfanout timing of 'local_buf' (all receivers):")
    for node, dr in mid.reports.items():
        print(f"  {node:<7} threshold {fmt(dr.threshold_delay,'s')}, "
              f"slew {fmt(dr.slew_10_90,'s')}, monotone={dr.monotone}")


if __name__ == "__main__":
    main()
