"""Whole-design static timing: build, analyze, report, serve.

Builds a small three-stage datapath by hand (ports, cells from the
built-in library, RC-wired nets), runs `run_sta` at a nominal and a
slow corner with AWE interconnect delays, walks the top-K critical
paths, and renders the `repro.sta-report/1` JSON + Markdown report.
Finishes by serving the same design through `POST /sta` on an ephemeral
daemon and showing the warm cache hit answering bit-identically.

Run:  python examples/sta_report.py
"""

from repro import AnalysisClient, ServiceServer
from repro.report import (build_sta_report, render_sta_markdown,
                          validate_sta_report)
from repro.sta import (NOMINAL, Corner, Design, Instance, Net, PortIn,
                       PortOut, WireSegment, default_library, run_sta)


def datapath():
    """a -> INV_X1 -> NAND2_X1 -> BUF_X2 -> out, with a side input b.

    Net n1 is a two-section RC wire (the kind of resistive interconnect
    the paper's AWE machinery exists for); n2 and n3 are single
    L-sections; the input nets are ideal.
    """
    return Design(
        name="datapath-3",
        inputs=(
            PortIn("a", net="na", arrival=0.0, slew=1.5e-11,
                   drive_resistance=300.0),
            PortIn("b", net="nb", arrival=2.0e-11, slew=2.5e-11,
                   drive_resistance=600.0),
        ),
        outputs=(PortOut("out", net="n3", required=6e-10, load=6e-15),),
        instances=(
            Instance("g1", "INV_X1", {"A": "na", "Y": "n1"}),
            Instance("g2", "NAND2_X1", {"A": "n1", "B": "nb", "Y": "n2"}),
            Instance("g3", "BUF_X2", {"A": "n2", "Y": "n3"}),
        ),
        nets=(
            Net("na", ()),
            Net("nb", ()),
            Net("n1", (WireSegment("root", "w1", 220.0, 12e-15),
                       WireSegment("w1", "g2.A", 220.0, 12e-15))),
            Net("n2", (WireSegment("root", "g3.A", 150.0, 9e-15),)),
            Net("n3", (WireSegment("root", "out", 120.0, 8e-15),)),
        ),
    )


def main():
    design = datapath()
    library = default_library()
    design.validate(library)
    print(f"design {design.name!r}: {len(design.instances)} cells, "
          f"{len(design.nets)} nets, library {library.name!r}")

    # 1. Two corners, AWE net delays, top-3 paths per corner.
    corners = (NOMINAL,
               Corner(name="slow", wire_r=1.4, wire_c=1.4, cell=1.25))
    run = run_sta(design, library=library, k=3, corners=corners)
    print(f"\nworst slack across corners: {run.worst_slack:.4g} s")

    for analysis in run.corners:
        print(f"\ncorner {analysis.corner.name!r}  "
              f"(worst slack {analysis.worst_slack:.4g} s)")
        for rank, path in enumerate(analysis.paths, start=1):
            chain = " -> ".join(path.nodes)
            print(f"  #{rank}  slack {path.slack:+.4g} s  "
                  f"arrival {path.arrival:.4g} s  {chain}")

    nominal = run.corner("nominal")
    slow = run.corner("slow")
    assert slow.worst_slack < nominal.worst_slack
    assert run.worst_slack == slow.worst_slack

    # 2. Elmore interconnect as the first-moment cross-check the paper
    #    generalises: same graph, same critical path, different net
    #    delays — close on these mildly resistive wires, increasingly
    #    wrong as wires get stiffer (see docs/sta.md).
    elmore = run_sta(design, library=library, k=1, interconnect="elmore")
    print(f"\nelmore cross-check: worst slack {elmore.worst_slack:.4g} s "
          f"(AWE nominal {nominal.worst_slack:.4g} s)")
    assert (elmore.corner("nominal").paths[0].nodes
            == nominal.paths[0].nodes)

    # 3. The versioned report document and its Markdown rendering.
    document = validate_sta_report(build_sta_report(run))
    markdown = render_sta_markdown(document)
    print(f"\nreport schema {document['schema']!r}: "
          f"{len(document['corners'])} corners, "
          f"{sum(len(c['paths']) for c in document['corners'])} paths, "
          f"{len(markdown.splitlines())} Markdown lines")

    # 4. The same analysis over the wire: POST /sta, then the cache hit.
    with ServiceServer(port=0, workers=1) as server:
        client = AnalysisClient(server.url, timeout=120)
        cold = client.sta(design, k=3, corners=corners,
                          interconnect="awe")
        warm = client.sta(design, k=3, corners=corners,
                          interconnect="awe")
        assert not cold.cached and warm.cached
        assert warm.body == cold.body
        assert cold.worst_slack_s == run.worst_slack
        print(f"\ndaemon: cold {cold.server_elapsed_s * 1e3:.1f} ms, "
              f"warm hit {warm.server_elapsed_s * 1e3:.2f} ms, "
              f"bodies byte-identical (key {cold.key[:16]}…)")

    print("\ndone.")


if __name__ == "__main__":
    main()
