"""Netlist workflow: from a SPICE deck to a full timing report.

Extracted interconnect usually arrives as a SPICE deck.  This example
parses one (with stimuli on the sources), validates it, reports the exact
pole structure, runs AWE on every interesting node with automatic order
selection, and prints a closing comparison against the transient
reference.

Run:  python examples/netlist_tour.py
"""

import numpy as np

from repro import AweAnalyzer, MnaSystem, circuit_poles, parse_netlist, simulate
from repro.circuit.topology import is_rc_tree, tree_link_partition
from repro.circuit.units import format_engineering as fmt
from repro.waveform import l2_error

DECK = """\
bus segment with coupling and a grounded termination
* --- aggressor line ---
Vagg ain 0 PWL(0 0 0.3n 5)
Ra1 ain a1 150
Ca1 a1 0 90f
Ra2 a1 a2 150
Ca2 a2 0 90f
Ra3 a2 a3 180
Ca3 a3 0 140f
* --- victim line, held low by its driver ---
Vvic vin 0 DC 0
Rv1 vin v1 200
Cv1 v1 0 80f
Rv2 v1 v2 200
Cv2 v2 0 80f
* --- coupling and a leaky termination ---
Ccp1 a2 v1 40f
Ccp2 a3 v2 60f
Rterm a3 0 25k
.end
"""


def main():
    deck = parse_netlist(DECK)
    circuit, stimuli = deck.circuit, deck.stimuli
    print(f"parsed: {deck.title!r}")
    print(f"  {len(circuit)} elements, {circuit.node_count} nodes, "
          f"{circuit.state_count} state variables")
    print(f"  RC tree? {is_rc_tree(circuit)}  "
          f"(coupling caps + grounded resistor: AWE territory)")

    partition = tree_link_partition(circuit)
    print(f"  tree/link partition: {len(partition.tree)} tree branches, "
          f"{len(partition.links)} links, explicit DC: {partition.explicit_dc}")

    decomposition = circuit_poles(MnaSystem(circuit))
    print(f"\nexact poles ({decomposition.order}):")
    for pole in decomposition.sorted_by_dominance():
        print(f"  {pole.real:+.4e}" + (f" {pole.imag:+.4e}j" if pole.imag else ""))

    analyzer = AweAnalyzer(circuit, stimuli)
    print("\nAWE timing report (auto order, 1% target):")
    print(f"  {'node':<5} {'order':>5} {'estimate':>9} {'final':>8} "
          f"{'50% delay / peak':>18}")
    reference = simulate(circuit, stimuli, 8e-9)
    for node in ("a3", "v1", "v2"):
        response = analyzer.response(node, error_target=0.01)
        window = response.waveform.suggested_window()
        waveform = response.waveform.to_waveform(np.linspace(0, window, 3000))
        final = response.waveform.final_value()
        if abs(final) > 0.5:  # a switching node: report delay
            metric = fmt(waveform.delay_50(v_start=0.0, v_end=final), "s")
        else:  # a victim node: report the noise peak
            metric = f"peak {waveform.values.max()*1e3:.1f} mV"
        err = l2_error(reference.voltage(node),
                       response.waveform.to_waveform(reference.voltage(node).times))
        print(f"  {node:<5} {response.order:>5} {response.error_estimate:>9.3%} "
              f"{final:>7.3f}V {metric:>18}   (true err {err:.3%})")

    print("\nnote the victim nodes: coupling noise rises and decays back -")
    print("nonmonotone waveforms that need at least two poles, and get them.")


if __name__ == "__main__":
    main()
