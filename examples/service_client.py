"""The analysis daemon end to end: serve, analyze, cache, drain.

Starts a real `ServiceServer` on an ephemeral port (the in-process
equivalent of `python -m repro serve --port 0`), submits the paper's
Fig. 16 stiff tree cold, then re-submits a cosmetically different but
equivalent deck and shows the content-addressed cache answering
bit-identically, orders of magnitude faster.  Finishes with the
/metrics counters and a graceful drain.

Run:  python examples/service_client.py
"""

from repro import AnalysisClient, ServiceServer, Step
from repro.circuit.writer import write_netlist
from repro.papercircuits import FIG16_OUTPUT, fig16_stiff_rc_tree


def main():
    deck = write_netlist(fig16_stiff_rc_tree(), {"Vin": Step(0.0, 5.0)})

    # 1. A daemon on a free port.  `with` = start + graceful drain/close.
    with ServiceServer(port=0, workers=2) as server:
        print(f"daemon listening on {server.url}")
        client = AnalysisClient(server.url)
        print(f"healthz: {client.healthz()['status']}")

        # 2. Cold request: a worker runs the full AWE analysis.
        cold = client.analyze(deck, FIG16_OUTPUT, threshold=2.5)
        assert cold.ok and not cold.cached
        response = cold.document["jobs"][0]["responses"][0]
        print(f"\ncold: computed in {cold.server_elapsed_s * 1e3:.2f} ms "
              f"server-side (order {response['order']}, "
              f"50% delay {response['delay_50_s']:.3g} s)")
        print(f"  content address: {cold.key[:16]}…")

        # 3. The same analysis, spelled differently: extra comments,
        #    shuffled whitespace, `1000` for `1k`.  Canonicalisation maps
        #    it to the same key, and the hit is *bit-identical*.
        noisy = ("* regenerated deck, run 2\n"
                 + deck.replace(" 1k", "   1000 ; respelled"))
        warm = client.analyze(noisy, FIG16_OUTPUT, threshold=2.5)
        assert warm.cached and warm.key == cold.key
        assert warm.body == cold.body
        speedup = cold.server_elapsed_s / max(warm.server_elapsed_s, 1e-9)
        print(f"warm: cache hit in {warm.server_elapsed_s * 1e3:.2f} ms "
              f"({speedup:.0f}x faster, byte-for-byte the cold body)")

        # 4. The daemon's own view of all this.
        metrics = client.metrics()
        print("\nmetrics:")
        for name in ("requests_total", "requests_ok", "cache_hits",
                     "cache_misses", "cache_entries", "queue_depth"):
            print(f"  {name:<15} {metrics[name]}")
        print(f"  solver: {metrics['solver']['lu_factorizations']} LU "
              f"factorization(s), "
              f"{metrics['solver']['triangular_solves']} triangular solve(s)")

    # 5. Leaving the `with` block drained and stopped the daemon; the
    #    same lifecycle a SIGTERM triggers for `python -m repro serve`.
    print("\ndaemon drained and stopped cleanly")


if __name__ == "__main__":
    main()
