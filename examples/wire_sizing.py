"""Sensitivity-guided wire sizing: using AWE's moments as a design tool.

The Elmore delay is the first AWE moment; its adjoint gradient tells a
designer which element to change.  This example takes an irregular clock
net, computes the delay gradient at the critical sink, and greedily
widens the most delay-critical wire segments (widening segment i scales
R_i down and its ground capacitance up — the classic sizing trade-off),
re-verifying the final design with second-order AWE and with the
transient simulator.

Run:  python examples/wire_sizing.py
"""

import dataclasses

import numpy as np

from repro import AweAnalyzer, Step, simulate
from repro.circuit.units import format_engineering as fmt
from repro.core.sensitivity import delay_sensitivities
from repro.papercircuits import random_rc_tree

#: Widening a segment by factor w divides its R by w and multiplies its
#: own capacitance by w (area): the knob the gradient has to weigh.
WIDEN_STEP = 1.25
ROUNDS = 6


def widen(circuit, resistor_name, cap_name, factor):
    updated = circuit.copy()
    resistor = updated[resistor_name]
    updated.replace(dataclasses.replace(resistor, resistance=resistor.resistance / factor))
    cap = updated[cap_name]
    updated.replace(dataclasses.replace(cap, capacitance=cap.capacitance * factor))
    return updated


def predicted_gain(sens, circuit, resistor_name, cap_name, factor):
    """First-order delay change of widening one segment."""
    resistor = circuit[resistor_name]
    cap = circuit[cap_name]
    d_r = sens.d_resistance[resistor_name] * resistor.resistance * (1 / factor - 1)
    d_c = sens.d_capacitance[cap_name] * cap.capacitance * (factor - 1)
    return d_r + d_c


def awe_delay(circuit, node):
    analyzer = AweAnalyzer(circuit, {"Vin": Step(0.0, 5.0)})
    return analyzer.response(node, order=2).delay_50()


def main():
    circuit = random_rc_tree(14, seed=77, r_range=(100.0, 900.0),
                             c_range=(20e-15, 250e-15))
    sink = circuit.nodes[-1]
    print(f"net: {circuit.title}, critical sink: node {sink}")

    base_delay = awe_delay(circuit, sink)
    print(f"initial 50% delay (AWE order 2): {fmt(base_delay, 's')}")

    for round_index in range(1, ROUNDS + 1):
        sens = delay_sensitivities(circuit, sink, {"Vin": 5.0})
        # Candidate moves: widen any segment i (resistor Ri + its cap Ci).
        best = None
        for i in range(1, 15):
            r_name, c_name = f"R{i}", f"C{i}"
            gain = predicted_gain(sens, circuit, r_name, c_name, WIDEN_STEP)
            if best is None or gain < best[0]:
                best = (gain, r_name, c_name)
        gain, r_name, c_name = best
        if gain >= 0:
            print("no widening move helps any more; stopping")
            break
        circuit = widen(circuit, r_name, c_name, WIDEN_STEP)
        new_delay = awe_delay(circuit, sink)
        print(f"  round {round_index}: widen {r_name} "
              f"(predicted {fmt(gain, 's')}, actual "
              f"{fmt(new_delay - base_delay, 's')} total) "
              f"-> delay {fmt(new_delay, 's')}")
        base_delay = new_delay

    # Final verification against the transient simulator.
    final = awe_delay(circuit, sink)
    window = 12 * final
    reference = simulate(circuit, {"Vin": Step(0.0, 5.0)}, window).voltage(sink)
    true_delay = reference.threshold_delay(2.5)
    print(f"\nfinal design: AWE {fmt(final, 's')} vs transient "
          f"{fmt(true_delay, 's')} ({abs(final-true_delay)/true_delay:.2%} apart)")
    sens = delay_sensitivities(circuit, sink, {"Vin": 5.0})
    print("remaining top delay contributors (x·dT/dx):")
    for name, value in sens.top_contributors(4):
        print(f"  {name:<5} {fmt(value, 's')}")


if __name__ == "__main__":
    main()
