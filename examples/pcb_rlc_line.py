"""PCB-level RLC interconnect — the paper's motivating frontier.

"Particularly at the printed circuit board level, input voltage rise time
can dominate the timing of a net" (Sec. I).  This example models a board
trace as a lossy LC ladder, shows why RC-tree methods cannot touch it
(complex poles, overshoot), and sweeps the driver rise time to find where
the net stops ringing.

Run:  python examples/pcb_rlc_line.py
"""

import numpy as np

from repro import AweAnalyzer, MnaSystem, Ramp, Step, circuit_poles, simulate
from repro.circuit.topology import is_rc_tree
from repro.circuit.units import format_engineering as fmt
from repro.papercircuits import rlc_transmission_ladder
from repro.waveform import l2_error


def build_trace():
    # 8 cm microstrip-ish trace, lumped into 6 sections:
    # ~0.5 Ω, 2 nH, 1 pF per section; 25 Ω driver.
    return rlc_transmission_ladder(
        6, r_per_section=0.5, l_per_section=2e-9, c_per_section=1e-12,
        r_source=25.0, name="PCB trace (6-section lossy LC ladder)",
    )


def main():
    circuit = build_trace()
    output = "6"
    print(f"circuit: {circuit.title}")
    print(f"RC tree? {is_rc_tree(circuit)} - Elmore methods do not apply here")

    poles = circuit_poles(MnaSystem(circuit)).sorted_by_dominance()
    pairs = [p for p in poles if p.imag > 0]
    print(f"\n{len(poles)} poles, {len(pairs)} complex pairs; dominant pair "
          f"{pairs[0].real:.3g} ± {pairs[0].imag:.3g}j rad/s")

    # --- step response: order escalation on a ringing net ----------------
    stimuli = {"Vin": Step(0.0, 3.3)}
    analyzer = AweAnalyzer(circuit, stimuli, max_order=10)
    reference = simulate(circuit, stimuli, 2.5e-8).voltage(output)
    print(f"\nstep response at the far end: overshoot "
          f"{reference.overshoot():.1%} (ringing)")
    print("order escalation:")
    for order in (1, 2, 4, 8):
        response = analyzer.response(output, order=order)
        err = l2_error(reference, response.waveform.to_waveform(reference.times))
        flag = "stable" if response.waveform.is_stable else "UNSTABLE"
        print(f"  q={order}: true error {err:7.2%}  ({flag})")
    auto = analyzer.response(output, error_target=0.02)
    print(f"automatic order for 2% target: q = {auto.order}")
    print("(Padé convergence on 6 underdamped pairs is not monotone in q;")
    print(" the Sec. 3.4 estimator is what catches the bad intermediate fits)")

    # --- rise-time sweep: when does the net stop ringing? ----------------
    print("\ndriver rise-time sweep (AWE order 6):")
    print(f"  {'rise time':>10}  {'overshoot':>9}  {'50% delay':>10}")
    for rise in (None, 0.2e-9, 0.5e-9, 1e-9, 2e-9, 4e-9):
        stim = {"Vin": Step(0.0, 3.3) if rise is None else Ramp(0.0, 3.3, rise_time=rise)}
        sweep = AweAnalyzer(circuit, stim, max_order=10).response(output, order=6)
        window = sweep.waveform.suggested_window()
        waveform = sweep.waveform.to_waveform(np.linspace(0, window, 4000))
        label = "step" if rise is None else fmt(rise, "s")
        print(f"  {label:>10}  {waveform.overshoot():>8.1%}  "
              f"{fmt(waveform.delay_50(v_start=0.0, v_end=3.3), 's'):>10}")
    print("\nslower edges trade delay for signal integrity - the paper's")
    print("point about rise time dominating board-level timing.")


if __name__ == "__main__":
    main()
