"""Batch timing: a 50-job sweep through the batch engine.

A static-timing pass asks the same question of many nets at once:
"when does each sink of this interconnect settle?"  This example builds
ten seeded random RC trees, queries five sinks on each (50 jobs), and
runs them three ways:

* the naive loop — a fresh `AweAnalyzer` per job,
* `BatchEngine` inline — one analyzer per *net*, so the MNA assembly,
  the LU factorisation and the multi-RHS moment recursion are shared by
  every sink of that net,
* `BatchEngine` with a process pool (`workers=4`).

The three produce bit-identical waveforms; the engine only amortises.
The instrumentation counters show where the saving comes from, and a
deliberately broken job demonstrates structured failure isolation.

Run:  python examples/batch_timing.py
"""

import time

import numpy as np

from repro import AweAnalyzer, AweJob, BatchEngine, Step
from repro.circuit.units import format_engineering as fmt
from repro.papercircuits import random_rc_tree

STIMULI = {"Vin": Step(0.0, 5.0)}
TREE_NODES = 120


def build_jobs():
    jobs = []
    for seed in range(10):
        net = random_rc_tree(TREE_NODES, seed=seed)
        for k in range(5):
            sink = str(TREE_NODES - 11 * k)
            jobs.append(
                AweJob(
                    net,
                    (sink,),
                    stimuli=STIMULI,
                    order=3,
                    label=f"net{seed}/{sink}",
                )
            )
    return jobs


def naive_loop(jobs):
    out = []
    for job in jobs:
        analyzer = AweAnalyzer(job.circuit, job.stimuli, max_order=job.max_order)
        out.append(
            {node: analyzer.response(node, order=job.order) for node in job.nodes}
        )
    return out


def main():
    jobs = build_jobs()
    print(f"{len(jobs)} timing jobs over 10 distinct {TREE_NODES}-node RC trees\n")

    # 1. The naive way: one analyzer per job.
    start = time.perf_counter()
    reference = naive_loop(jobs)
    t_naive = time.perf_counter() - start
    print(f"naive loop (fresh analyzer per job):  {t_naive * 1e3:7.1f} ms")

    # 2. The engine, inline: one analyzer per distinct circuit.
    engine = BatchEngine()
    start = time.perf_counter()
    results = engine.run(jobs, workers=1)
    t_inline = time.perf_counter() - start
    print(f"BatchEngine inline (analyzer reuse):  {t_inline * 1e3:7.1f} ms"
          f"   ({t_naive / t_inline:.1f}x)")

    # 3. The engine over a process pool.
    start = time.perf_counter()
    pooled = engine.run(jobs, workers=4)
    t_pool = time.perf_counter() - start
    print(f"BatchEngine workers=4 (process pool): {t_pool * 1e3:7.1f} ms"
          f"   ({t_naive / t_pool:.1f}x)")

    # All three agree to the last bit.
    times = np.linspace(0.0, 50e-9, 200)
    for expected, inline, pool in zip(reference, results, pooled):
        for node in expected:
            a = expected[node].waveform.evaluate(times)
            assert np.array_equal(a, inline.responses[node].waveform.evaluate(times))
            assert np.array_equal(a, pool.responses[node].waveform.evaluate(times))
    print("\nall three runs bit-identical ✓")

    # Where the saving came from, in counters.
    stats = engine.stats()
    print("\ninstrumentation (both engine runs together):")
    for key in ("jobs", "distinct_circuits", "analyzers_built",
                "lu_factorizations", "moment_solves", "moments_computed",
                "triangular_solves", "solve_columns"):
        print(f"  {key:<20} {stats[key]}")
    print("  -> one LU per net, not per job; each multi-RHS triangular")
    print("     solve advances every active moment chain at once.")

    # The slowest sinks, as a timing report would list them.
    print("\nslowest five sinks (50% delay):")
    delays = sorted(
        ((result.label, response.delay_50())
         for result in results
         for response in result.responses.values()
         # a fixed low order can leave the odd random tree unstable;
         # a timing pass would escalate those (error_target=), here we skip
         if response.waveform.is_stable),
        key=lambda item: -item[1],
    )
    for label, delay in delays[:5]:
        print(f"  {label:<12} {fmt(delay, 's')}")

    # A bad job never kills the batch: it becomes a failure record.
    broken = AweJob(jobs[0].circuit, ("no_such_node",), stimuli=STIMULI,
                    label="broken")
    mixed = engine.run([broken, jobs[1]])
    print("\nfailure isolation:")
    for result in mixed:
        status = "ok" if result.ok else f"FAILED [{result.error_type}] {result.error}"
        print(f"  {result.label:<12} {status}")


if __name__ == "__main__":
    main()
