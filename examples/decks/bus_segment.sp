bus segment with coupling and a grounded termination
* aggressor line
Vagg ain 0 PWL(0 0 0.3n 5)
Ra1 ain a1 150
Ca1 a1 0 90f
Ra2 a1 a2 150
Ca2 a2 0 90f
Ra3 a2 a3 180
Ca3 a3 0 140f
* victim line held low by its driver
Vvic vin 0 DC 0
Rv1 vin v1 200
Cv1 v1 0 80f
Rv2 v1 v2 200
Cv2 v2 0 80f
* coupling and a leaky termination
Ccp1 a2 v1 40f
Ccp2 a3 v2 60f
Rterm a3 0 25k
.end
