six-section lossy LC board trace behind a 25 ohm driver
Vin in 0 PWL(0 0 0.2n 3.3)
Rs in n0 25
R1 n0 m1 0.5
L1 m1 t1 2n
C1 t1 0 1p
R2 t1 m2 0.5
L2 m2 t2 2n
C2 t2 0 1p
R3 t2 m3 0.5
L3 m3 t3 2n
C3 t3 0 1p
R4 t3 m4 0.5
L4 m4 t4 2n
C4 t4 0 1p
R5 t4 m5 0.5
L5 m5 t5 2n
C5 t5 0 1p
R6 t5 m6 0.5
L6 m6 t6 2n
C6 t6 0 1p
.end
