"""Clock-tree skew under process variation — the full timing toolbox.

Builds an intentionally imbalanced clock H-tree, then answers the three
questions a clock designer asks, all from the same moment machinery:

1. What is the nominal skew across the 16 leaves?  (one AWE analysis,
   every leaf's threshold delay)
2. Which wire segments matter?  (adjoint delay gradient at the slow and
   fast leaves)
3. What does process variation do to the skew?  (gradient-guided corner
   spread + Monte Carlo distribution per leaf)

Run:  python examples/clock_skew.py
"""

import numpy as np

from repro import Step, simulate
from repro.circuit.units import format_engineering as fmt
from repro.core.sensitivity import delay_sensitivities
from repro.papercircuits import clock_h_tree
from repro.timing import (
    delay_corners,
    delay_distribution,
    skew_report,
    tree_leaves,
    uniform_tolerances,
)

STIMULI = {"Vclk": Step(0.0, 1.0)}


def main():
    circuit = clock_h_tree(4, imbalance_seed=13, imbalance=0.25)
    leaves = tree_leaves(circuit)
    print(f"net: {circuit.title}  ({len(circuit)} elements)")

    # 1. nominal skew ---------------------------------------------------
    report = skew_report(circuit, STIMULI, leaves, threshold=0.5)
    early_node, early = report.earliest
    late_node, late = report.latest
    print(f"\nnominal skew: {fmt(report.skew, 's')} "
          f"({early_node} {fmt(early, 's')} .. {late_node} {fmt(late, 's')})")

    # sanity: verify the two extreme leaves against the simulator
    horizon = 12 * late
    result = simulate(circuit, STIMULI, horizon)
    for leaf in (early_node, late_node):
        true_delay = result.voltage(leaf).threshold_delay(0.5)
        print(f"  {leaf}: AWE {fmt(report.delays[leaf], 's')} vs "
              f"transient {fmt(true_delay, 's')}")

    # 2. what drives the slow path --------------------------------------
    sens = delay_sensitivities(circuit, late_node, {"Vclk": 1.0})
    print(f"\ntop delay contributors at the slow leaf ({late_node}):")
    for name, value in sens.top_contributors(4):
        print(f"  {name:<12} x*dT/dx = {fmt(value, 's')}")

    # 3. variation ------------------------------------------------------
    # Corner/Monte-Carlo work on the first-moment (Elmore) delay metric —
    # the variational currency of early timing.  It tracks, but is not
    # equal to, the 50% threshold delay above.
    tolerances = uniform_tolerances(circuit, 0.10)
    slow_corners = delay_corners(circuit, late_node, tolerances, {"Vclk": 1.0})
    fast_corners = delay_corners(circuit, early_node, tolerances, {"Vclk": 1.0})
    worst_skew = slow_corners.corner_high - fast_corners.corner_low
    nominal_spread = slow_corners.nominal - fast_corners.nominal
    print(f"\n±10% process corners (first-moment/Elmore metric):")
    print(f"  slow leaf: nominal {fmt(slow_corners.nominal, 's')}, corners "
          f"{fmt(slow_corners.corner_low, 's')} .. {fmt(slow_corners.corner_high, 's')}")
    print(f"  fast leaf: nominal {fmt(fast_corners.nominal, 's')}, corners "
          f"{fmt(fast_corners.corner_low, 's')} .. {fmt(fast_corners.corner_high, 's')}")
    print(f"  worst-case skew bound: {fmt(worst_skew, 's')} "
          f"(vs nominal spread {fmt(nominal_spread, 's')})")

    mc = delay_distribution(circuit, late_node, tolerances, samples=2000,
                            seed=5, source_values={"Vclk": 1.0})
    print(f"\nMonte Carlo (2000 linearised samples) at {late_node}:")
    print(f"  mean {fmt(mc.mean, 's')}, sigma {fmt(mc.std, 's')}, "
          f"p99 {fmt(mc.quantile(0.99), 's')}")
    print("  (corner bound comfortably contains the p99 - corners are the")
    print("   pessimistic contract, the distribution is the realistic one)")


if __name__ == "__main__":
    main()
