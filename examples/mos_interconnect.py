"""MOS interconnect tour — the paper's Section V on one net.

Walks the stiff Fig. 16 RC tree through the paper's three experiments:

1. a 1 ns-rise input (Figs. 17–18): first vs second order,
2. nonequilibrium initial conditions / charge sharing (Figs. 20–21,
   Table I): the nonmonotone response a single exponential cannot follow,
3. the floating coupling capacitor (Figs. 22–24): crosstalk charge
   dumped onto a victim node, and the extra order it costs.

Run:  python examples/mos_interconnect.py
"""

import numpy as np

from repro import AweAnalyzer, DC, MnaSystem, Ramp, Step, circuit_poles, simulate
from repro.circuit.units import format_engineering as fmt
from repro.papercircuits import fig16_stiff_rc_tree, fig22_floating_cap
from repro.waveform import l2_error


def part1_stiff_ramp():
    print("=" * 64)
    print("1. Stiff RC tree, 5 V input with 1 ns rise (paper Figs. 17-18)")
    print("=" * 64)
    circuit = fig16_stiff_rc_tree()
    exact = circuit_poles(MnaSystem(circuit)).poles.real
    print(f"exact poles span {fmt(-1/exact.min(), 's')} .. {fmt(-1/exact.max(), 's')}"
          f"  ({abs(exact.min()/exact.max()):.0f}x spread - a stiff circuit)")

    stimuli = {"Vin": Ramp(0.0, 5.0, rise_time=1e-9)}
    analyzer = AweAnalyzer(circuit, stimuli)
    reference = simulate(circuit, stimuli, 6e-9).voltage("7")
    for order in (1, 2):
        response = analyzer.response("7", order=order)
        err = l2_error(reference, response.waveform.to_waveform(reference.times))
        print(f"  order {order}: estimate {response.error_estimate:.2%}, "
              f"true {err:.2%}, dominant pole {response.poles[0].real:.4g}")
    print("  (second order is plot-indistinguishable, as the paper reports)")


def part2_charge_sharing():
    print()
    print("=" * 64)
    print("2. Charge sharing: V(C6, t=0) = 5 V (paper Figs. 20-21, Table I)")
    print("=" * 64)
    circuit = fig16_stiff_rc_tree(sharing_voltage=5.0)
    stimuli = {"Vin": DC(0.0)}  # input held low: pure redistribution
    reference = simulate(circuit, stimuli, 6e-9).voltage("7")
    print(f"  response at C7 is nonmonotone: peaks at "
          f"{reference.values.max():.3f} V then returns to 0")

    analyzer = AweAnalyzer(circuit, stimuli)
    try:
        analyzer.response("7", order=1)
        print("  order 1: produced a model")
    except Exception as exc:
        print(f"  order 1: {type(exc).__name__} - 'may prove to have no "
              "solution' (paper Sec. 3.3)")
    for order in (2, 3):
        response = analyzer.response("7", order=order)
        err = l2_error(reference, response.waveform.to_waveform(reference.times))
        print(f"  order {order}: true error {err:.2%}")

    auto = analyzer.response("7", error_target=0.01)
    print(f"  automatic escalation picked order {auto.order}")


def part3_floating_cap():
    print()
    print("=" * 64)
    print("3. Floating coupling capacitor (paper Figs. 22-24)")
    print("=" * 64)
    stimuli = {"Vin": Step(0.0, 5.0)}
    base = AweAnalyzer(fig16_stiff_rc_tree(), stimuli)
    coupled_circuit = fig22_floating_cap()
    coupled = AweAnalyzer(coupled_circuit, stimuli)

    d_base = base.response("7", order=3).delay(4.0)
    d_coupled = coupled.response("7", order=3).delay(4.0)
    print(f"  4.0 V threshold delay: {fmt(d_base, 's')} -> {fmt(d_coupled, 's')} "
          "(charge sharing slows the output)")

    for order in (2, 3):
        response = coupled.response("7", order=order)
        estimate = response.error_estimate
        shown = "flagged unusable" if not np.isfinite(estimate) else f"{estimate:.2%}"
        print(f"  order {order} estimate with C11: {shown}")
    print("  (the coupling path costs one extra order, as in the paper)")

    victim = coupled.response("12", order=3)
    reference = simulate(coupled_circuit, stimuli, 1.5e-8).voltage("12")
    candidate = victim.waveform.to_waveform(reference.times)
    print(f"  victim node peak: {reference.values.max():.3f} V; "
          f"charge (area) AWE {candidate.integral():.4g} vs "
          f"reference {reference.integral():.4g} V*s - exact, m0 is matched")


if __name__ == "__main__":
    part1_stiff_ramp()
    part2_charge_sharing()
    part3_floating_cap()
