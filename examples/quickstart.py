"""Quickstart: AWE in five minutes.

Builds the paper's Fig. 4 RC tree, approximates its step response at
increasing orders, and checks everything against the built-in
SPICE-style transient simulator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AweAnalyzer, Step, simulate
from repro.circuit.units import format_engineering as fmt
from repro.papercircuits import fig4_rc_tree
from repro.rctree import elmore_delays
from repro.waveform import l2_error


def main():
    # 1. A circuit: the paper's Fig. 4 RC tree (1 kΩ / 0.1 µF everywhere).
    circuit = fig4_rc_tree()
    print(f"circuit: {circuit.title}")
    print(f"  {len(circuit.resistors)} resistors, {len(circuit.capacitors)} capacitors")

    # 2. The classical baseline: Elmore delays by one O(n) tree walk.
    elmore = elmore_delays(circuit)
    print("\nElmore delays (the classical estimate):")
    for node in ("1", "2", "3", "4"):
        print(f"  node {node}: {fmt(elmore[node], 's')}")

    # 3. AWE: one analyzer, many outputs and orders.  The 5 V step is the
    #    stimulus; moments are computed once and shared.
    analyzer = AweAnalyzer(circuit, {"Vin": Step(0.0, 5.0)})

    print("\nAWE at node 4:")
    for order in (1, 2, 3):
        response = analyzer.response("4", order=order)
        poles = ", ".join(f"{p.real:.4g}" for p in response.poles)
        estimate = response.error_estimate
        print(
            f"  order {order}: poles [{poles}] 1/s, "
            f"error estimate {estimate:.2%}, "
            f"50% delay {fmt(response.delay_50(), 's')}"
        )

    # First-order AWE *is* the Elmore/Penfield-Rubinstein estimate:
    first = analyzer.response("4", order=1)
    assert np.isclose(first.poles[0].real, -1.0 / elmore["4"])
    print(f"\n  (first-order pole = −1/T_D: {first.poles[0].real:.5g} = "
          f"{-1/elmore['4']:.5g})")

    # 4. Automatic order escalation to an accuracy target.
    auto = analyzer.response("4", error_target=0.005)
    print(f"\nauto order for 0.5% target: q = {auto.order} "
          f"(estimate {auto.error_estimate:.3%})")

    # 5. Trust but verify: compare with the transient simulator.
    reference = simulate(circuit, {"Vin": Step(0.0, 5.0)}, 6e-3).voltage("4")
    candidate = auto.waveform.to_waveform(reference.times)
    print(f"true L2 error vs transient reference: "
          f"{l2_error(reference, candidate):.3%}")
    print(f"threshold (4.0 V) delay: AWE {fmt(auto.delay(4.0), 's')} vs "
          f"reference {fmt(reference.threshold_delay(4.0), 's')}")


if __name__ == "__main__":
    main()
