"""HTTP client for the analysis daemon (stdlib ``urllib`` only).

The client speaks the JSON API documented in ``docs/service.md`` and
keeps the raw response bytes around: a cache hit is *bit-identical* to
the cold run's body, and :attr:`AnalyzeOutcome.body` is how callers (the
benchmark suite, the CI smoke test) check that promise without trusting
any re-serialisation.
"""

from __future__ import annotations

import dataclasses
import json
import urllib.error
import urllib.request

from repro.errors import ReproError


class ServiceError(ReproError):
    """A non-2xx response from the analysis service.

    ``status`` is the HTTP code; ``retry_after`` carries the server's
    back-off hint (seconds) for 429 responses, else ``None``.
    """

    def __init__(self, message: str, status: int, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


@dataclasses.dataclass(frozen=True)
class AnalyzeOutcome:
    """One ``/analyze`` round trip.

    ``document`` is the parsed ``repro.run-report/1`` report; ``body``
    the exact bytes received; ``cached`` whether the server answered
    from its result cache; ``key`` the request's content address;
    ``server_elapsed_s`` the server-side handling time (for a hit, the
    cache lookup; for a miss, the full analysis).
    """

    document: dict
    body: bytes
    cached: bool
    key: str
    server_elapsed_s: float

    @property
    def ok(self) -> bool:
        """True when every job in the report succeeded."""
        return self.document["totals"]["jobs_failed"] == 0


class AnalysisClient:
    """Talk to a running ``python -m repro serve`` daemon.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8040"`` (a trailing slash is fine).
    timeout:
        Socket timeout in seconds for every call (default 60).
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- endpoints -----------------------------------------------------

    def analyze(
        self,
        deck: str,
        nodes,
        order: int | None = None,
        error_target: float | None = None,
        max_order: int | None = None,
        threshold: float | None = None,
        timeout: float | None = None,
    ) -> AnalyzeOutcome:
        """Submit one deck for analysis and return the run report.

        ``deck`` is netlist text (use :func:`analyze_file` for a path);
        ``nodes`` one name or a list.  The remaining parameters mirror
        ``python -m repro report``; ``timeout`` is the server-side
        per-request budget in seconds.
        """
        payload: dict = {
            "deck": deck,
            "nodes": [nodes] if isinstance(nodes, str) else list(nodes),
        }
        for name, value in (("order", order), ("error_target", error_target),
                            ("max_order", max_order), ("threshold", threshold),
                            ("timeout", timeout)):
            if value is not None:
                payload[name] = value
        status, body, headers = self._request(
            "POST", "/analyze", json.dumps(payload).encode("utf-8"))
        return AnalyzeOutcome(
            document=json.loads(body),
            body=body,
            cached=headers.get("X-Repro-Cache") == "hit",
            key=headers.get("X-Repro-Key", ""),
            server_elapsed_s=float(headers.get("X-Repro-Elapsed-S", "nan")),
        )

    def analyze_file(self, path, nodes, **options) -> AnalyzeOutcome:
        """:meth:`analyze` on a deck file."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.analyze(handle.read(), nodes, **options)

    def healthz(self) -> dict:
        """The health document (raises :class:`ServiceError` with status
        503 once the server is draining)."""
        _, body, _ = self._request("GET", "/healthz")
        return json.loads(body)

    def metrics(self) -> dict:
        """The metrics document: request/queue/cache counters plus the
        cumulative solver instrumentation."""
        _, body, _ = self._request("GET", "/metrics")
        return json.loads(body)

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes | None = None):
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = raw.decode("utf-8", "replace") or str(exc)
            retry_after = exc.headers.get("Retry-After")
            raise ServiceError(
                f"HTTP {exc.code}: {message}", exc.code,
                retry_after=float(retry_after) if retry_after else None,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}", 0) from None
