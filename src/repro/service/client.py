"""HTTP client for the analysis daemon (stdlib ``urllib`` only).

The client speaks the JSON API documented in ``docs/service.md`` and
keeps the raw response bytes around: a cache hit is *bit-identical* to
the cold run's body, and :attr:`AnalyzeOutcome.body` is how callers (the
benchmark suite, the CI smoke test) check that promise without trusting
any re-serialisation.

Retries
-------
``/analyze`` requests are content-addressed on the server, so resending
one is idempotent — the client therefore retries transient failures
(connection errors, socket timeouts, 429 queue-full, 503
draining/degraded/shed-load) with **capped exponential backoff and full
jitter**, honouring the server's ``Retry-After`` hint when it is larger
than the drawn backoff.  Both the attempt count (``retries``) and the
total time spent waiting (``retry_budget_s``) are capped; when either
runs out the *last* structured :class:`ServiceError` is raised, status
and ``retry_after`` intact.  ``GET /healthz`` and ``GET /metrics`` are
never retried: a 503 from ``/healthz`` is an answer (draining or
degraded), not a failure.
"""

from __future__ import annotations

import dataclasses
import datetime
import http.client
import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request
from email.utils import parsedate_to_datetime

from repro.errors import ReproError

#: Statuses worth resending an idempotent request for.  ``0`` is the
#: client-side bucket: connection refused/reset, socket timeout.
RETRYABLE_STATUSES = frozenset({0, 429, 503})


def parse_retry_after(value: str | None) -> float | None:
    """Lenient ``Retry-After`` parse: seconds, HTTP-date, or ``None``.

    RFC 9110 allows both delta-seconds and an HTTP-date, and proxies have
    been seen emitting garbage; a malformed value must read as "no hint",
    never raise — a crash here would mask the 429/503 it rode in on with
    an unrelated :class:`ValueError` traceback.
    """
    if value is None:
        return None
    value = value.strip()
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        pass
    try:
        when = parsedate_to_datetime(value)
    except (TypeError, ValueError, IndexError, OverflowError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=datetime.timezone.utc)
    now = datetime.datetime.now(datetime.timezone.utc)
    return max(0.0, (when - now).total_seconds())


class ServiceError(ReproError):
    """A non-2xx response from the analysis service.

    ``status`` is the HTTP code (0 for client-side connection problems);
    ``retry_after`` carries the server's back-off hint in seconds when
    one was sent and parseable, else ``None``.
    """

    def __init__(self, message: str, status: int, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


@dataclasses.dataclass(frozen=True)
class AnalyzeOutcome:
    """One ``/analyze`` round trip.

    ``document`` is the parsed ``repro.run-report/1`` report; ``body``
    the exact bytes received; ``cached`` whether the server answered
    from its result cache; ``key`` the request's content address;
    ``server_elapsed_s`` the server-side handling time (for a hit, the
    cache lookup; for a miss, the full analysis).
    """

    document: dict
    body: bytes
    cached: bool
    key: str
    server_elapsed_s: float

    @property
    def ok(self) -> bool:
        """True when every job in the report succeeded."""
        return self.document["totals"]["jobs_failed"] == 0


@dataclasses.dataclass(frozen=True)
class StaOutcome:
    """One ``/sta`` round trip.

    ``document`` is the parsed ``repro.sta-report/1`` report; ``body``
    the exact bytes received (a cache hit is bit-identical to the cold
    response); ``cached``/``key``/``server_elapsed_s`` mirror
    :class:`AnalyzeOutcome`.
    """

    document: dict
    body: bytes
    cached: bool
    key: str
    server_elapsed_s: float

    @property
    def worst_slack_s(self) -> float | None:
        """The report's cross-corner worst slack (None if unconstrained)."""
        return self.document["worst_slack_s"]


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """One ``/sweep`` round trip.

    ``document`` is the parsed ``repro.sweep-report/1`` report; ``body``
    the exact bytes received (a cache hit is bit-identical to the cold
    response); ``cached``/``key``/``server_elapsed_s`` mirror
    :class:`AnalyzeOutcome`.
    """

    document: dict
    body: bytes
    cached: bool
    key: str
    server_elapsed_s: float

    @property
    def incremental_points(self) -> int:
        """Points the server evaluated without an extra factorization."""
        return self.document["incremental_points"]


class AnalysisClient:
    """Talk to a running ``python -m repro serve`` daemon.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8040"`` (a trailing slash is fine).
    timeout:
        Socket timeout in seconds for every call (default 60).
    retries:
        Extra attempts for a failed ``/analyze`` request (default 2; 0
        disables retrying).  Only transient failures are retried
        (connection errors and HTTP 429/503); a 400 or a 504 is final.
    backoff_base / backoff_cap:
        The attempt-``k`` sleep is drawn uniformly from
        ``[0, min(backoff_cap, backoff_base * 2**k)]`` (full jitter),
        then raised to the server's ``Retry-After`` when that is larger.
    retry_budget_s:
        Total wall-clock budget for retry sleeps; a sleep that would
        overrun it raises the last error instead (default 30).
    rng:
        Optional :class:`random.Random` for the jitter draws (tests pin
        it for determinism).
    """

    def __init__(self, base_url: str, timeout: float = 60.0, *,
                 retries: int = 2, backoff_base: float = 0.1,
                 backoff_cap: float = 5.0, retry_budget_s: float = 30.0,
                 rng: random.Random | None = None):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_budget_s = retry_budget_s
        self._rng = rng if rng is not None else random.Random()
        self._stats_lock = threading.Lock()
        self._counters = {
            "client_retries": 0,
            "retry_sleep_s": 0.0,
            "retries_exhausted": 0,
        }

    # -- endpoints -----------------------------------------------------

    def analyze(
        self,
        deck: str,
        nodes,
        order: int | None = None,
        error_target: float | None = None,
        max_order: int | None = None,
        threshold: float | None = None,
        timeout: float | None = None,
        reduce: bool | None = None,
    ) -> AnalyzeOutcome:
        """Submit one deck for analysis and return the run report.

        ``deck`` is netlist text (use :func:`analyze_file` for a path);
        ``nodes`` one name or a list.  The remaining parameters mirror
        ``python -m repro report``; ``timeout`` is the server-side
        per-request budget in seconds; ``reduce`` asks the server to
        collapse series RC chains first (``None`` defers to the server's
        default).  Transient failures are retried (see the class
        docstring); the request is idempotent server-side so a retry can
        never double-compute a cached result.
        """
        payload: dict = {
            "deck": deck,
            "nodes": [nodes] if isinstance(nodes, str) else list(nodes),
        }
        for name, value in (("order", order), ("error_target", error_target),
                            ("max_order", max_order), ("threshold", threshold),
                            ("timeout", timeout), ("reduce", reduce)):
            if value is not None:
                payload[name] = value
        status, body, headers = self._request(
            "POST", "/analyze", json.dumps(payload).encode("utf-8"),
            retry=True)
        return AnalyzeOutcome(
            document=json.loads(body),
            body=body,
            cached=headers.get("X-Repro-Cache") == "hit",
            key=headers.get("X-Repro-Key", ""),
            server_elapsed_s=float(headers.get("X-Repro-Elapsed-S", "nan")),
        )

    def analyze_file(self, path, nodes, **options) -> AnalyzeOutcome:
        """:meth:`analyze` on a deck file."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.analyze(handle.read(), nodes, **options)

    def sta(
        self,
        design,
        k: int | None = None,
        corners=None,
        interconnect: str | None = None,
        library=None,
        timeout: float | None = None,
    ) -> StaOutcome:
        """Submit one design for static timing analysis.

        ``design`` is a :class:`repro.sta.Design` (serialised via its
        canonical dict form) or an already-built design dict; ``corners``
        a list of :class:`repro.sta.Corner` or corner dicts; ``library``
        a :class:`repro.sta.CellLibrary` or library dict (``None`` uses
        the server's built-in default).  Transient failures are retried
        exactly like :meth:`analyze` — ``/sta`` is idempotent
        server-side.
        """
        payload: dict = {
            "design": (design.to_canonical_dict()
                       if hasattr(design, "to_canonical_dict") else design),
        }
        if k is not None:
            payload["k"] = k
        if corners is not None:
            payload["corners"] = [
                corner.to_dict() if hasattr(corner, "to_dict") else corner
                for corner in corners
            ]
        if interconnect is not None:
            payload["interconnect"] = interconnect
        if library is not None:
            payload["library"] = (library.to_dict()
                                  if hasattr(library, "to_dict") else library)
        if timeout is not None:
            payload["timeout"] = timeout
        status, body, headers = self._request(
            "POST", "/sta", json.dumps(payload).encode("utf-8"), retry=True)
        return StaOutcome(
            document=json.loads(body),
            body=body,
            cached=headers.get("X-Repro-Cache") == "hit",
            key=headers.get("X-Repro-Key", ""),
            server_elapsed_s=float(headers.get("X-Repro-Elapsed-S", "nan")),
        )

    def sweep(
        self,
        deck: str,
        node: str,
        points,
        mode: str | None = None,
        first_order_threshold: float | None = None,
        error_bound: float | None = None,
        timeout: float | None = None,
    ) -> SweepOutcome:
        """Submit one incremental what-if sweep.

        ``deck`` is netlist text, ``node`` the output node, ``points`` a
        list of point dicts (``{"element": ..., "scale": ...}`` or
        ``{"element": ..., "value": ...}``) or objects with a matching
        shape (e.g. :class:`repro.sweep.SweepPoint` payloads).  The
        remaining parameters mirror :class:`repro.sweep.SweepPlan`.
        Transient failures are retried exactly like :meth:`analyze` —
        ``/sweep`` is idempotent server-side.
        """
        def point_dict(point):
            if hasattr(point, "element"):
                return {"element": point.element, "value": point.value,
                        "scale": point.scale, "label": point.label}
            return point

        payload: dict = {
            "deck": deck,
            "node": node,
            "points": [point_dict(point) for point in points],
        }
        for name, value in (("mode", mode),
                            ("first_order_threshold", first_order_threshold),
                            ("error_bound", error_bound),
                            ("timeout", timeout)):
            if value is not None:
                payload[name] = value
        status, body, headers = self._request(
            "POST", "/sweep", json.dumps(payload).encode("utf-8"), retry=True)
        return SweepOutcome(
            document=json.loads(body),
            body=body,
            cached=headers.get("X-Repro-Cache") == "hit",
            key=headers.get("X-Repro-Key", ""),
            server_elapsed_s=float(headers.get("X-Repro-Elapsed-S", "nan")),
        )

    def healthz(self) -> dict:
        """The health document (raises :class:`ServiceError` with status
        503 once the server is draining or degraded — never retried, the
        503 *is* the answer)."""
        _, body, _ = self._request("GET", "/healthz")
        return json.loads(body)

    def metrics(self) -> dict:
        """The metrics document: request/queue/cache counters plus the
        cumulative solver instrumentation."""
        _, body, _ = self._request("GET", "/metrics")
        return json.loads(body)

    def stats(self) -> dict:
        """Client-side retry counters: ``client_retries`` (sleep/resend
        cycles taken), ``retry_sleep_s`` (total backoff slept),
        ``retries_exhausted`` (requests that failed even after every
        allowed attempt)."""
        with self._stats_lock:
            return dict(self._counters)

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes | None = None,
                 retry: bool = False):
        attempts = self.retries if retry else 0
        deadline = (time.monotonic() + self.retry_budget_s) if attempts else None
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if attempt >= attempts or exc.status not in RETRYABLE_STATUSES:
                    if attempts and exc.status in RETRYABLE_STATUSES:
                        with self._stats_lock:
                            self._counters["retries_exhausted"] += 1
                    raise
                delay = self._rng.uniform(
                    0.0, min(self.backoff_cap, self.backoff_base * 2 ** attempt))
                if exc.retry_after is not None:
                    delay = max(delay, exc.retry_after)
                if deadline is not None and delay > deadline - time.monotonic():
                    # Sleeping would overrun the budget: fail now with the
                    # last structured error rather than half-sleep.
                    with self._stats_lock:
                        self._counters["retries_exhausted"] += 1
                    raise
                time.sleep(delay)
                attempt += 1
                with self._stats_lock:
                    self._counters["client_retries"] += 1
                    self._counters["retry_sleep_s"] += delay

    def _request_once(self, method: str, path: str, body: bytes | None = None):
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = raw.decode("utf-8", "replace") or str(exc)
            raise ServiceError(
                f"HTTP {exc.code}: {message}", exc.code,
                retry_after=parse_retry_after(exc.headers.get("Retry-After")),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: {exc.reason}", 0) from None
        except (TimeoutError, socket.timeout) as exc:
            raise ServiceError(
                f"timed out talking to {self.base_url} "
                f"(socket timeout {self.timeout:g} s): {exc}", 0) from None
        except (ConnectionError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"connection to {self.base_url} failed: "
                f"{type(exc).__name__}: {exc}", 0) from None
