"""Canonical deck hashing: the service cache's content addressing.

Two requests should share a cache entry exactly when AWE would produce
the same report for both.  Textual identity is far too strict — timing
loops re-emit decks with shuffled element order, different whitespace,
regenerated comments, and unnormalised value spellings (``1000`` vs
``1k`` vs ``1K``).  Parsing already erases comments, whitespace, and
unit spelling (values become floats); :func:`canonical_deck` erases the
remaining degrees of freedom by re-serialising the parsed circuit with
``write_netlist(..., canonical=True)``: elements in natural-sorted name
order, values in full ``repr`` precision, title blanked.

:func:`request_key` then hashes the canonical deck together with every
analysis parameter that changes the report (nodes in request order,
fixed order *or* error target, max order, threshold), yielding the
content address used by :class:`repro.service.cache.ResultCache`.
"""

from __future__ import annotations

import hashlib
import json

from repro.analysis.sources import Stimulus
from repro.circuit.netlist import Circuit
from repro.circuit.writer import write_netlist

#: Version tag mixed into every key; bump when the canonical form or the
#: report schema changes so stale persisted entries can never be served.
#: /2: the ``reduce`` field joined the payload — a reduced and an
#: unreduced run of the same deck are different documents.
KEY_SCHEMA = "repro.analysis-request/2"

#: Same role for ``POST /sta`` requests (STA report schema + canonical
#: design form).
STA_KEY_SCHEMA = "repro.sta-request/1"

#: Same role for ``POST /sweep`` requests (sweep report schema +
#: canonical deck + plan payload).
SWEEP_KEY_SCHEMA = "repro.sweep-request/1"


def canonical_deck(circuit: Circuit, stimuli: dict[str, Stimulus] | None = None) -> str:
    """The circuit's canonical serialisation (title blanked).

    Decks that parse to the same elements, values, and stimuli produce
    identical text, regardless of element order, comments, whitespace,
    engineering-suffix spelling, or title.
    """
    return write_netlist(circuit, stimuli, title="", canonical=True)


def request_key(
    circuit: Circuit,
    stimuli: dict[str, Stimulus] | None,
    nodes,
    order: int | None = None,
    error_target: float = 0.01,
    max_order: int = 8,
    threshold: float | None = None,
    reduce: bool = False,
) -> str:
    """Content address of one analysis request (SHA-256 hex digest).

    ``nodes`` keeps its request order — the report lists responses in
    that order, so reordered nodes are a genuinely different document.
    With a fixed ``order`` the error target is irrelevant to the result
    and is normalised out, so ``order=2`` requests share an entry no
    matter what target they also carried.  ``reduce`` is the *effective*
    RC-chain pre-reduction setting (request field or server default,
    already resolved): reduced results approximate higher moments, so
    they must never be served for an unreduced request or vice versa.
    """
    payload = {
        "schema": KEY_SCHEMA,
        "deck": canonical_deck(circuit, stimuli),
        "nodes": [str(node) for node in nodes],
        "order": None if order is None else int(order),
        "error_target": None if order is not None else float(error_target),
        "max_order": int(max_order),
        "threshold": None if threshold is None else float(threshold),
        "reduce": bool(reduce),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sweep_request_key(circuit, stimuli, plan) -> str:
    """Content address of one sweep request (SHA-256 hex digest).

    ``plan`` is a :class:`repro.sweep.SweepPlan`; its payload carries the
    node, tier policy, bounds, and the points *in request order* (the
    report lists results in that order, so a reordered plan is a
    genuinely different document).  The deck is canonicalised exactly
    like an ``/analyze`` request, so textual respellings of one circuit
    share an entry.
    """
    payload = {
        "schema": SWEEP_KEY_SCHEMA,
        "deck": canonical_deck(circuit, stimuli),
        "plan": plan.to_payload(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sta_request_key(design, k: int, corners, interconnect: str,
                    library=None) -> str:
    """Content address of one STA request (SHA-256 hex digest).

    ``design`` is a :class:`repro.sta.Design` (its canonical dict form —
    members sorted by name — erases declaration order); ``corners`` keep
    request order because the report lists them in that order.  A custom
    ``library`` is part of the address; ``None`` (the built-in default
    library) hashes as ``null`` so it stays stable across versions of
    the default cells only if those cells are unchanged — the schema tag
    is bumped whenever they change.
    """
    payload = {
        "schema": STA_KEY_SCHEMA,
        "design": design.to_canonical_dict(),
        "k": int(k),
        "corners": [corner.to_dict() for corner in corners],
        "interconnect": str(interconnect),
        "library": None if library is None else library.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
