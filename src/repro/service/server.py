"""The AWE analysis daemon: HTTP front end, worker pool, admission control.

Architecture (one process, threads only, stdlib only)::

    HTTP handler threads            worker threads (persistent)
    ─────────────────────           ───────────────────────────
    parse request JSON              queue.get()
    parse deck, hash request  ──►   BatchEngine.run([job], trace=True)
    cache.get(key)? ─ hit ──► 200   build_report → validate → bytes
    bounded queue.put_nowait        cache.put(key, body)
      └ Full ──► 429 Retry-After    event.set()  ──►  handler replies

Each worker owns one persistent :class:`~repro.engine.batch.BatchEngine`
— the pool survives across requests, so engine/solver counters accumulate
into a service-lifetime view that ``GET /metrics`` reports alongside the
cache and queue counters.  Every request is traced
(``BatchEngine.run(trace=True)``), so the body a client receives is the
same validated ``repro.run-report/1`` document ``python -m repro report
--json`` would have produced.

``POST /sta`` rides the same machinery: the handler parses and
structurally validates the design (malformed graphs are refused with 400
before a worker is committed), content-addresses the request with
:func:`~repro.service.canon.sta_request_key`, and the worker runs
:func:`repro.sta.run_sta` instead of the batch engine, returning a
validated ``repro.sta-report/1`` document that is cached bit-for-bit
like an analysis report.

Admission control is a bounded queue: when it is full the request is
refused *immediately* with HTTP 429 and a ``Retry-After`` estimated from
the recent per-job wall time — the backlog can never grow without bound.
``SIGTERM`` triggers a graceful drain: requests already accepted run to
completion and their reports are returned; new ``/analyze`` requests are
refused with 503; the process exits once the queue is empty.

Degraded mode (self-protection under worker crashes)
----------------------------------------------------
With ``engine_workers > 1`` each analysis fans out over a process pool;
a pool-worker death is absorbed by the engine's self-healing rebuild
(``pool_rebuilds`` in ``/metrics``), and a request whose jobs are *still*
lost after the rebuild counts as a worker-crash request.  After
``degraded_threshold`` consecutive crash requests the service flips
``/healthz`` to a 503 ``degraded`` state and sheds load: while degraded,
at most one analysis (the canary) is in flight at a time and the rest
are refused immediately with 503 + ``Retry-After`` instead of queueing
behind a crashing pool.  The first canary that completes without a crash
clears the state.  Cache hits are always served.

Fault injection (``repro.faults``) hooks the HTTP boundary here: the
``http_429`` / ``http_503`` / ``http_timeout`` probes fire at the top of
``submit`` (marked with an ``X-Repro-Fault`` header) so client
retry/backoff behaviour is testable against a live daemon.
"""

from __future__ import annotations

import json
import math
import signal
import threading
import time
import queue as queue_module
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import faults
from repro.circuit.parser import parse_netlist
from repro.engine import AweJob, BatchEngine
from repro.errors import ReproError, WorkerCrashError
from repro.instrumentation import SolverStats
from repro.report import (
    build_report,
    build_sta_report,
    build_sweep_report,
    validate_report,
    validate_sta_report,
    validate_sweep_report,
)
from repro.reduce import REDUCTION_MEMO
from repro.service.cache import ResultCache
from repro.service.canon import request_key, sta_request_key, sweep_request_key
from repro.sweep import SweepEngine, SweepPlan
from repro.sta import (
    INTERCONNECT_MODES,
    NOMINAL,
    CellLibrary,
    Corner,
    Design,
    default_library,
    run_sta,
)
from repro.trace import Tracer

#: Largest accepted request body; a deck bigger than this is almost
#: certainly a mistake and would stall a worker for minutes.
MAX_BODY_BYTES = 32 * 1024 * 1024

_STOP = object()  # worker-shutdown sentinel


class _Pending:
    """One accepted request travelling handler → worker → handler.

    ``kind`` selects the worker path: ``"analyze"`` runs the AWE batch
    engine over a parsed ``deck``; ``"sta"`` runs the STA engine over
    the :class:`~repro.sta.Design` carried in ``params``.
    """

    __slots__ = ("deck", "params", "key", "label", "parse_s", "deadline",
                 "event", "status", "body", "cache_state", "abandoned",
                 "kind")

    def __init__(self, deck, params, key, label, parse_s, deadline,
                 kind="analyze"):
        self.kind = kind
        self.deck = deck
        self.params = params
        self.key = key
        self.label = label
        self.parse_s = parse_s
        self.deadline = deadline  # monotonic seconds, or None
        self.event = threading.Event()
        self.status = None
        self.body = None
        self.cache_state = "miss"
        self.abandoned = False


def _error_body(status: int, message: str, error_type: str = None) -> bytes:
    payload = {"error": message}
    if error_type:
        payload["error_type"] = error_type
    payload["status"] = status
    return (json.dumps(payload) + "\n").encode("utf-8")


def _parse_request(raw: bytes) -> dict:
    """Decode and structurally validate an ``/analyze`` body.

    Returns the normalised parameter dict; raises :class:`ValueError`
    with a client-facing message on any problem.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    unknown = set(payload) - {
        "deck", "nodes", "order", "error_target", "max_order", "threshold",
        "timeout", "reduce",
    }
    if unknown:
        raise ValueError(f"unknown request field(s): {', '.join(sorted(unknown))}")
    deck = payload.get("deck")
    if not isinstance(deck, str) or not deck.strip():
        raise ValueError("'deck' must be a non-empty string of netlist text")
    nodes = payload.get("nodes")
    if isinstance(nodes, str):
        nodes = [nodes]
    if (not isinstance(nodes, list) or not nodes
            or not all(isinstance(node, str) and node for node in nodes)):
        raise ValueError("'nodes' must be a non-empty list of node names")

    def number(name, default=None, integer=False, minimum=None):
        value = payload.get(name, default)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"'{name}' must be a number")
        if integer:
            if value != int(value):
                raise ValueError(f"'{name}' must be an integer")
            value = int(value)
        if minimum is not None and value < minimum:
            raise ValueError(f"'{name}' must be >= {minimum}")
        return value

    reduce = payload.get("reduce")
    if reduce is not None and not isinstance(reduce, bool):
        raise ValueError("'reduce' must be a boolean")

    return {
        "deck": deck,
        "nodes": tuple(nodes),
        "order": number("order", integer=True, minimum=1),
        "error_target": number("error_target", default=0.01, minimum=0.0),
        "max_order": number("max_order", default=8, integer=True, minimum=1),
        "threshold": number("threshold"),
        "timeout": number("timeout", minimum=0.0),
        # None = "request didn't say": the service substitutes its
        # default_reduce before hashing, so the cache key always reflects
        # what actually ran.
        "reduce": reduce,
    }


def _parse_sta_request(raw: bytes) -> dict:
    """Decode and validate a ``/sta`` body (cheap, structural only).

    Builds the :class:`~repro.sta.Design`, corners, and optional library
    and runs the structural validation (connectivity, single drivers,
    acyclicity) so every malformed graph is refused with 400 *before* a
    worker is committed; the expensive AWE freeze happens in the worker.
    Raises :class:`ValueError` or :class:`~repro.errors.ReproError` with
    a client-facing message on any problem.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    unknown = set(payload) - {
        "design", "k", "corners", "interconnect", "library", "timeout",
    }
    if unknown:
        raise ValueError(f"unknown request field(s): {', '.join(sorted(unknown))}")
    if "design" not in payload:
        raise ValueError("'design' is required")
    design = Design.from_dict(payload["design"])

    k = payload.get("k", 5)
    if isinstance(k, bool) or not isinstance(k, int) or k < 0:
        raise ValueError("'k' must be a non-negative integer")

    interconnect = payload.get("interconnect", "awe")
    if interconnect not in INTERCONNECT_MODES:
        raise ValueError(
            f"'interconnect' must be one of {', '.join(INTERCONNECT_MODES)}")

    corners_payload = payload.get("corners")
    if corners_payload is None:
        corners = (NOMINAL,)
    else:
        if not isinstance(corners_payload, list) or not corners_payload:
            raise ValueError("'corners' must be a non-empty list")
        corners = tuple(Corner.from_dict(c) for c in corners_payload)
        names = [c.name for c in corners]
        if len(set(names)) != len(names):
            raise ValueError(f"corner names must be unique, got {names}")

    library_payload = payload.get("library")
    library = (None if library_payload is None
               else CellLibrary.from_dict(library_payload))

    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ValueError("'timeout' must be a number")
        if timeout < 0:
            raise ValueError("'timeout' must be >= 0")

    design.validate(library if library is not None else default_library())
    return {
        "design": design,
        "k": k,
        "corners": corners,
        "interconnect": interconnect,
        "library": library,
        "timeout": timeout,
    }


def _parse_sweep_request(raw: bytes) -> dict:
    """Decode and structurally validate a ``/sweep`` body.

    The plan is materialised as a :class:`~repro.sweep.SweepPlan` (its
    own validation rejects bad modes, empty point lists, and malformed
    points), so every structural problem is refused with 400 before a
    worker is committed; the deck itself is parsed by the caller like an
    ``/analyze`` deck.  Raises :class:`ValueError` with a client-facing
    message on any problem.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    unknown = set(payload) - {
        "deck", "node", "points", "mode", "first_order_threshold",
        "error_bound", "timeout",
    }
    if unknown:
        raise ValueError(f"unknown request field(s): {', '.join(sorted(unknown))}")
    deck = payload.get("deck")
    if not isinstance(deck, str) or not deck.strip():
        raise ValueError("'deck' must be a non-empty string of netlist text")
    node = payload.get("node")
    if not isinstance(node, str) or not node:
        raise ValueError("'node' must be a non-empty node name")
    points = payload.get("points")
    if (not isinstance(points, list) or not points
            or not all(isinstance(point, dict) for point in points)):
        raise ValueError("'points' must be a non-empty list of objects")
    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ValueError("'timeout' must be a number")
        if timeout < 0:
            raise ValueError("'timeout' must be >= 0")
    plan_payload = {
        "node": node,
        "points": points,
        "mode": payload.get("mode", "auto"),
        "first_order_threshold": payload.get("first_order_threshold", 0.05),
        "error_bound": payload.get("error_bound", 1e-3),
    }
    try:
        plan = SweepPlan.from_payload(plan_payload)
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed sweep plan: {exc}") from exc
    return {"deck": deck, "plan": plan, "timeout": timeout}


#: Public names for the request parsers: the gateway validates and
#: content-addresses a body *before* choosing a shard, and routing must
#: agree with the daemon about what a request means — one parser, two
#: callers, zero drift.
parse_analyze_request = _parse_request
parse_sta_request = _parse_sta_request
parse_sweep_request = _parse_sweep_request


class AnalysisService:
    """The daemon's core, independent of HTTP: cache + queue + workers.

    Parameters
    ----------
    workers:
        Worker-thread count; each owns a persistent
        :class:`~repro.engine.batch.BatchEngine`.
    queue_size:
        Admission bound — requests beyond ``queue_size`` waiting jobs are
        refused with 429 rather than queued.
    cache:
        A :class:`~repro.service.cache.ResultCache` (a default 64 MiB
        memory-only cache is built when omitted).
    timeout:
        Default per-request wall-clock budget in seconds (queue wait +
        analysis); a request's own ``timeout`` field overrides it.
        ``None`` means unlimited.
    engine_workers:
        Process-pool width of each worker thread's
        :class:`~repro.engine.batch.BatchEngine` (default 1 = in-process
        analysis; > 1 adds per-request fan-out and, with it, the
        self-healing pool-rebuild path).
    degraded_threshold:
        Consecutive worker-crash requests that flip the service into the
        degraded (shed-load) state; the first clean request clears it.
    default_reduce:
        RC-chain pre-reduction (:func:`repro.reduce.reduce_circuit`) for
        requests whose ``reduce`` field is absent; an explicit request
        field always wins.  The *effective* setting is part of the cache
        key, so flipping the default can never serve a stale entry.
    """

    def __init__(self, workers: int = 2, queue_size: int = 16,
                 cache: ResultCache | None = None,
                 timeout: float | None = None,
                 engine_workers: int = 1,
                 degraded_threshold: int = 3,
                 default_reduce: bool = False):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size!r}")
        if engine_workers < 1:
            raise ValueError(
                f"engine_workers must be >= 1, got {engine_workers!r}")
        if degraded_threshold < 1:
            raise ValueError(
                f"degraded_threshold must be >= 1, got {degraded_threshold!r}")
        self.workers = workers
        self.timeout = timeout
        self.default_reduce = default_reduce
        self.engine_workers = engine_workers
        self.degraded_threshold = degraded_threshold
        self.cache = cache if cache is not None else ResultCache()
        self._queue: queue_module.Queue = queue_module.Queue(maxsize=queue_size)
        self._engines: list[BatchEngine] = []
        self._threads: list[threading.Thread] = []
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        # Per-endpoint EWMAs of job wall time, seeding Retry-After: /sta
        # freezes a whole timing DAG while /analyze runs one deck and
        # /sweep amortises one factorization over many points, so one
        # shared average would let a burst of either skew the others'
        # hint (an STA-heavy minute would tell analyze clients to back
        # off 10x too long, and vice versa).
        self._avg_job_s = {"analyze": 0.05, "sta": 0.05, "sweep": 0.05}
        self._started_at = time.monotonic()
        self._degraded = False
        self._consecutive_crashes = 0
        self._counters = {
            "requests_total": 0,
            "requests_ok": 0,
            "requests_failed": 0,
            "bad_requests": 0,
            "rejected_queue_full": 0,
            "rejected_draining": 0,
            "rejected_degraded": 0,
            "request_timeouts": 0,
            "worker_crash_requests": 0,
            "degraded_entries": 0,
            "faults_injected": 0,
        }

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "AnalysisService":
        """Spawn the worker pool (idempotent)."""
        if self._threads:
            return self
        self._started_at = time.monotonic()
        for number in range(self.workers):
            engine = BatchEngine(workers=self.engine_workers)
            self._engines.append(engine)
            thread = threading.Thread(
                target=self._worker, args=(engine,),
                name=f"repro-service-worker-{number}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def begin_drain(self) -> None:
        """Stop admitting work; already-accepted jobs run to completion."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until every accepted request has completed (after
        :meth:`begin_drain`).  Returns False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._in_flight > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self, timeout: float | None = None) -> None:
        """Drain, stop the workers, and join their threads."""
        self.begin_drain()
        self.wait_drained(timeout)
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    # -- request handling (called from HTTP handler threads) -----------

    def submit(self, raw_body: bytes, kind: str = "analyze"):
        """Handle one ``/analyze`` or ``/sta`` body end to end.

        Returns ``(status, body_bytes, extra_headers)`` — the HTTP layer
        only frames it.  Cache hits are served directly from the calling
        thread and never touch the queue; admission control applies only
        to requests that need a worker.
        """
        started = time.monotonic()
        with self._lock:
            self._counters["requests_total"] += 1
        plan = faults.active()
        if plan.enabled:
            injected = self._inject_http_fault(plan)
            if injected is not None:
                return injected
        try:
            if kind == "sta":
                deck = None
                params = _parse_sta_request(raw_body)
                key = sta_request_key(
                    params["design"], params["k"], params["corners"],
                    params["interconnect"], library=params["library"],
                )
                label = params["design"].name
            elif kind == "sweep":
                params = _parse_sweep_request(raw_body)
                deck = parse_netlist(params["deck"])
                plan = params["plan"]
                for point in plan.points:
                    try:
                        deck.circuit[point.element]
                    except KeyError:
                        raise ValueError(
                            f"sweep point names unknown element "
                            f"{point.element!r}") from None
                key = sweep_request_key(deck.circuit, deck.stimuli, plan)
                label = deck.title or "deck"
            else:
                params = _parse_request(raw_body)
                deck = parse_netlist(params["deck"])
                if params["reduce"] is None:
                    params["reduce"] = self.default_reduce
                key = request_key(
                    deck.circuit, deck.stimuli, params["nodes"],
                    order=params["order"],
                    error_target=params["error_target"],
                    max_order=params["max_order"],
                    threshold=params["threshold"],
                    reduce=params["reduce"],
                )
                label = deck.title or "deck"
        except (ValueError, ReproError) as exc:
            with self._lock:
                self._counters["bad_requests"] += 1
            return 400, _error_body(400, str(exc), type(exc).__name__), {}

        parse_s = time.monotonic() - started

        cached = self.cache.get(key)
        if cached is not None:
            with self._lock:
                self._counters["requests_ok"] += 1
            headers = self._result_headers(key, "hit", time.monotonic() - started)
            return 200, cached, headers

        if self.draining:
            with self._lock:
                self._counters["rejected_draining"] += 1
            return 503, _error_body(
                503, "service is draining and no longer accepts work"), {}

        timeout = params["timeout"] if params["timeout"] is not None else self.timeout
        deadline = None if timeout is None else started + timeout
        pending = _Pending(deck, params, key, label, parse_s, deadline,
                           kind=kind)
        with self._idle:
            # Degraded shed-load: while the worker pool is suspected
            # broken, admit exactly one canary analysis at a time and
            # refuse the rest immediately — a fast 503 with a hint beats
            # a request hanging behind a crashing pool.
            if self._degraded and self._in_flight >= 1:
                self._counters["rejected_degraded"] += 1
                retry_after = max(1, math.ceil(self._avg_job_s[kind] * 2))
                return 503, _error_body(
                    503, "service is degraded after repeated worker "
                         "crashes; shedding load while one canary "
                         "request probes recovery"), {
                    "Retry-After": str(retry_after)}
            # Admission and the in-flight count move together so a drain
            # observer can never see an accepted job it will not wait for.
            try:
                self._queue.put_nowait(pending)
            except queue_module.Full:
                self._counters["rejected_queue_full"] += 1
                retry_after = max(
                    1, math.ceil(self._avg_job_s[kind]
                                 * (self._queue.qsize() + 1)))
                return 429, _error_body(
                    429, "analysis queue is full; retry later"), {
                    "Retry-After": str(retry_after)}
            self._in_flight += 1

        # The wall-clock backstop: the engine's own deadline machinery is
        # preemptive only where SIGALRM is available (it degrades to a
        # no-op off the main thread), so the handler authoritatively
        # bounds how long the client is kept waiting — queue wait
        # included.  A worker that is already past the deadline when it
        # dequeues the job skips it instead of computing for nobody.
        wait = None if deadline is None else max(deadline - time.monotonic(), 0.0)
        if not pending.event.wait(wait):
            pending.abandoned = True
            with self._lock:
                self._counters["request_timeouts"] += 1
            return 504, _error_body(
                504, f"request exceeded its {timeout:g} s budget"), {}
        elapsed = time.monotonic() - started
        headers = self._result_headers(key, pending.cache_state, elapsed)
        return pending.status, pending.body, headers

    def _result_headers(self, key: str, cache_state: str, elapsed: float) -> dict:
        return {
            "X-Repro-Cache": cache_state,
            "X-Repro-Key": key,
            "X-Repro-Elapsed-S": f"{elapsed:.6f}",
        }

    def _inject_http_fault(self, plan):
        """Consult the HTTP-boundary fault probes; an injected refusal is
        returned as a full ``(status, body, headers)`` triple, marked with
        ``X-Repro-Fault`` so clients and tests can tell it from the real
        thing.  ``http_timeout`` stalls the handler instead (long enough
        to trip a client socket timeout when its arg says so)."""
        if plan.fire("http_timeout"):
            with self._lock:
                self._counters["faults_injected"] += 1
            time.sleep(plan.arg("http_timeout", 1.0))
        if plan.fire("http_429"):
            with self._lock:
                self._counters["faults_injected"] += 1
            return 429, _error_body(
                429, "injected fault: queue pressure, retry later"), {
                "Retry-After": f"{plan.arg('http_429', 0.05):g}",
                "X-Repro-Fault": "http_429"}
        if plan.fire("http_503"):
            with self._lock:
                self._counters["faults_injected"] += 1
            return 503, _error_body(
                503, "injected fault: service momentarily unavailable"), {
                "Retry-After": f"{plan.arg('http_503', 0.05):g}",
                "X-Repro-Fault": "http_503"}
        return None

    # -- introspection -------------------------------------------------

    def healthz(self):
        """``GET /healthz`` payload: 200 while serving; 503 once draining
        or while degraded after repeated worker crashes (load balancers
        should route away, the canary path handles recovery)."""
        with self._lock:
            degraded = self._degraded
            consecutive = self._consecutive_crashes
        if self.draining:
            status, state = 503, "draining"
        elif degraded:
            status, state = 503, "degraded"
        else:
            status, state = 200, "ok"
        payload = {
            "status": state,
            "workers": self.workers,
            "queue_depth": self._queue.qsize(),
            "consecutive_worker_failures": consecutive,
            "uptime_s": round(time.monotonic() - self._started_at, 6),
        }
        return status, (json.dumps(payload) + "\n").encode("utf-8")

    def metrics(self) -> dict:
        """``GET /metrics`` document: request/queue/cache counters plus
        the cumulative engine + solver instrumentation merged across the
        worker pool (same fields as ``BatchEngine.stats()``)."""
        solver = SolverStats()
        for engine in self._engines:
            solver.merge(engine.stats())
        with self._lock:
            counters = dict(self._counters)
            in_flight = self._in_flight
            degraded = self._degraded
            consecutive = self._consecutive_crashes
            avg_job_s = dict(self._avg_job_s)
        document = {
            "avg_job_s": {kind: round(value, 6)
                          for kind, value in avg_job_s.items()},
            "reduction_memo": REDUCTION_MEMO.stats(),
            "uptime_s": round(time.monotonic() - self._started_at, 6),
            "workers": self.workers,
            "engine_workers": self.engine_workers,
            "draining": self.draining,
            "degraded": degraded,
            "consecutive_worker_failures": consecutive,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "in_flight": in_flight,
            **counters,
            **self.cache.stats(),
            "solver": solver.as_dict(),
        }
        plan = faults.active()
        if plan.enabled:
            document["faults"] = plan.stats()
        return document

    # -- worker side ---------------------------------------------------

    def _worker(self, engine: BatchEngine) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            try:
                if item.kind == "sta":
                    self._process_sta(item)
                elif item.kind == "sweep":
                    self._process_sweep(item)
                else:
                    self._process(engine, item)
            finally:
                with self._idle:
                    self._in_flight -= 1
                    if self._in_flight == 0:
                        self._idle.notify_all()

    def _process(self, engine: BatchEngine, pending: _Pending) -> None:
        if pending.abandoned:
            return  # the client already received 504; don't burn a worker
        remaining = None
        if pending.deadline is not None:
            remaining = pending.deadline - time.monotonic()
            if remaining <= 0:
                self._finish(pending, 504, _error_body(
                    504, "request timed out while queued"))
                return
        started = time.monotonic()
        params = pending.params
        try:
            # Reduction goes through the content-keyed memo rather than
            # the job's own reduce flag: every service request re-parses
            # its deck into a fresh Circuit, so the engine's per-object
            # sharing never triggers here — the memo makes repeated
            # reductions of one topology (same canonical key, any textual
            # spelling) pay the pure-Python chain collapse once.
            circuit = pending.deck.circuit
            if params["reduce"]:
                circuit = REDUCTION_MEMO.reduce(circuit,
                                                keep=params["nodes"])
            job = AweJob(
                circuit,
                params["nodes"],
                stimuli=pending.deck.stimuli,
                order=params["order"],
                error_target=params["error_target"],
                max_order=params["max_order"],
                label=pending.label,
                reduce=False,
            )
            stats_before = engine.stats()
            results = engine.run([job], trace=True, timeout=remaining)
            stats_delta = {
                name: value - stats_before.get(name, 0)
                for name, value in engine.stats().items()
            }
            document = validate_report(
                build_report(
                    results,
                    engine_stats=stats_delta,
                    parse_seconds={pending.label: pending.parse_s},
                    threshold=params["threshold"],
                )
            )
        except Exception as exc:  # defensive: a worker must never die
            self._finish(pending, 500, _error_body(
                500, f"internal analysis error: {exc}", type(exc).__name__))
            return
        body = (json.dumps(document, indent=2) + "\n").encode("utf-8")
        ok = all(result.ok for result in results)
        crashed = any(
            result.error_type == WorkerCrashError.__name__ for result in results)
        if ok:
            # Only clean runs are cached: failures are cheap to reproduce
            # and may be environmental (a timeout under load).
            self.cache.put(pending.key, body)
        with self._lock:
            self._counters["requests_ok" if ok else "requests_failed"] += 1
            elapsed = time.monotonic() - started
            self._avg_job_s["analyze"] += (
                0.3 * (elapsed - self._avg_job_s["analyze"]))
            # Worker-death bookkeeping: a request whose jobs were lost
            # even after the engine's pool rebuild counts toward the
            # degraded threshold; any request that comes back without a
            # crash (the canary included) clears the streak.  A rebuild
            # that *recovered* is therefore a success — self-healing
            # keeps the service out of degraded mode.
            if crashed:
                self._counters["worker_crash_requests"] += 1
                self._consecutive_crashes += 1
                if (not self._degraded
                        and self._consecutive_crashes >= self.degraded_threshold):
                    self._degraded = True
                    self._counters["degraded_entries"] += 1
            else:
                self._consecutive_crashes = 0
                self._degraded = False
        self._finish(pending, 200, body)

    def _process_sta(self, pending: _Pending) -> None:
        """Worker path for ``POST /sta``: run the STA engine, build and
        validate the ``repro.sta-report/1`` document, cache on success.

        STA runs never touch the process pool, so they neither count
        toward nor clear the worker-crash/degraded bookkeeping.
        """
        if pending.abandoned:
            return  # the client already received 504; don't burn a worker
        if pending.deadline is not None:
            if pending.deadline - time.monotonic() <= 0:
                self._finish(pending, 504, _error_body(
                    504, "request timed out while queued"))
                return
        started = time.monotonic()
        params = pending.params
        try:
            tracer = Tracer(name="sta", design=params["design"].name)
            run = run_sta(
                params["design"],
                library=params["library"],
                k=params["k"],
                corners=params["corners"],
                interconnect=params["interconnect"],
                tracer=tracer,
            )
            document = validate_sta_report(
                build_sta_report(run, trace=tracer.to_record(),
                                 parse_s=pending.parse_s))
        except Exception as exc:  # defensive: a worker must never die
            with self._lock:
                self._counters["requests_failed"] += 1
            self._finish(pending, 500, _error_body(
                500, f"internal analysis error: {exc}", type(exc).__name__))
            return
        body = (json.dumps(document, indent=2) + "\n").encode("utf-8")
        self.cache.put(pending.key, body)
        with self._lock:
            self._counters["requests_ok"] += 1
            elapsed = time.monotonic() - started
            self._avg_job_s["sta"] += (
                0.3 * (elapsed - self._avg_job_s["sta"]))
        self._finish(pending, 200, body)

    def _process_sweep(self, pending: _Pending) -> None:
        """Worker path for ``POST /sweep``: build the incremental sweep
        engine once, evaluate every plan point, and return the validated
        ``repro.sweep-report/1`` document, cached on success.

        Like STA, sweeps never touch the process pool, so they neither
        count toward nor clear the worker-crash/degraded bookkeeping.
        """
        if pending.abandoned:
            return  # the client already received 504; don't burn a worker
        if pending.deadline is not None:
            if pending.deadline - time.monotonic() <= 0:
                self._finish(pending, 504, _error_body(
                    504, "request timed out while queued"))
                return
        started = time.monotonic()
        plan = pending.params["plan"]
        try:
            tracer = Tracer(name="sweep", deck=pending.label,
                            points=len(plan.points))
            engine = SweepEngine(pending.deck.circuit, pending.deck.stimuli,
                                 tracer=tracer)
            result = engine.evaluate(plan)
            document = validate_sweep_report(
                build_sweep_report(result, trace=tracer.to_record(),
                                   parse_s=pending.parse_s))
        except Exception as exc:  # defensive: a worker must never die
            with self._lock:
                self._counters["requests_failed"] += 1
            self._finish(pending, 500, _error_body(
                500, f"internal analysis error: {exc}", type(exc).__name__))
            return
        body = (json.dumps(document, indent=2) + "\n").encode("utf-8")
        self.cache.put(pending.key, body)
        with self._lock:
            self._counters["requests_ok"] += 1
            elapsed = time.monotonic() - started
            self._avg_job_s["sweep"] += (
                0.3 * (elapsed - self._avg_job_s["sweep"]))
        self._finish(pending, 200, body)

    @staticmethod
    def _finish(pending: _Pending, status: int, body: bytes) -> None:
        pending.status = status
        pending.body = body
        pending.event.set()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class _ServiceHTTPServer(ThreadingHTTPServer):
    # Handler threads must survive shutdown() so in-flight responses are
    # written before server_close() returns (the drain guarantee).
    daemon_threads = False
    block_on_close = True
    service: AnalysisService


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _reply(self, status: int, body: bytes, headers: dict | None = None):
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- routes --------------------------------------------------------

    def do_GET(self):
        service = self.server.service
        if self.path == "/healthz":
            status, body = service.healthz()
            self._reply(status, body)
        elif self.path == "/metrics":
            body = (json.dumps(service.metrics(), indent=2) + "\n").encode("utf-8")
            self._reply(200, body)
        else:
            self._reply(404, _error_body(
                404, f"unknown path {self.path!r}; endpoints: "
                     "POST /analyze, POST /sta, POST /sweep, "
                     "GET /healthz, GET /metrics"))

    def do_POST(self):
        service = self.server.service
        if self.path not in ("/analyze", "/sta", "/sweep"):
            self._reply(404, _error_body(
                404, f"unknown path {self.path!r}; POST /analyze, "
                     "POST /sta, or POST /sweep"))
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply(411, _error_body(411, "Content-Length required"))
            return
        if length > MAX_BODY_BYTES:
            self._reply(413, _error_body(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"))
            return
        raw = self.rfile.read(length)
        kind = self.path.lstrip("/")
        status, body, headers = service.submit(raw, kind=kind)
        self._reply(status, body, headers)


class ServiceServer:
    """One daemon instance: an :class:`AnalysisService` behind HTTP.

    Usable programmatically (tests, docs, benchmarks)::

        with ServiceServer(port=0, workers=2) as server:
            client = AnalysisClient(server.url)
            ...

    or as a blocking process via :func:`serve` (the
    ``python -m repro serve`` entry point), where SIGTERM/SIGINT trigger
    the graceful drain.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 service: AnalysisService | None = None, **service_options):
        if service is not None and service_options:
            raise ValueError("pass either a service or its options, not both")
        self.service = service if service is not None else AnalysisService(**service_options)
        self._httpd = _ServiceHTTPServer((host, port), _Handler)
        self._httpd.service = self.service
        self._thread: threading.Thread | None = None

    # -- addressing ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port is concrete even for 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- background mode (tests / docs / benchmarks) -------------------

    def start(self) -> "ServiceServer":
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def begin_drain(self) -> None:
        self.service.begin_drain()

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain, stop accepting connections, and release the socket."""
        self.service.begin_drain()
        self.service.wait_drained(timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self.service.close(timeout)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- foreground mode (the CLI) -------------------------------------

    def serve_forever(self, install_signals: bool = True) -> None:
        """Run in the calling thread until SIGTERM/SIGINT, then drain.

        The signal handler only flips the drain flag and hands shutdown
        to a helper thread — in-flight jobs finish and their responses
        are written before this method returns.
        """
        self.service.start()
        if install_signals:
            def _on_signal(signum, frame):
                self.service.begin_drain()
                threading.Thread(
                    target=self._drain_then_shutdown, daemon=True,
                ).start()

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()  # joins in-flight handler threads
            self.service.close()

    def _drain_then_shutdown(self) -> None:
        self.service.wait_drained()
        self._httpd.shutdown()


def serve(host: str = "127.0.0.1", port: int = 8040, *, workers: int = 2,
          queue_size: int = 16, cache_bytes: int = 64 * 1024 * 1024,
          cache_dir: str | None = None, timeout: float | None = None,
          default_reduce: bool = False,
          engine_workers: int = 1, degraded_threshold: int = 3,
          fault_spec: str | None = None, fault_seed: int = 0,
          announce=None) -> int:
    """Blocking daemon entry point (``python -m repro serve``).

    ``announce`` is called with the server once it is bound (the CLI
    prints the listening URL from it); returns the process exit code.
    ``fault_spec`` installs a :class:`repro.faults.FaultPlan` for the
    process (the ``--faults`` flag; see ``repro.faults`` for the
    grammar) — production runs leave it ``None``.
    """
    if fault_spec:
        faults.install(faults.FaultPlan.parse(fault_spec, seed=fault_seed))
    cache = ResultCache(max_bytes=cache_bytes, directory=cache_dir)
    service = AnalysisService(workers=workers, queue_size=queue_size,
                              cache=cache, timeout=timeout,
                              default_reduce=default_reduce,
                              engine_workers=engine_workers,
                              degraded_threshold=degraded_threshold)
    server = ServiceServer(host=host, port=port, service=service)
    if announce is not None:
        announce(server)
    server.serve_forever()
    return 0
