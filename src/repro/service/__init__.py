"""Long-lived AWE analysis service: daemon, cache, client.

The one-shot CLI pays full process startup, deck parsing, and MNA
factorisation on every invocation and throws the results away.  This
package amortises that cost one level above the moment recursion: a
daemon (``python -m repro serve``) keeps a pool of
:class:`~repro.engine.batch.BatchEngine` workers hot and fronts them
with a content-addressed result cache, so the timing loops that resubmit
the same (or a trivially reformatted) deck get their run report back in
microseconds instead of milliseconds.

* :mod:`repro.service.canon` — canonical deck text and request hashing:
  whitespace / comment / element-order / unit-spelling variants of one
  circuit map to one cache key.
* :mod:`repro.service.cache` — byte-budget LRU of validated
  ``repro.run-report/1`` JSON documents, with optional on-disk
  persistence and hit/miss/eviction counters.
* :mod:`repro.service.server` — stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /analyze``, ``POST /sta``, ``POST /sweep``, ``GET /healthz``,
  ``GET /metrics``)
  with a bounded queue, 429 admission control, per-request timeouts, and
  graceful SIGTERM drain.
* :mod:`repro.service.client` — a dependency-free HTTP client with
  capped, full-jitter retry for transient failures
  (``python -m repro analyze --server`` uses it).

The request/response schema, cache semantics, and metrics fields are
documented in ``docs/service.md``.
"""

from repro.service.cache import ResultCache
from repro.service.canon import (canonical_deck, request_key,
                                 sta_request_key, sweep_request_key)
from repro.service.client import (AnalysisClient, AnalyzeOutcome,
                                  ServiceError, StaOutcome, SweepOutcome,
                                  parse_retry_after)
from repro.service.server import AnalysisService, ServiceServer, serve

__all__ = [
    "AnalysisClient",
    "AnalysisService",
    "AnalyzeOutcome",
    "ResultCache",
    "ServiceError",
    "ServiceServer",
    "StaOutcome",
    "SweepOutcome",
    "canonical_deck",
    "parse_retry_after",
    "request_key",
    "serve",
    "sta_request_key",
    "sweep_request_key",
]
