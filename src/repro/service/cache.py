"""Result cache: content-addressed run-report documents, LRU by bytes.

Values are the *serialised* ``repro.run-report/1`` JSON bodies the
server would send — caching bytes rather than objects is what makes the
warm-hit guarantee trivial: a hit returns the cold run's response
bit-identical, no re-serialisation involved.

Two tiers:

* an in-memory LRU bounded by a byte budget (``max_bytes``), because a
  report for a many-node request can run to hundreds of kilobytes and
  "number of entries" is the wrong unit to bound a daemon's footprint;
* optional on-disk persistence (``directory=``): every store is written
  through atomically, and a memory miss falls back to disk, so a
  restarted daemon starts warm.  Disk entries are re-validated on load
  (parseable JSON with the right schema tag) and quietly discarded when
  corrupt.

All operations are thread-safe; the counters (``hits`` / ``misses`` /
``evictions`` / ``disk_hits`` / ``stores`` / ``oversize_skips`` /
``disk_store_failures``) feed the server's ``/metrics`` endpoint.
Disk persistence stays best-effort — a full or read-only disk never
fails the request whose report was already computed — but every failed
write-through is counted (``disk_store_failures``) so the condition is
diagnosable instead of silent.
"""

from __future__ import annotations

import collections
import json
import os
import threading

from repro import faults
from repro.report import REPORT_SCHEMA, STA_REPORT_SCHEMA

#: Disk entries are re-validated on load; both document kinds the
#: service caches are legitimate.  (Accepting only run-reports silently
#: discarded persisted /sta bodies as "corrupt" — a restart lost every
#: warm STA entry.)
_DISK_SCHEMAS = frozenset({REPORT_SCHEMA, STA_REPORT_SCHEMA})


class ResultCache:
    """Byte-budget LRU of serialised run-report documents.

    Parameters
    ----------
    max_bytes:
        In-memory budget.  Inserting past it evicts least-recently-used
        entries; a single body larger than the whole budget is stored
        only on disk (counted in ``oversize_skips``).
    directory:
        Optional persistence directory (created on demand).  ``None``
        keeps the cache memory-only.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024,
                 directory: str | None = None):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.max_bytes = int(max_bytes)
        self.directory = directory
        self._entries: collections.OrderedDict[str, bytes] = collections.OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "stores": 0,
            "disk_hits": 0,
            "oversize_skips": 0,
            "disk_store_failures": 0,
        }

    # -- lookup / store ------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """The cached body for ``key``, or ``None``.  A hit refreshes
        the entry's LRU position; a memory miss consults the disk tier
        (counted as both a hit and a ``disk_hit``)."""
        with self._lock:
            body = self._entries.get(key)
            if body is not None:
                self._entries.move_to_end(key)
                self._counters["hits"] += 1
                return body
        body = self._disk_load(key)
        with self._lock:
            if body is None:
                self._counters["misses"] += 1
                return None
            self._counters["hits"] += 1
            self._counters["disk_hits"] += 1
            self._store_in_memory(key, body)
            return body

    def put(self, key: str, body: bytes) -> None:
        """Store ``body`` under ``key`` (write-through to disk when
        persistence is configured)."""
        if not isinstance(body, bytes):
            raise TypeError(f"cache bodies are bytes, got {type(body).__name__}")
        with self._lock:
            self._counters["stores"] += 1
            if len(body) > self.max_bytes:
                # Counted here, on the store, and only here: a get() that
                # later promotes the disk copy back toward memory re-skips
                # but must not re-count, or the counter reports touches.
                self._counters["oversize_skips"] += 1
            self._store_in_memory(key, body)
        self._disk_store(key, body)

    def clear(self) -> None:
        """Drop every in-memory entry (disk entries are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        """Counter snapshot plus current occupancy, ``cache_``-prefixed
        so the server can merge it straight into ``/metrics``."""
        with self._lock:
            out = {f"cache_{name}": count for name, count in self._counters.items()}
            out["cache_entries"] = len(self._entries)
            out["cache_bytes"] = self._bytes
            out["cache_max_bytes"] = self.max_bytes
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals -----------------------------------------------------

    def _store_in_memory(self, key: str, body: bytes) -> None:
        """Insert/refresh under the byte budget; caller holds the lock.

        A body larger than the whole budget is skipped silently —
        ``put()`` owns the ``oversize_skips`` count so disk-hit
        promotions through :meth:`get` don't inflate it.
        """
        if len(body) > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        self._entries[key] = body
        self._bytes += len(body)
        while self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)
            self._counters["evictions"] += 1

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _disk_store(self, key: str, body: bytes) -> None:
        if self.directory is None:
            return
        path = self._disk_path(key)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            if faults.active().fire("cache_io_store"):
                raise OSError("injected fault: cache disk store")
            # makedirs is inside the try: an unwritable parent directory
            # is exactly the best-effort failure this guard exists for.
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(body)
            os.replace(tmp, path)
        except OSError:
            # Persistence is best-effort; a full or read-only disk must
            # never fail the request whose report was already computed —
            # but it must be visible, so count it for stats()/metrics.
            with self._lock:
                self._counters["disk_store_failures"] += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _disk_load(self, key: str) -> bytes | None:
        if self.directory is None:
            return None
        path = self._disk_path(key)
        try:
            if faults.active().fire("cache_io_load"):
                raise OSError("injected fault: cache disk load")
            with open(path, "rb") as handle:
                body = handle.read()
        except OSError:
            return None
        try:
            document = json.loads(body)
            if document.get("schema") not in _DISK_SCHEMAS:
                raise ValueError(f"wrong schema: {document.get('schema')!r}")
        except (ValueError, AttributeError):
            # A truncated write or a stale schema: drop the file so the
            # corruption is paid for once, then treat it as a miss.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return body
