"""Tracing: hierarchical spans + structured events for one analysis.

See :mod:`repro.trace.spans` for the machinery and
``docs/observability.md`` for the span hierarchy, the event taxonomy and
worked examples.  The renderer lives in :mod:`repro.report`.
"""

from repro.trace.spans import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    TraceSpan,
    Tracer,
    iter_events,
    phase_seconds,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "TraceSpan",
    "Tracer",
    "iter_events",
    "phase_seconds",
]
