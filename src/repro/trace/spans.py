"""Hierarchical trace spans and structured events.

A :class:`Tracer` records *where the time of one analysis went and why
the order escalated*: nested :class:`TraceSpan`\\ s (``parse`` →
``mna_assembly`` → ``lu`` → ``moment_recursion`` → ``pade_escalation`` →
``pade`` / ``residues`` → ``waveform``) carry wall time and
:class:`~repro.instrumentation.SolverStats` counter deltas, and
:class:`TraceEvent`\\ s mark the discrete decisions (order escalations
with their error estimates, partial-Padé stabilisations, sparse/dense
backend selection, trapped-charge resolutions).

The span hierarchy and the event taxonomy are documented in
``docs/observability.md``; ``repro.report`` renders the records.

Zero overhead when off
----------------------
Every traced object (:class:`~repro.analysis.mna.MnaSystem`,
:class:`~repro.core.driver.AweAnalyzer`) defaults to the shared
:data:`NULL_TRACER` singleton, whose ``span`` returns one preallocated
do-nothing context manager and whose ``event`` is a bare ``pass`` — the
hot paths pay a single attribute load and call per site, nothing is
allocated, and no time is read.  ``benchmarks/test_trace_overhead.py``
bounds the total at < 2 % of the 50-job batch benchmark.

Serialisation
-------------
:meth:`Tracer.to_record` produces a tree of plain dicts / lists / numbers
/ strings — JSON-ready and picklable, which is how per-job traces survive
the :class:`~repro.engine.batch.BatchEngine` process pool.
:meth:`TraceSpan.from_record` rebuilds the object form when wanted;
:func:`phase_seconds` and :func:`iter_events` consume records directly.
"""

from __future__ import annotations

import dataclasses
import time

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "TraceSpan",
    "Tracer",
    "iter_events",
    "phase_seconds",
]


def _plain(value):
    """Coerce a value into the JSON-safe subset (numpy scalars included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, complex):
        return {"re": float(value.real), "im": float(value.imag)}
    for caster in (int, float):
        try:
            if isinstance(value, caster) or hasattr(value, "item"):
                return _plain(value.item())
        except (AttributeError, ValueError):
            break
    return str(value)


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured event: a name, a time offset, and a data payload.

    ``t_s`` is seconds since the owning trace started; ``data`` is a flat
    JSON-safe mapping whose keys depend on the event name (the taxonomy
    lives in ``docs/observability.md``).
    """

    name: str
    t_s: float
    data: dict

    def to_record(self) -> dict:
        return {"name": self.name, "t_s": self.t_s, "data": _plain(self.data)}

    @classmethod
    def from_record(cls, record: dict) -> "TraceEvent":
        return cls(record["name"], record["t_s"], dict(record.get("data", {})))


class TraceSpan:
    """One timed region of the pipeline, with children, counters, events.

    ``t_start_s``/``duration_s`` are relative to the trace start;
    ``counters`` holds the nonzero :class:`SolverStats` deltas accumulated
    while the span was open (when the span was given a stats object);
    ``meta`` carries identifying keys (node, subproblem label, ...).
    """

    __slots__ = ("name", "meta", "t_start_s", "duration_s",
                 "counters", "events", "children")

    def __init__(self, name: str, t_start_s: float = 0.0, meta: dict | None = None):
        self.name = name
        self.meta = meta or {}
        self.t_start_s = t_start_s
        self.duration_s = 0.0
        self.counters: dict = {}
        self.events: list[TraceEvent] = []
        self.children: list[TraceSpan] = []

    @property
    def self_seconds(self) -> float:
        """Duration minus the children's durations (exclusive time)."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_record(self) -> dict:
        record: dict = {
            "name": self.name,
            "t_start_s": self.t_start_s,
            "duration_s": self.duration_s,
        }
        if self.meta:
            record["meta"] = _plain(self.meta)
        if self.counters:
            record["counters"] = _plain(self.counters)
        if self.events:
            record["events"] = [event.to_record() for event in self.events]
        if self.children:
            record["children"] = [child.to_record() for child in self.children]
        return record

    @classmethod
    def from_record(cls, record: dict) -> "TraceSpan":
        span = cls(record["name"], record.get("t_start_s", 0.0),
                   dict(record.get("meta", {})))
        span.duration_s = record.get("duration_s", 0.0)
        span.counters = dict(record.get("counters", {}))
        span.events = [TraceEvent.from_record(e) for e in record.get("events", [])]
        span.children = [cls.from_record(c) for c in record.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceSpan({self.name!r}, {self.duration_s:.6f}s, "
                f"{len(self.children)} child(ren), {len(self.events)} event(s))")


class _SpanContext:
    """Context manager opening/closing one span on its tracer's stack."""

    __slots__ = ("_tracer", "_span", "_stats", "_before", "_t0")

    def __init__(self, tracer: "Tracer", span: TraceSpan, stats):
        self._tracer = tracer
        self._span = span
        self._stats = stats
        self._before = None
        self._t0 = 0.0

    def __enter__(self) -> TraceSpan:
        tracer = self._tracer
        self._t0 = time.perf_counter()
        self._span.t_start_s = self._t0 - tracer._t0
        if self._stats is not None:
            self._before = self._stats.as_dict()
        tracer._stack[-1].children.append(self._span)
        tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - self._t0
        if self._before is not None:
            after = self._stats.as_dict()
            span.counters = {
                key: value - self._before.get(key, 0)
                for key, value in after.items()
                if value != self._before.get(key, 0)
            }
        if exc_type is not None:
            span.meta = dict(span.meta, error=exc_type.__name__)
        stack = self._tracer._stack
        if len(stack) > 1 and stack[-1] is span:
            stack.pop()
        return False


class Tracer:
    """A recording tracer: one root span plus a stack of open spans.

    Spans opened while another span's ``with`` block is active nest under
    it; events attach to the innermost open span.  The object is cheap to
    create (one clock read), single-threaded by design, and rendered via
    :meth:`to_record`.
    """

    enabled = True

    def __init__(self, name: str = "run", **meta):
        self._t0 = time.perf_counter()
        self.root = TraceSpan(name, 0.0, dict(meta))
        self._stack: list[TraceSpan] = [self.root]

    def span(self, name: str, stats=None, **meta):
        """Open a child span of the innermost active span.

        ``stats`` (a :class:`~repro.instrumentation.SolverStats`) attaches
        the counter deltas accumulated while the span is open.  Returns a
        context manager yielding the :class:`TraceSpan`.
        """
        return _SpanContext(self, TraceSpan(name, meta=meta), stats)

    def event(self, name: str, **data) -> None:
        """Record a structured event on the innermost open span."""
        self._stack[-1].events.append(
            TraceEvent(name, time.perf_counter() - self._t0, data)
        )

    def to_record(self) -> dict:
        """Close the root (duration = now − start) and serialize the tree."""
        self.root.duration_s = time.perf_counter() - self._t0
        return self.root.to_record()


class _NullSpanContext:
    """The do-nothing span context handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The no-op tracer: every traced object's default.

    ``span`` hands back one shared preallocated context manager and
    ``event`` does nothing — no allocation, no clock read.  Call sites can
    also branch on :attr:`enabled` to skip building expensive payloads.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, stats=None, **meta):
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **data) -> None:
        return None

    def to_record(self) -> None:
        return None


#: The shared no-op tracer instance (use this, don't instantiate your own).
NULL_TRACER = NullTracer()


def phase_seconds(record: dict | None, exclusive: bool = True) -> dict:
    """Aggregate a trace record's wall time by span name.

    With ``exclusive=True`` (the default) each span contributes its *self*
    time — duration minus its children's durations — so the totals add up
    to the root duration instead of double-counting nested phases.
    Returns ``{}`` for ``None`` (an untraced run).
    """
    totals: dict = {}
    if record is None:
        return totals

    def visit(span: dict) -> None:
        children = span.get("children", [])
        seconds = span.get("duration_s", 0.0)
        if exclusive:
            seconds = max(0.0, seconds - sum(c.get("duration_s", 0.0) for c in children))
        totals[span["name"]] = totals.get(span["name"], 0.0) + seconds
        for child in children:
            visit(child)

    visit(record)
    return totals


def iter_events(record: dict | None):
    """Yield ``(span_name, event_record)`` for every event in a trace
    record, depth first.  Tolerates ``None`` (an untraced run)."""
    if record is None:
        return

    def visit(span: dict):
        for event in span.get("events", []):
            yield span["name"], event
        for child in span.get("children", []):
            yield from visit(child)

    yield from visit(record)
