"""The stage model: a switching gate driving an interconnect net (Fig. 1).

Following the RC-tree timing analyzers the paper builds on (Crystal, TV
[1], [3]), a gate is modelled as a switched voltage source behind an
effective resistance, and each receiver as a load capacitance at its input
node.  A :class:`Stage` assembles the full linear circuit — driver +
user-supplied net + receiver loads — and evaluates it with AWE.

The net is described with a small builder callback so arbitrary RLC
interconnect (trees, coupled lines, PCB ladders) plugs in::

    def my_net(ckt):                 # wire from "drv" to sinks "s1", "s2"
        ckt.add_resistor("Rw1", "drv", "s1", 200.0)
        ...

    stage = Stage("inv1", driver_resistance=1e3, net=my_net,
                  sinks=[Receiver("s1", 20e-15), Receiver("s2", 15e-15)])
    result = stage.evaluate(input_event_time=0.0, input_slew=50e-12)
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.analysis.sources import Ramp, Step, Stimulus
from repro.circuit.netlist import Circuit
from repro.core.driver import AweAnalyzer, AweResponse
from repro.errors import AnalysisError
from repro.timing.delay import DelayReport, measure_delay

#: Node names the stage wires itself to.
DRIVER_OUTPUT = "drv"


@dataclasses.dataclass(frozen=True)
class Receiver:
    """A gate input loading the net: node name + input capacitance and the
    logic threshold (as a fraction of the swing) that defines its delay."""

    node: str
    capacitance: float
    threshold_fraction: float = 0.5


@dataclasses.dataclass(frozen=True)
class StageResult:
    """Per-receiver timing of one evaluated stage."""

    stage_name: str
    reports: dict[str, DelayReport]
    responses: dict[str, AweResponse]

    def delay(self, node: str) -> float:
        """Threshold-crossing delay at one receiver (absolute time)."""
        report = self.reports[node]
        if report.threshold_delay is None:
            raise AnalysisError(f"no threshold recorded for {node!r}")
        return report.threshold_delay

    @property
    def worst_delay(self) -> float:
        """The latest receiver threshold crossing — the stage's delay."""
        return max(
            report.threshold_delay
            for report in self.reports.values()
            if report.threshold_delay is not None
        )


@dataclasses.dataclass
class Stage:
    """One gate-output + interconnect stage.

    Parameters
    ----------
    name:
        Identifier used in reports.
    driver_resistance:
        Effective switching resistance of the driving gate.
    net:
        Callback that adds the interconnect elements to a circuit; it must
        connect node ``"drv"`` (the driver output) to every receiver node.
    sinks:
        The receivers loading the net.
    v_low, v_high:
        Supply rails of the transition (default 0 → 5 V, the paper's
        examples).
    rising:
        Direction of the output transition this stage models.
    order:
        AWE order (None = automatic escalation to ``error_target``).
    """

    name: str
    driver_resistance: float
    net: Callable[[Circuit], None]
    sinks: list[Receiver]
    v_low: float = 0.0
    v_high: float = 5.0
    rising: bool = True
    order: int | None = None
    error_target: float = 0.01

    def build_circuit(self) -> Circuit:
        """Assemble driver + net + receiver loads into one circuit."""
        if not self.sinks:
            raise AnalysisError(f"stage {self.name!r} has no receivers")
        ckt = Circuit(f"stage {self.name}")
        ckt.add_voltage_source("Vdrv", "in", "0")
        ckt.add_resistor("Rdrv", "in", DRIVER_OUTPUT, self.driver_resistance)
        self.net(ckt)
        for receiver in self.sinks:
            if not ckt.has_node(receiver.node):
                raise AnalysisError(
                    f"net of stage {self.name!r} never connects receiver "
                    f"node {receiver.node!r}"
                )
            ckt.add_capacitor(f"Cin_{receiver.node}", receiver.node, "0",
                              receiver.capacitance)
        return ckt

    def stimulus(self, event_time: float, input_slew: float) -> Stimulus:
        """The driver-output swing as seen through the switching gate: a
        ramp whose rise time is the (10–90 %-derived) input slew, or an
        ideal step for zero slew."""
        v0, v1 = (self.v_low, self.v_high) if self.rising else (self.v_high, self.v_low)
        if input_slew <= 0.0:
            return Step(v0=v0, v1=v1, delay=event_time)
        return Ramp(v0=v0, v1=v1, rise_time=input_slew, delay=event_time)

    def evaluate(self, input_event_time: float = 0.0, input_slew: float = 0.0) -> StageResult:
        """AWE-evaluate every receiver waveform and measure its timing."""
        circuit = self.build_circuit()
        stimulus = self.stimulus(input_event_time, input_slew)
        analyzer = AweAnalyzer(circuit, {"Vdrv": stimulus})
        reports: dict[str, DelayReport] = {}
        responses: dict[str, AweResponse] = {}
        for receiver in self.sinks:
            response = analyzer.response(
                receiver.node, order=self.order, error_target=self.error_target
            )
            window = response.waveform.suggested_window()
            window = max(window, input_event_time + (input_slew or 0.0) * 2.0)
            times = np.linspace(0.0, window, 4000)
            waveform = response.waveform.to_waveform(times)
            v0, v1 = (self.v_low, self.v_high) if self.rising else (self.v_high, self.v_low)
            threshold = v0 + receiver.threshold_fraction * (v1 - v0)
            reports[receiver.node] = measure_delay(
                waveform, threshold=threshold, v_final=response.waveform.final_value()
            )
            responses[receiver.node] = response
        return StageResult(self.name, reports, responses)
