"""Timing-analysis application layer: gate stages, path delay, the analyzer.

The paper's motivating use (Sec. II, Fig. 1): divide a digital design into
stages — a gate output driving an interconnect net — model the gate as a
switched resistance, the net as an RLC circuit, and evaluate each stage's
delay with AWE, propagating the waveform's slope to the next stage."""

from repro.timing.analyzer import PathTimingAnalyzer, StageTiming
from repro.timing.corners import CornerReport, delay_corners, uniform_tolerances
from repro.timing.delay import DelayReport, measure_delay, slew_time
from repro.timing.pi_model import (
    PiModel,
    driving_point_moments,
    effective_capacitance,
    pi_model,
)
from repro.timing.montecarlo import MonteCarloReport, delay_distribution
from repro.timing.skew import SkewReport, skew_report, tree_leaves
from repro.timing.stage import Receiver, Stage, StageResult

__all__ = [
    "CornerReport",
    "DelayReport",
    "MonteCarloReport",
    "delay_distribution",
    "PathTimingAnalyzer",
    "PiModel",
    "Receiver",
    "SkewReport",
    "Stage",
    "StageResult",
    "StageTiming",
    "skew_report",
    "tree_leaves",
    "delay_corners",
    "driving_point_moments",
    "effective_capacitance",
    "uniform_tolerances",
    "measure_delay",
    "pi_model",
    "slew_time",
]
