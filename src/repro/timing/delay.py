"""Delay and slew measurement on response waveforms.

Wraps the raw crossing machinery of :class:`repro.waveform.Waveform` with
the vocabulary timing analyzers use: a :class:`DelayReport` holds the
50 %-swing delay (the paper's Fig. 2 definition), an arbitrary
logic-threshold delay (Sec. 5.3 uses 4.0 V), and the 10–90 % slew, all
measured from a stage's input-switch time.
"""

from __future__ import annotations

import dataclasses

from repro.errors import AnalysisError
from repro.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class DelayReport:
    """Delay metrics of one output transition.

    All times are absolute (from the waveform's t = 0); subtract the
    driving event's time to get stage delay.
    """

    node: str
    v_initial: float
    v_final: float
    delay_50: float
    threshold_delay: float | None
    slew_10_90: float
    monotone: bool
    overshoot: float

    @property
    def swing(self) -> float:
        return self.v_final - self.v_initial


def measure_delay(
    waveform: Waveform,
    threshold: float | None = None,
    v_final: float | None = None,
) -> DelayReport:
    """Measure the standard delay metrics of one transition.

    ``v_final`` overrides the settled value (pass the known steady state
    when the sampled window ends before full settling); ``threshold`` adds
    a logic-threshold crossing to the report.
    """
    v0 = waveform.initial
    v1 = waveform.final if v_final is None else v_final
    if v0 == v1:
        raise AnalysisError("no transition: initial and final values are equal")
    rising = v1 > v0
    half = waveform.threshold_delay(0.5 * (v0 + v1), rising=rising)
    threshold_time = None
    if threshold is not None:
        threshold_time = waveform.threshold_delay(threshold, rising=rising)
    low = v0 + 0.1 * (v1 - v0)
    high = v0 + 0.9 * (v1 - v0)
    slew = waveform.threshold_delay(high, rising=rising) - waveform.threshold_delay(
        low, rising=rising
    )
    return DelayReport(
        node=waveform.name,
        v_initial=v0,
        v_final=v1,
        delay_50=half,
        threshold_delay=threshold_time,
        slew_10_90=slew,
        monotone=waveform.is_monotone(tolerance=1e-6),
        overshoot=waveform.overshoot() if v0 != v1 else 0.0,
    )


def slew_time(waveform: Waveform, v_final: float | None = None) -> float:
    """10–90 % transition time — the quantity propagated to the next stage
    as its input rise time."""
    return measure_delay(waveform, v_final=v_final).slew_10_90
