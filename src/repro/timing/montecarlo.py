"""Monte Carlo delay variation: exact resampling vs the gradient shortcut.

Complements :mod:`repro.timing.corners` with distributional information:
element values are sampled uniformly within their tolerances and the
first-moment delay recomputed.  Two estimators:

* ``method="exact"`` — rebuild the circuit per sample and recompute the
  delay (eq. 3 machinery); cost one LU per sample.
* ``method="linear"`` — one adjoint gradient, then every sample is a dot
  product: ``T ≈ T₀ + Σ (x·∂T/∂x)·δᵢ``.  Thousands of samples for free;
  accurate while tolerances stay in the first-order regime (the tests
  quantify the agreement).

The sampled statistics also validate the corner analysis: every sample
must fall inside the constructed fast/slow corner delays.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.netlist import Circuit
from repro.core.sensitivity import delay_sensitivities
from repro.errors import AnalysisError
from repro.rctree.generalized_elmore import generalized_elmore_delay


@dataclasses.dataclass(frozen=True)
class MonteCarloReport:
    """Sampled delay distribution."""

    node: str
    nominal: float
    samples: np.ndarray
    method: str

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std())

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.samples, q))

    @property
    def worst(self) -> float:
        return float(self.samples.max())

    @property
    def best(self) -> float:
        return float(self.samples.min())


def delay_distribution(
    circuit: Circuit,
    node: str | int,
    tolerances: dict[str, float],
    samples: int = 500,
    seed: int = 0,
    source_values: dict[str, float] | None = None,
    method: str = "linear",
) -> MonteCarloReport:
    """Sample the first-moment delay under uniform element variation."""
    if method not in ("linear", "exact"):
        raise AnalysisError(f"unknown Monte Carlo method {method!r}")
    if samples < 1:
        raise AnalysisError("need at least one sample")
    sens = delay_sensitivities(circuit, node, source_values)
    unknown = set(tolerances) - set(sens.element_values)
    if unknown:
        raise AnalysisError(f"tolerances name unknown R/C elements: {sorted(unknown)}")

    rng = np.random.default_rng(seed)
    names = sorted(tolerances)
    tols = np.array([tolerances[n] for n in names])
    deltas = rng.uniform(-1.0, 1.0, size=(samples, len(names))) * tols

    if method == "linear":
        scaled = sens.scaled_gradient()
        weights = np.array([scaled[n] for n in names])
        values = sens.elmore_delay + deltas @ weights
        return MonteCarloReport(sens.node, sens.elmore_delay, values, method)

    values = np.empty(samples)
    for i in range(samples):
        sample_circuit = circuit.copy()
        for name, delta in zip(names, deltas[i]):
            element = sample_circuit[name]
            if isinstance(element, Resistor):
                sample_circuit.replace(dataclasses.replace(
                    element, resistance=element.resistance * (1.0 + delta)))
            elif isinstance(element, Capacitor):
                sample_circuit.replace(dataclasses.replace(
                    element, capacitance=element.capacitance * (1.0 + delta)))
        values[i] = generalized_elmore_delay(sample_circuit, sens.node, source_values)
    return MonteCarloReport(sens.node, sens.elmore_delay, values, method)
