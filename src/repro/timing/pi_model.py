"""Driving-point π-models and effective capacitance from AWE moments.

The paper's moments have a second classic consumer besides waveform
estimation: the *driver side*.  The gate that drives an RLC net does not
see a lumped capacitor — it sees the net's driving-point admittance
``Y(s)``, whose first three moments define the O'Brien–Savarino π-model,
and from the π-model the "effective capacitance" iteration (Qian,
Pullela, Pillage — the direct successor work to AWE) reduces the load to
the single number gate libraries are characterised against.

* :func:`driving_point_moments` — ``Y(s) = y₀ + y₁s + y₂s² + y₃s³ + …``
  from the same LU-factored recursion as all other moments (the current
  moments of the driving source).
* :func:`pi_model` — the unique C₁–R–C₂ π matching ``y₁, y₂, y₃``:
  ``C₂ = y₂²/y₃``, ``R = −y₃²/y₂³``, ``C₁ = y₁ − C₂``.
* :func:`effective_capacitance` — the single capacitor that, behind the
  same driver, crosses 50 % of the swing at the same time as the full
  π-load (charge-equivalence at the delay point, solved by bisection on
  closed-form single/two-pole responses).

Resistive shunt paths (grounded resistors) give ``y₀ ≠ 0``; the π-model
is then fit to the capacitive part and ``y₀`` reported separately.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.core.driver import AweAnalyzer
from repro.analysis.sources import Ramp, Step
from repro.errors import AnalysisError


def driving_point_moments(
    system: MnaSystem, source: str, count: int = 4
) -> np.ndarray:
    """Moments of the driving-point admittance seen by ``source``.

    ``Y(s) = I(s)/V(s)`` with ``I`` the current the source delivers (the
    negative of the MNA branch current, which is directed out of the
    positive node *into* the source).  ``count`` moments are returned,
    ``y₀`` first.
    """
    row = system.index.current(source)
    column = system.index.source(source)
    rhs = system.b_column(column)
    moments = np.empty(count)
    vector = system.solve_augmented(rhs)
    moments[0] = -vector[row]
    for k in range(1, count):
        vector = system.solve_augmented(-(system.C @ vector))
        moments[k] = -vector[row]
    return moments


@dataclasses.dataclass(frozen=True)
class PiModel:
    """The C₁–R–C₂ reduced load: C₁ at the driver, R to C₂.

    ``y0`` carries any resistive (DC) part of the admittance that the
    purely capacitive π cannot represent (grounded resistors in the net).
    ``total_capacitance`` is the y₁ lumped value — the "just sum the caps"
    load a pre-AWE flow would use.
    """

    c_near: float
    resistance: float
    c_far: float
    y0: float = 0.0

    @property
    def total_capacitance(self) -> float:
        return self.c_near + self.c_far

    def admittance(self, s) -> np.ndarray:
        """``Y_π(s)`` (without the y₀ DC part), vectorised over ``s``."""
        s = np.asarray(s, dtype=complex)
        return s * self.c_near + s * self.c_far / (1.0 + s * self.resistance * self.c_far)

    def as_circuit(self, driver_resistance: float) -> Circuit:
        """The driver + π-load test circuit used for delay comparisons."""
        ckt = Circuit("pi model load")
        ckt.add_voltage_source("Vdrv", "in", "0")
        ckt.add_resistor("Rdrv", "in", "drv", driver_resistance)
        ckt.add_capacitor("C1", "drv", "0", max(self.c_near, 1e-21))
        ckt.add_resistor("Rpi", "drv", "far", max(self.resistance, 1e-6))
        ckt.add_capacitor("C2", "far", "0", max(self.c_far, 1e-21))
        return ckt


def pi_model(system: MnaSystem, source: str) -> PiModel:
    """Fit the O'Brien–Savarino π-model to the driving-point moments."""
    y = driving_point_moments(system, source, 4)
    y0, y1, y2, y3 = y
    if y1 <= 0:
        raise AnalysisError("driving-point load has no capacitive part")
    if y2 == 0.0 or y3 == 0.0:
        # Degenerate (single lumped capacitor): all capacitance is near.
        return PiModel(c_near=y1, resistance=0.0, c_far=0.0, y0=y0)
    c_far = y2 * y2 / y3
    resistance = -(y3 * y3) / (y2 ** 3)
    c_near = y1 - c_far
    if c_far <= 0 or resistance <= 0 or c_near < -1e-18:
        raise AnalysisError(
            "driving-point moments do not admit a passive pi-model "
            f"(y = {y}); the net likely has inductive or active behaviour"
        )
    return PiModel(c_near=max(c_near, 0.0), resistance=resistance, c_far=c_far, y0=y0)


def _delay_50_with_load(
    driver_resistance: float,
    load_circuit: Circuit,
    rise_time: float | None,
    v_swing: float,
) -> float:
    stimulus = (
        Step(0.0, v_swing)
        if rise_time is None or rise_time <= 0.0
        else Ramp(0.0, v_swing, rise_time=rise_time)
    )
    analyzer = AweAnalyzer(load_circuit, {"Vdrv": stimulus})
    response = analyzer.response("drv", error_target=1e-3)
    return response.delay(0.5 * v_swing)


def effective_capacitance(
    pi: PiModel,
    driver_resistance: float,
    rise_time: float | None = None,
    v_swing: float = 5.0,
    tolerance: float = 1e-3,
) -> float:
    """The single capacitor delay-equivalent to the π-load.

    Bisects on C so that the driver's 50 %-crossing at its output matches
    the π-load case.  Shielding makes ``C_eff ≤ C₁+C₂`` always, with
    ``C_eff → C₁+C₂`` for slow drivers/edges and ``C_eff → C₁`` when the
    π-resistance hides C₂ from a fast driver.
    """
    target = _delay_50_with_load(
        driver_resistance, pi.as_circuit(driver_resistance), rise_time, v_swing
    )

    def delay_with_ceff(c_value: float) -> float:
        ckt = Circuit("ceff load")
        ckt.add_voltage_source("Vdrv", "in", "0")
        ckt.add_resistor("Rdrv", "in", "drv", driver_resistance)
        ckt.add_capacitor("Ceff", "drv", "0", max(c_value, 1e-21))
        return _delay_50_with_load(driver_resistance, ckt, rise_time, v_swing)

    low = max(pi.c_near, 1e-3 * pi.total_capacitance)
    high = pi.total_capacitance
    if delay_with_ceff(high) <= target:
        return high  # no shielding visible at this operating point
    for _ in range(60):
        mid = 0.5 * (low + high)
        if delay_with_ceff(mid) < target:
            low = mid
        else:
            high = mid
        if (high - low) <= tolerance * pi.total_capacitance:
            break
    return 0.5 * (low + high)
