"""Clock-skew analysis: one moment pass, every leaf delay.

The economics that made AWE a timing-analyzer engine: the moment vectors
are computed for the *whole* MNA vector at once, so after one LU
factorisation and one recursion every output node's model costs only a
small per-node Padé solve.  Skew analysis — the spread of threshold
crossings across all leaves of a clock net — is the natural showcase.

:func:`skew_report` measures every sink's threshold delay from one shared
:class:`~repro.core.driver.AweAnalyzer` and returns the skew, the
extreme sinks, and per-sink delays.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.sources import Stimulus
from repro.circuit.netlist import Circuit
from repro.core.driver import AweAnalyzer
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class SkewReport:
    """Per-sink threshold delays and their spread."""

    threshold: float
    delays: dict[str, float]
    orders: dict[str, int]

    @property
    def skew(self) -> float:
        """max − min threshold-crossing time across sinks."""
        values = list(self.delays.values())
        return max(values) - min(values)

    @property
    def earliest(self) -> tuple[str, float]:
        node = min(self.delays, key=self.delays.__getitem__)
        return node, self.delays[node]

    @property
    def latest(self) -> tuple[str, float]:
        node = max(self.delays, key=self.delays.__getitem__)
        return node, self.delays[node]

    def sorted_delays(self) -> list[tuple[str, float]]:
        return sorted(self.delays.items(), key=lambda pair: pair[1])


def skew_report(
    circuit: Circuit,
    stimuli: dict[str, Stimulus],
    sinks: list[str],
    threshold: float,
    error_target: float = 0.005,
    max_order: int = 8,
) -> SkewReport:
    """Threshold delays of every sink from one shared AWE analysis."""
    if not sinks:
        raise AnalysisError("no sinks given")
    analyzer = AweAnalyzer(circuit, stimuli, max_order=max_order)
    delays: dict[str, float] = {}
    orders: dict[str, int] = {}
    for sink in sinks:
        response = analyzer.response(sink, error_target=error_target)
        delays[sink] = response.delay(threshold)
        orders[sink] = response.order
    return SkewReport(threshold=threshold, delays=delays, orders=orders)


def tree_leaves(circuit: Circuit, prefix: str = "leaf") -> list[str]:
    """Node names starting with ``prefix`` (the clock-tree convention)."""
    return [node for node in circuit.nodes if node.startswith(prefix)]
