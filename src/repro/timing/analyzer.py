"""Path timing analysis: chained stages with slope propagation.

The paper's Sec. 4.3 point — input rise time "can have a significant, even
dominant impact" — becomes operational here: each stage's output slew (its
10–90 % transition time at the critical receiver) is the next stage's
input ramp time, and its threshold-crossing instant is the next stage's
switch time.  This is the classic timing-analyzer inner loop (Crystal/TV
[1], [3]) with AWE as the per-net delay engine instead of the Elmore
formula.
"""

from __future__ import annotations

import dataclasses

from repro.errors import AnalysisError
from repro.timing.stage import Stage, StageResult


@dataclasses.dataclass(frozen=True)
class StageTiming:
    """Resolved timing of one stage along the path."""

    stage_name: str
    input_event_time: float
    input_slew: float
    output_event_time: float
    output_slew: float
    result: StageResult


class PathTimingAnalyzer:
    """Evaluate a pipeline of stages in topological (list) order.

    ``path`` lists ``(stage, critical_sink)`` pairs: the critical sink is
    the receiver whose waveform drives the next stage.  Gate switching is
    treated as instantaneous at the receiver's threshold crossing (the
    gate-delay contribution itself would come from a device model, which
    the paper — and hence this reproduction — folds into the driver
    resistance).
    """

    def __init__(self, path: list[tuple[Stage, str]]):
        if not path:
            raise AnalysisError("an empty path has no timing")
        for stage, sink in path:
            if sink not in {r.node for r in stage.sinks}:
                raise AnalysisError(
                    f"stage {stage.name!r} has no receiver {sink!r}"
                )
        self.path = path

    def analyze(
        self, start_time: float = 0.0, start_slew: float = 0.0
    ) -> list[StageTiming]:
        """Propagate an input event through the whole path.

        Returns one :class:`StageTiming` per stage; the last entry's
        ``output_event_time`` is the path delay.
        """
        timings: list[StageTiming] = []
        event_time, slew = start_time, start_slew
        for stage, critical_sink in self.path:
            result = stage.evaluate(input_event_time=event_time, input_slew=slew)
            report = result.reports[critical_sink]
            if report.threshold_delay is None:
                raise AnalysisError(
                    f"stage {stage.name!r} never crosses its threshold at "
                    f"{critical_sink!r}"
                )
            timing = StageTiming(
                stage_name=stage.name,
                input_event_time=event_time,
                input_slew=slew,
                output_event_time=report.threshold_delay,
                output_slew=report.slew_10_90,
                result=result,
            )
            timings.append(timing)
            event_time = timing.output_event_time
            slew = timing.output_slew
        return timings

    def path_delay(self, start_time: float = 0.0, start_slew: float = 0.0) -> float:
        """Total input-event → last-threshold-crossing delay."""
        timings = self.analyze(start_time, start_slew)
        return timings[-1].output_event_time - start_time
