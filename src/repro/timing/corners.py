"""Process-corner delay analysis from the adjoint gradient.

Interconnect R and C values vary with process (width/thickness/dielectric
corners).  Enumerating 2^n value corners is hopeless; the adjoint delay
gradient (:mod:`repro.core.sensitivity`) identifies the extreme corners
directly — the first moment is monotone in each element value in the
direction of its gradient sign — so the fast/slow corner circuits can be
*constructed* and re-evaluated exactly, with the linearised spread
``Σ |x·∂T/∂x|·tol`` available as the zero-extra-solve estimate.

This is the standard early-timing variational flow, expressed on the
paper's moment machinery.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.netlist import Circuit
from repro.core.sensitivity import delay_sensitivities
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class CornerReport:
    """Nominal delay plus the variational spread.

    ``linear_low``/``linear_high`` come from the gradient (no extra
    solves); ``corner_low``/``corner_high`` are exact re-evaluations of
    the constructed extreme-corner circuits.
    """

    node: str
    nominal: float
    linear_low: float
    linear_high: float
    corner_low: float
    corner_high: float
    fast_corner: Circuit
    slow_corner: Circuit

    @property
    def spread(self) -> float:
        """Exact corner-to-corner delay spread."""
        return self.corner_high - self.corner_low


def _scaled_circuit(circuit: Circuit, scales: dict[str, float], title: str) -> Circuit:
    updated = circuit.copy(title)
    for name, factor in scales.items():
        element = updated[name]
        if isinstance(element, Resistor):
            updated.replace(
                dataclasses.replace(element, resistance=element.resistance * factor)
            )
        elif isinstance(element, Capacitor):
            updated.replace(
                dataclasses.replace(element, capacitance=element.capacitance * factor)
            )
    return updated


def delay_corners(
    circuit: Circuit,
    node: str | int,
    tolerances: dict[str, float],
    source_values: dict[str, float] | None = None,
) -> CornerReport:
    """Variational delay analysis at ``node``.

    ``tolerances`` maps element names (R or C) to relative tolerances
    (``0.15`` = ±15 %).  Elements not listed are held nominal.

    The slow corner scales every listed element in the direction its
    gradient says increases the delay; the fast corner the opposite.
    Returns linearised and exact bounds (exact requires two more full
    delay evaluations).
    """
    sens = delay_sensitivities(circuit, node, source_values)
    unknown = set(tolerances) - set(sens.element_values)
    if unknown:
        raise AnalysisError(f"tolerances name unknown R/C elements: {sorted(unknown)}")
    for name, tol in tolerances.items():
        if not 0.0 <= tol < 1.0:
            raise AnalysisError(f"tolerance for {name!r} must be in [0, 1)")

    gradient = {**sens.d_resistance, **sens.d_capacitance}
    scaled = sens.scaled_gradient()

    slow_scales, fast_scales = {}, {}
    linear_delta_high = 0.0
    linear_delta_low = 0.0
    for name, tol in tolerances.items():
        direction = 1.0 if gradient[name] >= 0 else -1.0
        slow_scales[name] = 1.0 + direction * tol
        fast_scales[name] = 1.0 - direction * tol
        linear_delta_high += abs(scaled[name]) * tol
        linear_delta_low -= abs(scaled[name]) * tol

    slow = _scaled_circuit(circuit, slow_scales, f"{circuit.title} [slow corner]")
    fast = _scaled_circuit(circuit, fast_scales, f"{circuit.title} [fast corner]")
    name = sens.node
    corner_high = delay_sensitivities(slow, name, source_values).elmore_delay
    corner_low = delay_sensitivities(fast, name, source_values).elmore_delay

    return CornerReport(
        node=name,
        nominal=sens.elmore_delay,
        linear_low=sens.elmore_delay + linear_delta_low,
        linear_high=sens.elmore_delay + linear_delta_high,
        corner_low=corner_low,
        corner_high=corner_high,
        fast_corner=fast,
        slow_corner=slow,
    )


def uniform_tolerances(circuit: Circuit, tolerance: float) -> dict[str, float]:
    """Every R and C at the same relative tolerance — the common corner
    model when per-layer data is unavailable."""
    return {
        element.name: tolerance
        for element in circuit
        if isinstance(element, (Resistor, Capacitor))
    }
