"""Solver instrumentation: cheap counters for the linear-algebra hot path.

The paper's economic argument (Sec. IV, Fig. 19) is an *operation count*:
one LU factorisation per circuit, then one forward/back substitution per
moment.  :class:`SolverStats` makes that count observable — every
:class:`~repro.analysis.mna.MnaSystem` owns one, the
:class:`~repro.core.driver.AweAnalyzer` layers its own counters on top of
the same object, and the :class:`~repro.engine.batch.BatchEngine` merges
the per-circuit objects into a batch-wide view (``stats()`` dicts, and
``python -m repro batch --stats`` on the command line).

The field-by-field counter semantics (what counts as one triangular
solve, how the achieved batching factor is derived, which fields are
seconds) live in ``docs/observability.md`` alongside the trace-span and
run-report documentation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: Ordered counter/timer field names; the canonical dict layout.
STAT_FIELDS: tuple[str, ...] = (
    "lu_factorizations",
    "triangular_solves",
    "solve_columns",
    "moment_solves",
    "moments_computed",
    "order_escalations",
    "responses",
    "factor_time_s",
    "solve_time_s",
    "wall_time_s",
)

_TIME_FIELDS = frozenset(f for f in STAT_FIELDS if f.endswith("_s"))


class SolverStats:
    """Mutable counter bundle shared along one analysis pipeline.

    All fields start at zero; integer counters stay integers, ``*_s``
    fields accumulate seconds as floats.  The object is deliberately
    permissive — unknown keys in :meth:`merge` are accumulated too, so
    higher layers (the batch engine) can add their own counters without
    subclassing.
    """

    __slots__ = ("_extra",) + STAT_FIELDS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for field in STAT_FIELDS:
            setattr(self, field, 0.0 if field in _TIME_FIELDS else 0)
        self._extra: dict[str, float] = {}

    @contextmanager
    def timer(self, field: str):
        """Accumulate the wall time of a ``with`` block into ``field``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(field, time.perf_counter() - start)

    def add(self, field: str, amount) -> None:
        """Accumulate ``amount`` into a named (possibly new) counter."""
        if field in STAT_FIELDS:
            setattr(self, field, getattr(self, field) + amount)
        else:
            self._extra[field] = self._extra.get(field, 0) + amount

    def merge(self, other: "SolverStats | dict") -> "SolverStats":
        """Accumulate another stats object (or ``as_dict`` output)."""
        items = other.as_dict() if isinstance(other, SolverStats) else other
        for field, amount in items.items():
            self.add(field, amount)
        return self

    def as_dict(self) -> dict[str, float]:
        """Plain-dict snapshot (stable field order, extras appended)."""
        out: dict[str, float] = {f: getattr(self, f) for f in STAT_FIELDS}
        out.update(sorted(self._extra.items()))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"SolverStats({body})"


def format_stats(stats: dict[str, float], indent: str = "  ") -> str:
    """Render a stats dict as aligned ``name value`` lines (CLI output)."""
    if not stats:
        return f"{indent}(no counters)"
    width = max(len(name) for name in stats)
    lines = []
    for name, value in stats.items():
        if isinstance(value, float) and name.endswith("_s"):
            rendered = f"{value:.6f}"
        elif isinstance(value, float) and value == int(value):
            rendered = str(int(value))
        else:
            rendered = str(value)
        lines.append(f"{indent}{name:<{width}}  {rendered}")
    return "\n".join(lines)
