"""Key-affinity routing: which shard owns a canonical request key.

The gateway's whole sharding story rests on one property: the request
key (:func:`repro.service.canon.request_key` /
:func:`~repro.service.canon.sta_request_key`) is a SHA-256 content
address, so its hex digits are already uniformly distributed and *stable
across processes and restarts* — no extra hashing, no coordination, no
rendezvous table.  Taking the top 64 bits modulo the shard count gives a
placement that

* every gateway replica computes identically (scale the front end
  without a shared routing table),
* survives gateway restarts (a key lands on the same shard tomorrow, so
  that shard's in-memory LRU stays the authority for it), and
* keeps each shard's working set disjoint — N shards means N times the
  aggregate memory-cache capacity with zero duplication, the "two-tier"
  half of the design.

Changing the shard count remaps ~(1 - 1/N) of keys, like any modulo
scheme; the shared disk tier (one ``--cache-dir`` under every shard)
absorbs the resulting misses, so resizing costs latency, not work.
"""

from __future__ import annotations

#: Hex digits of the key consumed by the placement decision (64 bits —
#: far beyond any plausible shard count, so the modulo is unbiased for
#: every N that fits in memory).
_PREFIX_HEX = 16


def shard_for_key(key: str, shards: int) -> int:
    """The shard index owning ``key`` (a canonical request-key hex digest).

    Pure and deterministic: same key + same shard count → same index, in
    any process, forever.  Raises :class:`ValueError` for a non-positive
    shard count or a key that is not hex.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    try:
        prefix = int(key[:_PREFIX_HEX], 16)
    except (ValueError, TypeError):
        raise ValueError(
            f"request keys are hex digests, got {key!r}") from None
    return prefix % shards


__all__ = ["shard_for_key"]
