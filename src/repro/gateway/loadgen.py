"""``repro loadgen``: seeded request mixes driven at fixed concurrency.

The gateway's throughput claims are meaningless without a reproducible
way to produce load, so this module is the benchmark harness *and* the
CLI driver behind ``benchmarks/test_ext_gateway_scaling.py`` and the CI
smoke job.  Three mix shapes cover the design's two mechanisms:

* ``miss`` — every request a distinct seeded deck: pure cache-miss
  traffic, the scale-out case (N shards ≈ N engines' worth of RPS on a
  multi-core host);
* ``hot`` — requests arrive in *rounds* of identical decks, one fresh
  deck per round: each round is a thundering herd on an uncached key,
  the coalescing case (the gateway computes once per round and fans
  out; a single daemon computes every copy);
* ``mixed`` — alternating rounds of both, the realistic blend.

Decks are generated from the seed alone (seeded RC ladders via
:func:`seeded_chain_deck`), so the same ``(mix, requests, concurrency,
seed)`` tuple replays the same byte-identical request stream anywhere —
mixes compare across machines and across code versions.

The driver is deliberately the *production* client
(:class:`~repro.service.client.AnalysisClient`, one per worker thread):
measured latency includes the client's full framing and retry stack,
which is what a real caller pays.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service.client import AnalysisClient

MIXES = ("miss", "hot", "mixed")


def seeded_chain_deck(seed: int, sections: int = 4) -> tuple[str, str]:
    """A deterministic RC-ladder deck for ``seed``; returns
    ``(deck_text, output_node)``.  Distinct seeds give distinct element
    values and therefore distinct canonical request keys."""
    if sections < 1:
        raise ValueError(f"sections must be >= 1, got {sections!r}")
    rng = random.Random(f"loadgen:{seed}")
    lines = [f"loadgen chain seed={seed}", "Vin in 0 STEP(0 5)"]
    previous = "in"
    for stage in range(1, sections + 1):
        node = f"n{stage}"
        lines.append(
            f"R{stage} {previous} {node} {rng.uniform(0.5, 2.0):.6f}k")
        lines.append(f"C{stage} {node} 0 {rng.uniform(0.2, 1.5):.6f}p")
        previous = node
    lines.append(".end")
    return "\n".join(lines) + "\n", previous


def build_mix(mix: str, requests: int, *, concurrency: int = 8,
              seed: int = 0, sections: int = 4) -> list[dict]:
    """The request list for a named mix (see module doc).

    ``hot``/``mixed`` rounds are sized to ``concurrency`` so that the
    identical copies of one deck are exactly the requests in flight
    together — the shape that exercises coalescing rather than the
    cache.
    """
    if mix not in MIXES:
        raise ValueError(f"mix must be one of {', '.join(MIXES)}, got {mix!r}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests!r}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency!r}")
    payloads: list[dict] = []
    base = seed * 1_000_003
    next_seed = 0
    round_index = 0
    while len(payloads) < requests:
        if mix == "miss":
            hot_round = False
        elif mix == "hot":
            hot_round = True
        else:
            hot_round = (round_index % 2 == 1)
        count = min(concurrency, requests - len(payloads))
        if hot_round:
            deck, node = seeded_chain_deck(base + next_seed,
                                           sections=sections)
            next_seed += 1
            payloads.extend({"deck": deck, "node": node}
                            for _ in range(count))
        else:
            for _ in range(count):
                deck, node = seeded_chain_deck(base + next_seed,
                                               sections=sections)
                next_seed += 1
                payloads.append({"deck": deck, "node": node})
        round_index += 1
    return payloads


def _percentile(sorted_values: list, fraction: float) -> float:
    """Linearly interpolated percentile of an ascending list.

    The convention is ``numpy.percentile(..., method="linear")``: the
    percentile sits at fractional rank ``fraction * (n - 1)`` and is
    interpolated between the two bracketing samples.  Nearest-rank
    truncation (the previous behaviour) is fine at n >= 100 but badly
    quantised below it — with 8 samples a p99 that snaps to the maximum
    overstates tail latency by whatever gap the last two samples have.
    """
    if not sorted_values:
        return 0.0
    position = min(1.0, max(0.0, fraction)) * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


def run_loadgen(url: str, payloads: list, *, concurrency: int = 8,
                retries: int = 2, timeout: float = 120.0) -> dict:
    """Drive ``payloads`` against ``url`` with ``concurrency`` worker
    threads; returns the measurement document (JSON-friendly).

    Rounds of identical payloads are submitted back to back, so on a
    gateway they coalesce; ``failures`` lists every request that did not
    come back 200 even after the client's retries — the number the
    crash-campaign acceptance criterion requires to be zero.
    """
    local = threading.local()

    def client() -> AnalysisClient:
        if not hasattr(local, "client"):
            local.client = AnalysisClient(url, timeout=timeout,
                                          retries=retries)
        return local.client

    latencies_s = [0.0] * len(payloads)
    cache_hits = [False] * len(payloads)
    failures: list = []
    failures_lock = threading.Lock()

    def one(index: int) -> None:
        payload = payloads[index]
        started = time.perf_counter()
        try:
            outcome = client().analyze(payload["deck"], payload["node"])
            cache_hits[index] = outcome.cached
            ok = outcome.ok
            detail = None if ok else "report contains failed jobs"
        except Exception as exc:
            ok, detail = False, f"{type(exc).__name__}: {exc}"
        latencies_s[index] = time.perf_counter() - started
        if not ok:
            with failures_lock:
                failures.append({"index": index, "error": detail})

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        list(pool.map(one, range(len(payloads))))
    elapsed = time.perf_counter() - started

    ordered = sorted(latencies_s)
    return {
        "url": url,
        "requests": len(payloads),
        "concurrency": concurrency,
        "elapsed_s": round(elapsed, 6),
        "rps": round(len(payloads) / elapsed, 3) if elapsed > 0 else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1e3, 3),
        "cache_hits": sum(cache_hits),
        "failures": failures,
        "failed": len(failures),
    }


def coalesced_delta(before: dict, after: dict) -> int:
    """The gateway's ``coalesced_requests`` movement between two
    ``/metrics`` snapshots (0 against a plain daemon, which has no such
    counter — a loadgen target need not be a gateway)."""
    return (after.get("coalesced_requests", 0)
            - before.get("coalesced_requests", 0))


__all__ = ["MIXES", "build_mix", "coalesced_delta", "run_loadgen",
           "seeded_chain_deck"]
