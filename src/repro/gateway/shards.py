"""Shard workers: single-engine ``repro serve`` daemons the gateway owns.

A shard is one ordinary analysis daemon (:mod:`repro.service.server`)
run as a child process — the gateway adds nothing to the worker side, so
every daemon behaviour (admission control, per-request deadlines,
degraded mode, ``/metrics``) holds per shard and is observable through
it.  This module handles only process lifecycle:

* :class:`ShardProcess` spawns ``python -m repro serve --port 0``,
  parses the ``repro service listening on URL`` announce line to learn
  the ephemeral port, and can kill / respawn the child (respawning is
  how the gateway turns a crashed shard into a retried request instead
  of a client-visible failure);
* :class:`AttachedShard` wraps an externally managed URL (an in-process
  :class:`~repro.service.server.ServiceServer` in tests and docs, or a
  daemon on another host) behind the same interface, minus lifecycle.

Spawned children get a scrubbed environment: the parent's
``REPRO_FAULTS`` is dropped so a fault plan installed to exercise the
*gateway* (``shard_crash``, boundary 503s) does not leak into every
worker and fire twice.  Pass ``fault_spec`` explicitly to inject faults
inside a shard.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import repro
from repro.faults import ENV_SEED, ENV_SPEC

#: The daemon's announce-line prefix (printed by ``repro serve`` once
#: bound; wrappers parse it — see docs/service.md "Command line").
ANNOUNCE_PREFIX = "repro service listening on "

#: How long a shard may take to print its announce line.
SPAWN_TIMEOUT_S = 30.0


def _shard_environment(fault_spec: str | None, fault_seed: int) -> dict:
    """A child environment that can import ``repro`` and only carries a
    fault plan when one was explicitly requested for the shard."""
    env = dict(os.environ)
    env.pop(ENV_SPEC, None)
    env.pop(ENV_SEED, None)
    if fault_spec:
        env[ENV_SPEC] = fault_spec
        env[ENV_SEED] = str(fault_seed)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (package_root + os.pathsep + existing
                             if existing else package_root)
    return env


class AttachedShard:
    """A shard the gateway routes to but does not own.

    Used where process spawning is wrong for the job: tier-1 tests and
    executable docs attach in-process :class:`ServiceServer` instances
    (fast, no subprocess), and a deployment can attach daemons running
    on other hosts.  ``alive`` is always True — health is judged by the
    gateway's own forward outcomes — and kill/respawn are refused.
    """

    owned = False

    def __init__(self, url: str):
        if not url.startswith("http://"):
            raise ValueError(f"shard URLs are http://host:port, got {url!r}")
        self.url = url.rstrip("/")
        self.restarts = 0

    @property
    def address(self) -> tuple[str, int]:
        hostport = self.url[len("http://"):]
        host, _, port = hostport.rpartition(":")
        return host, int(port)

    def alive(self) -> bool:
        return True

    def kill(self) -> None:
        raise RuntimeError("cannot kill an attached shard (not owned)")

    def respawn(self) -> str:
        raise RuntimeError("cannot respawn an attached shard (not owned)")

    def terminate(self, timeout: float = 10.0) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttachedShard({self.url!r})"


class ShardProcess:
    """One owned shard: spawn, watch, kill, respawn a ``serve`` child.

    All methods are blocking (the gateway calls them through its event
    loop's executor).  ``spawn``/``respawn`` return the announced URL.
    """

    owned = True

    def __init__(self, index: int, *, workers: int = 1,
                 engine_workers: int = 1, queue_size: int = 64,
                 cache_bytes: int = 64 * 1024 * 1024,
                 cache_dir: str | None = None,
                 timeout: float | None = None,
                 default_reduce: bool = False,
                 fault_spec: str | None = None, fault_seed: int = 0):
        self.index = index
        self.workers = workers
        self.engine_workers = engine_workers
        self.queue_size = queue_size
        self.cache_bytes = cache_bytes
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.default_reduce = default_reduce
        self.fault_spec = fault_spec
        self.fault_seed = fault_seed
        self.url: str | None = None
        self.restarts = 0
        self._process: subprocess.Popen | None = None

    # -- lifecycle -----------------------------------------------------

    def _command(self) -> list:
        command = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", str(self.workers),
            "--engine-workers", str(self.engine_workers),
            "--queue-size", str(self.queue_size),
            "--cache-bytes", str(self.cache_bytes),
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", self.cache_dir]
        if self.timeout is not None:
            command += ["--timeout", str(self.timeout)]
        if self.default_reduce:
            command += ["--reduce"]
        if self.fault_spec:
            command += ["--faults", self.fault_spec,
                        "--fault-seed", str(self.fault_seed)]
        return command

    def spawn(self) -> str:
        """Start the child and block until it announces its URL."""
        if self._process is not None and self._process.poll() is None:
            return self.url
        process = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_shard_environment(self.fault_spec, self.fault_seed),
            text=True,
        )
        deadline = time.monotonic() + SPAWN_TIMEOUT_S
        url = None
        for line in process.stdout:
            if line.startswith(ANNOUNCE_PREFIX):
                url = line[len(ANNOUNCE_PREFIX):].strip()
                break
            if time.monotonic() > deadline:
                break
        if url is None:
            process.kill()
            process.wait()
            raise RuntimeError(
                f"shard {self.index} failed to announce within "
                f"{SPAWN_TIMEOUT_S:g} s (exit code {process.poll()})")
        # Keep draining stdout so the child can never block on a full
        # pipe, whatever it prints after the announce.
        threading.Thread(target=process.stdout.read, daemon=True).start()
        self._process = process
        self.url = url
        return url

    def respawn(self) -> str:
        """Replace a dead (or killed) child with a fresh one."""
        if self._process is not None:
            if self._process.poll() is None:
                self._process.kill()
            self._process.wait()
            self._process = None
        self.restarts += 1
        return self.spawn()

    # -- health / teardown ---------------------------------------------

    def alive(self) -> bool:
        return self._process is not None and self._process.poll() is None

    @property
    def address(self) -> tuple[str, int]:
        if self.url is None:
            raise RuntimeError(f"shard {self.index} was never spawned")
        hostport = self.url[len("http://"):]
        host, _, port = hostport.rpartition(":")
        return host, int(port)

    def kill(self) -> None:
        """SIGKILL the child — the crash the ``shard_crash`` probe
        injects: no drain, no cleanup, exactly an OOM kill."""
        if self._process is not None and self._process.poll() is None:
            self._process.send_signal(signal.SIGKILL)
            self._process.wait()

    def terminate(self, timeout: float = 10.0) -> None:
        """Graceful stop: SIGTERM (the daemon drains), then SIGKILL."""
        if self._process is None:
            return
        if self._process.poll() is None:
            self._process.send_signal(signal.SIGTERM)
            try:
                self._process.wait(timeout)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait()
        self._process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive() else "dead"
        return f"ShardProcess(index={self.index}, url={self.url!r}, {state})"


__all__ = ["ANNOUNCE_PREFIX", "AttachedShard", "ShardProcess"]
