"""The sharded async gateway: one front door over N analysis daemons.

The daemon (:mod:`repro.service.server`) amortises work *within* one
process: a hot engine pool and a content-addressed cache.  This module
amortises across processes — the paper's "moments are cheap once
factored" economics applied to a fleet::

    clients ──► asyncio gateway (one event loop, no thread per request)
                  │ parse + canonical key        (repro.service.canon)
                  │ tier-1 cache (memory LRU + shared disk)  hit ─► 200
                  │ in-flight key already computing?  join ──► fan-out
                  │ shard = key-affinity route   (repro.gateway.routing)
                  ▼
        shard 0 · shard 1 · … · shard N-1   (single-engine `repro serve`
                                             children, each with its own
                                             memory LRU over one shared
                                             disk cache directory)

Why each piece exists:

* **Key-affinity sharding** — requests are routed by the same
  SHA-256 content address that names their cache entry, so one shard's
  in-memory LRU is the single authority for each key: N shards give N
  disjoint working sets (aggregate memory capacity scales with the
  fleet) and every repeat of a request finds its own history.
* **Request coalescing** — identical keys arriving concurrently await
  *one* computation; the result fans out to every waiter.  A thundering
  herd on a hot deck costs one analysis, not hundreds — on a hot-key
  mix this beats a single daemon by the herd width itself.
* **Two-tier cache** — the gateway serves hits from its own
  :class:`~repro.service.cache.ResultCache` (memory LRU over the shared
  disk directory) without ever touching a shard; misses that a shard
  computes are written through to the same disk tier, so a restarted
  gateway starts warm.
* **Health + shed-load** — a shard that stops answering (after the
  respawn-and-retry below) is marked degraded: requests routed to it
  are refused immediately with 503 + ``Retry-After`` except a single
  canary that probes recovery, mirroring the daemon's own degraded
  mode one level up.
* **Self-healing** — a dead shard process (crash, OOM kill, or the
  ``shard_crash`` fault probe) is respawned and the request retried;
  the client sees the answer, not the obituary.  The
  ``repro.faults`` boundary probes (``http_429`` / ``http_503`` /
  ``http_timeout``) also fire here, so gateway-level chaos is testable
  exactly like daemon-level chaos.
* **Graceful drain** — :meth:`GatewayService.begin_drain` refuses new
  work with 503 (cache hits are still served, and joiners may still
  attach to in-flight computations), waits out the in-flight tasks,
  then SIGTERMs the shards, which drain themselves.

Everything observable carries headers: ``X-Repro-Cache`` (hit/miss),
``X-Repro-Key``, ``X-Repro-Shard``, ``X-Repro-Coalesced``
(leader/joined), ``X-Repro-Elapsed-S`` — and an optional
:class:`~repro.trace.Tracer` receives ``shard_route`` /
``coalesce_join`` / ``shard_restart`` / ``shard_crash_injected`` /
``gateway_shed`` / ``shard_degraded`` / ``shard_recovered`` events.

Stdlib only, like the rest of the serving stack: ``asyncio`` streams on
both faces, the same JSON protocol as the daemon on the wire — the
existing :class:`~repro.service.client.AnalysisClient` works against a
gateway unchanged.
"""

from __future__ import annotations

import asyncio
import collections
import hashlib
import json
import signal
import threading
import time

from repro import faults
from repro.circuit.parser import parse_netlist
from repro.errors import ReproError
from repro.gateway.routing import shard_for_key
from repro.gateway.shards import AttachedShard, ShardProcess
from repro.service.cache import ResultCache
from repro.service.canon import (request_key, sta_request_key,
                                 sweep_request_key)
from repro.service.server import (
    MAX_BODY_BYTES,
    _error_body,
    parse_analyze_request,
    parse_sta_request,
    parse_sweep_request,
)
from repro.trace import NULL_TRACER

#: Transport attempts per request: the first forward plus one retry
#: after a respawn covers the crash-recovery path; the second retry
#: covers a shard that died *during* the respawned forward.
FORWARD_ATTEMPTS = 3

#: Headers propagated from a shard's response to the client (everything
#: else — cache state, timing — is the gateway's own story to tell).
_PROPAGATED_HEADERS = ("retry-after", "x-repro-fault")

#: Byte-identical request bodies seen recently whose canonical key is
#: already known.  A thundering herd sends the *same bytes*, and parsing
#: a deck costs the same order as analysing it — without this memo the
#: gateway would re-parse every copy of a coalesced request and the
#: coalescing win would be parse-bound.  Keyed by the raw body's SHA-256
#: (parsers are pure, so identical bytes always canonicalize alike).
_CANON_MEMO_MAX = 1024


async def _read_http_response(reader):
    """Parse one HTTP/1.x response from ``reader``:
    ``(status, headers_lowercase, body)``."""
    status_line = await reader.readline()
    if not status_line:
        raise EOFError("connection closed before the status line")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise OSError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise EOFError("connection closed inside the headers")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    if length is not None:
        body = await reader.readexactly(int(length))
    else:
        body = await reader.read()
    return status, headers, body


async def _http_post(host: str, port: int, path: str, body: bytes,
                     timeout: float | None):
    """One ``POST`` over a fresh connection (``Connection: close`` —
    shard forwards are infrequent relative to their analysis cost, so
    connection reuse buys nothing worth its failure modes)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        head = (f"POST {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n").encode("ascii")
        writer.write(head + body)
        await writer.drain()
        return await asyncio.wait_for(_read_http_response(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


def _new_health() -> dict:
    return {"requests": 0, "errors": 0, "consecutive_errors": 0,
            "degraded": False, "probing": False, "restarts": 0}


class GatewayService:
    """The gateway's core: routing, caching, coalescing, shard health.

    Lives entirely on one asyncio event loop (no internal locking —
    every mutation happens on loop callbacks); blocking work (process
    spawning, cache disk I/O) is pushed to the loop's default executor.

    Parameters
    ----------
    shards:
        Worker-daemon count to spawn (each a single-engine
        ``repro serve`` child).  Ignored when ``shard_urls`` is given.
    shard_urls:
        Attach mode: route to these already-running daemons instead of
        spawning children (tests and docs attach in-process
        :class:`~repro.service.server.ServiceServer` instances).  The
        attached daemons should share this gateway's ``default_reduce``
        setting, or routing keys and shard cache keys will disagree.
    cache_bytes / cache_dir:
        The gateway-tier :class:`~repro.service.cache.ResultCache`
        budget and the *shared* disk directory (spawned shards write
        through to the same directory, so the tiers converge).
    timeout:
        Default per-request wall-clock budget (a request's own
        ``timeout`` field overrides it); ``None`` = unlimited.
    degraded_threshold:
        Consecutive transport-level forward failures that mark a shard
        degraded (shed-load + canary probing).
    default_reduce:
        Resolved into absent ``reduce`` fields before hashing, exactly
        like the daemon, and passed to spawned shards so both layers
        compute identical keys.
    tracer:
        Optional :class:`~repro.trace.Tracer` receiving gateway events.
    shard_fault_spec / shard_fault_seed:
        A fault plan for the *shards* (normally the parent's plan is
        deliberately not inherited; see :mod:`repro.gateway.shards`).
    """

    def __init__(self, shards: int = 2, *, shard_urls=None,
                 cache_bytes: int = 64 * 1024 * 1024,
                 cache_dir: str | None = None,
                 timeout: float | None = None,
                 degraded_threshold: int = 3,
                 default_reduce: bool = False,
                 shard_workers: int = 1,
                 shard_engine_workers: int = 1,
                 shard_queue_size: int = 64,
                 shard_fault_spec: str | None = None,
                 shard_fault_seed: int = 0,
                 tracer=None):
        if shard_urls is None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        if degraded_threshold < 1:
            raise ValueError(
                f"degraded_threshold must be >= 1, got {degraded_threshold!r}")
        self.shard_count = len(shard_urls) if shard_urls is not None else shards
        self.timeout = timeout
        self.default_reduce = default_reduce
        self.degraded_threshold = degraded_threshold
        self.cache = ResultCache(max_bytes=cache_bytes, directory=cache_dir)
        self.cache_dir = cache_dir
        self._shard_urls = list(shard_urls) if shard_urls is not None else None
        self._shard_options = {
            "workers": shard_workers,
            "engine_workers": shard_engine_workers,
            "queue_size": shard_queue_size,
            "cache_dir": cache_dir,
            "default_reduce": default_reduce,
            "fault_spec": shard_fault_spec,
            "fault_seed": shard_fault_seed,
        }
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._shards: list = []
        self._health: list[dict] = []
        self._respawn_locks: list[asyncio.Lock] = []
        self._inflight: dict[str, asyncio.Task] = {}
        self._canon_memo: collections.OrderedDict = collections.OrderedDict()
        self._draining = False
        self._started = False
        self._started_at = time.monotonic()
        self._counters = {
            "requests_total": 0,
            "requests_ok": 0,
            "requests_failed": 0,
            "bad_requests": 0,
            "coalesced_requests": 0,
            "rejected_draining": 0,
            "rejected_degraded": 0,
            "request_timeouts": 0,
            "shard_errors": 0,
            "shard_restarts": 0,
            "faults_injected": 0,
            "canon_memo_hits": 0,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "GatewayService":
        """Spawn (or attach) the shard fleet; idempotent."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        if self._shard_urls is not None:
            self._shards = [AttachedShard(url) for url in self._shard_urls]
        else:
            self._shards = [
                ShardProcess(index, **self._shard_options)
                for index in range(self.shard_count)
            ]
            await asyncio.gather(*[
                loop.run_in_executor(None, shard.spawn)
                for shard in self._shards
            ])
        self._health = [_new_health() for _ in self._shards]
        # Created here, under the running loop, for 3.9 compatibility.
        self._respawn_locks = [asyncio.Lock() for _ in self._shards]
        self._started = True
        self._started_at = time.monotonic()
        return self

    @property
    def shards(self) -> tuple:
        """The shard fleet (read-only view; ShardProcess/AttachedShard)."""
        return tuple(self._shards)

    def begin_drain(self) -> None:
        """Refuse new computations; hits and in-flight joins still work."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    async def wait_drained(self) -> None:
        """Resolve once every in-flight computation has finished."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)

    async def close(self, timeout: float = 10.0) -> None:
        """Drain, then stop owned shard processes (SIGTERM, they drain
        themselves, SIGKILL as a last resort)."""
        self.begin_drain()
        await self.wait_drained()
        loop = asyncio.get_running_loop()
        await asyncio.gather(*[
            loop.run_in_executor(None, lambda s=shard: s.terminate(timeout))
            for shard in self._shards
        ])
        self._started = False

    # -- the request path ----------------------------------------------

    async def submit(self, raw_body: bytes, kind: str = "analyze"):
        """Handle one ``/analyze``, ``/sta``, or ``/sweep`` body end to
        end; returns
        ``(status, body_bytes, extra_headers)`` like the daemon's
        :meth:`~repro.service.server.AnalysisService.submit`."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._counters["requests_total"] += 1

        plan = faults.active()
        if plan.enabled:
            injected = await self._inject_http_fault(plan)
            if injected is not None:
                return injected

        digest = hashlib.sha256(kind.encode() + b"\x00" + raw_body).digest()
        memoized = self._canon_memo.get(digest)
        if memoized is not None:
            self._canon_memo.move_to_end(digest)
            self._counters["canon_memo_hits"] += 1
            key, request_timeout = memoized
        else:
            try:
                key, params = self._canonicalize(raw_body, kind)
            except (ValueError, ReproError) as exc:
                self._counters["bad_requests"] += 1
                return 400, _error_body(400, str(exc), type(exc).__name__), {}
            request_timeout = params["timeout"]
            self._canon_memo[digest] = (key, request_timeout)
            while len(self._canon_memo) > _CANON_MEMO_MAX:
                self._canon_memo.popitem(last=False)

        index = shard_for_key(key, len(self._shards))
        budget = (request_timeout if request_timeout is not None
                  else self.timeout)

        cached = await loop.run_in_executor(None, self.cache.get, key)
        if cached is not None:
            self._counters["requests_ok"] += 1
            return 200, cached, self._headers(
                key, index, "hit", "none", loop.time() - started)

        task = self._inflight.get(key)
        if task is not None:
            # Coalesce: somebody is already computing this exact key —
            # join them.  Joins bypass drain refusal (the work already
            # exists) and shed-load (they add no shard load).
            coalesced = "joined"
            self._counters["coalesced_requests"] += 1
            self._tracer.event("coalesce_join", key=key, shard=index)
        else:
            if self._draining:
                self._counters["rejected_draining"] += 1
                return 503, _error_body(
                    503, "gateway is draining and no longer accepts work"), {}
            shed = self._shed_check(index)
            if shed is not None:
                return shed
            coalesced = "leader"
            self._tracer.event("shard_route", key=key, shard=index)
            task = loop.create_task(
                self._compute(kind, key, raw_body, index, budget))
            self._inflight[key] = task
            task.add_done_callback(
                lambda _task, _key=key: self._inflight.pop(_key, None))

        # Shield: this requester's deadline must not cancel a shared
        # computation other requesters are waiting on.
        remaining = (None if budget is None
                     else max(budget - (loop.time() - started), 0.0))
        try:
            status, body, extra = await asyncio.wait_for(
                asyncio.shield(task), remaining)
        except asyncio.TimeoutError:
            self._counters["request_timeouts"] += 1
            return 504, _error_body(
                504, f"request exceeded its {budget:g} s budget"), {}
        if status == 200:
            self._counters["requests_ok"] += 1
        elif status >= 500:
            self._counters["requests_failed"] += 1
        headers = self._headers(key, index, "miss", coalesced,
                                loop.time() - started)
        headers.update(extra)
        return status, body, headers

    def _canonicalize(self, raw_body: bytes, kind: str):
        """Parse + content-address a request body — the daemon's own
        parsers, so the gateway can never route on a different identity
        than the shard caches under."""
        if kind == "sta":
            params = parse_sta_request(raw_body)
            key = sta_request_key(
                params["design"], params["k"], params["corners"],
                params["interconnect"], library=params["library"])
        elif kind == "sweep":
            params = parse_sweep_request(raw_body)
            deck = parse_netlist(params["deck"])
            key = sweep_request_key(deck.circuit, deck.stimuli,
                                    params["plan"])
        else:
            params = parse_analyze_request(raw_body)
            deck = parse_netlist(params["deck"])
            if params["reduce"] is None:
                params["reduce"] = self.default_reduce
            key = request_key(
                deck.circuit, deck.stimuli, params["nodes"],
                order=params["order"], error_target=params["error_target"],
                max_order=params["max_order"], threshold=params["threshold"],
                reduce=params["reduce"])
        return key, params

    def _shed_check(self, index: int):
        """Degraded-mode shed-load: while a shard is suspected dead,
        admit one canary and refuse the rest immediately."""
        health = self._health[index]
        if not health["degraded"]:
            return None
        if not health["probing"]:
            health["probing"] = True  # this request becomes the canary
            return None
        self._counters["rejected_degraded"] += 1
        self._tracer.event("gateway_shed", shard=index)
        return 503, _error_body(
            503, f"shard {index} is degraded; shedding load while one "
                 "canary request probes recovery"), {
            "Retry-After": "1", "X-Repro-Shard": str(index)}

    async def _compute(self, kind: str, key: str, raw_body: bytes,
                       index: int, budget: float | None):
        """The coalesced computation: forward to the owning shard,
        respawn-and-retry on transport death, write the clean result
        through the gateway cache.  Returns a triple, never raises —
        a shared task that raised would poison every joined waiter.
        """
        shard = self._shards[index]
        health = self._health[index]
        path = {"sta": "/sta", "sweep": "/sweep"}.get(kind, "/analyze")
        plan = faults.active()
        loop = asyncio.get_running_loop()
        last_error = None
        for attempt in range(FORWARD_ATTEMPTS):
            if (plan.enabled and shard.owned and plan.fire("shard_crash")):
                # The injected campaign: hard-kill the target just
                # before forwarding, so this very request exercises the
                # detect → respawn → retry path.  The per-shard lock
                # keeps the kill from interleaving with a respawn another
                # request is already running.
                self._counters["faults_injected"] += 1
                self._tracer.event("shard_crash_injected", shard=index)
                async with self._respawn_locks[index]:
                    await loop.run_in_executor(None, shard.kill)
            host, port = shard.address
            try:
                status, shard_headers, body = await _http_post(
                    host, port, path, raw_body, budget)
            except (OSError, EOFError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError) as exc:
                last_error = exc
                self._counters["shard_errors"] += 1
                if shard.owned:
                    # Serialize respawns: when several forwards hit the
                    # same dead shard, the first one revives it and the
                    # rest re-check under the lock and just retry —
                    # without this, concurrent respawns would race on
                    # the process handle and leak an orphan child.
                    spawn_failed = False
                    async with self._respawn_locks[index]:
                        if not shard.alive():
                            try:
                                await loop.run_in_executor(
                                    None, shard.respawn)
                            except Exception as spawn_exc:
                                last_error = spawn_exc
                                spawn_failed = True
                            else:
                                self._counters["shard_restarts"] += 1
                                health["restarts"] = shard.restarts
                                self._tracer.event(
                                    "shard_restart", shard=index,
                                    restarts=shard.restarts)
                    if spawn_failed:
                        break
                continue
            self._note_shard_ok(index)
            health["requests"] += 1
            extra = {name.title(): value
                     for name, value in shard_headers.items()
                     if name in _PROPAGATED_HEADERS}
            if status == 200:
                await loop.run_in_executor(
                    None, self._store_clean, kind, key, body)
            return status, body, extra
        self._note_shard_error(index)
        return 503, _error_body(
            503, f"shard {index} unavailable after {FORWARD_ATTEMPTS} "
                 f"attempts: {last_error}"), {"Retry-After": "1"}

    def _store_clean(self, kind: str, key: str, body: bytes) -> None:
        """Cache a 200 body — but only a *clean* one: an analyze report
        whose jobs partly failed is environmental (a timeout under
        load) and must stay cheap to retry, mirroring the daemon."""
        if kind == "analyze":
            try:
                document = json.loads(body)
                failed = document.get("totals", {}).get("jobs_failed")
            except ValueError:
                return
            if failed != 0:
                return
        self.cache.put(key, body)

    # -- shard health --------------------------------------------------

    def _note_shard_ok(self, index: int) -> None:
        health = self._health[index]
        if health["degraded"]:
            self._tracer.event("shard_recovered", shard=index)
        health["consecutive_errors"] = 0
        health["degraded"] = False
        health["probing"] = False

    def _note_shard_error(self, index: int) -> None:
        health = self._health[index]
        health["errors"] += 1
        health["consecutive_errors"] += 1
        health["probing"] = False
        if (not health["degraded"]
                and health["consecutive_errors"] >= self.degraded_threshold):
            health["degraded"] = True
            self._tracer.event("shard_degraded", shard=index)

    async def _inject_http_fault(self, plan):
        """Gateway-boundary fault probes, mirroring the daemon's."""
        if plan.fire("http_timeout"):
            self._counters["faults_injected"] += 1
            await asyncio.sleep(plan.arg("http_timeout", 1.0))
        if plan.fire("http_429"):
            self._counters["faults_injected"] += 1
            return 429, _error_body(
                429, "injected fault: queue pressure, retry later"), {
                "Retry-After": f"{plan.arg('http_429', 0.05):g}",
                "X-Repro-Fault": "http_429"}
        if plan.fire("http_503"):
            self._counters["faults_injected"] += 1
            return 503, _error_body(
                503, "injected fault: gateway momentarily unavailable"), {
                "Retry-After": f"{plan.arg('http_503', 0.05):g}",
                "X-Repro-Fault": "http_503"}
        return None

    @staticmethod
    def _headers(key: str, index: int, cache_state: str, coalesced: str,
                 elapsed: float) -> dict:
        return {
            "X-Repro-Cache": cache_state,
            "X-Repro-Key": key,
            "X-Repro-Shard": str(index),
            "X-Repro-Coalesced": coalesced,
            "X-Repro-Elapsed-S": f"{elapsed:.6f}",
        }

    # -- introspection -------------------------------------------------

    def healthz(self):
        """``GET /healthz``: 503 while draining or with every shard
        degraded (a partially degraded fleet still serves — routing
        around one shard is the load balancer's job one level up)."""
        degraded = [health["degraded"] for health in self._health]
        if self._draining:
            status, state = 503, "draining"
        elif degraded and all(degraded):
            status, state = 503, "degraded"
        else:
            status, state = 200, "ok"
        payload = {
            "status": state,
            "shards": len(self._shards),
            "shards_degraded": sum(degraded),
            "inflight_keys": len(self._inflight),
            "uptime_s": round(time.monotonic() - self._started_at, 6),
        }
        return status, (json.dumps(payload) + "\n").encode("utf-8")

    def metrics(self) -> dict:
        """``GET /metrics``: gateway counters, per-shard health, and the
        gateway-tier cache stats (shard-tier counters live in each
        shard's own ``/metrics``)."""
        document = {
            "gateway": True,
            "uptime_s": round(time.monotonic() - self._started_at, 6),
            "shards": len(self._shards),
            "draining": self._draining,
            "inflight_keys": len(self._inflight),
            **self._counters,
            **self.cache.stats(),
            "shard_health": [
                {
                    "url": shard.url,
                    "alive": shard.alive(),
                    "owned": shard.owned,
                    **{name: value for name, value in health.items()
                       if name != "probing"},
                }
                for shard, health in zip(self._shards, self._health)
            ],
        }
        plan = faults.active()
        if plan.enabled:
            document["faults"] = plan.stats()
        return document


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class GatewayServer:
    """One gateway instance: a :class:`GatewayService` behind asyncio
    HTTP, runnable from synchronous code (tests, docs, the CLI).

    The event loop runs on a background thread; :meth:`start` blocks
    until the port is bound, so::

        with GatewayServer(shard_urls=[daemon.url]) as gateway:
            client = AnalysisClient(gateway.url)   # the daemon client,
            ...                                    # unchanged
    """

    def __init__(self, shards: int = 2, host: str = "127.0.0.1",
                 port: int = 0, **service_options):
        self.service = GatewayService(shards, **service_options)
        self._host = host
        self._port = port
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._address: tuple | None = None

    # -- addressing ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("gateway is not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "GatewayServer":
        if self._thread is not None:
            return self
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start()
            server = await asyncio.start_server(
                self._handle, self._host, self._port)
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            await self.service.close()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        async with server:
            await self._stop.wait()
            server.close()
            await server.wait_closed()
        await self.service.close()

    def begin_drain(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.service.begin_drain)

    def close(self, timeout: float | None = 60.0) -> None:
        """Drain, stop the listener, terminate the shards, join."""
        if self._thread is None:
            return

        def _shutdown():
            self.service.begin_drain()

            async def _finish():
                await self.service.wait_drained()
                self._stop.set()

            self._loop.create_task(_finish())

        try:
            self._loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:
            pass  # the loop already exited (e.g. a failed startup)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the connection handler ----------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            status, body, headers = await self._respond(reader)
            head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}",
                    "Content-Type: application/json",
                    f"Content-Length: {len(body)}",
                    "Connection: close"]
            head += [f"{name}: {value}" for name, value in headers.items()]
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the client went away; nothing to tell anybody
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _respond(self, reader):
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, _error_body(400, "malformed request line"), {}
        method, path = parts[0], parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("connection closed inside headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        if method == "GET":
            if path == "/healthz":
                status, body = self.service.healthz()
                return status, body, {}
            if path == "/metrics":
                body = (json.dumps(self.service.metrics(), indent=2)
                        + "\n").encode("utf-8")
                return 200, body, {}
            return 404, _error_body(
                404, f"unknown path {path!r}; endpoints: POST /analyze, "
                     "POST /sta, POST /sweep, GET /healthz, "
                     "GET /metrics"), {}
        if method != "POST":
            return 405, _error_body(405, f"method {method} not allowed"), {}
        if path not in ("/analyze", "/sta", "/sweep"):
            return 404, _error_body(
                404, f"unknown path {path!r}; POST /analyze, POST /sta, "
                     "or POST /sweep"), {}
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            return 411, _error_body(411, "Content-Length required"), {}
        if length > MAX_BODY_BYTES:
            return 413, _error_body(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"), {}
        raw = await reader.readexactly(length)
        kind = path.lstrip("/")
        return await self.service.submit(raw, kind=kind)


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def serve_gateway(host: str = "127.0.0.1", port: int = 8050, *,
                  shards: int = 4, cache_bytes: int = 64 * 1024 * 1024,
                  cache_dir: str | None = None,
                  timeout: float | None = None,
                  degraded_threshold: int = 3,
                  default_reduce: bool = False,
                  shard_engine_workers: int = 1,
                  shard_queue_size: int = 64,
                  fault_spec: str | None = None, fault_seed: int = 0,
                  announce=None, install_signals: bool = True) -> int:
    """Blocking gateway entry point (``python -m repro gateway``).

    ``fault_spec`` installs a plan in the *gateway* process
    (``shard_crash`` and the HTTP boundary probes live here); shards are
    spawned fault-free regardless — see :mod:`repro.gateway.shards`.
    ``announce`` is called with the bound server; SIGTERM/SIGINT drain.
    """
    if fault_spec:
        faults.install(faults.FaultPlan.parse(fault_spec, seed=fault_seed))
    server = GatewayServer(
        shards, host=host, port=port, cache_bytes=cache_bytes,
        cache_dir=cache_dir, timeout=timeout,
        degraded_threshold=degraded_threshold,
        default_reduce=default_reduce,
        shard_engine_workers=shard_engine_workers,
        shard_queue_size=shard_queue_size,
    )
    server.start()
    if announce is not None:
        announce(server)
    stopping = threading.Event()
    if install_signals:
        def _on_signal(signum, frame):
            stopping.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    try:
        stopping.wait()
    finally:
        server.close()
    return 0


__all__ = ["FORWARD_ATTEMPTS", "GatewayServer", "GatewayService",
           "serve_gateway"]
