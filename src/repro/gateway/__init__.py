"""Sharded async gateway: a key-routed scale-out front end for the
analysis service.

One daemon (:mod:`repro.service`) is one engine pool and one cache.
This package puts an asyncio front door over N of them:

* :mod:`repro.gateway.routing` — key-affinity placement: requests are
  routed by the same canonical SHA-256 request key that names their
  cache entry, so shard memory caches partition the key space with zero
  duplication and routing is stable across every restart;
* :mod:`repro.gateway.shards` — shard-process lifecycle: spawn
  ``repro serve`` children on ephemeral ports, kill and respawn them
  (the self-healing path), or attach to externally managed daemons;
* :mod:`repro.gateway.server` — the gateway itself:
  :class:`GatewayService` (two-tier cache, in-flight request
  coalescing, per-shard health with shed-load, graceful drain) behind
  :class:`GatewayServer`'s asyncio HTTP face — the same JSON protocol
  as the daemon, so :class:`~repro.service.client.AnalysisClient`
  works unchanged;
* :mod:`repro.gateway.loadgen` — ``repro loadgen``: seeded,
  replayable request mixes at fixed concurrency, measuring
  p50/p99/RPS (feeds ``BENCH_scaling.json`` ``gateway_scaling``).

Topology, coalescing semantics, and drain behaviour are documented in
``docs/service.md``; the API in ``docs/api.md``.
"""

from repro.gateway.loadgen import (MIXES, build_mix, coalesced_delta,
                                   run_loadgen, seeded_chain_deck)
from repro.gateway.routing import shard_for_key
from repro.gateway.server import (FORWARD_ATTEMPTS, GatewayServer,
                                  GatewayService, serve_gateway)
from repro.gateway.shards import AttachedShard, ShardProcess

__all__ = [
    "FORWARD_ATTEMPTS",
    "MIXES",
    "AttachedShard",
    "GatewayServer",
    "GatewayService",
    "ShardProcess",
    "build_mix",
    "coalesced_delta",
    "run_loadgen",
    "seeded_chain_deck",
    "serve_gateway",
    "shard_for_key",
]
