"""``repro.sweep``: incremental what-if sweeps — one factorization, thousands of points.

AWE's core economy (paper Sec. 3.2) is that one LU factorization of the
MNA conductance matrix yields *every* moment.  This module extends that
economy across **netlist deltas**: an ECO loop asking "what if R17 were
20 % larger?  what if C3 were 40 fF?  what if the driver stepped to
0.9 V?" should never pay for a full re-parse, re-stamp, re-factor per
question.  The :class:`SweepEngine` analyzes the base circuit once and
then evaluates each perturbation point by recomputing only what the
delta touches, choosing per point among three tiers:

``first_order``
    The precomputed adjoint gradient (:func:`repro.core.sensitivity.
    delay_sensitivities` — two adjoint solves for *all* elements at
    once).  O(1) per point.  Exact for capacitor scalings (the Elmore
    delay is linear in each capacitance); first-order in resistance,
    with a Sherman–Morrison curvature estimate gating its use.
``rank1``
    Sherman–Morrison rank-1 updates on the base factorization.  A
    single-element stamp is ``ΔG = Δg·wwᵀ`` (``w`` the element's
    incidence vector), so every perturbed solve is the base solve plus
    a correction along the cached direction ``z = G⁻¹w`` — O(dim²) per
    point (two triangular substitutions), no refactorization.  Exact in
    algebra; agrees with a from-scratch solve to roundoff.  Source
    retunes are the RHS analogue (moments are linear in the source
    vector) and use cached per-source response columns.
``exact``
    The escape hatch: re-stamp the perturbed circuit (derived by
    ``copy()`` + ``replace()`` from the already-parsed base — no
    re-parse) and refactor.  Shares the *identical* code path with
    :meth:`SweepEngine.direct_point`, so exact-mode results match a
    from-scratch evaluation **bit for bit**.  Points land here when the
    rank-1 update is invalid (a Sherman–Morrison denominator near zero
    — the perturbation drives the system singular) or when a tier's
    estimated error exceeds the plan's bound; such demotions set
    ``fallback=True`` and emit a ``sweep_fallback`` trace event.

The swept quantity is the zero-state step response's leading transfer
moments at one output node — ``dc`` (the final value), ``m1`` (the
first moment), and the Elmore delay ``−m1/dc`` — the same quantities
the adjoint sensitivity layer differentiates.  Scope matches that
layer: linear R/C/V/I circuits without floating capacitive groups.

Typical use::

    from repro.sweep import SweepEngine, SweepPlan, SweepPoint

    engine = SweepEngine(circuit, stimuli)
    plan = SweepPlan(node="8", points=tuple(
        SweepPoint(element="R3", scale=s) for s in scales
    ))
    result = engine.evaluate(plan)
    result.points[0].elmore_delay, result.points[0].mode
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.linalg

from repro.analysis.mna import MnaSystem
from repro.analysis.sources import Stimulus, complete_stimuli
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
    canonical_node,
    GROUND,
)
from repro.circuit.netlist import Circuit
from repro.circuit.validation import validate_for_analysis
from repro.core.sensitivity import _incidence
from repro.errors import AnalysisError
from repro.trace import NULL_TRACER

#: Sweep modes a plan (or the engine's per-point policy) may select.
MODES = ("auto", "first_order", "rank1", "exact")

#: |1 + Δg·wᵀG⁻¹w| below this (relative to 1) marks the Sherman–Morrison
#: update singular: the perturbation removes the system's unique DC
#: solution along that direction, so the point must re-stamp instead.
_SM_DENOMINATOR_FLOOR = 1e-9


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One what-if question: set or scale one element (or source) value.

    Exactly one of ``value`` (absolute replacement) and ``scale``
    (multiplier on the base value) must be given.  ``element`` names a
    resistor, capacitor, or independent source of the base circuit; for
    a source, the perturbed quantity is its post-transition level.
    """

    element: str
    value: float | None = None
    scale: float | None = None
    label: str = ""

    def __post_init__(self):
        if (self.value is None) == (self.scale is None):
            raise AnalysisError(
                f"sweep point for {self.element!r} needs exactly one of "
                "value= or scale="
            )

    def target(self, base_value: float) -> float:
        """The perturbed value given the element's base value."""
        if self.value is not None:
            return float(self.value)
        return base_value * float(self.scale)


@dataclasses.dataclass(frozen=True)
class SweepPlan:
    """A batch of perturbation points against one output node.

    ``mode`` pins every point to one tier; ``"auto"`` (default) lets the
    engine choose per point.  ``first_order_threshold`` is the largest
    relative value change the gradient tier may serve;
    ``error_bound`` is the largest estimated relative error tolerated
    before a point escalates to the next tier.
    """

    node: str
    points: tuple[SweepPoint, ...]
    mode: str = "auto"
    first_order_threshold: float = 0.05
    error_bound: float = 1e-3

    def __post_init__(self):
        if self.mode not in MODES:
            raise AnalysisError(
                f"sweep mode must be one of {', '.join(MODES)}, got {self.mode!r}"
            )
        if not self.points:
            raise AnalysisError("a sweep plan needs at least one point")
        if self.first_order_threshold < 0.0:
            raise AnalysisError("first_order_threshold must be >= 0")
        if self.error_bound < 0.0:
            raise AnalysisError("error_bound must be >= 0")

    def to_payload(self) -> dict:
        """JSON-friendly form (the service request / cache-key payload)."""
        return {
            "node": self.node,
            "mode": self.mode,
            "first_order_threshold": self.first_order_threshold,
            "error_bound": self.error_bound,
            "points": [
                {
                    "element": p.element,
                    "value": p.value,
                    "scale": p.scale,
                    "label": p.label,
                }
                for p in self.points
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepPlan":
        points = tuple(
            SweepPoint(
                element=str(entry["element"]),
                value=None if entry.get("value") is None else float(entry["value"]),
                scale=None if entry.get("scale") is None else float(entry["scale"]),
                label=str(entry.get("label", "")),
            )
            for entry in payload.get("points", ())
        )
        return cls(
            node=str(payload["node"]),
            points=points,
            mode=str(payload.get("mode", "auto")),
            first_order_threshold=float(payload.get("first_order_threshold", 0.05)),
            error_bound=float(payload.get("error_bound", 1e-3)),
        )


@dataclasses.dataclass(frozen=True)
class PointResult:
    """The swept quantities at one perturbation point.

    ``mode`` records the tier that produced the numbers; ``fallback``
    is True when the engine demoted the point below the tier the policy
    first tried (the ``sweep_fallback`` trace event carries the reason).
    ``error_estimate`` is the tier's own estimate of its relative error
    (0.0 where the update is exact in algebra, None for exact mode).
    """

    element: str
    value: float
    label: str
    mode: str
    dc: float
    m1: float
    elmore_delay: float
    error_estimate: float | None
    fallback: bool = False

    def to_payload(self) -> dict:
        return {
            "element": self.element,
            "value": self.value,
            "label": self.label,
            "mode": self.mode,
            "dc": self.dc,
            "m1": self.m1,
            "elmore_delay": self.elmore_delay,
            "error_estimate": self.error_estimate,
            "fallback": self.fallback,
        }


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """One evaluated :class:`SweepPlan`.

    ``base`` holds the unperturbed quantities; ``points`` one
    :class:`PointResult` per plan point, in plan order; ``stats`` the
    tier mix (``first_order`` / ``rank1`` / ``exact`` counts,
    ``fallbacks``, and ``factorizations`` paid beyond the base one).
    """

    node: str
    base: PointResult
    points: tuple[PointResult, ...]
    stats: dict

    @property
    def incremental_points(self) -> int:
        """Points served without refactorization."""
        return self.stats.get("first_order", 0) + self.stats.get("rank1", 0)

    def to_payload(self) -> dict:
        return {
            "node": self.node,
            "base": self.base.to_payload(),
            "points": [p.to_payload() for p in self.points],
            "stats": dict(self.stats),
        }


class SweepEngine:
    """Reusable incremental evaluator of one base circuit's what-ifs.

    All one-time work — validation, MNA assembly, the base LU
    factorization, the base solves, and the adjoint gradient — happens
    in the constructor (or lazily on the first point that needs it) and
    is shared by every :meth:`evaluate` call.

    Parameters
    ----------
    circuit:
        The base linear R/C/V/I circuit.  Never mutated: perturbed
        variants are derived with ``copy()`` (safe even for frozen
        circuits out of :class:`repro.reduce.ReductionMemo`).
    stimuli:
        Source stimuli; each source's *post-transition* level defines
        the step the swept moments belong to.  Unnamed sources default
        as in :class:`~repro.core.driver.AweAnalyzer`.
    tracer:
        Receives one ``sweep_point`` event per evaluated point and a
        ``sweep_fallback`` event per tier demotion.
    """

    def __init__(
        self,
        circuit: Circuit,
        stimuli: dict[str, Stimulus] | None = None,
        sparse: bool | None = None,
        tracer=None,
    ):
        validate_for_analysis(circuit)
        for element in circuit:
            if not isinstance(
                element, (Resistor, Capacitor, VoltageSource, CurrentSource)
            ):
                raise AnalysisError(
                    "sweeps support R/C/V/I circuits; got "
                    f"{type(element).__name__} {element.name!r}"
                )
        self.circuit = circuit
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.system = MnaSystem(circuit, sparse=sparse, tracer=self.tracer)
        if self.system.floating_groups:
            raise AnalysisError(
                "sweeps are not defined for floating capacitive groups "
                "(their moments are not simple functions of one factorization)"
            )
        self.source_order = list(self.system.index.source_names)
        self.stimuli = complete_stimuli(circuit, stimuli or {}, self.source_order)
        self._u = np.array(
            [self.stimuli[name].final_value for name in self.source_order]
        )
        # Base solves: x_inf = G⁻¹Bu (dc values), v1 = G⁻¹C·x_inf
        # (m1 = −v1).  The factorization they trigger is the one every
        # rank-1 point reuses.
        self._x_inf = self.system.solve_augmented(
            np.asarray(self.system.B @ self._u).ravel()
        )
        self._v1 = self.system.solve_augmented(
            np.asarray(self.system.C @ self._x_inf).ravel()
        )
        self._z_cache: dict[str, np.ndarray] = {}
        self._source_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._gradient_cache: dict[str, object] = {}
        self._adjoint_cache: dict[int, np.ndarray] = {}
        self.extra_factorizations = 0

    # -- base quantities -------------------------------------------------

    def _metrics_from(self, x_inf: np.ndarray, v1: np.ndarray, row: int):
        dc = float(x_inf[row])
        m1 = -float(v1[row])
        if dc == 0.0:
            raise AnalysisError("output node sees no steady-state swing")
        return dc, m1, -m1 / dc

    def base_point(self, node: str | int) -> PointResult:
        """The unperturbed quantities at ``node``."""
        row = self._row(node)
        dc, m1, elmore = self._metrics_from(self._x_inf, self._v1, row)
        return PointResult(
            element="", value=0.0, label="base", mode="base",
            dc=dc, m1=m1, elmore_delay=elmore, error_estimate=0.0,
        )

    def _row(self, node: str | int) -> int:
        name = canonical_node(node)
        if name == GROUND:
            raise AnalysisError("ground is identically zero; nothing to sweep")
        return self.system.index.node(name)

    def _z(self, element) -> np.ndarray:
        """Cached ``z = G⁻¹w`` for an element's incidence vector — the
        shared direction of every Sherman–Morrison correction involving
        that element (one triangular substitution, ever)."""
        cached = self._z_cache.get(element.name)
        if cached is None:
            cached = self.system.solve_augmented(_incidence(self.system, element))
            self._z_cache[element.name] = cached
        return cached

    def _source_columns(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(G⁻¹b_k, G⁻¹C G⁻¹b_k)`` for one source column — the
        exact per-unit response a source retune scales (moments are
        linear in the source vector)."""
        cached = self._source_cache.get(name)
        if cached is None:
            column = self.system.b_column(self.system.index.source(name))
            s = self.system.solve_augmented(column)
            t = self.system.solve_augmented(np.asarray(self.system.C @ s).ravel())
            cached = (s, t)
            self._source_cache[name] = cached
        return cached

    def _gradient(self, node: str):
        """Cached adjoint delay gradient for the first-order tier."""
        cached = self._gradient_cache.get(node)
        if cached is None:
            from repro.core.sensitivity import delay_sensitivities

            cached = delay_sensitivities(
                self.circuit, node,
                {name: float(u) for name, u in zip(self.source_order, self._u)},
            )
            self._gradient_cache[node] = cached
        return cached

    # -- the tiers -------------------------------------------------------

    def _first_order(self, point: SweepPoint, node: str, row: int,
                     element, new_value: float):
        """Gradient tier: ``T ≈ T_base + ∂T/∂x · Δx``.

        Exact for capacitors (Elmore delay is linear in each C); for
        resistors the Sherman–Morrison curvature ratio ``ρ = Δg·wᵀz``
        estimates the dropped second-order term.  Returns ``None`` when
        the estimate exceeds the plan's bound (caller escalates).
        """
        gradient = self._gradient(node)
        base_dc, base_m1, base_elmore = self._metrics_from(
            self._x_inf, self._v1, row
        )
        if isinstance(element, Capacitor):
            delta = new_value - element.capacitance
            elmore = base_elmore + gradient.d_capacitance[element.name] * delta
            # dc and m1: dc is C-independent; m1 = -elmore*dc exactly
            # (m1 linear in C, dc constant).
            return base_dc, -elmore * base_dc, elmore, 0.0
        delta = new_value - element.resistance
        g = element.conductance
        new_g = 1.0 / new_value
        delta_g = new_g - g
        z = self._z(element)
        w = _incidence(self.system, element)
        rho = delta_g * float(w @ z)
        denominator = 1.0 + rho
        if abs(denominator) < _SM_DENOMINATOR_FLOOR:
            return None
        # The exact SM correction scales every first-order term by
        # 1/(1+ρ); the gradient tier drops that factor, so its relative
        # error on the correction is |ρ/(1+ρ)|, and on the delay itself
        # that times the correction's relative size.
        estimate = abs(rho / denominator)
        elmore = base_elmore + gradient.d_resistance[element.name] * delta
        correction = abs(elmore - base_elmore) / max(abs(base_elmore), 1e-300)
        estimate = estimate * min(correction, 1.0)
        # dc first-order: d(dc)/dg = -(aᵀw)(wᵀx_inf) with a = G⁻ᵀe_o —
        # the SM correction linearized (drop the 1/(1+ρ) factor).
        a_w, x_w = self._adjoint_projection(row, element), float(w @ self._x_inf)
        dc = base_dc - delta_g * a_w * x_w
        m1 = -elmore * dc
        return dc, m1, elmore, estimate

    def _adjoint_row_solve(self, row: int) -> np.ndarray:
        """Cached ``a = G⁻ᵀe_row`` (one transpose solve per output row)."""
        cached = self._adjoint_cache.get(row)
        if cached is None:
            e = np.zeros(self.system.dimension)
            e[row] = 1.0
            if self.system.use_sparse:
                from scipy.sparse import csc_matrix
                from scipy.sparse.linalg import splu

                cached = splu(csc_matrix(self.system.G_aug.T)).solve(e)
            else:
                cached = scipy.linalg.lu_solve(
                    scipy.linalg.lu_factor(self.system.G_aug.T), e
                )
            self._adjoint_cache[row] = cached
        return cached

    def _adjoint_projection(self, row: int, element) -> float:
        a = self._adjoint_row_solve(row)
        return float(a @ _incidence(self.system, element))

    def _rank1(self, point: SweepPoint, row: int, element, new_value: float):
        """Sherman–Morrison tier — the single-element stamp update.

        Conductance: ``(G + Δg·wwᵀ)⁻¹v = G⁻¹v − Δg(wᵀG⁻¹v)/(1+Δg·wᵀz)·z``
        with the cached ``z = G⁻¹w``; two fresh triangular substitutions
        per point, zero refactorizations.  Capacitance: the C-matrix
        update enters the moment solve linearly, one cached direction.
        Sources: exact linearity in the RHS.  Returns ``None`` when the
        denominator is degenerate (caller falls back to exact).
        """
        system = self.system
        if isinstance(element, (VoltageSource, CurrentSource)):
            base_level = self.stimuli[element.name].final_value
            delta_u = new_value - base_level
            s, t = self._source_columns(element.name)
            x_inf = self._x_inf + delta_u * s
            v1 = self._v1 + delta_u * t
            return (*self._metrics_from(x_inf, v1, row), 0.0)
        if isinstance(element, Capacitor):
            delta_c = new_value - element.capacitance
            w = _incidence(system, element)
            z = self._z(element)
            # ΔC = δ·wwᵀ ⇒ v1' = G⁻¹(C + ΔC)x_inf = v1 + δ(wᵀx_inf)z.
            v1 = self._v1 + delta_c * float(w @ self._x_inf) * z
            return (*self._metrics_from(self._x_inf, v1, row), 0.0)
        # Resistor: ΔG = Δg·wwᵀ.
        delta_g = 1.0 / new_value - element.conductance
        w = _incidence(system, element)
        z = self._z(element)
        denominator = 1.0 + delta_g * float(w @ z)
        if abs(denominator) < _SM_DENOMINATOR_FLOOR:
            return None
        factor = delta_g / denominator

        def perturbed_solve(base_solution: np.ndarray) -> np.ndarray:
            return base_solution - factor * float(w @ base_solution) * z

        x_inf = perturbed_solve(self._x_inf)
        # v1' = G'⁻¹C x_inf': one fresh substitution with the *base*
        # factors, then the same rank-1 correction.
        t = system.solve_augmented(np.asarray(system.C @ x_inf).ravel())
        v1 = perturbed_solve(t)
        return (*self._metrics_from(x_inf, v1, row), 0.0)

    def _perturbed_circuit(self, element, new_value: float) -> Circuit:
        variant = self.circuit.copy()
        if isinstance(element, Resistor):
            variant.replace(Resistor(element.name, element.positive,
                                     element.negative, new_value))
        elif isinstance(element, Capacitor):
            variant.replace(Capacitor(element.name, element.positive,
                                      element.negative, new_value,
                                      element.initial_voltage))
        else:
            raise AnalysisError(
                f"cannot re-stamp element {element.name!r} of type "
                f"{type(element).__name__}"
            )
        return variant

    def _exact(self, point: SweepPoint, node: str, element, new_value: float):
        """Exact tier: re-stamp + refactor the perturbed variant through
        the *same* code path as :meth:`direct_point` — bit-for-bit equal
        to a from-scratch evaluation by construction."""
        self.extra_factorizations += 1
        if isinstance(element, (VoltageSource, CurrentSource)):
            values = dict(zip(self.source_order, self._u))
            values[element.name] = new_value
            return _system_metrics(self.circuit, self._row(node), values,
                                   sparse=self.system.use_sparse)
        variant = self._perturbed_circuit(element, new_value)
        return _system_metrics(variant, self._row(node),
                               dict(zip(self.source_order, self._u)),
                               sparse=self.system.use_sparse)

    # -- evaluation ------------------------------------------------------

    def direct_point(self, point: SweepPoint, node: str | int) -> PointResult:
        """From-scratch reference for one point: fresh stamp, fresh
        factorization, same metric arithmetic.  Exact-mode sweep results
        equal this bit for bit; rank-1 results to roundoff."""
        element, new_value = self._resolve(point)
        row = self._row(node)
        if isinstance(element, (VoltageSource, CurrentSource)):
            values = dict(zip(self.source_order, self._u))
            values[element.name] = new_value
            dc, m1, elmore = _system_metrics(
                self.circuit, row, values, sparse=self.system.use_sparse)
        else:
            variant = self._perturbed_circuit(element, new_value)
            dc, m1, elmore = _system_metrics(
                variant, row, dict(zip(self.source_order, self._u)),
                sparse=self.system.use_sparse)
        return PointResult(
            element=element.name, value=new_value,
            label=point.label, mode="direct",
            dc=dc, m1=m1, elmore_delay=elmore, error_estimate=None,
        )

    def _resolve(self, point: SweepPoint):
        try:
            element = self.circuit[point.element]
        except KeyError:
            raise AnalysisError(
                f"sweep point names unknown element {point.element!r}"
            ) from None
        if isinstance(element, Resistor):
            base = element.resistance
        elif isinstance(element, Capacitor):
            base = element.capacitance
        elif isinstance(element, (VoltageSource, CurrentSource)):
            base = self.stimuli[element.name].final_value
        else:
            raise AnalysisError(
                f"cannot sweep element {point.element!r} of type "
                f"{type(element).__name__}"
            )
        new_value = point.target(base)
        if isinstance(element, (Resistor, Capacitor)) and new_value <= 0.0:
            raise AnalysisError(
                f"sweep point drives {point.element!r} to non-physical "
                f"value {new_value!r}"
            )
        return element, new_value

    def evaluate(self, plan: SweepPlan) -> SweepResult:
        """Evaluate every plan point, choosing the cheapest valid tier."""
        row = self._row(plan.node)
        node = canonical_node(plan.node)
        base = self.base_point(node)
        counts = {"first_order": 0, "rank1": 0, "exact": 0, "fallbacks": 0}
        factorizations_before = self.extra_factorizations
        results: list[PointResult] = []
        with self.tracer.span("sweep", node=node, points=len(plan.points)):
            for point in plan.points:
                results.append(self._evaluate_point(plan, point, node, row, counts))
        counts["factorizations"] = self.extra_factorizations - factorizations_before
        return SweepResult(node=node, base=base, points=tuple(results),
                           stats=counts)

    def _evaluate_point(self, plan: SweepPlan, point: SweepPoint,
                        node: str, row: int, counts: dict) -> PointResult:
        element, new_value = self._resolve(point)
        mode = plan.mode
        fallback = False

        def demote(target: str, reason: str) -> None:
            nonlocal fallback
            fallback = True
            counts["fallbacks"] += 1
            self.tracer.event(
                "sweep_fallback", element=element.name, label=point.label,
                from_mode=mode, to_mode=target, reason=reason,
            )

        outcome = None
        chosen = None
        is_source = isinstance(element, (VoltageSource, CurrentSource))

        if mode in ("auto", "first_order") and not is_source:
            base_value = (element.resistance if isinstance(element, Resistor)
                          else element.capacitance)
            relative = abs(new_value - base_value) / abs(base_value)
            if relative <= plan.first_order_threshold or mode == "first_order":
                candidate = self._first_order(point, node, row, element, new_value)
                if candidate is not None and (
                    candidate[3] <= plan.error_bound or mode == "first_order"
                ):
                    outcome, chosen = candidate, "first_order"
                elif mode == "first_order":
                    demote("exact", "first-order update invalid (singular)")
                    outcome = (*self._exact(point, node, element, new_value), None)
                    chosen = "exact"
                elif candidate is not None:
                    demote("rank1",
                           f"first-order estimate {candidate[3]:.3g} exceeds "
                           f"bound {plan.error_bound:g}")

        # Source retunes are exact-linear rank-1 RHS updates, so they go
        # through the rank-1 tier whatever non-exact mode was requested.
        if outcome is None and (mode in ("auto", "rank1")
                                or (is_source and mode == "first_order")):
            candidate = self._rank1(point, row, element, new_value)
            if candidate is not None:
                outcome, chosen = candidate, "rank1"
            else:
                demote("exact", "rank-1 denominator is degenerate "
                                "(perturbation drives the system singular)")

        if outcome is None:
            outcome = (*self._exact(point, node, element, new_value), None)
            chosen = "exact"

        counts[chosen] += 1
        dc, m1, elmore, estimate = outcome
        self.tracer.event(
            "sweep_point", element=element.name, label=point.label,
            mode=chosen, value=new_value,
            error_estimate=None if estimate is None else float(estimate),
            fallback=fallback,
        )
        return PointResult(
            element=element.name, value=new_value, label=point.label,
            mode=chosen, dc=dc, m1=m1, elmore_delay=elmore,
            error_estimate=estimate, fallback=fallback,
        )


def _system_metrics(circuit: Circuit, row: int, source_values: dict,
                    sparse: bool | None = None):
    """Stamp, factor, and solve one circuit for (dc, m1, elmore) at ``row``.

    This single helper serves both the sweep's exact tier and the
    from-scratch :meth:`SweepEngine.direct_point` reference — identical
    arithmetic is what makes the two comparable bit for bit.
    """
    system = MnaSystem(circuit, sparse=sparse)
    u = system.source_vector({name: float(v) for name, v in source_values.items()})
    x_inf = system.solve_augmented(np.asarray(system.B @ u).ravel())
    v1 = system.solve_augmented(np.asarray(system.C @ x_inf).ravel())
    dc = float(x_inf[row])
    m1 = -float(v1[row])
    if dc == 0.0:
        raise AnalysisError("output node sees no steady-state swing")
    return dc, m1, -m1 / dc


def sweep(circuit: Circuit, stimuli, plan: SweepPlan, tracer=None) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepEngine`."""
    return SweepEngine(circuit, stimuli, tracer=tracer).evaluate(plan)


__all__ = [
    "MODES",
    "PointResult",
    "SweepEngine",
    "SweepPlan",
    "SweepPoint",
    "SweepResult",
    "sweep",
]
