"""Topology-level RC-chain pre-reduction.

Long series RC runs — the dominant structure of extracted interconnect
(and the entire circuit for a transmission-line model) — carry far more
nodes than dynamics.  This module collapses every maximal degree-2
series RC chain (found by
:func:`repro.circuit.topology.series_rc_chains`) into one equivalent
compact section *before* MNA stamping, shrinking the system the sparse
solver factorises without touching any node an analysis can observe.

The collapse and what it preserves
----------------------------------
A chain between retained anchors ``A`` and ``B`` with series resistors
``R₁ … R_{m+1}`` and grounded caps ``C₁ … C_m`` at its interior nodes is
replaced by a single resistor ``R_total = Σ Rᵢ`` from ``A`` to ``B``
plus the classic pi split of the chain's capacitance:

.. math::

    C_A = \\sum_j C_j\\,(1 - r_j/R_\\text{total}), \\qquad
    C_B = \\sum_j C_j\\,r_j/R_\\text{total}

where ``r_j`` is the chain resistance from ``A`` to interior node ``j``.
This is exact for:

* **total resistance and total capacitance** (``C_A + C_B = Σ C_j``) —
  except that a cap re-homed onto an anchor whose voltage is pinned by
  an ideal source (V/VCVS/CCVS terminal) is dropped: it is electrically
  inert for every node response there, and keeping it would put a
  capacitor in parallel with the source and make the t = 0⁺ auxiliary
  DC system singular.  (Driving-point admittance moments seen *by that
  source* are therefore not preserved; node responses are.)
* **the first moment (Elmore delay) at every retained node.**  An
  interior cap ``C_j`` contributes ``C_j · R_shared(j, n)`` to the
  Elmore delay of any retained node ``n``, where the shared resistance
  from the driving source splits through the chain linearly in ``r_j``
  — so re-homing its charge to the anchors with weights
  ``(1 − r_j/R_total, r_j/R_total)`` reproduces every such term exactly
  (the superposition the paper's Sec. 4 Elmore discussion is built on).

Higher moments are approximated — the chain's internal diffusion is
replaced by a single lumped section — so reduced poles and delays agree
with the unreduced circuit only to a bound, which the conformance
family ``long_chain`` (check ``reduction_equivalence``) enforces.

Interior nodes are only collapsed when *nothing* else observes them: no
sources, inductors, controlled sources or control ports, no floating or
initial-condition-carrying capacitors, and no ``keep`` (tap) node.
Chains *anchored* at a node that touches an IC-carrying or floating
capacitor are also left alone: re-homing a cap there would close a
capacitive loop whose implied t = 0⁺ voltage contradicts the new cap's
implicit 0 V initial condition.
A circuit with no collapsible chain is returned unchanged, as the same
object, so ``Reduction.circuit is circuit`` (and hence every content
hash) is preserved exactly for no-op reductions.
"""

from __future__ import annotations

import collections
import dataclasses
import threading

from repro.circuit.elements import (
    CCVS,
    GROUND,
    VCVS,
    Capacitor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.topology import SeriesRcChain, series_rc_chains

#: Maximum interior nodes collapsed into one compact section.  A single
#: pi section lumps a length-m chain's internal diffusion entirely and
#: mis-states the 50 % delay by up to ~9 % (the classic lumped-line
#: limit); the error falls roughly as 1/k² in the section count, so 8
#: interior nodes per section keeps reduced delays within ~0.1 % of the
#: unreduced circuit while still shrinking long chains ~9x.
_SECTION_NODES = 8


@dataclasses.dataclass(frozen=True)
class Reduction:
    """The outcome of :func:`reduce_circuit`.

    ``circuit`` is the reduced circuit — the *original object* when
    nothing was collapsible.  ``removed_nodes`` lists every collapsed
    interior node; ``chains`` the collapsed runs themselves.
    """

    circuit: Circuit
    removed_nodes: tuple[str, ...]
    chains: tuple[SeriesRcChain, ...]
    original_node_count: int
    reduced_node_count: int

    @property
    def reduced(self) -> bool:
        """True when at least one chain was collapsed."""
        return bool(self.removed_nodes)


def reduce_circuit(
    circuit: Circuit, keep: tuple = (), max_section: int = _SECTION_NODES
) -> Reduction:
    """Collapse every maximal series RC chain not observed by ``keep``.

    Parameters
    ----------
    circuit:
        The circuit to reduce; never mutated.
    keep:
        Nodes that must survive (analysis taps).  Ground, source nodes,
        inductor/controlled-source terminals, control ports and floating
        capacitor nodes are always kept.
    max_section:
        Most interior nodes lumped into one compact section; longer
        chains are split at evenly spaced retained nodes first, bounding
        the higher-moment approximation error (see module docs).

    Returns
    -------
    Reduction
        With ``circuit is`` the input object when nothing collapsed.
    """
    if max_section < 1:
        raise ValueError(f"max_section must be >= 1, got {max_section}")
    chains = tuple(
        sub
        for chain in series_rc_chains(circuit, keep=tuple(keep))
        for sub in _split_chain(chain, max_section)
    )
    chains = tuple(chain for chain in chains if chain.interior)
    if not chains:
        count = circuit.node_count
        return Reduction(circuit, (), (), count, count)

    removed_elements: set[str] = set()
    removed_nodes: list[str] = []
    # The replacement elements are emitted where the chain's first
    # removed element sat, so reduction keeps element locality (and is
    # deterministic for any input order).
    insertion_order = {e.name: i for i, e in enumerate(circuit)}
    # Anchors whose voltage is pinned by an ideal source: a cap re-homed
    # there would be electrically inert for every node response (zero
    # shared resistance with any observation path) yet make the t = 0⁺
    # auxiliary DC system singular, so it is dropped instead.
    pinned = {
        end
        for element in circuit
        if isinstance(element, (VoltageSource, VCVS, CCVS))
        for end in (element.positive, element.negative)
    }
    # Anchors already touching an IC-carrying or floating capacitor must
    # not receive a re-homed cap: the new grounded cap would close a
    # capacitive loop through the existing one, and its implicit 0 V
    # initial condition contradicts the loop's implied voltage at t = 0⁺.
    # Dropping the cap instead would break first-moment exactness, so the
    # whole chain is left uncollapsed.
    sensitive = {
        end
        for element in circuit
        if isinstance(element, Capacitor)
        and (element.initial_voltage is not None or not element.is_grounded)
        for end in (element.positive, element.negative)
    }

    def hazardous(anchor: str) -> bool:
        return anchor in sensitive and anchor != GROUND and anchor not in pinned

    chains = tuple(
        chain for chain in chains
        if not (hazardous(chain.anchor_a) or hazardous(chain.anchor_b))
    )
    if not chains:
        count = circuit.node_count
        return Reduction(circuit, (), (), count, count)
    replacements: dict[str, list] = {}
    for chain in chains:
        names = [r.name for r in chain.resistors]
        names += [c.name for caps in chain.capacitors for c in caps]
        removed_elements.update(names)
        removed_nodes.extend(chain.interior)
        trigger = min(names, key=insertion_order.__getitem__)
        replacements[trigger] = _collapse(circuit, chain, pinned)

    reduced = Circuit(circuit.title)
    for element in circuit:
        if element.name in replacements:
            reduced.extend(replacements[element.name])
        elif element.name not in removed_elements:
            reduced.add(element)
    for coupling in circuit.mutual_inductances:
        reduced.add_mutual_inductance(
            coupling.name, coupling.inductor_a, coupling.inductor_b,
            coupling.coupling,
        )
    return Reduction(
        reduced,
        tuple(removed_nodes),
        chains,
        circuit.node_count,
        reduced.node_count,
    )


def _split_chain(chain: SeriesRcChain, max_section: int) -> list[SeriesRcChain]:
    """Split a long chain at evenly spaced interior nodes.

    The separators become retained anchors (their own caps survive as
    original elements); each piece then lumps at most ``max_section``
    interior nodes, which bounds the single-section approximation error.
    """
    m = len(chain.interior)
    if m <= max_section:
        return [chain]
    k = -(-m // max_section)  # ceil
    boundaries = [-1] + [(j * m) // k for j in range(1, k)] + [m]
    pieces = []
    for p, q in zip(boundaries[:-1], boundaries[1:]):
        pieces.append(SeriesRcChain(
            anchor_a=chain.anchor_a if p == -1 else chain.interior[p],
            anchor_b=chain.anchor_b if q == m else chain.interior[q],
            interior=chain.interior[p + 1:q],
            resistors=chain.resistors[p + 1:q + 1],
            capacitors=chain.capacitors[p + 1:q],
        ))
    return pieces


def _collapse(circuit: Circuit, chain: SeriesRcChain, pinned: set) -> list:
    """The compact equivalent section for one chain (see module docs)."""
    r_total = chain.total_resistance
    c_a = 0.0
    c_b = 0.0
    r_cumulative = 0.0
    for resistor, caps in zip(chain.resistors, chain.capacitors):
        r_cumulative += resistor.resistance
        weight = r_cumulative / r_total
        for cap in caps:
            c_a += cap.capacitance * (1.0 - weight)
            c_b += cap.capacitance * weight
    elements: list = [
        Resistor(chain.resistors[0].name, chain.anchor_a, chain.anchor_b,
                 r_total)
    ]
    cap_names = [c.name for caps in chain.capacitors for c in caps]
    used: set[str] = set()

    def cap_name(preferred: str) -> str:
        name = preferred
        while name in circuit and name not in cap_names or name in used:
            name += "_r"
        used.add(name)
        return name

    if c_a > 0.0 and chain.anchor_a != GROUND and chain.anchor_a not in pinned:
        elements.append(
            Capacitor(cap_name(cap_names[0]), chain.anchor_a, GROUND, c_a)
        )
    if c_b > 0.0 and chain.anchor_b != GROUND and chain.anchor_b not in pinned:
        elements.append(
            Capacitor(cap_name(cap_names[-1]), chain.anchor_b, GROUND, c_b)
        )
    return elements


def reduction_summary(reduction: Reduction) -> dict:
    """A JSON-friendly description (used by traces, the CLI and docs)."""
    return {
        "reduced": reduction.reduced,
        "original_nodes": reduction.original_node_count,
        "reduced_nodes": reduction.reduced_node_count,
        "removed_nodes": len(reduction.removed_nodes),
        "chains": len(reduction.chains),
    }


class ReductionMemo:
    """Bounded LRU of reduced circuits, keyed by *content* not identity.

    The batch engine already shares one reduction across jobs on the same
    circuit **object**, but the service path re-parses every request into
    a fresh :class:`~repro.circuit.netlist.Circuit` — so a timing loop
    resubmitting one big topology re-paid the pure-Python chain-collapse
    pre-pass on every miss of the *result* cache (a different
    ``error_target`` is a different report but the identical reduction).
    This memo closes that gap: entries are keyed by
    ``(Circuit.canonical_key(), sorted keep nodes, max_section)``, so any
    deck that parses to the same elements and values reuses the reduced
    circuit, whatever its textual spelling.

    Returning a shared :class:`Circuit` is safe because circuits are
    never mutated by analysis (the engine's identity grouping relies on
    the same property); sharing even *improves* analyzer reuse across
    worker threads.  To keep that invariant enforceable now that the
    sweep engine derives *perturbed* variants downstream, every stored
    circuit is :meth:`~repro.circuit.netlist.Circuit.freeze`-d — and a
    no-op reduction is stored as a frozen **copy** rather than the
    caller's own object, so the memo never freezes (or aliases) an
    object it does not own.  Consumers that need to perturb a memo hit
    must go through ``Circuit.copy()``; a stray ``replace()`` on the hit
    raises instead of corrupting every other holder's results.  The memo
    is thread-safe and bounded by entry count (reduced circuits are
    small — the point of reducing them).
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = int(max_entries)
        self._entries: "collections.OrderedDict[tuple, Circuit]" = (
            collections.OrderedDict())
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def reduce(self, circuit: Circuit, keep: tuple = (),
               max_section: int = _SECTION_NODES) -> Circuit:
        """Memoized :func:`reduce_circuit` returning just the circuit.

        The canonical key is computed outside the lock (it is the
        expensive part of a hit); a concurrent duplicate miss may reduce
        twice but both threads then agree on one stored entry.
        """
        keep = tuple(sorted(keep))
        key = (circuit.canonical_key(), keep, int(max_section))
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return cached
        reduced = reduce_circuit(circuit, keep=keep,
                                 max_section=max_section).circuit
        if reduced is circuit:
            # No-op reduction: never store (and freeze) the caller's own
            # object — a later mutation of it would corrupt the cache.
            reduced = circuit.copy()
        reduced.freeze()
        with self._lock:
            self._misses += 1
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = reduced
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return reduced

    def stats(self) -> dict:
        """Counter snapshot (feeds the service's ``/metrics``)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide memo the service path consults (tests may clear it).
REDUCTION_MEMO = ReductionMemo()


__all__ = ["REDUCTION_MEMO", "Reduction", "ReductionMemo", "reduce_circuit",
           "reduction_summary"]
