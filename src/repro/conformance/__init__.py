"""Whole-stack conformance fuzzing (``python -m repro fuzz``).

The paper validates AWE *differentially* — every waveform is checked
against a SPICE reference — and this package turns that method into a
systematic, seed-reproducible subsystem:

* :mod:`repro.conformance.generate` composes the
  :mod:`repro.papercircuits.generators` families (random RC trees,
  ladders, meshes, clock trees, RLC lines, coupled/floating capacitors,
  trapped-charge initial conditions, near-degenerate element values)
  into random full-pipeline cases — netlist text → parser → canonical
  writer → AWE → TR-BDF2 oracle → service cache key.
* :mod:`repro.conformance.checks` is the metamorphic-invariant registry:
  AWE-vs-transient L2, linearity, time/impedance-scaling covariance of
  poles and waveforms, frequency-scaling (eq. 47) invariance,
  first-order-AWE ≡ Elmore on RC trees, writer/canon idempotence, and
  batch ≡ sequential bit-identity.
* :mod:`repro.conformance.shrink` is a delta-debugging netlist shrinker
  that reduces any failing case to a minimal circuit.
* :mod:`repro.conformance.runner` drives seeds through the checks and
  emits a deterministic, structured JSON crash report.
* :mod:`repro.conformance.corpus` persists distilled failures as a
  regression corpus replayed by the tier-1 suite (``tests/corpus/``).

See ``docs/testing.md`` for the workflow.
"""

from repro.conformance.checks import CHECKS, FuzzConfig, SkipCheck, run_check
from repro.conformance.corpus import (
    CORPUS_SCHEMA,
    CorpusEntry,
    load_corpus,
    replay_entry,
    write_entry,
)
from repro.conformance.generate import FAMILIES, FuzzCase, generate_case
from repro.conformance.runner import REPORT_SCHEMA, run_fuzz
from repro.conformance.shrink import ShrinkResult, shrink_case

# Imported last: registers the STA graph checks into CHECKS.
from repro.conformance.sta import (
    STA_CHECKS,
    STA_CORPUS_SCHEMA,
    StaCase,
    StaCorpusEntry,
    enumerate_critical_paths,
    generate_sta_case,
)

__all__ = [
    "CHECKS",
    "CORPUS_SCHEMA",
    "CorpusEntry",
    "FAMILIES",
    "FuzzCase",
    "FuzzConfig",
    "REPORT_SCHEMA",
    "STA_CHECKS",
    "STA_CORPUS_SCHEMA",
    "ShrinkResult",
    "SkipCheck",
    "StaCase",
    "StaCorpusEntry",
    "enumerate_critical_paths",
    "generate_case",
    "generate_sta_case",
    "load_corpus",
    "replay_entry",
    "run_check",
    "run_fuzz",
    "shrink_case",
    "write_entry",
]
