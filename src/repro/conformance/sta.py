"""Metamorphic fuzzing of the STA engine (``repro.sta.graph``).

The circuit families feed waveforms through the AWE pipeline; this
module fuzzes the *other* half of the timing stack — arrival/required
propagation and top-K path enumeration — with graph-level metamorphic
invariants plus a brute-force oracle:

``sta_slack_monotone``
    Increasing any edge delay can only make timing worse: no endpoint
    slack may increase.  Checked *exactly* — every generated delay is an
    integer multiple of one dyadic tick, so float accumulation is exact
    and the comparison needs no tolerance.
``sta_zero_buffer``
    Splitting an edge through a zero-delay buffer node is an identity:
    every original node keeps its arrival, required time, and slack bit
    for bit, and the full path set (buffer stripped) is unchanged.
``sta_delay_scaling``
    Scaling every delay, arrival, and required time by α = 2 scales
    every arrival, required time, and slack by exactly 2 (α is a power
    of two, so the scaling itself is exact) and permutes no path ranks.
``sta_top_k_oracle``
    ``report_top_k_critical_paths`` agrees with an exhaustive recursive
    path enumerator — same paths, same order, same left-to-right float
    sums — on path set, ordering, and slack.

Cases are layered random DAGs with dyadic delays: every delay is
``integer * 2**-30`` seconds, every sum of a handful of them is exact in
a double, and metamorphic transforms (+64 ticks, ×2) stay exact.  The
checks therefore demand **bit equality**, the strongest oracle a
floating-point engine can face.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.conformance.checks import CHECKS, FuzzConfig
from repro.errors import ReproError
from repro.sta.graph import (
    CriticalPath,
    TimingGraph,
    analyze,
    report_top_k_critical_paths,
)

STA_CORPUS_SCHEMA = "repro.sta-corpus/1"

#: One dyadic tick: all generated times are integer multiples of this,
#: so every sum a path takes is exactly representable in a double.
_TICK = 2.0 ** -30


@dataclasses.dataclass(frozen=True)
class StaCase:
    """One generated STA fuzz case: a timing DAG plus its constraints.

    ``nodes`` are the constrained endpoints (what the runner records on
    failure); ``k`` the path count the oracle check requests.  The
    class-level ``kind`` tag is what :func:`~repro.conformance.checks.
    run_check` dispatches on — circuit checks skip STA cases and vice
    versa.
    """

    kind = "sta"  # class attribute, not a field: the dispatch tag

    seed: int
    family: str
    graph: TimingGraph
    arrivals: dict[str, float]
    required: dict[str, float]
    nodes: tuple[str, ...]
    k: int = 8

    def to_payload(self) -> dict:
        """A JSON-safe description (the runner's failure record)."""
        return {
            "edges": [[e.src, e.dst, e.delay] for e in self.graph.edges()],
            "arrivals": dict(self.arrivals),
            "required": dict(self.required),
            "k": self.k,
        }


def generate_sta_case(seed: int, rng: np.random.Generator | None = None) -> StaCase:
    """Deterministically build the STA fuzz case for ``seed``.

    The graph is a layered DAG (2–5 layers, 1–4 nodes each) with
    adjacent-layer edges plus a few layer-skipping shortcuts, dyadic
    delays in ``[1, 4096] * 2**-30`` s, dyadic launch arrivals on the
    first layer, dyadic required times on the last layer, and — a
    quarter of the time — one extra mid-graph endpoint.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    n_layers = int(rng.integers(2, 6))
    widths = [int(rng.integers(1, 5)) for _ in range(n_layers)]
    layers = [[f"n{li}_{i}" for i in range(width)]
              for li, width in enumerate(widths)]

    graph = TimingGraph(f"sta fuzz seed={seed}")
    for layer in layers:
        for node in layer:
            graph.add_node(node)

    def dyadic(low: int, high: int) -> float:
        return int(rng.integers(low, high + 1)) * _TICK

    # Every node past layer 0 gets >= 1 in-edge from the previous layer,
    # so (with arrivals on all of layer 0) every node is reachable.
    for li in range(1, n_layers):
        prev = layers[li - 1]
        for node in layers[li]:
            fanin = int(rng.integers(1, min(3, len(prev)) + 1))
            picks = rng.choice(len(prev), size=fanin, replace=False)
            for si in sorted(int(p) for p in picks):
                graph.add_edge(prev[si], node, dyadic(1, 4096))

    # A few layer-skipping shortcuts (always low layer -> high layer, so
    # acyclicity is free).  Duplicates are simply skipped.
    if n_layers > 2:
        for _ in range(int(rng.integers(0, 3))):
            lo = int(rng.integers(0, n_layers - 2))
            hi = int(rng.integers(lo + 2, n_layers))
            src = layers[lo][int(rng.integers(0, len(layers[lo])))]
            dst = layers[hi][int(rng.integers(0, len(layers[hi])))]
            if dst not in {e.dst for e in graph.out_edges(src)}:
                graph.add_edge(src, dst, dyadic(1, 4096))

    arrivals = {node: dyadic(0, 1024) for node in layers[0]}
    required = {node: dyadic(4096, 65536) for node in layers[-1]}
    if n_layers > 2 and rng.random() < 0.25:
        mid = layers[int(rng.integers(1, n_layers - 1))]
        node = mid[int(rng.integers(0, len(mid)))]
        required.setdefault(node, dyadic(4096, 65536))

    return StaCase(
        seed=seed, family="sta", graph=graph, arrivals=arrivals,
        required=required, nodes=tuple(sorted(required)),
        k=int(rng.integers(1, 13)),
    )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _rebuilt(case: StaCase, delay_of) -> TimingGraph:
    """A copy of the case's graph with each edge delay mapped through
    ``delay_of(edge)``."""
    clone = TimingGraph(case.graph.name)
    for node in case.graph.nodes:
        clone.add_node(node)
    for edge in case.graph.edges():
        clone.add_edge(edge.src, edge.dst, delay_of(edge),
                       kind=edge.kind, label=edge.label)
    return clone


def enumerate_critical_paths(
    graph: TimingGraph,
    arrivals: dict[str, float],
    required: dict[str, float],
) -> list[CriticalPath]:
    """Brute force: *every* launch-to-endpoint path, globally sorted.

    Accumulates arrivals left to right exactly like the engine, so on
    any input — dyadic or not — a correct engine matches bit for bit.
    Exponential in the worst case; meant for the small fuzz DAGs.
    """
    paths: list[CriticalPath] = []

    def walk(node, nodes, edges, arrived):
        if node in required:
            paths.append(CriticalPath(
                nodes=nodes, edges=edges, arrival=arrived,
                required=required[node], slack=required[node] - arrived))
        for edge in graph.out_edges(node):
            walk(edge.dst, nodes + (edge.dst,), edges + (edge,),
                 arrived + edge.delay)

    for start in sorted(arrivals):
        walk(start, (start,), (), arrivals[start])
    paths.sort(key=lambda p: (p.slack, p.nodes))
    return paths


# ----------------------------------------------------------------------
# The checks
# ----------------------------------------------------------------------


def check_sta_slack_monotone(case: StaCase, config: FuzzConfig) -> list[str]:
    """Bumping up to three edge delays never *increases* any endpoint
    slack (exact — the bump of 64 ticks keeps every sum dyadic)."""
    violations: list[str] = []
    edges = list(case.graph.edges())
    if not edges:
        return violations
    rng = np.random.default_rng([case.seed, 0x51AC])
    count = min(len(edges), int(rng.integers(1, 4)))
    picks = rng.choice(len(edges), size=count, replace=False)
    bumped = {(edges[int(i)].src, edges[int(i)].dst) for i in picks}

    before = analyze(case.graph, case.arrivals, case.required)
    after = analyze(
        _rebuilt(case, lambda e: e.delay + (64 * _TICK
                                            if (e.src, e.dst) in bumped
                                            else 0.0)),
        case.arrivals, case.required)
    for endpoint in sorted(case.required):
        if after.slack[endpoint] > before.slack[endpoint]:
            violations.append(
                f"endpoint {endpoint}: slack rose from "
                f"{before.slack[endpoint]!r} to {after.slack[endpoint]!r} "
                f"after increasing {count} edge delay(s)")
    return violations


def check_sta_zero_buffer(case: StaCase, config: FuzzConfig) -> list[str]:
    """Splitting one edge through a zero-delay buffer changes nothing:
    arrival / required / slack at every original node are bit-identical
    and the full (buffer-stripped) path set is unchanged."""
    violations: list[str] = []
    edges = list(case.graph.edges())
    if not edges:
        return violations
    rng = np.random.default_rng([case.seed, 0xB0F])
    split = edges[int(rng.integers(0, len(edges)))]
    buffer_node = "__buf__"
    while case.graph.has_node(buffer_node):
        buffer_node += "_"

    buffered = TimingGraph(case.graph.name)
    for node in case.graph.nodes:
        buffered.add_node(node)
    for edge in case.graph.edges():
        if edge is split:
            buffered.add_edge(edge.src, buffer_node, edge.delay,
                              kind=edge.kind, label=edge.label)
            buffered.add_edge(buffer_node, edge.dst, 0.0,
                              kind=edge.kind, label=edge.label)
        else:
            buffered.add_edge(edge.src, edge.dst, edge.delay,
                              kind=edge.kind, label=edge.label)

    before = analyze(case.graph, case.arrivals, case.required)
    after = analyze(buffered, case.arrivals, case.required)
    for node in case.graph.nodes:
        for field in ("arrival", "required_time", "slack"):
            a, b = getattr(before, field)[node], getattr(after, field)[node]
            if a != b:
                violations.append(
                    f"node {node}: {field} changed from {a!r} to {b!r} "
                    f"after zero-delay buffer insertion on "
                    f"{split.src}->{split.dst}")

    plain = [(p.slack, p.nodes, p.arrival) for p in
             enumerate_critical_paths(case.graph, case.arrivals, case.required)]
    stripped = [(p.slack,
                 tuple(n for n in p.nodes if n != buffer_node),
                 p.arrival)
                for p in enumerate_critical_paths(buffered, case.arrivals,
                                                  case.required)]
    if plain != stripped:
        violations.append(
            f"path set changed after zero-delay buffer insertion on "
            f"{split.src}->{split.dst}: {len(plain)} paths before, "
            f"{len(stripped)} after (or order/slack differs)")
    return violations


def check_sta_delay_scaling(case: StaCase, config: FuzzConfig) -> list[str]:
    """Scaling every time by α = 2 scales every result by exactly 2 and
    preserves every path rank."""
    violations: list[str] = []
    alpha = 2.0
    before = analyze(case.graph, case.arrivals, case.required)
    after = analyze(
        _rebuilt(case, lambda e: e.delay * alpha),
        {n: t * alpha for n, t in case.arrivals.items()},
        {n: t * alpha for n, t in case.required.items()})
    for node in case.graph.nodes:
        for field in ("arrival", "required_time", "slack"):
            a, b = getattr(before, field)[node], getattr(after, field)[node]
            if b != a * alpha:
                violations.append(
                    f"node {node}: {field} is {b!r} after x{alpha:g} "
                    f"scaling, expected {a * alpha!r}")
    paths_before = before.top_paths(case.k)
    paths_after = after.top_paths(case.k)
    if [p.nodes for p in paths_after] != [p.nodes for p in paths_before]:
        violations.append(
            f"x{alpha:g} scaling permuted the top-{case.k} path ranks")
    else:
        for rank, (p, q) in enumerate(zip(paths_before, paths_after), 1):
            if q.slack != p.slack * alpha or q.arrival != p.arrival * alpha:
                violations.append(
                    f"path #{rank} ({' -> '.join(p.nodes)}): slack/arrival "
                    f"did not scale by exactly {alpha:g}")
    return violations


def check_sta_top_k_oracle(case: StaCase, config: FuzzConfig) -> list[str]:
    """``report_top_k_critical_paths`` against exhaustive enumeration:
    same paths, same global order, bit-identical sums."""
    violations: list[str] = []
    expected = enumerate_critical_paths(
        case.graph, case.arrivals, case.required)[:case.k]
    actual = report_top_k_critical_paths(
        case.graph, case.arrivals, case.required, case.k)
    if len(actual) != len(expected):
        violations.append(
            f"engine returned {len(actual)} paths, oracle expects "
            f"{len(expected)} (k={case.k})")
        return violations
    for rank, (want, got) in enumerate(zip(expected, actual), 1):
        if got.nodes != want.nodes:
            violations.append(
                f"path #{rank}: engine {' -> '.join(got.nodes)}, oracle "
                f"{' -> '.join(want.nodes)}")
        elif (got.arrival != want.arrival or got.slack != want.slack
              or got.required != want.required
              or got.edges != want.edges):
            violations.append(
                f"path #{rank} ({' -> '.join(want.nodes)}): engine "
                f"(arrival={got.arrival!r}, slack={got.slack!r}) vs oracle "
                f"(arrival={want.arrival!r}, slack={want.slack!r})")
    return violations


#: The STA check registry; registered into the global ``CHECKS`` below.
STA_CHECKS: dict = {
    "sta_slack_monotone": check_sta_slack_monotone,
    "sta_zero_buffer": check_sta_zero_buffer,
    "sta_delay_scaling": check_sta_delay_scaling,
    "sta_top_k_oracle": check_sta_top_k_oracle,
}

for _check in STA_CHECKS.values():
    _check.case_kind = "sta"  # run_check skips these for circuit cases
del _check

CHECKS.update(STA_CHECKS)


# ----------------------------------------------------------------------
# Corpus entries
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StaCorpusEntry:
    """One distilled STA regression case: a graph plus the check it must
    pass.  Mirrors :class:`~repro.conformance.corpus.CorpusEntry` —
    ``config``/``to_case`` let :func:`~repro.conformance.corpus.
    replay_entry` handle both kinds polymorphically."""

    name: str
    check: str
    edges: tuple[tuple[str, str, float], ...]
    arrivals: dict[str, float]
    required: dict[str, float]
    k: int = 8
    seed: int = 0
    family: str = "sta"
    description: str = ""

    def config(self) -> FuzzConfig:
        return FuzzConfig(checks=(self.check,))

    def to_case(self) -> StaCase:
        graph = TimingGraph(f"corpus {self.name}")
        for src, dst, delay in self.edges:
            graph.add_edge(src, dst, delay)
        for node in list(self.arrivals) + list(self.required):
            graph.add_node(node)
        return StaCase(
            seed=self.seed, family=self.family or "sta", graph=graph,
            arrivals=dict(self.arrivals), required=dict(self.required),
            nodes=tuple(sorted(self.required)), k=self.k)

    def to_dict(self) -> dict:
        return {
            "schema": STA_CORPUS_SCHEMA,
            "name": self.name,
            "check": self.check,
            "edges": [[src, dst, delay] for src, dst, delay in self.edges],
            "arrivals": dict(self.arrivals),
            "required": dict(self.required),
            "k": self.k,
            "seed": self.seed,
            "family": self.family,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StaCorpusEntry":
        data = dict(payload)
        schema = data.pop("schema", STA_CORPUS_SCHEMA)
        if schema != STA_CORPUS_SCHEMA:
            raise ReproError(f"unsupported STA corpus schema {schema!r} "
                             f"(expected {STA_CORPUS_SCHEMA!r})")
        try:
            data["edges"] = tuple(
                (str(src), str(dst), float(delay))
                for src, dst, delay in data.get("edges", ()))
        except (TypeError, ValueError) as exc:
            raise ReproError(f"malformed STA corpus edges: {exc}") from exc
        fields = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ReproError(f"STA corpus entry has unknown fields: "
                             f"{', '.join(sorted(unknown))}")
        return cls(**data)
