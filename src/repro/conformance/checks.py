"""The metamorphic-invariant registry of the conformance fuzzer.

Each check is a named function ``(case, config) -> list[str]``: an empty
list is a pass, each string a violation.  A check may raise
:class:`SkipCheck` when it does not apply to the case (the runner counts
skips separately from passes).  Any other exception escaping a check is
recorded by the runner as a ``crash`` violation — a crash *is* a finding.

The invariants are the paper's own mathematics turned into oracles:

``awe_vs_transient``
    The whole-stack differential oracle (Sec. 3.4): the auto-escalated
    AWE waveform must match the converged TR-BDF2 reference within the
    family-calibrated relative L2 bound.
``linearity``
    LTI homogeneity: scaling every stimulus *and* every initial
    condition by α scales the response by α, bit-for-bit up to roundoff.
``impedance_scaling``
    R→kR, L→kL, C→C/k leaves every voltage transfer — poles, residues,
    waveform — unchanged.
``time_scaling``
    C→kC, L→kL (and stimulus breakpoints →k·t) stretches time:
    v'(k·t) = v(t), poles' = poles / k.
``frequency_scaling``
    The eq. 47 γ-scaling of the moments is a numerical aid, not part of
    the answer: with and without it the final waveform must agree
    wherever the unscaled solve succeeds at the same order.
``elmore_first_order``
    On any RC tree, the first-order AWE pole is −1/T_Elmore at every
    node (Sec. II / IV equivalence).
``roundtrip``
    Writer/parser/canonicaliser idempotence: one canonical re-serialise
    is a fixed point, and the canonical key survives the round trip.
``canonical_key``
    The service cache's content address is invariant under card
    shuffling, comments, and title changes of the deck text.
``batch_vs_sequential``
    :class:`~repro.engine.batch.BatchEngine` results are bit-identical
    to a direct :class:`~repro.core.driver.AweAnalyzer` run.
``reduction_equivalence``
    RC-chain pre-reduction (:func:`repro.reduce.reduce_circuit`) is an
    approximation with a guaranteed shape: transfer moments m₀ and m₁
    (DC gain and Elmore) at every retained node are preserved exactly on
    *every* family, and on the ``long_chain`` family — where the
    sectioned pi collapse keeps higher-moment error ~1/k² small — full
    AWE waveforms and 50 % delays additionally agree within a calibrated
    2 % / 1 % bound.  Skipped when nothing in the case is collapsible.
``sweep_incremental``
    The incremental what-if engine (:mod:`repro.sweep`) against its own
    from-scratch reference: exact-tier points (including fallback
    demotions) must match ``direct_point`` **bit for bit**, rank-1
    Sherman–Morrison points to 1e-9 relative, first-order gradient
    points within the plan's stated error bound — and on RC trees a
    near-open resistor must *demote* to the exact tier rather than
    silently serve a degenerate rank-1 update.  Skipped for cases
    outside the engine's R/C/V/I no-floating-group scope.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.mna import MnaSystem
from repro.analysis.sources import DC, PWL, Pulse, Ramp, Step, Stimulus
from repro.analysis.transient import simulate
from repro.circuit.elements import Capacitor, Inductor, Resistor
from repro.circuit.netlist import Circuit
from repro.circuit.parser import parse_netlist
from repro.circuit.writer import write_netlist
from repro.core.driver import AweAnalyzer
from repro.core.transfer import transfer_moments
from repro.engine.batch import AweJob, BatchEngine
from repro.errors import AnalysisError, ReproError
from repro.rctree import elmore_delays
from repro.reduce import reduce_circuit
from repro.service.canon import canonical_deck, request_key
from repro.sweep import SweepEngine, SweepPlan, SweepPoint
from repro.waveform import l2_error

from repro.conformance.generate import FuzzCase


class SkipCheck(Exception):
    """Raised by a check that does not apply to the case at hand."""


@dataclasses.dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing run.

    ``use_scaling=False`` ablates the paper's eq. 47 frequency scaling in
    every AWE solve the checks perform — the canonical injected bug the
    acceptance tests (and ``--ablate-scaling``) use to prove the fuzzer
    actually detects and shrinks real defects.
    """

    checks: tuple[str, ...] = ()
    use_scaling: bool = True
    error_target: float = 0.005
    max_order: int = 8

    def check_names(self) -> tuple[str, ...]:
        return self.checks if self.checks else tuple(CHECKS)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _response(case: FuzzCase, config: FuzzConfig, node: str,
              circuit: Circuit | None = None, stimuli=None, order=None):
    analyzer = AweAnalyzer(circuit if circuit is not None else case.circuit,
                           case.stimuli if stimuli is None else stimuli,
                           max_order=config.max_order)
    return analyzer.response(node, order=order,
                             error_target=config.error_target,
                             use_scaling=config.use_scaling)


def _scaled_stimulus(stimulus: Stimulus, alpha: float) -> Stimulus:
    """The stimulus with every *voltage* multiplied by ``alpha``."""
    if isinstance(stimulus, DC):
        return DC(stimulus.level * alpha)
    if isinstance(stimulus, Step):
        return Step(stimulus.v0 * alpha, stimulus.v1 * alpha, delay=stimulus.delay)
    if isinstance(stimulus, Ramp):
        return Ramp(stimulus.v0 * alpha, stimulus.v1 * alpha,
                    rise_time=stimulus.rise_time, delay=stimulus.delay)
    if isinstance(stimulus, Pulse):
        return Pulse(stimulus.v0 * alpha, stimulus.v1 * alpha,
                     delay=stimulus.delay, rise=stimulus.rise,
                     width=stimulus.width, fall=stimulus.fall)
    if isinstance(stimulus, PWL):
        return PWL([(t, v * alpha) for t, v in stimulus.points])
    raise SkipCheck(f"cannot amplitude-scale stimulus {type(stimulus).__name__}")


def _time_scaled_stimulus(stimulus: Stimulus, k: float) -> Stimulus:
    """The stimulus with every *time* multiplied by ``k``."""
    if isinstance(stimulus, DC):
        return stimulus
    if isinstance(stimulus, Step):
        return Step(stimulus.v0, stimulus.v1, delay=stimulus.delay * k)
    if isinstance(stimulus, Ramp):
        return Ramp(stimulus.v0, stimulus.v1,
                    rise_time=stimulus.rise_time * k, delay=stimulus.delay * k)
    if isinstance(stimulus, Pulse):
        return Pulse(stimulus.v0, stimulus.v1, delay=stimulus.delay * k,
                     rise=stimulus.rise * k, width=stimulus.width * k,
                     fall=stimulus.fall * k)
    if isinstance(stimulus, PWL):
        return PWL([(t * k, v) for t, v in stimulus.points])
    raise SkipCheck(f"cannot time-scale stimulus {type(stimulus).__name__}")


def _value_scaled_circuit(circuit: Circuit, r_factor: float = 1.0,
                          l_factor: float = 1.0, c_factor: float = 1.0) -> Circuit:
    """A copy with every R/L/C multiplied by its factor (couplings are
    dimensionless coefficients and carry over unchanged)."""
    scaled = Circuit(circuit.title)
    for element in circuit:
        if isinstance(element, Resistor):
            element = dataclasses.replace(
                element, resistance=element.resistance * r_factor)
        elif isinstance(element, Capacitor):
            element = dataclasses.replace(
                element, capacitance=element.capacitance * c_factor)
        elif isinstance(element, Inductor):
            element = dataclasses.replace(
                element, inductance=element.inductance * l_factor)
        scaled.add(element)
    for coupling in circuit.mutual_inductances:
        scaled.add_mutual_inductance(coupling.name, coupling.inductor_a,
                                     coupling.inductor_b, coupling.coupling)
    return scaled


def _swing(waveform, window: float) -> float:
    values = waveform.evaluate(np.linspace(0.0, window, 64))
    return float(values.max() - values.min())


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------


def check_awe_vs_transient(case: FuzzCase, config: FuzzConfig) -> list[str]:
    violations: list[str] = []
    analyzer = AweAnalyzer(case.circuit, case.stimuli, max_order=config.max_order)
    responses = {
        node: analyzer.response(node, error_target=config.error_target,
                                use_scaling=config.use_scaling)
        for node in case.nodes
    }
    t_stop = max(r.waveform.suggested_window() for r in responses.values())
    reference = simulate(case.circuit, case.stimuli, t_stop,
                         refine_tolerance=case.refine_tolerance)
    for node, response in responses.items():
        ref = reference.voltage(node)
        try:
            error = l2_error(ref, response.waveform.to_waveform(ref.times))
        except AnalysisError:
            continue  # no transient at this node; nothing to compare
        if not error < case.l2_bound:
            violations.append(
                f"node {node}: AWE (order {response.order}) vs TR-BDF2 "
                f"relative L2 error {error:.4g} exceeds bound {case.l2_bound:g}"
            )
    return violations


def check_linearity(case: FuzzCase, config: FuzzConfig) -> list[str]:
    alpha = 2.0
    scaled_circuit = case.circuit.copy()
    for cap in case.circuit.capacitors:
        if cap.initial_voltage is not None:
            scaled_circuit.set_initial_voltage(cap.name, cap.initial_voltage * alpha)
    for ind in case.circuit.inductors:
        if ind.initial_current is not None:
            scaled_circuit.set_initial_current(ind.name, ind.initial_current * alpha)
    scaled_stimuli = {name: _scaled_stimulus(stim, alpha)
                      for name, stim in case.stimuli.items()}
    violations: list[str] = []
    for node in case.nodes:
        base = _response(case, config, node)
        scaled = _response(case, config, node,
                           circuit=scaled_circuit, stimuli=scaled_stimuli)
        window = base.waveform.suggested_window()
        times = np.linspace(0.0, window, 120)
        expected = alpha * base.waveform.evaluate(times)
        actual = scaled.waveform.evaluate(times)
        tolerance = 1e-6 * max(_swing(base.waveform, window) * alpha, 1e-12)
        worst = float(np.abs(actual - expected).max())
        if worst > tolerance:
            violations.append(
                f"node {node}: response is not homogeneous — scaling the "
                f"stimulus by {alpha:g} perturbs the waveform by {worst:.3g} "
                f"(tolerance {tolerance:.3g})"
            )
    return violations


def check_impedance_scaling(case: FuzzCase, config: FuzzConfig) -> list[str]:
    k = 10.0
    if any(ind.initial_current is not None for ind in case.circuit.inductors):
        raise SkipCheck("inductor initial currents do not survive impedance scaling")
    scaled_circuit = _value_scaled_circuit(case.circuit, r_factor=k,
                                           l_factor=k, c_factor=1.0 / k)
    violations: list[str] = []
    for node in case.nodes:
        base = _response(case, config, node)
        scaled = _response(case, config, node, circuit=scaled_circuit)
        window = base.waveform.suggested_window()
        times = np.linspace(0.0, window, 120)
        worst = float(np.abs(scaled.waveform.evaluate(times)
                             - base.waveform.evaluate(times)).max())
        tolerance = 1e-5 * max(_swing(base.waveform, window), 1e-12)
        if worst > tolerance:
            violations.append(
                f"node {node}: impedance scaling (R,L×{k:g}, C÷{k:g}) moved "
                f"the waveform by {worst:.3g} (tolerance {tolerance:.3g})"
            )
        if base.order == scaled.order and len(base.poles):
            drift = float(np.abs(np.sort(scaled.poles) - np.sort(base.poles)).max())
            scale = float(np.abs(base.poles).max())
            # Pole extraction re-solves a differently conditioned Hankel
            # system, and clustered poles move by eps^(1/m) under
            # eps-perturbations of the moments; real covariance bugs move
            # poles by O(1) factors, so 1e-3 relative keeps wide margin.
            if drift > 1e-3 * scale:
                violations.append(
                    f"node {node}: impedance scaling moved the poles by "
                    f"{drift:.3g} (relative to |p|max {scale:.3g})"
                )
    return violations


def check_time_scaling(case: FuzzCase, config: FuzzConfig) -> list[str]:
    k = 3.0
    scaled_circuit = _value_scaled_circuit(case.circuit, l_factor=k, c_factor=k)
    scaled_stimuli = {name: _time_scaled_stimulus(stim, k)
                      for name, stim in case.stimuli.items()}
    violations: list[str] = []
    for node in case.nodes:
        base = _response(case, config, node)
        scaled = _response(case, config, node,
                           circuit=scaled_circuit, stimuli=scaled_stimuli)
        window = base.waveform.suggested_window()
        times = np.linspace(0.0, window, 120)
        worst = float(np.abs(scaled.waveform.evaluate(k * times)
                             - base.waveform.evaluate(times)).max())
        tolerance = 1e-5 * max(_swing(base.waveform, window), 1e-12)
        if worst > tolerance:
            violations.append(
                f"node {node}: time scaling (C,L×{k:g}) is not a pure "
                f"time stretch — waveform moved by {worst:.3g} "
                f"(tolerance {tolerance:.3g})"
            )
        if base.order == scaled.order and len(base.poles):
            drift = float(np.abs(np.sort(scaled.poles) * k - np.sort(base.poles)).max())
            scale = float(np.abs(base.poles).max())
            if drift > 1e-3 * scale:
                violations.append(
                    f"node {node}: poles did not scale by 1/{k:g} under time "
                    f"scaling (drift {drift:.3g} vs |p|max {scale:.3g})"
                )
    return violations


def check_frequency_scaling(case: FuzzCase, config: FuzzConfig) -> list[str]:
    """Eq. 47 invariance: γ-scaling the moments must not change the
    answer, only the conditioning.  The unscaled path legitimately fails
    on stiff circuits (that failure is *why* the paper scales) — those
    cases are skips, not violations."""
    if not config.use_scaling:
        raise SkipCheck("frequency scaling is ablated by the config")
    violations: list[str] = []
    compared = 0
    for node in case.nodes:
        base = _response(case, config, node)
        try:
            unscaled = AweAnalyzer(
                case.circuit, case.stimuli, max_order=config.max_order
            ).response(node, error_target=config.error_target, use_scaling=False)
        except ReproError:
            continue
        if unscaled.order != base.order:
            continue  # the unscaled escalation took a different route
        compared += 1
        window = base.waveform.suggested_window()
        times = np.linspace(0.0, window, 120)
        worst = float(np.abs(unscaled.waveform.evaluate(times)
                             - base.waveform.evaluate(times)).max())
        tolerance = 1e-5 * max(_swing(base.waveform, window), 1e-12)
        if worst > tolerance:
            violations.append(
                f"node {node}: disabling eq. 47 frequency scaling changed the "
                f"order-{base.order} waveform by {worst:.3g} "
                f"(tolerance {tolerance:.3g})"
            )
    if not compared and not violations:
        raise SkipCheck("unscaled solve unusable on every output (stiff case)")
    return violations


def check_elmore_first_order(case: FuzzCase, config: FuzzConfig) -> list[str]:
    if not case.is_rc_tree:
        raise SkipCheck("Elmore equivalence only applies to RC trees")
    delays = elmore_delays(case.circuit)
    analyzer = AweAnalyzer(case.circuit, {case.source: Step(0.0, 1.0)},
                           max_order=config.max_order)
    violations: list[str] = []
    for node in case.nodes:
        response = analyzer.response(node, order=1,
                                     use_scaling=config.use_scaling)
        pole = float(response.poles[0].real)
        elmore = delays[node]
        if not np.isclose(-1.0 / pole, elmore, rtol=1e-8, atol=0.0):
            violations.append(
                f"node {node}: first-order AWE pole {pole:.6e} is not "
                f"-1/T_Elmore (T_Elmore {elmore:.6e}, -1/p {-1.0 / pole:.6e})"
            )
    return violations


def check_roundtrip(case: FuzzCase, config: FuzzConfig) -> list[str]:
    violations: list[str] = []
    text = write_netlist(case.circuit, case.stimuli)
    deck1 = parse_netlist(text)
    if len(deck1.circuit) != len(case.circuit):
        violations.append(
            f"writer/parser round trip changed the element count: "
            f"{len(case.circuit)} -> {len(deck1.circuit)}"
        )
    canon1 = canonical_deck(deck1.circuit, deck1.stimuli)
    deck2 = parse_netlist(canon1)
    canon2 = canonical_deck(deck2.circuit, deck2.stimuli)
    if canon1 != canon2:
        violations.append(
            "canonical serialisation is not a fixed point: "
            "write(parse(canonical)) differs from canonical"
        )
    if deck1.circuit.canonical_key() != deck2.circuit.canonical_key():
        violations.append("canonical key changed across a canonical round trip")
    for element in case.circuit:
        clone = deck1.circuit[element.name]
        for attr in ("resistance", "capacitance", "inductance"):
            if hasattr(element, attr) and getattr(clone, attr) != getattr(element, attr):
                violations.append(
                    f"{element.name}: {attr} {getattr(element, attr)!r} "
                    f"round-tripped to {getattr(clone, attr)!r}"
                )
    return violations


def check_canonical_key(case: FuzzCase, config: FuzzConfig) -> list[str]:
    """The service cache key must not see deck-text degrees of freedom."""
    rng = np.random.default_rng(case.seed + 0x5EED)
    text = write_netlist(case.circuit, case.stimuli)
    lines = text.splitlines()
    title, cards, tail = lines[0], lines[1:-1], lines[-1]
    # Magnetic couplings must stay after their inductors for the parser;
    # shuffle only the plain element cards and keep K-cards at the end.
    plain = [card for card in cards if not card.lower().startswith("k")]
    couplings = [card for card in cards if card.lower().startswith("k")]
    order = rng.permutation(len(plain))
    shuffled = "\n".join(
        ["a completely different title", "* a comment the parser must ignore"]
        + ["  " + plain[i] for i in order]
        + couplings + [tail]
    ) + "\n"
    deck_original = parse_netlist(text)
    deck_shuffled = parse_netlist(shuffled)

    def key(deck):
        return request_key(deck.circuit, deck.stimuli, case.nodes,
                           error_target=config.error_target,
                           max_order=config.max_order)

    if key(deck_original) != key(deck_shuffled):
        return ["request_key differs across card shuffling / comments / "
                "title changes of an identical deck"]
    return []


def check_batch_vs_sequential(case: FuzzCase, config: FuzzConfig) -> list[str]:
    options = {"use_scaling": config.use_scaling}
    job = AweJob(case.circuit, case.nodes, stimuli=case.stimuli,
                 error_target=config.error_target, max_order=config.max_order,
                 response_options=options)
    result = BatchEngine().run([job], workers=1)[0]
    if not result.ok:
        return [f"batch engine failed where the sequential path works: "
                f"[{result.error_type}] {result.error}"]
    analyzer = AweAnalyzer(case.circuit, case.stimuli, max_order=config.max_order)
    violations: list[str] = []
    for node in case.nodes:
        expected = analyzer.response(node, error_target=config.error_target,
                                     **options)
        actual = result.responses[node]
        if not np.array_equal(expected.poles, actual.poles):
            violations.append(f"node {node}: batch poles differ from sequential")
            continue
        times = np.linspace(0.0, expected.waveform.suggested_window(), 200)
        if not np.array_equal(expected.waveform.evaluate(times),
                              actual.waveform.evaluate(times)):
            violations.append(
                f"node {node}: batch waveform is not bit-identical to sequential"
            )
    return violations


def check_reduction_equivalence(case: FuzzCase, config: FuzzConfig) -> list[str]:
    """Reduced and unreduced circuits must tell the same timing story.

    Two tiers, matching the collapse's actual guarantee
    (:mod:`repro.reduce`):

    * **Exact, every family** — the transfer moments m₀ (DC gain) and m₁
      (−Elmore) from the driving source to every retained node survive
      the pi collapse for *any* surrounding resistive network (the
      Norton current-divider split of each re-homed cap's injection is
      exact, and the zeroth-moment voltage is linear along a chain), so
      they get a tight relative tolerance.  Higher moments — and hence
      full waveforms on arbitrarily *nonuniform* short chains — are
      approximations with no small universal bound.
    * **Calibrated, ``long_chain`` family only** — on long quasi-uniform
      chains the sectioned collapse keeps higher-moment error ~1/k²
      small, so full (auto-order) waveforms and 50 % delays additionally
      must agree within 2 % of swing / 1 % relative.
    """
    reduction = reduce_circuit(case.circuit, keep=case.nodes)
    if not reduction.reduced:
        raise SkipCheck("no collapsible series RC chain in this case")
    violations: list[str] = []
    base_system = MnaSystem(case.circuit)
    reduced_system = MnaSystem(reduction.circuit)
    for node in case.nodes:
        m_base = transfer_moments(base_system, case.source, node, 2)
        m_reduced = transfer_moments(reduced_system, case.source, node, 2)
        for k in range(2):
            if not np.isclose(m_reduced[k], m_base[k], rtol=1e-8, atol=0.0):
                violations.append(
                    f"node {node}: transfer moment m{k} {m_reduced[k]:.10e} "
                    f"(reduced) vs {m_base[k]:.10e} — the collapse failed "
                    f"to preserve {'DC gain' if k == 0 else 'the Elmore moment'}"
                )
    if case.family != "long_chain":
        return violations
    for node in case.nodes:
        base = _response(case, config, node)
        reduced = _response(case, config, node, circuit=reduction.circuit)
        window = base.waveform.suggested_window()
        times = np.linspace(0.0, window, 200)
        swing = max(_swing(base.waveform, window), 1e-12)
        worst = float(np.abs(reduced.waveform.evaluate(times)
                             - base.waveform.evaluate(times)).max())
        if worst > 0.02 * swing:
            violations.append(
                f"node {node}: reduced waveform deviates by {worst:.3g} "
                f"({worst / swing:.2%} of swing; bound 2%) — "
                f"{reduction.original_node_count} -> "
                f"{reduction.reduced_node_count} nodes"
            )
        if swing > 1e-9:
            base_delay = base.delay_50()
            reduced_delay = reduced.delay_50()
            if np.isfinite(base_delay) and base_delay > 0:
                drift = abs(reduced_delay - base_delay) / base_delay
                if drift > 0.01:
                    violations.append(
                        f"node {node}: reduced 50% delay {reduced_delay:.4g} "
                        f"vs unreduced {base_delay:.4g} "
                        f"(relative drift {drift:.2%}; bound 1%)"
                    )
        # Under a pure step the order-1 response pole is −1/T_Elmore,
        # and the collapse preserves the Elmore moment exactly — so the
        # pole itself must survive to tight tolerance.  (The case's own
        # stimulus may be a delayed step, whose subproblem mixing pulls
        # higher moments into the order-1 fit; a fixed step isolates the
        # invariant.)
        step = {case.source: Step(0.0, 1.0)}
        base1 = _response(case, config, node, stimuli=step, order=1)
        reduced1 = _response(case, config, node, circuit=reduction.circuit,
                             stimuli=step, order=1)
        p_base = float(base1.poles[0].real)
        p_reduced = float(reduced1.poles[0].real)
        if not np.isclose(p_reduced, p_base, rtol=1e-6, atol=0.0):
            violations.append(
                f"node {node}: step order-1 pole {p_reduced:.8e} (reduced) "
                f"vs {p_base:.8e} — the collapse failed to preserve the "
                f"Elmore pole"
            )
    return violations


def check_sweep_incremental(case: FuzzCase, config: FuzzConfig) -> list[str]:
    """The incremental sweep engine against its from-scratch reference.

    One mixed plan per case — small and large R and C scalings plus a
    source retune, and (on RC trees, where every resistor is a bridge)
    a near-open resistor that provably degenerates the Sherman–Morrison
    denominator.  The guarantees checked are the ones
    :mod:`repro.sweep` states:

    * ``exact``-tier points (including fallback demotions) are **bit
      for bit** equal to :meth:`SweepEngine.direct_point`.
    * ``rank1`` points agree to 1e-9 relative (exact in algebra).
    * ``first_order`` points stay within the plan's ``error_bound``.
    * the near-open resistor *demotes* (``fallback=True`` → exact) —
      a silently-served degenerate rank-1 update is a finding.
    * the tier counts and extra-factorization count are consistent.
    """
    try:
        engine = SweepEngine(case.circuit, case.stimuli)
    except AnalysisError as exc:
        raise SkipCheck(f"outside the sweep engine's scope: {exc}")
    resistors = sorted(
        element.name for element in case.circuit
        if isinstance(element, Resistor))
    capacitors = sorted(
        element.name for element in case.circuit
        if isinstance(element, Capacitor))
    if not resistors or not capacitors:
        raise SkipCheck("the sweep check wants at least one R and one C")
    node = case.nodes[0]
    points = [
        SweepPoint(element=resistors[0], scale=1.02, label="r-small"),
        SweepPoint(element=resistors[-1], scale=2.5, label="r-big"),
        SweepPoint(element=capacitors[0], scale=1.03, label="c-small"),
        SweepPoint(element=capacitors[-1], scale=0.5, label="c-big"),
        SweepPoint(element=case.source, scale=1.25, label="retune"),
    ]
    if case.is_rc_tree:
        # Every tree resistor is a bridge, so scaling one to near-open
        # drives the Sherman–Morrison denominator to ~1e-10 — below the
        # engine's validity floor.  It must demote, not approximate.
        points.append(SweepPoint(element=resistors[0], scale=1e10,
                                 label="force-open"))
    plan = SweepPlan(node=node, points=tuple(points))
    try:
        result = engine.evaluate(plan)
        references = [engine.direct_point(point, node)
                      for point in plan.points]
    except AnalysisError as exc:
        raise SkipCheck(f"sweep plan outside the engine's scope: {exc}")
    violations: list[str] = []
    for point, got, want in zip(plan.points, result.points, references):
        if got.mode == "exact":
            if (got.dc, got.m1, got.elmore_delay) != (
                    want.dc, want.m1, want.elmore_delay):
                violations.append(
                    f"point {point.label}: exact tier is not bit-identical "
                    f"to a from-scratch evaluation "
                    f"({got.elmore_delay!r} vs {want.elmore_delay!r})")
            continue
        # m1 = −T·dc compounds both first-order errors, so only the
        # algebraically-exact rank-1 tier owes it the tight bound.
        fields = (("dc", "m1", "elmore_delay") if got.mode == "rank1"
                  else ("dc", "elmore_delay"))
        bound = 1e-9 if got.mode == "rank1" else plan.error_bound
        for field in fields:
            g, w = getattr(got, field), getattr(want, field)
            err = abs(g - w) / max(abs(w), 1e-300)
            if err > bound:
                violations.append(
                    f"point {point.label}: {got.mode} {field} off by "
                    f"{err:.3g} relative (bound {bound:g})")
    retune = result.points[4]
    if retune.mode != "rank1" or retune.fallback:
        violations.append(
            f"source retune served by {retune.mode!r} "
            f"(fallback={retune.fallback}) — expected the exact-linear "
            f"rank-1 RHS update")
    if case.is_rc_tree:
        forced = result.points[-1]
        if forced.mode != "exact" or not forced.fallback:
            violations.append(
                f"near-open resistor served by {forced.mode!r} "
                f"(fallback={forced.fallback}) — a degenerate "
                f"Sherman–Morrison denominator must demote to exact")
    if result.stats["factorizations"] != result.stats["exact"]:
        violations.append(
            f"stats disagree: {result.stats['exact']} exact points but "
            f"{result.stats['factorizations']} extra factorizations")
    if result.incremental_points + result.stats["exact"] != len(plan.points):
        violations.append(
            f"tier counts {result.stats} do not sum to the "
            f"{len(plan.points)}-point plan")
    return violations


#: The registry, in the order the runner executes them: cheap structural
#: checks first, the differential oracle last (it dominates wall time).
CHECKS: dict = {
    "roundtrip": check_roundtrip,
    "canonical_key": check_canonical_key,
    "elmore_first_order": check_elmore_first_order,
    "linearity": check_linearity,
    "impedance_scaling": check_impedance_scaling,
    "time_scaling": check_time_scaling,
    "frequency_scaling": check_frequency_scaling,
    "batch_vs_sequential": check_batch_vs_sequential,
    "sweep_incremental": check_sweep_incremental,
    "reduction_equivalence": check_reduction_equivalence,
    "awe_vs_transient": check_awe_vs_transient,
}


def run_check(name: str, case, config: FuzzConfig) -> list[str]:
    """Run one named check; raises ``KeyError`` for unknown names and
    :class:`SkipCheck` when the check does not apply.

    Checks and cases both carry a ``kind`` tag (``"circuit"`` unless
    they say otherwise — :mod:`repro.conformance.sta` registers
    ``"sta"`` graph checks); a mismatch is an automatic skip, so one
    seed stream can interleave circuit and STA cases under the full
    check registry.
    """
    check = CHECKS[name]
    case_kind = getattr(case, "kind", "circuit")
    check_kind = getattr(check, "case_kind", "circuit")
    if check_kind != case_kind:
        raise SkipCheck(f"check {name!r} applies to {check_kind} cases, "
                        f"got a {case_kind} case")
    return check(case, config)
