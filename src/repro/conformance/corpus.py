"""The persisted regression corpus (``tests/corpus/*.json``).

Every interesting failure the fuzzer ever finds is distilled — usually
through the shrinker — into a small, *self-contained* JSON entry: the
netlist text itself is stored, so replay does not depend on the
generators staying bit-stable across releases.  The tier-1 suite replays
every entry and asserts its check now passes; a corpus entry is a bug
that must stay fixed.

Entries are written with sorted keys and a trailing newline so the files
are diff-friendly and a re-export is byte-identical.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.circuit.parser import parse_netlist
from repro.conformance.checks import FuzzConfig, SkipCheck, run_check
from repro.conformance.generate import FuzzCase
from repro.errors import ReproError

CORPUS_SCHEMA = "repro.fuzz-corpus/1"


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One distilled regression case: a netlist plus the check it must pass."""

    name: str
    check: str
    netlist: str
    nodes: tuple[str, ...]
    source: str
    seed: int = 0
    family: str = ""
    description: str = ""
    is_rc_tree: bool = False
    l2_bound: float = 0.02
    refine_tolerance: float = 3e-4
    use_scaling: bool = True
    error_target: float = 0.005
    max_order: int = 8

    def config(self) -> FuzzConfig:
        return FuzzConfig(checks=(self.check,), use_scaling=self.use_scaling,
                          error_target=self.error_target,
                          max_order=self.max_order)

    def to_case(self) -> FuzzCase:
        deck = parse_netlist(self.netlist)
        return FuzzCase(
            seed=self.seed, family=self.family or "corpus",
            circuit=deck.circuit, stimuli=deck.stimuli,
            nodes=self.nodes, source=self.source,
            is_rc_tree=self.is_rc_tree, l2_bound=self.l2_bound,
            refine_tolerance=self.refine_tolerance,
        )

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["nodes"] = list(self.nodes)
        payload["schema"] = CORPUS_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusEntry":
        data = dict(payload)
        schema = data.pop("schema", CORPUS_SCHEMA)
        if schema != CORPUS_SCHEMA:
            raise ReproError(f"unsupported corpus schema {schema!r} "
                             f"(expected {CORPUS_SCHEMA!r})")
        data["nodes"] = tuple(data.get("nodes", ()))
        fields = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ReproError(
                f"corpus entry has unknown fields: {', '.join(sorted(unknown))}")
        return cls(**data)


def replay_entry(entry: CorpusEntry) -> list[str]:
    """Re-run the entry's check against its stored netlist.

    Returns the violation list (empty = the bug is still fixed); a check
    that no longer applies counts as passing.
    """
    try:
        return run_check(entry.check, entry.to_case(), entry.config())
    except SkipCheck:
        return []


def write_entry(entry: CorpusEntry, directory: pathlib.Path | str) -> pathlib.Path:
    """Persist the entry as ``<directory>/<name>.json`` (deterministic bytes)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(json.dumps(entry.to_dict(), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_corpus(directory: pathlib.Path | str) -> list:
    """All entries under ``directory``, sorted by file name.

    Dispatches on each file's ``schema`` marker: circuit entries
    (``repro.fuzz-corpus/1``) become :class:`CorpusEntry`, STA graph
    entries (``repro.sta-corpus/1``) become
    :class:`~repro.conformance.sta.StaCorpusEntry`.  Both replay
    through :func:`replay_entry`.
    """
    directory = pathlib.Path(directory)
    entries: list = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        try:
            if payload.get("schema") == "repro.sta-corpus/1":
                from repro.conformance.sta import StaCorpusEntry

                entries.append(StaCorpusEntry.from_dict(payload))
            else:
                entries.append(CorpusEntry.from_dict(payload))
        except (TypeError, ReproError) as exc:
            raise ReproError(f"invalid corpus entry {path.name}: {exc}") from exc
    return entries
