"""Seeded generation of whole-pipeline fuzz cases.

Every case is a pure function of its integer seed: the same seed always
produces the same family, circuit, stimuli, and output nodes, so a crash
report is replayable by seed alone.  Families compose the
:mod:`repro.papercircuits.generators` building blocks and extend them
with the stress regimes the generators do not cover on their own:
trapped-charge initial conditions, capacitor-only floating groups, and
near-degenerate element values (wide-spread "stiff" chains and clustered
time constants — the regimes the paper's frequency scaling, eq. 47, and
stability screening, Sec. 3.3, exist for).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.sources import Ramp, Step, Stimulus
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError
from repro.papercircuits.generators import (
    clock_h_tree,
    coupled_rc_lines,
    magnetically_coupled_lines,
    random_rc_tree,
    rc_ladder,
    rc_mesh,
    rlc_transmission_ladder,
)


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """One generated pipeline input plus the metadata checks key on.

    ``nodes`` are the outputs the checkers examine; ``source`` the
    driving stimulus source.  ``is_rc_tree`` gates the tree-only
    invariants (Elmore equivalence); ``l2_bound`` / ``refine_tolerance``
    are the family-calibrated differential-oracle settings (oscillatory
    RLC references need a looser integration tolerance than monotone RC
    responses, and their AWE fits carry more approximation error).
    """

    seed: int
    family: str
    circuit: Circuit
    stimuli: dict[str, Stimulus]
    nodes: tuple[str, ...]
    source: str
    kind = "circuit"  # class attribute: the run_check dispatch tag

    is_rc_tree: bool = False
    l2_bound: float = 0.02
    refine_tolerance: float = 3e-4


def _swing(rng: np.random.Generator) -> float:
    return float(rng.uniform(0.5, 5.0))


def _stimulus(rng: np.random.Generator, allow_ramp: bool = True) -> Stimulus:
    """A random step — or, 30 % of the time, a finite-rise ramp (which
    exercises the multi-subproblem event superposition of Sec. 4.3)."""
    v1 = _swing(rng)
    if allow_ramp and rng.random() < 0.3:
        return Ramp(0.0, v1, rise_time=float(10 ** rng.uniform(-10.5, -9.0)))
    delay = float(10 ** rng.uniform(-11, -9.5)) if rng.random() < 0.2 else 0.0
    return Step(0.0, v1, delay=delay)


def _case_rc_tree(seed: int, rng: np.random.Generator) -> FuzzCase:
    nodes = int(rng.integers(2, 13))
    circuit = random_rc_tree(nodes, seed=int(rng.integers(0, 10**6)))
    outputs = (str(nodes), str(int(rng.integers(1, nodes + 1))))
    return FuzzCase(seed, "rc_tree", circuit, {"Vin": _stimulus(rng)},
                    tuple(dict.fromkeys(outputs)), "Vin", is_rc_tree=True)


def _case_rc_ladder(seed: int, rng: np.random.Generator) -> FuzzCase:
    sections = int(rng.integers(1, 11))
    circuit = rc_ladder(
        sections,
        resistance=float(10 ** rng.uniform(1.0, 3.5)),
        capacitance=float(10 ** rng.uniform(-14.5, -12.0)),
    )
    return FuzzCase(seed, "rc_ladder", circuit, {"Vin": _stimulus(rng)},
                    (str(sections),), "Vin", is_rc_tree=True)


def _case_rc_mesh(seed: int, rng: np.random.Generator) -> FuzzCase:
    rows = int(rng.integers(2, 5))
    cols = int(rng.integers(2, 5))
    circuit = rc_mesh(
        rows, cols,
        resistance=float(rng.uniform(50.0, 300.0)),
        capacitance=float(rng.uniform(20e-15, 200e-15)),
    )
    return FuzzCase(seed, "rc_mesh", circuit, {"Vin": _stimulus(rng)},
                    (f"n{rows - 1}_{cols - 1}",), "Vin")


def _case_clock_tree(seed: int, rng: np.random.Generator) -> FuzzCase:
    levels = int(rng.integers(1, 4))
    imbalance = float(rng.uniform(0.0, 0.3))
    circuit = clock_h_tree(
        levels,
        taper=float(rng.uniform(0.5, 0.95)),
        imbalance_seed=int(rng.integers(0, 10**6)),
        imbalance=imbalance,
    )
    leaves = 2 ** levels
    outputs = ("leaf0", f"leaf{leaves - 1}") if leaves > 1 else ("leaf0",)
    return FuzzCase(seed, "clock_tree", circuit,
                    {"Vclk": _stimulus(rng)}, outputs, "Vclk",
                    is_rc_tree=True)


def _case_stiff_chain(seed: int, rng: np.random.Generator) -> FuzzCase:
    """Near-degenerate values, wide-spread flavour: per-section R and C
    drawn log-uniformly over three decades each, so time constants span
    up to ~10⁶ — the stiff regime where unscaled moments underflow the
    Hankel solve (the fig. 16 scenario, generalised)."""
    sections = int(rng.integers(2, 7))
    circuit = Circuit(f"stiff chain (n={sections}, seed={seed})")
    circuit.add_voltage_source("Vin", "in", "0")
    previous = "in"
    for i in range(1, sections + 1):
        node = str(i)
        circuit.add_resistor(f"R{i}", previous, node,
                             float(10 ** rng.uniform(1.0, 4.0)))
        circuit.add_capacitor(f"C{i}", node, "0",
                              float(10 ** rng.uniform(-14.0, -11.0)))
        previous = node
    return FuzzCase(seed, "stiff_chain", circuit,
                    {"Vin": _stimulus(rng, allow_ramp=False)},
                    (str(sections),), "Vin", is_rc_tree=True)


def _case_clustered(seed: int, rng: np.random.Generator) -> FuzzCase:
    """Near-degenerate values, clustered flavour: a uniform ladder with
    parts-per-thousand perturbations, so the natural frequencies crowd
    together and the Padé Hankel system is nearly rank-deficient."""
    sections = int(rng.integers(3, 9))
    circuit = Circuit(f"clustered ladder (n={sections}, seed={seed})")
    circuit.add_voltage_source("Vin", "in", "0")
    previous = "in"
    for i in range(1, sections + 1):
        node = str(i)
        wobble = 1.0 + float(rng.uniform(-1e-3, 1e-3))
        circuit.add_resistor(f"R{i}", previous, node, 200.0 * wobble)
        circuit.add_capacitor(f"C{i}", node, "0", 100e-15 * wobble)
        previous = node
    return FuzzCase(seed, "clustered", circuit,
                    {"Vin": _stimulus(rng)}, (str(sections),), "Vin",
                    is_rc_tree=True)


def _case_trapped_charge(seed: int, rng: np.random.Generator) -> FuzzCase:
    """A random RC tree released from a nonequilibrium state: a few
    capacitors pre-charged (paper Sec. 5.2 charge sharing)."""
    nodes = int(rng.integers(3, 11))
    circuit = random_rc_tree(nodes, seed=int(rng.integers(0, 10**6)))
    n_charged = int(rng.integers(1, min(nodes, 4)))
    for index in rng.choice(np.arange(1, nodes + 1), size=n_charged, replace=False):
        circuit.set_initial_voltage(f"C{int(index)}", float(rng.uniform(-5.0, 5.0)))
    # Charge-release waveforms are non-monotone, where the (q+1)-vs-q
    # escalation estimate is weakest — calibrated bound 0.05.
    return FuzzCase(seed, "trapped_charge", circuit,
                    {"Vin": _stimulus(rng, allow_ramp=False)},
                    (str(nodes),), "Vin", l2_bound=0.05)


def _case_floating_cap(seed: int, rng: np.random.Generator) -> FuzzCase:
    """An RC tree with a capacitor-only island hanging off it: the
    floating node is reachable only through capacitors, so its voltage is
    set by charge conservation (paper Fig. 22 generalised)."""
    nodes = int(rng.integers(2, 8))
    circuit = random_rc_tree(nodes, seed=int(rng.integers(0, 10**6)))
    attach = str(int(rng.integers(1, nodes + 1)))
    circuit.add_capacitor("Ccouple", attach, "f",
                          float(rng.uniform(0.1e-12, 1e-12)))
    circuit.add_capacitor("Cfloat", "f", "0", float(rng.uniform(0.5e-12, 4e-12)))
    # No IC on the island: a pre-charged Cfloat closes a capacitive loop
    # with Ccouple whose inconsistent ICs AWE rejects by design.
    return FuzzCase(seed, "floating_cap", circuit,
                    {"Vin": _stimulus(rng, allow_ramp=False)},
                    (str(nodes), "f"), "Vin")


def _case_long_chain(seed: int, rng: np.random.Generator) -> FuzzCase:
    """A long nonuniform series RC chain (40–120 sections) observed at
    its far end and one mid-chain tap — the structure
    :func:`repro.reduce.reduce_circuit` collapses.  Exists to feed the
    ``reduction_equivalence`` check cases where the reduction actually
    bites (dozens of collapsible interior nodes across several compact
    sections, a retained tap splitting one chain in two)."""
    sections = int(rng.integers(40, 121))
    circuit = Circuit(f"long chain (n={sections}, seed={seed})")
    circuit.add_voltage_source("Vin", "in", "0")
    previous = "in"
    for i in range(1, sections + 1):
        node = str(i)
        circuit.add_resistor(f"R{i}", previous, node,
                             float(10 ** rng.uniform(1.5, 2.5)))
        circuit.add_capacitor(f"C{i}", node, "0",
                              float(10 ** rng.uniform(-13.5, -12.5)))
        previous = node
    tap = str(int(rng.integers(sections // 3, 2 * sections // 3 + 1)))
    outputs = tuple(dict.fromkeys((str(sections), tap)))
    return FuzzCase(seed, "long_chain", circuit,
                    {"Vin": _stimulus(rng, allow_ramp=False)},
                    outputs, "Vin", is_rc_tree=True)


def _case_coupled_rc(seed: int, rng: np.random.Generator) -> FuzzCase:
    sections = int(rng.integers(1, 6))
    circuit = coupled_rc_lines(
        sections,
        resistance=float(rng.uniform(50.0, 300.0)),
        capacitance=float(rng.uniform(20e-15, 150e-15)),
        coupling=float(rng.uniform(5e-15, 60e-15)),
    )
    # The victim line is quiet (driven by an idle Vvic); the aggressor's
    # far end is the differential output.
    return FuzzCase(seed, "coupled_rc", circuit,
                    {"Vagg": _stimulus(rng, allow_ramp=False)},
                    (f"a{sections}",), "Vagg", l2_bound=0.08)


def _case_rlc_line(seed: int, rng: np.random.Generator) -> FuzzCase:
    sections = int(rng.integers(1, 4))
    circuit = rlc_transmission_ladder(
        sections,
        r_per_section=float(rng.uniform(0.5, 3.0)),
        l_per_section=float(rng.uniform(1e-9, 4e-9)),
        c_per_section=float(rng.uniform(0.5e-12, 2e-12)),
        r_source=float(rng.uniform(15.0, 60.0)),
    )
    return FuzzCase(seed, "rlc_line", circuit,
                    {"Vin": _stimulus(rng, allow_ramp=False)},
                    (str(sections),), "Vin",
                    l2_bound=0.05, refine_tolerance=1e-3)


def _case_coupled_rlc(seed: int, rng: np.random.Generator) -> FuzzCase:
    sections = int(rng.integers(1, 3))
    circuit = magnetically_coupled_lines(
        sections,
        inductive_k=float(rng.uniform(0.1, 0.5)),
        c_coupling=float(rng.uniform(20e-15, 150e-15)),
    )
    return FuzzCase(seed, "coupled_rlc", circuit,
                    {"Vagg": _stimulus(rng, allow_ramp=False)},
                    (f"a{sections}",), "Vagg",
                    l2_bound=0.05, refine_tolerance=1e-3)


def _case_sweep(seed: int, rng: np.random.Generator) -> FuzzCase:
    """A random RC tree earmarked for the incremental what-if sweep
    differential check (:func:`repro.conformance.checks.
    check_sweep_incremental`): guaranteed inside
    :class:`repro.sweep.SweepEngine`'s scope (R/C/V only, no floating
    groups), and every resistor is a tree bridge, so the fallback-forcing
    perturbation (a resistor scaled to near-open) reliably drives the
    Sherman–Morrison denominator degenerate."""
    nodes = int(rng.integers(3, 13))
    circuit = random_rc_tree(nodes, seed=int(rng.integers(0, 10**6)))
    outputs = (str(nodes), str(int(rng.integers(1, nodes + 1))))
    return FuzzCase(seed, "sweep", circuit, {"Vin": _stimulus(rng)},
                    tuple(dict.fromkeys(outputs)), "Vin", is_rc_tree=True)


def _case_sta(seed: int, rng: np.random.Generator):
    """A layered timing DAG with dyadic delays (see
    :mod:`repro.conformance.sta`).  Imported lazily: the sta module
    pulls in ``repro.sta`` which this module must not depend on at
    import time."""
    from repro.conformance.sta import generate_sta_case

    return generate_sta_case(seed, rng=rng)


#: Family name → (builder, selection weight).  Weights bias toward the
#: cheap RC families so a 200-seed run stays fast; the expensive
#: oscillatory families still appear on every run of that size.  The
#: ``sta`` family yields graph cases (``kind == "sta"``) that only the
#: STA checks run on; its weight is consumed by a *separate* pre-draw
#: (see :func:`generate_case`) so adding it left every circuit seed's
#: case bit-identical to the calibrated pre-sta stream.  ``long_chain``
#: and ``sweep`` (added later) are carved out the same way, each with
#: its own pre-draw, for the same reason.
FAMILIES: dict = {
    "rc_tree": (_case_rc_tree, 0.18),
    "rc_ladder": (_case_rc_ladder, 0.12),
    "rc_mesh": (_case_rc_mesh, 0.13),
    "clock_tree": (_case_clock_tree, 0.10),
    "stiff_chain": (_case_stiff_chain, 0.15),
    "clustered": (_case_clustered, 0.08),
    "trapped_charge": (_case_trapped_charge, 0.08),
    "floating_cap": (_case_floating_cap, 0.06),
    "coupled_rc": (_case_coupled_rc, 0.05),
    "rlc_line": (_case_rlc_line, 0.03),
    "coupled_rlc": (_case_coupled_rlc, 0.02),
    "sta": (_case_sta, 0.10),
    "long_chain": (_case_long_chain, 0.05),
    "sweep": (_case_sweep, 0.05),
}

#: Families claimed by an independently-seeded pre-draw instead of the
#: main weighted choice, in draw order (see :func:`generate_case`).
#: Append-only: new carve-outs go LAST with a fresh salt, so the seeds
#: older families already claimed never re-route.
_CARVED_OUT: tuple = (("sta", 0x57A), ("long_chain", 0x10C),
                      ("sweep", 0x5EE))


def generate_case(seed: int, family: str | None = None) -> FuzzCase:
    """Deterministically build the fuzz case for ``seed``.

    ``family`` forces a specific family (same seed → same circuit within
    that family); by default the family itself is drawn from the seed.

    The ``sta``, ``long_chain``, and ``sweep`` families are carved out
    with independently-seeded pre-draws *before* the circuit-family choice
    touches the main rng: the seeds they do not claim consume exactly
    the rng stream they did before either family existed, so every
    calibrated circuit case stays bit-identical and only the claimed
    seeds switch over.  (Earlier carve-outs draw first, so adding a new
    one never re-routes a seed an older family already claimed.)
    """
    if family is not None and family not in FAMILIES:
        raise CircuitError(
            f"unknown fuzz family {family!r}; known: {', '.join(sorted(FAMILIES))}"
        )
    rng = np.random.default_rng(seed)
    if family is None:
        for name, salt in _CARVED_OUT:
            if np.random.default_rng([seed, salt]).random() < FAMILIES[name][1]:
                family = name
                break
        else:
            carved = {name for name, _ in _CARVED_OUT}
            names = [name for name in FAMILIES if name not in carved]
            weights = np.array([FAMILIES[name][1] for name in names])
            family = str(rng.choice(names, p=weights / weights.sum()))
    builder = FAMILIES[family][0]
    return builder(seed, rng)
