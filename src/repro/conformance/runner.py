"""The fuzz-campaign driver: seeds → cases → checks → structured report.

The report is a plain dict designed to serialise to *byte-identical*
JSON across re-runs of the same seed range: it contains no timestamps,
no wall-clock durations, no absolute paths — only seed-derived content.
``python -m repro fuzz --report`` dumps it with sorted keys, so two runs
of the same command can be diffed (or hashed) directly.
"""

from __future__ import annotations

import traceback
from typing import Callable, Iterable

from repro.circuit.writer import write_netlist
from repro.conformance.checks import FuzzConfig, SkipCheck, run_check
from repro.conformance.generate import generate_case
from repro.conformance.shrink import shrink_case

REPORT_SCHEMA = "repro.fuzz-report/1"


def _error_record(exc: BaseException) -> dict:
    frames = traceback.extract_tb(exc.__traceback__)
    location = f"{frames[-1].name}:{frames[-1].lineno}" if frames else ""
    return {"type": type(exc).__name__, "message": str(exc), "where": location}


def run_fuzz(
    seeds: Iterable[int],
    config: FuzzConfig = FuzzConfig(),
    family: str | None = None,
    shrink: bool = False,
    max_shrink_evaluations: int = 400,
    progress: Callable[[dict], None] | None = None,
) -> dict:
    """Run every check over every seed and return the campaign report.

    ``family`` pins all seeds to one generator family.  With ``shrink``
    each failure is delta-debugged down to a minimal netlist before it is
    recorded.  ``progress`` (if given) receives one summary dict per
    case as it completes — the CLI uses it for live output; it does not
    affect the report.
    """
    check_names = config.check_names()
    totals = {"cases": 0, "checks": 0, "passes": 0, "skips": 0,
              "violations": 0, "crashes": 0}
    families: dict[str, int] = {}
    failures: list[dict] = []
    seed_list: list[int] = []

    for seed in seeds:
        seed = int(seed)
        seed_list.append(seed)
        totals["cases"] += 1
        case_failures = 0
        try:
            case = generate_case(seed, family=family)
        except Exception as exc:  # a generator crash is itself a finding
            totals["crashes"] += 1
            failures.append({
                "seed": seed, "family": family, "check": "generate",
                "kind": "crash", "error": _error_record(exc),
            })
            if progress is not None:
                progress({"seed": seed, "family": family,
                          "failures": 1, "checks": 0})
            continue
        families[case.family] = families.get(case.family, 0) + 1

        for name in check_names:
            totals["checks"] += 1
            record: dict | None = None
            try:
                violations = run_check(name, case, config)
            except SkipCheck:
                totals["skips"] += 1
                continue
            except Exception as exc:
                totals["crashes"] += 1
                record = {"seed": seed, "family": case.family, "check": name,
                          "kind": "crash", "error": _error_record(exc)}
            else:
                if violations:
                    totals["violations"] += 1
                    record = {"seed": seed, "family": case.family,
                              "check": name, "kind": "violation",
                              "violations": list(violations)}
                else:
                    totals["passes"] += 1
            if record is None:
                continue
            case_failures += 1
            record["nodes"] = list(case.nodes)
            if getattr(case, "kind", "circuit") == "sta":
                # Graph cases have no netlist and the netlist shrinker
                # does not apply; the payload is already minimal enough
                # to paste into an StaCorpusEntry.
                record["graph"] = case.to_payload()
            else:
                record["netlist"] = write_netlist(
                    case.circuit, case.stimuli,
                    title=f"fuzz seed={seed} family={case.family}",
                    canonical=True)
                if shrink:
                    try:
                        record["shrunk"] = shrink_case(
                            case, config, name,
                            max_evaluations=max_shrink_evaluations).as_dict()
                    except Exception as exc:
                        record["shrunk"] = {"error": _error_record(exc)}
            failures.append(record)

        if progress is not None:
            progress({"seed": seed, "family": case.family,
                      "failures": case_failures, "checks": len(check_names)})

    return {
        "schema": REPORT_SCHEMA,
        "config": {
            "checks": list(check_names),
            "use_scaling": config.use_scaling,
            "error_target": config.error_target,
            "max_order": config.max_order,
            "family": family,
            "shrink": shrink,
        },
        "seeds": {
            "count": len(seed_list),
            "first": seed_list[0] if seed_list else None,
            "last": seed_list[-1] if seed_list else None,
        },
        "families": dict(sorted(families.items())),
        "totals": totals,
        "failures": failures,
        "ok": totals["violations"] == 0 and totals["crashes"] == 0,
    }
