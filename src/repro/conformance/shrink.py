"""Delta-debugging netlist shrinker: failing fuzz case → minimal circuit.

Classic ddmin over the circuit's elements (and magnetic couplings),
followed by a value-simplification pass that rounds surviving element
values to one significant digit.  A candidate reduction is kept only
when it *still fails the same way*: same check, same failure signature —
a violation stays a violation, a crash stays the same exception type.
Candidates that are structurally invalid (dangling output, no ground
path, singular DC) simply fail validation inside the pipeline and are
discarded; they never masquerade as the bug.

The shrinker re-runs the full check per candidate, so its cost is
bounded by ``max_evaluations`` — for the small circuits the fuzzer
generates, a complete shrink is typically a few dozen evaluations.
"""

from __future__ import annotations

import dataclasses

from repro.circuit.elements import GROUND, Inductor, Resistor
from repro.circuit.netlist import Circuit
from repro.circuit.writer import write_netlist
from repro.conformance.checks import FuzzConfig, SkipCheck, run_check
from repro.conformance.generate import FuzzCase
from repro.errors import ReproError


@dataclasses.dataclass(frozen=True)
class ShrinkResult:
    """The minimal reproduction the shrinker converged to."""

    case: FuzzCase
    netlist: str
    elements: int          # elements + couplings in the reduced circuit
    evaluations: int       # pipeline runs spent shrinking
    violations: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "netlist": self.netlist,
            "elements": self.elements,
            "evaluations": self.evaluations,
            "nodes": list(self.case.nodes),
            "violations": list(self.violations),
        }


def failure_signature(check: str, case: FuzzCase, config: FuzzConfig):
    """``("violation", messages)`` / ``("raise", type_name)`` / None (pass)."""
    try:
        violations = run_check(check, case, config)
    except SkipCheck:
        return None
    except Exception as exc:
        return ("raise", type(exc).__name__)
    return ("violation", tuple(violations)) if violations else None


def _items_of(circuit: Circuit) -> list[tuple[str, object]]:
    return ([("element", element) for element in circuit]
            + [("coupling", coupling) for coupling in circuit.mutual_inductances])


def _build(title: str, items: list[tuple[str, object]]) -> Circuit | None:
    """Reassemble a circuit from kept items; None when the subset cannot
    even be assembled (a coupling whose inductor was dropped)."""
    circuit = Circuit(title)
    kept_names = {item.name for kind, item in items if kind == "element"}
    try:
        for kind, item in items:
            if kind == "element":
                circuit.add(item)
        for kind, item in items:
            if kind == "coupling":
                if item.inductor_a not in kept_names or item.inductor_b not in kept_names:
                    return None
                circuit.add_mutual_inductance(
                    item.name, item.inductor_a, item.inductor_b, item.coupling)
    except ReproError:
        return None
    return circuit


def _candidate_case(case: FuzzCase, circuit: Circuit,
                    wanted_nodes: tuple[str, ...]) -> FuzzCase | None:
    nodes = tuple(node for node in wanted_nodes if circuit.has_node(node))
    if not nodes:
        return None
    source_names = {source.name for source in circuit.voltage_sources}
    source_names |= {source.name for source in circuit.current_sources}
    if case.source not in source_names:
        return None
    stimuli = {name: stim for name, stim in case.stimuli.items()
               if name in source_names}
    return dataclasses.replace(case, circuit=circuit, stimuli=stimuli, nodes=nodes)


def _round_value(value: float) -> float:
    return float(f"{value:.0e}")


def _rename_node(pair: tuple[str, object], drop: str, keep: str):
    """The item with node ``drop`` renamed to ``keep``; None when the
    rename shorts the element into a self-loop (i.e. it disappears)."""
    kind, item = pair
    if kind != "element":
        return pair  # couplings reference inductor names, not nodes
    changes = {attr: keep
               for attr in ("positive", "negative", "ctrl_positive", "ctrl_negative")
               if getattr(item, attr, None) == drop}
    if not changes:
        return pair
    positive = changes.get("positive", item.positive)
    negative = changes.get("negative", item.negative)
    if positive == negative:
        return None
    return (kind, dataclasses.replace(item, **changes))


def shrink_case(
    case: FuzzCase,
    config: FuzzConfig,
    check: str,
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Reduce ``case`` to a minimal circuit that still fails ``check``.

    Raises ``ValueError`` when the original case does not fail the check
    (there is nothing to shrink).
    """
    original = failure_signature(check, case, config)
    if original is None:
        raise ValueError(f"case seed={case.seed} does not fail check {check!r}")
    target_kind = original[0]
    target_type = original[1] if target_kind == "raise" else None
    evaluations = 0

    def interesting(items: list[tuple[str, object]],
                    wanted_nodes: tuple[str, ...]) -> FuzzCase | None:
        nonlocal evaluations
        if evaluations >= max_evaluations:
            return None
        circuit = _build(case.circuit.title, items)
        if circuit is None:
            return None
        candidate = _candidate_case(case, circuit, wanted_nodes)
        if candidate is None:
            return None
        evaluations += 1
        signature = failure_signature(check, candidate, config)
        if signature is None:
            return None
        kind = signature[0]
        if kind != target_kind:
            return None
        if kind == "raise" and signature[1] != target_type:
            return None
        return candidate

    items = _items_of(case.circuit)
    nodes = case.nodes
    best = case

    def ddmin() -> None:
        """Phase 1: classic ddmin subset removal over elements+couplings."""
        nonlocal items, best
        granularity = 2
        while len(items) >= 2 and evaluations < max_evaluations:
            chunk = max(1, len(items) // granularity)
            reduced = False
            for start in range(0, len(items), chunk):
                complement = items[:start] + items[start + chunk:]
                if not complement:
                    continue
                candidate = interesting(complement, nodes)
                if candidate is not None:
                    items = complement
                    best = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if chunk == 1:
                    break
                granularity = min(len(items), granularity * 2)

    def contract() -> None:
        """Phase 2: series contraction — drop an R/L and merge its two
        nodes, so chains actually get shorter (plain subset removal can
        only disconnect them).  Elements shorted into self-loops by the
        merge vanish along with it."""
        nonlocal items, nodes, best
        changed = True
        while changed and evaluations < max_evaluations:
            changed = False
            for index, (kind, item) in enumerate(items):
                if kind != "element" or not isinstance(item, (Resistor, Inductor)):
                    continue
                for keep, drop in ((item.positive, item.negative),
                                   (item.negative, item.positive)):
                    if drop == GROUND:
                        continue
                    renamed = [_rename_node(pair, drop, keep)
                               for j, pair in enumerate(items) if j != index]
                    renamed = [pair for pair in renamed if pair is not None]
                    new_nodes = tuple(dict.fromkeys(
                        keep if node == drop else node for node in nodes))
                    candidate = interesting(renamed, new_nodes)
                    if candidate is not None:
                        items, nodes, best = renamed, candidate.nodes, candidate
                        changed = True
                        break
                if changed:
                    break

    ddmin()
    contract()
    ddmin()  # contraction may expose further removable elements

    # -- phase 3: one-significant-digit value simplification -----------
    for index, (kind, item) in enumerate(list(items)):
        if kind != "element" or evaluations >= max_evaluations:
            continue
        for attr in ("resistance", "capacitance", "inductance"):
            value = getattr(item, attr, None)
            if value is None:
                continue
            rounded = _round_value(value)
            if rounded == value or rounded <= 0.0:
                continue
            simplified = dataclasses.replace(item, **{attr: rounded})
            candidate_items = list(items)
            candidate_items[index] = (kind, simplified)
            candidate = interesting(candidate_items, nodes)
            if candidate is not None:
                items = candidate_items
                item = simplified
                best = candidate

    final = failure_signature(check, best, config)
    violations = (final[1] if final and final[0] == "violation"
                  else (f"raises {target_type}",))
    return ShrinkResult(
        case=best,
        netlist=write_netlist(best.circuit, best.stimuli,
                              title=f"shrunk seed={case.seed} check={check}",
                              canonical=True),
        elements=len(best.circuit) + len(best.circuit.mutual_inductances),
        evaluations=evaluations,
        violations=tuple(violations),
    )
