"""Transfer-function zeros of the circuit pencil.

The paper's Table I discussion leans on zeros: "With v₆(t=0) = 5,
however, the initial conditions introduce a low-frequency zero which
partially cancels the second pole."  This module computes zeros exactly,
so that claim can be *verified* rather than asserted.

For a transfer ``H(s) = e_outᵀ (G + sC)⁻¹ b`` the zeros are the finite
generalised eigenvalues of the bordered pencil

.. math::

    \\left( \\begin{bmatrix} G & b \\\\ e_{out}^T & 0 \\end{bmatrix},
            \\begin{bmatrix} C & 0 \\\\ 0 & 0 \\end{bmatrix} \\right)

— values of ``s`` where a nonzero drive produces zero output.  The same
construction with ``b = C·y₀`` gives the zeros of a homogeneous
(initial-condition) response, which is exactly the Sec. 5.2 situation.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.analysis.mna import MnaSystem
from repro.circuit.elements import GROUND, canonical_node
from repro.errors import AnalysisError


def _bordered_zeros(system: MnaSystem, rhs: np.ndarray, row: int, tol: float) -> np.ndarray:
    n = system.dimension
    A0 = np.zeros((n + 1, n + 1))
    A1 = np.zeros((n + 1, n + 1))
    A0[:n, :n] = system.G_dense
    A0[:n, n] = rhs
    A0[n, row] = 1.0
    A1[:n, :n] = system.C_dense

    norm_A0 = np.linalg.norm(A0)
    norm_A1 = np.linalg.norm(A1)
    if norm_A1 == 0.0:
        return np.array([], dtype=complex)
    omega = norm_A0 / norm_A1
    eigenvalues, _ = scipy.linalg.eig(-A0, A1 * omega, homogeneous_eigvals=True)
    alpha, beta = eigenvalues
    magnitude = np.hypot(np.abs(alpha), np.abs(beta))
    finite = np.abs(beta) > tol * magnitude
    zeros = (alpha[finite] / beta[finite]) * omega
    return zeros[np.argsort(np.abs(zeros))]


def transfer_zeros(
    system: MnaSystem, source: str, node: str | int, tol: float = 1e-9
) -> np.ndarray:
    """Finite zeros of ``V(node)/U(source)``, sorted by magnitude."""
    name = canonical_node(node)
    if name == GROUND:
        raise AnalysisError("transfer to ground has no meaningful zeros")
    row = system.index.node(name)
    column = system.index.source(source)
    return _bordered_zeros(system, system.b_column(column), row, tol)


def response_zeros(
    system: MnaSystem, y0: np.ndarray, node: str | int, tol: float = 1e-9
) -> np.ndarray:
    """Finite zeros of the homogeneous response ``Y(s) = (G+sC)⁻¹ C y₀``
    observed at ``node`` — the zeros initial conditions introduce
    (paper Sec. 5.2)."""
    name = canonical_node(node)
    if name == GROUND:
        raise AnalysisError("ground has no response")
    row = system.index.node(name)
    return _bordered_zeros(
        system, np.asarray(system.C @ np.asarray(y0, dtype=float)).ravel(), row, tol
    )
