"""Modified Nodal Analysis (MNA) stamping.

Every linear analysis in this package — DC, AC, transient, exact poles, and
the AWE moment recursion — starts from the same first-order descriptor
system assembled here:

.. math::

    G x(t) + C \\dot x(t) = B u(t)

where the unknown vector ``x`` stacks the non-ground node voltages followed
by one branch current per element that needs one (voltage sources,
inductors, VCVS, CCVS), and ``u`` stacks the independent source values.

The paper works from state equations ``ẋ = Ax + Bu`` (its eq. 4) with
``A⁻¹`` given by the hybrid port characterisation (its eq. 32).  The MNA
descriptor form is algebraically equivalent — applying ``A⁻¹`` to a state
vector is one solve with the (LU-factored) ``G`` matrix followed by a
multiplication with ``C`` — and is the formulation actual AWE
implementations (and SPICE itself) use, because ``G`` and ``C`` come
straight from element stamps.

Floating capacitive nodes
-------------------------
When a node connects to the rest of the circuit only through capacitors
(paper Sec. III: its steady state "must be determined by the charge
conservation equation"), ``G`` is singular.  :class:`MnaSystem` detects the
conductively-isolated node groups and exposes a *charge-augmented* matrix
``G_aug`` in which, per group, one redundant KCL row is replaced by the
group's total-charge row (the sum of the corresponding ``C`` rows).  The
DC, particular-solution and moment solves in the rest of the package then
supply the appropriate conserved-charge right-hand sides for those rows.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np
import scipy.linalg
import scipy.sparse

import networkx as nx

from repro.circuit.elements import (
    CCCS,
    CCVS,
    GROUND,
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError, SingularCircuitError
from repro.instrumentation import SolverStats
from repro.trace import NULL_TRACER


@dataclasses.dataclass(frozen=True)
class MnaIndexing:
    """Index maps for the MNA unknown and source vectors.

    ``node_names[i]`` is the node whose voltage occupies position ``i``;
    ``current_elements[j]`` is the element whose branch current occupies
    position ``node_count + j``; ``source_names[k]`` names the independent
    source driving column ``k`` of ``B``.
    """

    node_names: tuple[str, ...]
    current_elements: tuple[str, ...]
    source_names: tuple[str, ...]

    @property
    def node_count(self) -> int:
        return len(self.node_names)

    @property
    def dimension(self) -> int:
        return len(self.node_names) + len(self.current_elements)

    @property
    def source_count(self) -> int:
        return len(self.source_names)

    # Hash maps beat tuple.index() scans by ~n; they dominate stamping
    # cost on 1000-node nets.  functools.cached_property writes straight
    # into __dict__, which frozen dataclasses permit.

    @functools.cached_property
    def _node_map(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.node_names)}

    @functools.cached_property
    def _current_map(self) -> dict[str, int]:
        offset = self.node_count
        return {name: offset + i for i, name in enumerate(self.current_elements)}

    @functools.cached_property
    def _source_map(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.source_names)}

    def node(self, name: str) -> int:
        """Unknown-vector index of a node voltage."""
        try:
            return self._node_map[name]
        except KeyError:
            raise CircuitError(f"unknown node {name!r}") from None

    def current(self, element_name: str) -> int:
        """Unknown-vector index of an element's branch current."""
        try:
            return self._current_map[element_name]
        except KeyError:
            raise CircuitError(
                f"element {element_name!r} carries no branch-current unknown"
            ) from None

    def source(self, name: str) -> int:
        """Column of ``B`` for an independent source."""
        try:
            return self._source_map[name]
        except KeyError:
            raise CircuitError(f"unknown independent source {name!r}") from None


#: Systems at or above this dimension factor through SuperLU (sparse) by
#: default; below it, dense LAPACK wins on call overhead.
_SPARSE_THRESHOLD = 192


class MnaSystem:
    """The assembled descriptor system ``G x + C ẋ = B u`` for a circuit.

    Attributes
    ----------
    G, C:
        ``(dim, dim)`` conductance and storage matrices — dense ndarrays
        on the dense backend, ``scipy.sparse`` CSR on the sparse backend
        (see :attr:`use_sparse`).  Matrix-vector products (``G @ x``) and
        row/column slicing work identically; code that needs a plain
        ndarray should go through :attr:`G_dense` / :attr:`C_dense`.
    B:
        ``(dim, n_sources)`` input incidence matrix, same backend as
        ``G``/``C``; :meth:`b_column` yields a dense column either way.
    index:
        The :class:`MnaIndexing` describing the vector layouts.
    floating_groups:
        Tuple of node-index groups that are conductively isolated from
        ground; empty for ordinary circuits.
    charge_rows:
        For each floating group, the row of ``G_aug`` that was replaced by
        the group's total-charge equation.

    Parameters
    ----------
    sparse:
        ``True``/``False`` forces the assembly *and* factorisation
        backend; ``None`` (default) picks sparse SuperLU for systems of
        dimension ≥ 192 (extracted nets are >99 % structurally sparse,
        and the moment recursion is nothing but repeated solves with this
        one factorisation — paper Sec. 3.2).  The backend is decided
        before stamping, so a sparse system never materialises a dense
        ``(dim, dim)`` array at any point.  Forcing ``sparse=False`` at
        or above the threshold is allowed but records a ``warning`` field
        on the ``backend_selected`` trace event, because dense assembly
        is O(n²) memory.
    tracer:
        A :class:`~repro.trace.Tracer` to record the ``mna_assembly`` /
        ``lu`` spans and the ``backend_selected`` event into; defaults to
        the no-op :data:`~repro.trace.NULL_TRACER`.
    """

    def __init__(
        self,
        circuit: Circuit,
        sparse: bool | None = None,
        tracer=None,
    ):
        self.circuit = circuit
        self.stats = SolverStats()
        self.tracer = NULL_TRACER if tracer is None else tracer
        with self.tracer.span("mna_assembly", elements=len(circuit)):
            self.index = _build_indexing(circuit)
            self.use_sparse = (
                sparse
                if sparse is not None
                else self.index.dimension >= _SPARSE_THRESHOLD
            )
            self.G, self.C, self.B = _stamp(
                circuit, self.index, sparse=self.use_sparse
            )
            self.floating_groups = _find_floating_groups(circuit, self.index)
            self.charge_rows = tuple(group[0] for group in self.floating_groups)
            self.G_aug = self._augment_for_charge()
        event = {
            "backend": "sparse" if self.use_sparse else "dense",
            "dimension": self.index.dimension,
            "forced": sparse is not None,
        }
        if sparse is False and self.index.dimension >= _SPARSE_THRESHOLD:
            event["warning"] = (
                f"forced dense backend at dimension {self.index.dimension} "
                f">= sparse threshold {_SPARSE_THRESHOLD}: assembly and "
                f"factorisation are O(n²) memory; drop sparse=False to let "
                f"the auto-selection pick SuperLU"
            )
        self.tracer.event("backend_selected", **event)
        self._lu = None

    # -- assembly ------------------------------------------------------

    def _charge_row(self, group: tuple[int, ...]) -> np.ndarray:
        """Dense total-charge row for a floating group (sum of ``C`` rows)."""
        rows = self.C[list(group), :].sum(axis=0)
        return np.asarray(rows, dtype=float).ravel()

    def _augment_for_charge(self):
        """``G`` with, per floating group, one KCL row replaced by the sum
        of the group's ``C`` rows (total-charge conservation).

        Sparse backend: rebuilt as CSC straight from the COO entries (the
        format SuperLU wants) without a dense detour."""
        if not self.floating_groups:
            return self.G.tocsc() if self.use_sparse else self.G
        if not self.use_sparse:
            G_aug = self.G.copy()
            for group, row in zip(self.floating_groups, self.charge_rows):
                G_aug[row, :] = self._charge_row(group)
            return G_aug
        coo = self.G.tocoo()
        keep = ~np.isin(coo.row, np.asarray(self.charge_rows))
        rows = [coo.row[keep]]
        cols = [coo.col[keep]]
        vals = [coo.data[keep]]
        for group, row in zip(self.floating_groups, self.charge_rows):
            charge = self._charge_row(group)
            nonzero = np.nonzero(charge)[0]
            rows.append(np.full(nonzero.size, row, dtype=coo.row.dtype))
            cols.append(nonzero.astype(coo.col.dtype))
            vals.append(charge[nonzero])
        return scipy.sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=self.G.shape,
        ).tocsc()

    # -- dense views ---------------------------------------------------
    #
    # The exact-reference analyses (QZ poles, bordered zeros, brute-force
    # frequency response) are inherently dense; they go through these so
    # the core stays backend-agnostic.

    @property
    def G_dense(self) -> np.ndarray:
        """``G`` as a dense ndarray (copy-free on the dense backend)."""
        return self.G.toarray() if self.use_sparse else self.G

    @property
    def C_dense(self) -> np.ndarray:
        """``C`` as a dense ndarray (copy-free on the dense backend)."""
        return self.C.toarray() if self.use_sparse else self.C

    @property
    def B_dense(self) -> np.ndarray:
        """``B`` as a dense ndarray (copy-free on the dense backend)."""
        return self.B.toarray() if self.use_sparse else self.B

    @property
    def G_aug_dense(self) -> np.ndarray:
        """``G_aug`` as a dense ndarray (copy-free on the dense backend)."""
        return self.G_aug.toarray() if self.use_sparse else self.G_aug

    def b_column(self, column: int) -> np.ndarray:
        """Dense copy of one column of ``B`` (works on both backends)."""
        if self.use_sparse:
            return self.B[:, [column]].toarray().ravel()
        return self.B[:, column].copy()

    # -- solving -------------------------------------------------------

    @property
    def dimension(self) -> int:
        return self.index.dimension

    def lu(self):
        """Factorisation of the charge-augmented ``G`` (computed once,
        reused by every DC solve and every moment — paper Sec. 3.2).

        Returns the dense LAPACK (lu, piv) pair or a SuperLU object,
        depending on :attr:`use_sparse`; callers should prefer
        :meth:`solve_augmented`, which dispatches."""
        if self._lu is None:
            with self.tracer.span("lu", stats=self.stats,
                                  dimension=self.index.dimension):
                with self.stats.timer("factor_time_s"):
                    self._lu = self._factorise()
                self.stats.add("lu_factorizations", 1)
        return self._lu

    def _factorise(self):
        import warnings

        if self.use_sparse:
            from scipy.sparse import csc_matrix, issparse
            from scipy.sparse.linalg import splu

            matrix = (
                self.G_aug.tocsc()
                if issparse(self.G_aug)
                else csc_matrix(self.G_aug)
            )
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    factor = splu(matrix)
            except RuntimeError as exc:  # SuperLU raises RuntimeError
                raise SingularCircuitError(
                    f"circuit {self.circuit.title!r} has no unique DC "
                    f"solution: {exc}"
                ) from exc
            diag = np.abs(factor.U.diagonal())
            self._check_diagonal(diag)
            return factor

        try:
            with warnings.catch_warnings():
                # Singularity is detected and reported below with a
                # circuit-level message; the LAPACK warning is noise.
                warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
                factor = scipy.linalg.lu_factor(self.G_aug)
        except scipy.linalg.LinAlgError as exc:
            raise SingularCircuitError(
                f"circuit {self.circuit.title!r} has no unique DC solution: {exc}"
            ) from exc
        if not np.all(np.isfinite(factor[0])):
            raise SingularCircuitError(
                f"circuit {self.circuit.title!r} has no unique DC solution"
            )
        self._check_diagonal(np.abs(np.diag(factor[0])))
        return factor

    def _check_diagonal(self, diag: np.ndarray) -> None:
        scale = max(diag.max(initial=0.0), 1.0)
        if not np.all(np.isfinite(diag)) or diag.min(initial=np.inf) <= scale * 1e-14:
            raise SingularCircuitError(
                f"circuit {self.circuit.title!r} has a (near-)singular DC system; "
                "check for floating nodes, voltage-source loops, or "
                "current-source cutsets"
            )

    def solve_augmented(
        self, rhs: np.ndarray, charge_values: np.ndarray | None = None
    ) -> np.ndarray:
        """Solve ``G_aug y = rhs`` with the charge rows of ``rhs`` replaced
        by ``charge_values`` (default zero).

        ``rhs`` may be a single vector of shape ``(dim,)`` or a matrix of
        shape ``(dim, k)`` stacking ``k`` independent right-hand sides as
        columns.  The matrix form performs **one** forward/back
        substitution call for all ``k`` systems against the shared LU
        factors — this is what lets the batched moment recursion advance
        every subproblem's chain at the cost of a single solve per order.
        For a matrix ``rhs``, ``charge_values`` may be ``(n_groups,)``
        (applied to every column) or ``(n_groups, k)`` (per column).
        """
        if scipy.sparse.issparse(rhs):
            rhs = rhs.toarray()
        rhs = np.array(rhs, dtype=float, copy=True)
        if rhs.ndim not in (1, 2):
            raise CircuitError(
                f"solve_augmented expects a vector or a matrix of column "
                f"right-hand sides, got ndim={rhs.ndim}"
            )
        columns = 1 if rhs.ndim == 1 else rhs.shape[1]
        if self.charge_rows:
            if charge_values is None:
                charge_values = np.zeros(len(self.charge_rows))
            charge_values = np.asarray(charge_values, dtype=float)
            if rhs.ndim == 2 and charge_values.ndim == 1:
                charge_values = charge_values[:, np.newaxis]
            rhs[list(self.charge_rows)] = charge_values
        factor = self.lu()
        self.stats.add("triangular_solves", 1)
        self.stats.add("solve_columns", columns)
        with self.stats.timer("solve_time_s"):
            if self.use_sparse:
                return factor.solve(rhs)
            return scipy.linalg.lu_solve(factor, rhs)

    def source_vector(self, values: dict[str, float] | np.ndarray) -> np.ndarray:
        """Build ``u`` from a name->value mapping (missing sources are 0)
        or pass a correctly-sized array through."""
        if isinstance(values, np.ndarray):
            if values.shape != (self.index.source_count,):
                raise CircuitError(
                    f"source vector must have shape ({self.index.source_count},)"
                )
            return values
        u = np.zeros(self.index.source_count)
        for name, value in values.items():
            u[self.index.source(name)] = value
        return u

    def group_charge(self, x: np.ndarray) -> np.ndarray:
        """Total charge of each floating group for the MNA vector ``x``."""
        return np.array(
            [self._charge_row(group) @ x for group in self.floating_groups]
        )

    def group_injection(self, u: np.ndarray) -> np.ndarray:
        """Net source current injected into each floating group (must be
        zero for a steady state to exist)."""
        bu = np.asarray(self.B @ u).ravel()
        return np.array([bu[list(group)].sum() for group in self.floating_groups])


def _build_indexing(circuit: Circuit) -> MnaIndexing:
    node_names = tuple(circuit.nodes)
    current_elements = tuple(e.name for e in circuit.current_variable_elements())
    source_names = tuple(
        e.name for e in circuit if isinstance(e, (VoltageSource, CurrentSource))
    )
    return MnaIndexing(node_names, current_elements, source_names)


class _Triplets:
    """COO triplet accumulator: the single assembly path for both backends.

    Duplicate ``(i, j)`` entries accumulate in insertion order on the
    dense path (``np.add.at`` applies repeated indices sequentially), so
    dense matrices stay bit-identical to element-by-element ``+=``
    stamping; the sparse path hands the same triplets to
    ``scipy.sparse.coo_matrix``, which sums duplicates on conversion.
    """

    __slots__ = ("rows", "cols", "vals")

    def __init__(self):
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []

    def add(self, i: int, j: int, value: float) -> None:
        self.rows.append(i)
        self.cols.append(j)
        self.vals.append(value)

    def build(self, shape: tuple[int, int], sparse: bool):
        if sparse:
            return scipy.sparse.coo_matrix(
                (self.vals, (self.rows, self.cols)), shape=shape, dtype=float
            ).tocsr()
        matrix = np.zeros(shape)
        if self.rows:
            np.add.at(
                matrix,
                (np.asarray(self.rows), np.asarray(self.cols)),
                np.asarray(self.vals, dtype=float),
            )
        return matrix


def _stamp(circuit: Circuit, index: MnaIndexing, sparse: bool = False):
    """Assemble ``G``, ``C``, ``B`` as COO triplets, then build either
    dense ndarrays or CSR matrices — the sparse path never allocates a
    dense ``(dim, dim)`` array."""
    dim = index.dimension
    G = _Triplets()
    C = _Triplets()
    B = _Triplets()

    def node(name: str) -> int | None:
        return None if name == GROUND else index.node(name)

    def stamp_pair(M: _Triplets, i: int | None, j: int | None, value: float) -> None:
        """Add ``value`` at (i, i)/(j, j) and ``-value`` at (i, j)/(j, i)."""
        if i is not None:
            M.add(i, i, value)
            if j is not None:
                M.add(i, j, -value)
        if j is not None:
            M.add(j, j, value)
            if i is not None:
                M.add(j, i, -value)

    def stamp_branch_kcl(row_p: int | None, row_n: int | None, col: int) -> None:
        """Branch current ``col`` leaves the positive node, enters the negative."""
        if row_p is not None:
            G.add(row_p, col, 1.0)
        if row_n is not None:
            G.add(row_n, col, -1.0)

    def stamp_branch_voltage(row: int, p: int | None, n: int | None) -> None:
        """Row asserting V(p) - V(n) on the left-hand side."""
        if p is not None:
            G.add(row, p, 1.0)
        if n is not None:
            G.add(row, n, -1.0)

    def control_current_index(name: str) -> int:
        if name not in circuit:
            raise CircuitError(f"controlling element {name!r} does not exist")
        return index.current(name)

    for element in circuit:
        p, n = node(element.positive), node(element.negative)
        if isinstance(element, Resistor):
            stamp_pair(G, p, n, element.conductance)
        elif isinstance(element, Capacitor):
            stamp_pair(C, p, n, element.capacitance)
        elif isinstance(element, Inductor):
            j = index.current(element.name)
            stamp_branch_kcl(p, n, j)
            stamp_branch_voltage(j, p, n)
            C.add(j, j, -element.inductance)
        elif isinstance(element, VoltageSource):
            j = index.current(element.name)
            stamp_branch_kcl(p, n, j)
            stamp_branch_voltage(j, p, n)
            B.add(j, index.source(element.name), 1.0)
        elif isinstance(element, CurrentSource):
            k = index.source(element.name)
            if p is not None:
                B.add(p, k, -1.0)
            if n is not None:
                B.add(n, k, 1.0)
        elif isinstance(element, VCCS):
            cp, cn = node(element.ctrl_positive), node(element.ctrl_negative)
            for row, sign_row in ((p, +1.0), (n, -1.0)):
                if row is None:
                    continue
                if cp is not None:
                    G.add(row, cp, sign_row * element.gain)
                if cn is not None:
                    G.add(row, cn, -sign_row * element.gain)
        elif isinstance(element, VCVS):
            j = index.current(element.name)
            stamp_branch_kcl(p, n, j)
            stamp_branch_voltage(j, p, n)
            cp, cn = node(element.ctrl_positive), node(element.ctrl_negative)
            if cp is not None:
                G.add(j, cp, -element.gain)
            if cn is not None:
                G.add(j, cn, element.gain)
        elif isinstance(element, CCCS):
            jc = control_current_index(element.control_element)
            if p is not None:
                G.add(p, jc, element.gain)
            if n is not None:
                G.add(n, jc, -element.gain)
        elif isinstance(element, CCVS):
            j = index.current(element.name)
            jc = control_current_index(element.control_element)
            stamp_branch_kcl(p, n, j)
            stamp_branch_voltage(j, p, n)
            G.add(j, jc, -element.gain)
        else:  # pragma: no cover - new element types must be stamped here
            raise CircuitError(f"no MNA stamp for element type {type(element).__name__}")

    # Magnetic couplings: off-diagonal inductance-matrix terms on the
    # coupled inductors' branch rows (v₁ = L₁i₁' + M i₂', and symmetric).
    for coupling in circuit.mutual_inductances:
        inductor_a = circuit[coupling.inductor_a]
        inductor_b = circuit[coupling.inductor_b]
        j1 = index.current(coupling.inductor_a)
        j2 = index.current(coupling.inductor_b)
        mutual = coupling.mutual(inductor_a.inductance, inductor_b.inductance)
        C.add(j1, j2, -mutual)
        C.add(j2, j1, -mutual)

    return (
        G.build((dim, dim), sparse),
        C.build((dim, dim), sparse),
        B.build((dim, index.source_count), sparse),
    )


def _find_floating_groups(circuit: Circuit, index: MnaIndexing) -> tuple[tuple[int, ...], ...]:
    """Node-index groups with no conductive path to ground.

    The conductive graph joins nodes through resistors, inductors, voltage
    sources and the output/control ports of VCVS/CCVS (whose branch
    equations pin their output voltage).  Capacitors and current sources do
    not conduct at DC.  Any connected component that does not contain
    ground is a floating group whose DC state is fixed only by charge
    conservation (paper Sec. III).
    """
    graph = nx.Graph()
    graph.add_node(GROUND)
    for name in index.node_names:
        graph.add_node(name)
    for element in circuit:
        if isinstance(element, (Resistor, Inductor, VoltageSource, VCVS, CCVS)):
            graph.add_edge(element.positive, element.negative)
    groups = []
    for component in nx.connected_components(graph):
        if GROUND in component:
            continue
        groups.append(tuple(sorted(index.node(name) for name in component)))
    return tuple(sorted(groups))
