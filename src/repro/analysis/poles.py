"""Exact natural frequencies and exact linear transient responses.

The paper's Tables I and II compare AWE's approximating poles with the
circuit's *actual* poles.  For a descriptor system ``G x + C ẋ = B u`` the
natural frequencies are the finite eigenvalues of the pencil
``(−G, C)`` — values ``s`` with ``(G + sC)v = 0``.  Because our circuits
are small (the paper's largest has ~12 states) the dense QZ algorithm is
exact for all practical purposes.

The same eigendecomposition yields a closed-form transient response
(:func:`exact_homogeneous_response`), which this reproduction uses as the
reference waveform in place of the authors' SPICE runs: it solves the same
lumped linear model with no time-discretisation error at all, so every
difference from AWE is genuinely AWE's approximation error.  The companion
trapezoidal simulator (:mod:`repro.analysis.transient`) cross-checks it.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.linalg

from repro.analysis.mna import MnaSystem
from repro.errors import AnalysisError

#: Generalised eigenvalues with |alpha/beta| above this are the pencil's
#: "infinite" eigenvalues (non-dynamic MNA rows) and are discarded.
_INFINITE_CUTOFF = 1e300


@dataclasses.dataclass(frozen=True)
class ModalDecomposition:
    """Finite eigen-structure of the circuit pencil.

    ``poles[i]`` (rad/s, possibly complex) pairs with column ``i`` of
    ``modes``; together they span the dynamic subspace of the MNA vector.
    """

    poles: np.ndarray
    modes: np.ndarray

    @property
    def order(self) -> int:
        return len(self.poles)

    def sorted_by_dominance(self) -> np.ndarray:
        """Poles ordered from dominant (smallest |p|, nearest the origin)
        outward — the order in which AWE approximations 'creep up on' them
        (paper Sec. 5.1, Tables I–II)."""
        return self.poles[np.argsort(np.abs(self.poles))]


def circuit_poles(system: MnaSystem, tol: float = 1e-9) -> ModalDecomposition:
    """All finite natural frequencies of the circuit, with mode shapes.

    ``tol`` controls the relative magnitude beyond which an eigenvalue is
    treated as one of the pencil's infinite (non-dynamic) eigenvalues.
    """
    # QZ is a dense reference algorithm; pull dense views so the sparse
    # backend can still ask for exact poles (small systems only).
    norm_G = np.linalg.norm(system.G_dense)
    norm_C = np.linalg.norm(system.C_dense)
    if norm_C == 0.0:
        return ModalDecomposition(np.array([], dtype=complex),
                                  np.zeros((system.dimension, 0), dtype=complex))
    # Pre-scale the storage matrix so finite eigenvalues are O(1): the
    # conductance and capacitance stamps differ by ~12 decades for
    # nanosecond circuits, which would otherwise defeat any absolute
    # finite/infinite threshold.
    omega = norm_G / norm_C
    alpha, beta, vr = _eigenpairs(system, omega)
    magnitude = np.hypot(np.abs(alpha), np.abs(beta))
    finite = np.abs(beta) > tol * magnitude
    poles = (alpha[finite] / beta[finite]) * omega
    modes = vr[:, finite]
    # A physically sensible circuit cannot have more dynamic modes than
    # storage elements.
    if len(poles) > system.circuit.state_count:
        raise AnalysisError(
            "more finite poles than storage elements; the circuit pencil is "
            "numerically degenerate"
        )
    order = np.argsort(np.abs(poles))
    return ModalDecomposition(poles[order], modes[:, order])


def _eigenpairs(system: MnaSystem, omega: float):
    """Generalised eigenpairs of the scaled pencil (−G, ω·C)."""
    eigenvalues, vr = scipy.linalg.eig(
        -system.G_dense, system.C_dense * omega, homogeneous_eigvals=True
    )
    alpha, beta = eigenvalues
    return alpha, beta, vr


@dataclasses.dataclass(frozen=True)
class ExactHomogeneousResponse:
    """Closed-form homogeneous response ``y(t) = Σ_i c_i v_i e^{p_i t}``.

    ``amplitudes[i]`` scales mode column ``i``.  Evaluation returns real
    waveforms (the imaginary residue of conjugate-pair arithmetic is
    verified to be negligible).
    """

    poles: np.ndarray
    modes: np.ndarray
    amplitudes: np.ndarray
    residual: float

    def evaluate(self, row: int, times: np.ndarray) -> np.ndarray:
        """Homogeneous response of MNA unknown ``row`` sampled at ``times``."""
        times = np.asarray(times, dtype=float)
        coeffs = self.amplitudes * self.modes[row, :]
        values = np.zeros(times.shape, dtype=complex)
        for coeff, pole in zip(coeffs, self.poles):
            values += coeff * np.exp(pole * times)
        return _realise(values)

    def component_residues(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """The (poles, residues) of one MNA unknown's homogeneous response —
        the exact counterpart of an AWE pole/residue model."""
        return self.poles, self.amplitudes * self.modes[row, :]


def exact_homogeneous_response(
    system: MnaSystem, y0: np.ndarray, decomposition: ModalDecomposition | None = None
) -> ExactHomogeneousResponse:
    """Expand a homogeneous initial state on the circuit's modes.

    ``y0`` must be a *consistent* homogeneous state (an actual reachable
    state of the dynamics, e.g. ``x(0⁺) − x_p(0)``); it then lies in the
    span of the dynamic modes and the least-squares expansion is exact.
    The reported ``residual`` is the relative expansion defect — large
    values indicate an inconsistent initial vector.
    """
    if decomposition is None:
        decomposition = circuit_poles(system)
    modes = decomposition.modes
    amplitudes, *_ = np.linalg.lstsq(modes, y0.astype(complex), rcond=None)
    defect = np.linalg.norm(modes @ amplitudes - y0)
    scale = np.linalg.norm(y0)
    residual = float(defect / scale) if scale > 0 else float(defect)
    return ExactHomogeneousResponse(
        decomposition.poles, modes, amplitudes, residual
    )


def _realise(values: np.ndarray, tolerance: float = 1e-6) -> np.ndarray:
    """Drop a negligible imaginary part, loudly if it is not negligible."""
    scale = np.abs(values).max(initial=0.0)
    if scale > 0 and np.abs(values.imag).max() > tolerance * scale:
        raise AnalysisError(
            "complex arithmetic left a non-negligible imaginary part; "
            "the modal expansion is inconsistent"
        )
    return values.real.copy()
