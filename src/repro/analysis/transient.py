"""SPICE-style numerical transient simulation.

The paper validates every AWE waveform against SPICE.  This module is the
reproduction's equivalent comparator: a classic MNA time-stepping simulator
with trapezoidal (default) or backward-Euler integration, stimulus
breakpoint handling, and Richardson-style global refinement to a requested
accuracy.  For linear circuits the eigendecomposition reference
(:mod:`repro.analysis.poles`) is even more accurate; the two cross-check
each other in the test suite, and the benchmarks use whichever the
experiment calls for.

Algorithm notes
---------------
* Three integration methods on ``G x + C ẋ = B u``:

  - ``"trbdf2"`` (default): the composite trapezoidal/BDF2 step with
    γ = 2−√2.  Second-order and **L-stable**, which matters for MNA
    descriptor systems: plain trapezoidal integration has amplification
    exactly −1 on the pencil's infinite eigenvalues (the algebraic
    variables — source and inductor branch currents), so any excitation
    of those constraints rings forever as a (−1)ⁿ parasite.  TR-BDF2
    annihilates it each step.
  - ``"trapezoidal"``: classic SPICE trap, with two backward-Euler
    startup steps per breakpoint to damp the discontinuity parasite.
  - ``"backward_euler"``: first-order, maximally damped.

  Each distinct step size costs one or two LU factorisations, reused
  across the interval.
* The time axis is split at every stimulus breakpoint, and each segment
  opens with a constant-ratio log-spaced startup grid so stiff fast
  transients (the paper's Fig. 16 spans 4+ decades of time constants) are
  resolved without a uniform fine grid; the startup density scales with
  the refinement level so Richardson refinement converges there too.
* ``refine_tolerance`` repeatedly doubles the step count until the max
  pointwise change between successive refinements is below the tolerance
  times the waveform swing.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.analysis.dcop import (
    StorageState,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.analysis.mna import MnaSystem
from repro.analysis.sources import (
    Stimulus,
    complete_stimuli,
    excitation_at,
    merge_event_times,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ConvergenceError
from repro.waveform import Waveform

#: Number of leading backward-Euler steps after each breakpoint
#: (trapezoidal method only; TR-BDF2 is self-damping).
_BE_STARTUP_STEPS = 2

#: TR-BDF2 constants: γ = 2 − √2 splits the step; the BDF2 stage uses the
#: nonuniform-node coefficients a·x_{n+1} + b·x_γ + c·x_n ≈ h·ẋ(t_{n+1}).
_TRBDF2_GAMMA = 2.0 - 2.0 ** 0.5
_TRBDF2_A = (2.0 - _TRBDF2_GAMMA) / (1.0 - _TRBDF2_GAMMA)
_TRBDF2_B = -1.0 / (_TRBDF2_GAMMA * (1.0 - _TRBDF2_GAMMA))
_TRBDF2_C = (1.0 - _TRBDF2_GAMMA) / _TRBDF2_GAMMA


def _trbdf2_step(system, x, h, b_prev, b_next, stimuli, source_order, t_prev, factor):
    """One composite TR-BDF2 step from t_prev to t_prev + h."""
    gamma_h = _TRBDF2_GAMMA * h
    b_mid = system.B @ excitation_at(stimuli, source_order, t_prev + gamma_h)
    # Stage A: trapezoidal over [t, t+γh].
    rhs = (2.0 * system.C / gamma_h - system.G) @ x + b_prev + b_mid
    x_mid = factor(h, "trbdf2-a")(rhs)
    # Stage B: BDF2 over the three nodes t, t+γh, t+h.
    rhs = -(_TRBDF2_B / h) * (system.C @ x_mid) - (_TRBDF2_C / h) * (system.C @ x) + b_next
    return factor(h, "trbdf2-b")(rhs)


@dataclasses.dataclass(frozen=True)
class TransientResult:
    """Sampled solution of a transient run.

    ``states[:, k]`` is the full MNA vector at ``times[k]``.
    """

    system: MnaSystem
    times: np.ndarray
    states: np.ndarray
    refinements: int

    def voltage(self, node: str | int) -> Waveform:
        """Waveform of one node voltage."""
        from repro.circuit.elements import canonical_node

        name = canonical_node(node)
        if name == "0":
            return Waveform(self.times, np.zeros_like(self.times), "v(0)")
        row = self.system.index.node(name)
        return Waveform(self.times, self.states[row, :], f"v({name})")

    def current(self, element_name: str) -> Waveform:
        """Waveform of one branch current (V sources, inductors, E/H)."""
        row = self.system.index.current(element_name)
        return Waveform(self.times, self.states[row, :], f"i({element_name})")

    def capacitor_voltage(self, name: str) -> Waveform:
        """Voltage across a (possibly floating) capacitor."""
        from repro.circuit.elements import Capacitor

        element = self.system.circuit[name]
        if not isinstance(element, Capacitor):
            raise AnalysisError(f"{name!r} is not a capacitor")
        vp = self.voltage(element.positive)
        vn = self.voltage(element.negative)
        return Waveform(self.times, vp.values - vn.values, f"v({name})")


def simulate(
    circuit: Circuit,
    stimuli: dict[str, Stimulus],
    t_stop: float,
    *,
    t_start: float = 0.0,
    steps: int = 400,
    method: str = "trbdf2",
    refine_tolerance: float | None = 1e-4,
    max_refinements: int = 8,
    system: MnaSystem | None = None,
    initial_state: StorageState | None = None,
) -> TransientResult:
    """Run a transient analysis from ``t_start`` (default 0) to ``t_stop``.

    Parameters
    ----------
    stimuli:
        Mapping from independent-source name to a
        :class:`~repro.analysis.sources.Stimulus`.  Sources not listed step
        from their element ``dc0`` to ``dc`` value at t = 0 (or hold a
        constant ``dc`` when the two are equal).
    steps:
        Initial number of uniform steps across the whole span (split
        proportionally between breakpoints); refinement doubles this.
    refine_tolerance:
        Relative pointwise convergence target between successive
        refinements, or ``None`` for a single fixed-step pass.
    initial_state:
        Explicit storage-element state at ``t_start``; default resolves the
        pre-switching equilibrium overridden by element initial conditions.
    """
    if method not in ("trbdf2", "trapezoidal", "backward_euler"):
        raise AnalysisError(f"unknown integration method {method!r}")
    if t_stop <= t_start:
        raise AnalysisError("t_stop must exceed t_start")
    if steps < 2:
        raise AnalysisError("need at least 2 steps")

    if system is None:
        system = MnaSystem(circuit)
    source_order = list(system.index.source_names)
    full_stimuli = complete_stimuli(circuit, stimuli, source_order)

    if initial_state is None:
        pre_values = {name: full_stimuli[name].initial_value for name in source_order}
        initial_state = resolve_initial_storage_state(system, pre_values)
    u_start = {name: float(np.asarray(full_stimuli[name].value(t_start))) for name in source_order}
    x0 = initial_operating_point(circuit, system, initial_state, u_start)

    breaks = [t for t in merge_event_times(full_stimuli) if t_start < t < t_stop]
    segments = np.array([t_start, *breaks, t_stop])

    previous: TransientResult | None = None
    n = steps
    for refinement in range(max_refinements + 1):
        times, states = _run_fixed(system, full_stimuli, source_order, segments, x0, n, method)
        result = TransientResult(system, times, states, refinement)
        if refine_tolerance is None:
            return result
        if previous is not None and _converged(
            previous, result, refine_tolerance, segments
        ):
            return result
        previous = result
        n *= 2
    raise ConvergenceError(
        f"transient did not converge to {refine_tolerance:g} within "
        f"{max_refinements} refinements ({n // 2} steps)"
    )


#: The startup region after each breakpoint spans this many octaves below
#: the uniform step, so fast transients (the stiff spreads of the paper's
#: Fig. 16 reach 4–5 decades) are resolved from the first instants.
_STARTUP_OCTAVES = 28


def _segment_times(seg_start: float, seg_end: float, seg_steps: int) -> np.ndarray:
    """Time points for one segment: log-spaced start-up, then uniform.

    The start-up covers ``[0, h]`` (the first uniform step) with points
    log-spaced over ``_STARTUP_OCTAVES`` octaves.  Its density scales with
    ``seg_steps`` so Richardson refinement reduces the start-up error too
    (a fixed-per-octave ramp would be self-similar under refinement and
    its error would never converge).
    """
    span = seg_end - seg_start
    h = span / seg_steps
    ramp_points = max(2 * _STARTUP_OCTAVES, seg_steps // 2)
    # Constant-ratio log grid: t_k = t0·r^k with r chosen so the grid has
    # ``ramp_points`` points per _STARTUP_OCTAVES octaves.  Its local step
    # is dt ≈ t·ln r, so the *relative* step everywhere in the startup
    # region shrinks as seg_steps grows — the property Richardson
    # refinement needs.  The grid hands over to uniform steps once
    # dt reaches h.  The first point is floored at span·1e-9: steps much
    # smaller than that make C/h dwarf G by > 12 decades and the implicit
    # solves lose the conductance information to roundoff (and no physical
    # time constant 9 decades below the observation window matters).
    ratio = 2.0 ** (_STARTUP_OCTAVES / ramp_points)
    t0 = max(h * 2.0 ** (-_STARTUP_OCTAVES), span * 1e-9)
    startup = [t0]
    while True:
        t_next = startup[-1] * ratio
        if t_next - startup[-1] >= h or seg_start + t_next >= seg_end:
            break
        startup.append(t_next)
    times = [seg_start + t for t in startup]
    t = times[-1]
    remaining = seg_end - t
    if remaining > 0:
        uniform_steps = max(1, int(round(remaining / h)))
        times.extend(t + (remaining / uniform_steps) * np.arange(1, uniform_steps + 1))
    grid = np.concatenate(([seg_start], times))
    grid[-1] = seg_end
    # Collapse near-duplicate points (possible when the startup grid lands
    # on the segment end) — a zero step would divide by zero downstream.
    keep = np.concatenate(([True], np.diff(grid) > 1e-15 * (seg_end - seg_start)))
    keep[-1] = True
    grid = grid[keep]
    if grid[-2] >= grid[-1]:
        grid = np.delete(grid, -2)
    return grid


def _run_fixed(system, stimuli, source_order, segments, x0, total_steps, method):
    span = segments[-1] - segments[0]
    all_times = [segments[0]]
    all_states = [x0]
    x = x0.copy()
    for seg_start, seg_end in zip(segments[:-1], segments[1:]):
        seg_steps = max(2, int(round(total_steps * (seg_end - seg_start) / span)))
        times = _segment_times(seg_start, seg_end, seg_steps)
        lu_cache: dict[tuple, tuple] = {}

        def factor(h: float, kind: str):
            """Solve-callable for the implicit-step matrix: kind is 'be',
            'tr', 'trbdf2-a' (the trapezoidal half-stage) or 'trbdf2-b'
            (the BDF2 stage).  Dense systems LU-factor through LAPACK;
            sparse systems go through SuperLU without densifying."""
            key = (h, kind)
            if key not in lu_cache:
                if kind == "be":
                    matrix = system.C / h + system.G
                elif kind == "tr":
                    matrix = system.C / h + system.G / 2.0
                elif kind == "trbdf2-a":
                    matrix = 2.0 * system.C / (_TRBDF2_GAMMA * h) + system.G
                else:  # trbdf2-b
                    matrix = (_TRBDF2_A / h) * system.C + system.G
                if system.use_sparse:
                    lu_cache[key] = scipy.sparse.linalg.splu(
                        scipy.sparse.csc_matrix(matrix)
                    ).solve
                else:
                    lu = scipy.linalg.lu_factor(matrix)
                    lu_cache[key] = functools.partial(scipy.linalg.lu_solve, lu)
            return lu_cache[key]

        b_prev = system.B @ excitation_at(stimuli, source_order, seg_start)
        for k in range(1, len(times)):
            t_next = times[k]
            t_prev = times[k - 1]
            h = t_next - t_prev
            # The segment end coincides with the *next* stimulus breakpoint;
            # its excitation must be the limit from the left or the jump
            # would be applied one step early.
            t_eval = np.nextafter(t_next, seg_start) if k == len(times) - 1 else t_next
            b_next = system.B @ excitation_at(stimuli, source_order, t_eval)
            if method == "backward_euler" or (
                method == "trapezoidal" and k <= _BE_STARTUP_STEPS
            ):
                rhs = system.C @ x / h + b_next
                x = factor(h, "be")(rhs)
            elif method == "trapezoidal":
                rhs = (system.C / h - system.G / 2.0) @ x + 0.5 * (b_next + b_prev)
                x = factor(h, "tr")(rhs)
            else:
                x = _trbdf2_step(
                    system, x, h, b_prev, b_next,
                    stimuli, source_order, t_prev, factor,
                )
            all_times.append(t_next)
            all_states.append(x)
            b_prev = b_next
    times = np.array(all_times)
    states = np.column_stack(all_states)
    return times, states


def _converged(
    coarse: TransientResult,
    fine: TransientResult,
    tolerance: float,
    segments: np.ndarray,
) -> bool:
    """Max pointwise change between refinements, relative to signal scale.

    The fine run is interpolated onto the coarse grid (the denser grid's
    interpolation error is the smaller one), and samples within one coarse
    step of a stimulus breakpoint are excluded: non-state MNA variables
    genuinely jump there, and interpolating across the jump would report a
    spurious O(swing) difference forever.
    """
    coarse_dt = np.diff(coarse.times).max()
    mask = np.ones(len(coarse.times), dtype=bool)
    for boundary in segments[1:-1]:
        mask &= np.abs(coarse.times - boundary) > coarse_dt
    if not np.any(mask):
        return False
    for row in range(coarse.system.index.node_count):
        fine_values = np.interp(coarse.times, fine.times, fine.states[row, :])
        delta = np.abs(fine_values - coarse.states[row, :])[mask].max()
        scale = max(np.abs(fine.states[row, :]).max(), 1e-30)
        if delta > tolerance * scale:
            return False
    return True
