"""Linear circuit analysis substrate: MNA, DC, poles, transient, sources."""

from repro.analysis.dcop import (
    StorageRates,
    StorageState,
    dc_operating_point,
    equilibrium_storage_state,
    final_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
    storage_state_from_mna,
)
from repro.analysis.mna import MnaIndexing, MnaSystem
from repro.analysis.poles import (
    ExactHomogeneousResponse,
    ModalDecomposition,
    circuit_poles,
    exact_homogeneous_response,
)
from repro.analysis.sources import (
    DC,
    PWL,
    Pulse,
    Ramp,
    RampEvent,
    Step,
    Stimulus,
    complete_stimuli,
    merge_event_times,
)
from repro.analysis.transient import TransientResult, simulate
from repro.analysis.zeros import response_zeros, transfer_zeros

__all__ = [
    "DC",
    "ExactHomogeneousResponse",
    "MnaIndexing",
    "MnaSystem",
    "ModalDecomposition",
    "PWL",
    "Pulse",
    "Ramp",
    "RampEvent",
    "Step",
    "Stimulus",
    "StorageRates",
    "StorageState",
    "TransientResult",
    "circuit_poles",
    "complete_stimuli",
    "dc_operating_point",
    "equilibrium_storage_state",
    "exact_homogeneous_response",
    "final_operating_point",
    "initial_operating_point",
    "merge_event_times",
    "resolve_initial_storage_state",
    "response_zeros",
    "simulate",
    "storage_state_from_mna",
    "transfer_zeros",
]
