"""Input stimulus waveforms.

AWE (paper Sec. III) handles excitations of the form ``u(t) = u0 + u1·t``
— steps and ramps — and builds everything else by superposition of delayed
copies (Sec. 4.3, Fig. 13: a finite-rise-time step is a positive-going ramp
plus a delayed negative-going ramp).  Each stimulus here therefore knows how
to decompose itself into :class:`RampEvent` breakpoints; the AWE driver
solves one step/ramp subproblem per distinct event time and superposes the
resulting pole/residue models, while the transient simulator simply
evaluates :meth:`Stimulus.value` on its time grid.

All stimuli are callable and vectorised over numpy arrays.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class RampEvent:
    """A breakpoint in a piecewise-linear stimulus.

    At ``time`` the stimulus jumps by ``step`` and its slope changes by
    ``slope_delta``, i.e. the stimulus is

    ``u(t) = initial_value + Σ_events [step·H(t−t_e) + slope_delta·(t−t_e)·H(t−t_e)]``.
    """

    time: float
    step: float = 0.0
    slope_delta: float = 0.0


class Stimulus:
    """Base stimulus interface."""

    def value(self, t):
        """Stimulus value at time(s) ``t`` (vectorised)."""
        raise NotImplementedError

    def __call__(self, t):
        return self.value(t)

    @property
    def initial_value(self) -> float:
        """Value for t < first event — the pre-switching DC level used to
        compute the equilibrium state the transient starts from."""
        raise NotImplementedError

    @property
    def final_value(self) -> float:
        """Value as t → ∞ of the constant part (slope must end at zero for
        a steady state to exist; PWL stimuli hold their last level)."""
        events = self.events()
        level = self.initial_value
        slope = 0.0
        slope_scale = 0.0
        for event in events:
            level += event.step
            slope += event.slope_delta
            slope_scale = max(slope_scale, abs(event.slope_delta))
        # Slopes of opposite events cancel in floating point only
        # approximately; tolerate the round-off residue.
        if abs(slope) > 1e-9 * max(slope_scale, 1.0):
            raise AnalysisError("stimulus ramps forever; no final value exists")
        # The constant part of the final level also includes accumulated
        # ramp contributions: recompute exactly via value() at the last event.
        if not events:
            return level
        return float(self.value(np.asarray(events[-1].time)))

    def events(self) -> list[RampEvent]:
        """The breakpoint decomposition, sorted by time, events merged."""
        raise NotImplementedError


@dataclass(frozen=True)
class DC(Stimulus):
    """A constant source (no transient events)."""

    level: float = 0.0

    def value(self, t):
        return np.full_like(np.asarray(t, dtype=float), self.level)

    @property
    def initial_value(self) -> float:
        return self.level

    def events(self) -> list[RampEvent]:
        return []


@dataclass(frozen=True)
class Step(Stimulus):
    """An ideal step from ``v0`` to ``v1`` at ``delay``."""

    v0: float = 0.0
    v1: float = 1.0
    delay: float = 0.0

    def value(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= self.delay, self.v1, self.v0)

    @property
    def initial_value(self) -> float:
        return self.v0

    def events(self) -> list[RampEvent]:
        return [RampEvent(self.delay, step=self.v1 - self.v0)]


@dataclass(frozen=True)
class Ramp(Stimulus):
    """A finite-rise-time transition: ``v0`` until ``delay``, linear to
    ``v1`` over ``rise_time``, then held (paper Fig. 13)."""

    v0: float = 0.0
    v1: float = 1.0
    rise_time: float = 1.0
    delay: float = 0.0

    def __post_init__(self):
        if self.rise_time <= 0:
            raise AnalysisError("Ramp rise_time must be positive; use Step for 0")

    def value(self, t):
        t = np.asarray(t, dtype=float)
        frac = np.clip((t - self.delay) / self.rise_time, 0.0, 1.0)
        return self.v0 + (self.v1 - self.v0) * frac

    @property
    def initial_value(self) -> float:
        return self.v0

    def events(self) -> list[RampEvent]:
        slope = (self.v1 - self.v0) / self.rise_time
        return [
            RampEvent(self.delay, slope_delta=+slope),
            RampEvent(self.delay + self.rise_time, slope_delta=-slope),
        ]


@dataclass(frozen=True)
class Pulse(Stimulus):
    """A single trapezoidal pulse (SPICE PULSE without periodic repeat).

    ``v0`` → ``v1`` over ``rise``, held for ``width``, back over ``fall``.
    Zero ``rise``/``fall`` degenerate to ideal steps.
    """

    v0: float = 0.0
    v1: float = 1.0
    delay: float = 0.0
    rise: float = 0.0
    width: float = 1.0
    fall: float = 0.0

    def __post_init__(self):
        if self.rise < 0 or self.fall < 0 or self.width < 0:
            raise AnalysisError("Pulse rise/width/fall must be non-negative")

    def _breakpoints(self) -> list[tuple[float, float]]:
        t0 = self.delay
        t1 = t0 + self.rise
        t2 = t1 + self.width
        t3 = t2 + self.fall
        return [(t0, self.v0), (t1, self.v1), (t2, self.v1), (t3, self.v0)]

    def value(self, t):
        return _pwl_value(self._breakpoints(), self.v0, t)

    @property
    def initial_value(self) -> float:
        return self.v0

    def events(self) -> list[RampEvent]:
        return _pwl_events(self._breakpoints())


@dataclass(frozen=True)
class PWL(Stimulus):
    """Piecewise-linear stimulus through ``points`` = [(t, v), ...].

    Holds the first value before the first point and the last value after
    the last point.  Two points at the same time encode an ideal step.
    """

    points: tuple[tuple[float, float], ...] = ()

    def __init__(self, points):
        object.__setattr__(self, "points", tuple((float(t), float(v)) for t, v in points))
        if len(self.points) < 1:
            raise AnalysisError("PWL needs at least one point")
        times = [t for t, _ in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise AnalysisError("PWL points must be sorted by time")

    def value(self, t):
        return _pwl_value(list(self.points), self.points[0][1], t)

    @property
    def initial_value(self) -> float:
        return self.points[0][1]

    def events(self) -> list[RampEvent]:
        return _pwl_events(list(self.points))


def _pwl_value(points: list[tuple[float, float]], v_before: float, t):
    t = np.asarray(t, dtype=float)
    times = np.array([p[0] for p in points])
    values = np.array([p[1] for p in points])
    # np.interp handles duplicate abscissae by taking the later value, which
    # matches the "step at that instant" reading of coincident points.
    result = np.interp(t, times, values, left=v_before, right=values[-1])
    return result


def _pwl_events(points: list[tuple[float, float]]) -> list[RampEvent]:
    """Convert breakpoints into merged step/slope-delta events."""
    raw: dict[float, RampEvent] = {}

    def add(time: float, step: float = 0.0, slope_delta: float = 0.0) -> None:
        old = raw.get(time, RampEvent(time))
        raw[time] = RampEvent(
            time, step=old.step + step, slope_delta=old.slope_delta + slope_delta
        )

    slope_before = 0.0
    previous_time, previous_value = points[0]
    for time, value in points[1:]:
        if time == previous_time:
            if value != previous_value:
                add(time, step=value - previous_value)
        else:
            slope = (value - previous_value) / (time - previous_time)
            if not np.isfinite(slope):
                raise AnalysisError(
                    f"breakpoints at t = {previous_time!r} and {time!r} are "
                    "too close to resolve; merge them into a step"
                )
            add(previous_time, slope_delta=slope - slope_before)
            slope_before = slope
        previous_time, previous_value = time, value
    # Flatten out after the last point.
    add(previous_time, slope_delta=-slope_before)

    events = [e for e in sorted(raw.values(), key=lambda e: e.time)
              if e.step != 0.0 or e.slope_delta != 0.0]
    return events


def complete_stimuli(circuit, stimuli: dict[str, Stimulus], source_order) -> dict[str, Stimulus]:
    """Give every independent source in the circuit a stimulus.

    Sources not named in ``stimuli`` get a :class:`Step` from their element
    ``dc0`` to ``dc`` value at t = 0 (or a :class:`DC` hold when the two are
    equal).  Raises on stimuli naming unknown sources.
    """
    completed: dict[str, Stimulus] = {}
    for name in source_order:
        if name in stimuli:
            completed[name] = stimuli[name]
        else:
            element = circuit[name]
            if element.dc0 != element.dc:
                completed[name] = Step(v0=element.dc0, v1=element.dc, delay=0.0)
            else:
                completed[name] = DC(element.dc)
    unknown = set(stimuli) - set(source_order)
    if unknown:
        raise AnalysisError(f"stimuli reference unknown sources: {sorted(unknown)}")
    return completed


def merge_event_times(stimuli: dict[str, Stimulus]) -> list[float]:
    """All distinct event times across a set of named stimuli, sorted."""
    times = {event.time for stim in stimuli.values() for event in stim.events()}
    return sorted(times)


def excitation_at(stimuli: dict[str, Stimulus], source_order: list[str], t: float) -> np.ndarray:
    """Vector of stimulus values at time ``t`` in ``source_order``; sources
    without a stimulus contribute 0."""
    u = np.zeros(len(source_order))
    for k, name in enumerate(source_order):
        if name in stimuli:
            u[k] = float(np.asarray(stimuli[name].value(t)))
    return u
