"""DC and t = 0⁺ operating points.

Two solves are needed before any transient machinery runs:

* :func:`dc_operating_point` — the steady state of the circuit with
  capacitors open and inductors short (the MNA ``G`` matrix already encodes
  exactly that).  Used for the pre-switching equilibrium (``t < 0`` source
  levels) and for final values.

* :func:`initial_operating_point` — the full MNA vector at ``t = 0⁺`` given
  the storage-element initial conditions (capacitor voltages / inductor
  currents) and the source values just after switching.  Capacitors are
  momentarily ideal voltage sources and inductors ideal current sources; the
  solve distributes those constraints instantaneously through the resistive
  part of the circuit.  This supplies the ``x(0)`` from which the paper's
  homogeneous initial state ``x_h(0)`` (eq. 8) is formed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.elements import Capacitor, Inductor
from repro.circuit.netlist import Circuit
from repro.analysis.mna import MnaSystem
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class StorageState:
    """Initial (or final) values of the state-defining elements.

    ``capacitor_voltages[name]`` is the voltage across the named capacitor
    (positive terminal minus negative); ``inductor_currents[name]`` the
    current through the named inductor (positive to negative terminal).
    """

    capacitor_voltages: dict[str, float]
    inductor_currents: dict[str, float]

    def __post_init__(self):
        object.__setattr__(self, "capacitor_voltages", dict(self.capacitor_voltages))
        object.__setattr__(self, "inductor_currents", dict(self.inductor_currents))


def storage_state_from_mna(system: MnaSystem, x: np.ndarray) -> StorageState:
    """Read capacitor voltages and inductor currents out of an MNA vector."""
    circuit = system.circuit
    index = system.index

    def node_voltage(name: str) -> float:
        return 0.0 if name == "0" else float(x[index.node(name)])

    cap_voltages = {
        cap.name: node_voltage(cap.positive) - node_voltage(cap.negative)
        for cap in circuit.capacitors
    }
    ind_currents = {
        ind.name: float(x[index.current(ind.name)]) for ind in circuit.inductors
    }
    return StorageState(cap_voltages, ind_currents)


def dc_operating_point(
    system: MnaSystem,
    source_values: dict[str, float] | np.ndarray,
    group_charges: np.ndarray | None = None,
) -> np.ndarray:
    """Solve the DC steady state for the given independent-source values.

    ``group_charges`` fixes the conserved total charge of each floating
    node group (required input when the circuit has capacitive-only nodes;
    defaults to zero charge).  Raises :class:`AnalysisError` when a current
    source injects net current into a floating group — such a circuit has
    no steady state.
    """
    u = system.source_vector(source_values)
    if system.floating_groups:
        injection = system.group_injection(u)
        if np.any(np.abs(injection) > 1e-12 * (1.0 + np.abs(u).max(initial=0.0))):
            raise AnalysisError(
                "a current source injects net DC current into a floating "
                "capacitive node group; no steady state exists"
            )
    return system.solve_augmented(system.B @ u, group_charges)


def equilibrium_storage_state(
    system: MnaSystem, source_values: dict[str, float] | np.ndarray
) -> StorageState:
    """Storage state of the DC equilibrium for the given source levels."""
    x = dc_operating_point(system, source_values)
    return storage_state_from_mna(system, x)


def resolve_initial_storage_state(
    system: MnaSystem, pre_source_values: dict[str, float] | np.ndarray
) -> StorageState:
    """The t = 0 storage state: pre-switching equilibrium, overridden by any
    explicit element initial conditions (paper Sec. 5.2 charge sharing).

    When every storage element carries an explicit initial condition the
    equilibrium solve is skipped entirely, so fully-specified problems work
    even for circuits whose pre-switching equilibrium would be ambiguous.
    """
    circuit = system.circuit
    explicit_caps = {
        cap.name: cap.initial_voltage
        for cap in circuit.capacitors
        if cap.initial_voltage is not None
    }
    explicit_inds = {
        ind.name: ind.initial_current
        for ind in circuit.inductors
        if ind.initial_current is not None
    }
    fully_specified = len(explicit_caps) == len(circuit.capacitors) and len(
        explicit_inds
    ) == len(circuit.inductors)
    if fully_specified:
        return StorageState(explicit_caps, explicit_inds)

    equilibrium = equilibrium_storage_state(system, pre_source_values)
    cap_voltages = dict(equilibrium.capacitor_voltages)
    cap_voltages.update(explicit_caps)
    ind_currents = dict(equilibrium.inductor_currents)
    ind_currents.update(explicit_inds)
    return StorageState(cap_voltages, ind_currents)


@dataclasses.dataclass(frozen=True)
class StorageRates:
    """t = 0⁺ derivatives of the state variables.

    ``capacitor_voltage_rates[name]`` is dV/dt of the capacitor at t = 0⁺
    (its instantaneous current over its capacitance);
    ``inductor_current_rates[name]`` is dI/dt (instantaneous voltage over
    inductance).  Used by the paper's Sec. 4.3 initial-slope matching.
    """

    capacitor_voltage_rates: dict[str, float]
    inductor_current_rates: dict[str, float]


def initial_operating_point(
    circuit: Circuit,
    system: MnaSystem,
    storage: StorageState,
    source_values: dict[str, float],
    with_rates: bool = False,
):
    """The full MNA vector at t = 0⁺ (optionally with state derivatives).

    Builds an auxiliary resistive circuit in which capacitors are replaced
    by ideal voltage sources at their initial voltages and inductors by
    ideal current sources at their initial currents, solves its DC
    operating point, and maps the solution back onto the original MNA
    vector layout.

    When capacitors form loops (coupling caps such as the paper's Fig. 22
    create them through ground), substituting a source for *every* cap
    would build a voltage-source loop; instead only a spanning forest of
    the capacitive graph is substituted and the remaining "link" caps are
    left open.  Their initial voltages are then implied, and a consistency
    check rejects contradictory initial conditions around a loop (which
    would require impulsive charge redistribution — out of scope for AWE
    and for this reproduction).

    With ``with_rates=True`` also returns a :class:`StorageRates` read from
    the same solve: the substituted voltage sources' branch currents are
    the capacitor currents and the substituted current sources' terminal
    voltages are the inductor voltages.  Rates are only available for
    loop-free capacitor arrangements (link caps divert current the branch
    reading cannot see); ``StorageRates`` is replaced by ``None`` when caps
    form loops.
    """
    from repro.circuit.elements import CCCS, CCVS

    def controls_an_inductor(element) -> bool:
        return isinstance(element, (CCCS, CCVS)) and isinstance(
            circuit[element.control_element], Inductor
        )

    # Spanning forest of the capacitive graph: a cap joining two nodes
    # already capacitively connected becomes an open "link" cap.  Caps with
    # explicit initial conditions are claimed into the forest first so a
    # user-specified IC is always honoured directly when possible.
    forest_parent: dict[str, str] = {}

    def find(node: str) -> str:
        while forest_parent.get(node, node) != node:
            forest_parent[node] = forest_parent.get(forest_parent[node], forest_parent[node])
            node = forest_parent[node]
        return node

    link_caps: list[Capacitor] = []
    ordered_caps = sorted(
        circuit.capacitors, key=lambda cap: cap.initial_voltage is None
    )
    for cap in ordered_caps:
        root_p, root_n = find(cap.positive), find(cap.negative)
        if root_p == root_n:
            link_caps.append(cap)
        else:
            forest_parent[root_p] = root_n
    link_cap_names = {cap.name for cap in link_caps}

    aux = Circuit(title=f"{circuit.title} [t=0+ auxiliary]")
    extra_values: dict[str, float] = {}
    for element in circuit:
        if isinstance(element, Capacitor):
            if element.name in link_cap_names:
                continue
            aux.add_voltage_source(
                element.name,
                element.positive,
                element.negative,
                dc=storage.capacitor_voltages[element.name],
            )
        elif isinstance(element, Inductor):
            aux.add_current_source(
                element.name,
                element.positive,
                element.negative,
                dc=storage.inductor_currents[element.name],
            )
        elif controls_an_inductor(element):
            # The controlling inductor became a current source, so the
            # controlled source's output is a known independent value.
            known = element.gain * storage.inductor_currents[element.control_element]
            if isinstance(element, CCCS):
                aux.add_current_source(element.name, element.positive, element.negative, dc=known)
            else:
                aux.add_voltage_source(element.name, element.positive, element.negative, dc=known)
            extra_values[element.name] = known
        else:
            aux.add(element)

    aux_system = MnaSystem(aux)
    aux_values = dict(source_values)
    aux_values.update(extra_values)
    for cap in circuit.capacitors:
        if cap.name not in link_cap_names:
            aux_values[cap.name] = storage.capacitor_voltages[cap.name]
    for ind in circuit.inductors:
        aux_values[ind.name] = storage.inductor_currents[ind.name]
    aux_x = dc_operating_point(aux_system, aux_values)

    x0 = np.zeros(system.dimension)
    for i, node in enumerate(system.index.node_names):
        x0[i] = aux_x[aux_system.index.node(node)]
    for element_name in system.index.current_elements:
        element = circuit[element_name]
        row = system.index.current(element_name)
        if isinstance(element, Inductor):
            x0[row] = storage.inductor_currents[element_name]
        else:
            x0[row] = aux_x[aux_system.index.current(element_name)]

    def solved_voltage(name: str) -> float:
        return 0.0 if name == "0" else float(aux_x[aux_system.index.node(name)])

    voltage_scale = max(
        (abs(v) for v in storage.capacitor_voltages.values()), default=0.0
    )
    voltage_scale = max(voltage_scale, np.abs(x0).max(initial=0.0), 1.0)
    for cap in link_caps:
        implied = solved_voltage(cap.positive) - solved_voltage(cap.negative)
        specified = storage.capacitor_voltages[cap.name]
        if abs(implied - specified) > 1e-9 * voltage_scale:
            raise AnalysisError(
                f"initial condition of capacitor {cap.name!r} ({specified:g} V) "
                f"contradicts the capacitive loop it closes (implied "
                f"{implied:g} V); inconsistent loop ICs would need impulsive "
                "charge redistribution, which AWE does not model"
            )
    if not with_rates:
        return x0
    if link_caps:
        return x0, None

    def aux_voltage(name: str) -> float:
        return 0.0 if name == "0" else float(aux_x[aux_system.index.node(name)])

    cap_rates = {}
    for cap in circuit.capacitors:
        current = float(aux_x[aux_system.index.current(cap.name)])
        cap_rates[cap.name] = current / cap.capacitance
    ind_rates = _inductor_rates(circuit, aux_voltage)
    return x0, StorageRates(cap_rates, ind_rates)


def _inductor_rates(circuit: Circuit, aux_voltage) -> dict[str, float]:
    """di/dt at t = 0⁺ from the inductor terminal voltages.

    Without magnetic coupling each rate is v_L/L; with mutual inductances
    the full (symmetric, positive-definite) inductance matrix must be
    solved: ``v = L_full · di/dt``.
    """
    inductors = circuit.inductors
    if not inductors:
        return {}
    voltages = np.array(
        [aux_voltage(ind.positive) - aux_voltage(ind.negative) for ind in inductors]
    )
    if not circuit.mutual_inductances:
        return {
            ind.name: float(v / ind.inductance)
            for ind, v in zip(inductors, voltages)
        }
    order = {ind.name: i for i, ind in enumerate(inductors)}
    L_full = np.diag([ind.inductance for ind in inductors])
    for coupling in circuit.mutual_inductances:
        i, j = order[coupling.inductor_a], order[coupling.inductor_b]
        mutual = coupling.mutual(inductors[i].inductance, inductors[j].inductance)
        L_full[i, j] = L_full[j, i] = mutual
    rates = np.linalg.solve(L_full, voltages)
    return {ind.name: float(rate) for ind, rate in zip(inductors, rates)}


def final_operating_point(system: MnaSystem, source_values, x0: np.ndarray | None = None):
    """Steady state the transient settles to (t → ∞ source levels).

    For circuits with floating groups the final state depends on the
    trapped charge, so the initial MNA vector ``x0`` must be supplied; its
    group charges are conserved into the final state.
    """
    charges = None
    if system.floating_groups:
        if x0 is None:
            raise AnalysisError(
                "final state of a floating-node circuit needs the initial "
                "state (its trapped charge determines the result)"
            )
        charges = system.group_charge(x0)
    return dc_operating_point(system, source_values, charges)
