"""The paper's Fig. 9: the Fig. 4 tree with a grounded resistor.

The grounded resistor makes the steady state *inexplicit* (paper
Sec. 4.2): the tree/link partition must take one resistor as a link
(Fig. 10) and the final value is no longer the full supply swing, so delay
estimates must be scaled per eq. 3.

The text gives R₅ = 4 Ω; no other values are stated.  Matching that ohm
scale, this reproduction uses a **1 Ω / 1 F** tree (time constants of
seconds — the circuit is a normalised example, as in the paper), with R₅
from node 4 to ground.  The steady state at node 4 is then
5 V · 4/(3+4) ≈ 2.857 V.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit

FIG9_R = 1.0
FIG9_C = 1.0
FIG9_R5 = 4.0
FIG9_VDD = 5.0


def fig9_grounded_resistor(
    resistance: float = FIG9_R,
    capacitance: float = FIG9_C,
    r_ground: float = FIG9_R5,
) -> Circuit:
    """Build the Fig. 9 circuit: Fig. 4 topology plus R₅ to ground."""
    ckt = Circuit("paper Fig. 9 RC tree with grounded resistor")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", resistance)
    ckt.add_resistor("R2", "1", "2", resistance)
    ckt.add_resistor("R3", "1", "3", resistance)
    ckt.add_resistor("R4", "3", "4", resistance)
    ckt.add_resistor("R5", "4", "0", r_ground)
    for node in ("1", "2", "3", "4"):
        ckt.add_capacitor(f"C{node}", node, "0", capacitance)
    return ckt
