"""The paper's Fig. 4 RC tree (the running example of Secs. II and IV).

Topology (from the paper's eq. 50/56 Elmore expressions)::

    Vin ──R1── 1 ──R2── 2
               │
               └─R3── 3 ──R4── 4
    C1..C4 from nodes 1..4 to ground.

The original element values are not given in the text.  This reproduction
uses **1 kΩ / 0.1 µF everywhere**, chosen so the Elmore delay at node 4 is

    T_D⁴ = (R1+R3+R4)C4 + (R1+R3)C3 + R1·C2 + R1·C1 = 0.7 ms,

consistent with the Sec. 4.3 ramp example (a 5 V input with 1 ms rise time
whose slope-following particular solution is v_p(t) = 5×10³·t − 3.5, i.e.
an Elmore delay of 0.7 ms).
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit

#: Canonical element values (see module docstring).
FIG4_R = 1.0e3
FIG4_C = 0.1e-6

#: The supply swing used in every Fig. 4 experiment.
FIG4_VDD = 5.0


def fig4_rc_tree(
    resistance: float = FIG4_R,
    capacitance: float = FIG4_C,
) -> Circuit:
    """Build the Fig. 4 RC tree (source value set at analysis time)."""
    ckt = Circuit("paper Fig. 4 RC tree")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", resistance)
    ckt.add_resistor("R2", "1", "2", resistance)
    ckt.add_resistor("R3", "1", "3", resistance)
    ckt.add_resistor("R4", "3", "4", resistance)
    for node in ("1", "2", "3", "4"):
        ckt.add_capacitor(f"C{node}", node, "0", capacitance)
    return ckt


def fig4_elmore_delays(
    resistance: float = FIG4_R, capacitance: float = FIG4_C
) -> dict[str, float]:
    """The hand-derived Elmore delays of eq. 56, for cross-checking the
    tree-walk and tree-link implementations."""
    R, C = resistance, capacitance
    t1 = R * 4 * C                      # R1(C1+C2+C3+C4)
    return {
        "1": t1,
        "2": t1 + R * C,                # + R2·C2
        "3": t1 + R * 2 * C,            # + R3(C3+C4)
        "4": t1 + R * 2 * C + R * C,    # + R4·C4
    }
