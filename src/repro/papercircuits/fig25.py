"""The paper's Fig. 25: an underdamped RLC circuit with complex poles.

Section 5.4's example is "characterized by three pairs of complex poles"
(Table II): (−1.3532e9 ± 2.5967e9j), (−8.194e8 ± 6.810e9j),
(−3.278e8 ± 1.6225e10j).  Its 5 V step response overshoots (Fig. 26): a
first-order AWE fit is useless (error 74 %), second order detects the
overshoot but misses detail (22 %), and fourth order matches the waveform
(< 1 %), with the approximating pairs creeping onto the actual ones
(Table II).

This reproduction uses a tapered, lightly lossy 3-section LC ladder
(8/12/15 nH, 1/2/5 pF, 6 Ω per section) behind a 30 Ω source.  Its exact
poles are three underdamped pairs — (−0.833 ± 2.10j), (−0.702 ± 7.72j),
(−1.16 ± 15.0j) ×10⁹ — reproducing Table II's structure: the second-order
fit lands on the dominant pair, the fourth-order fit locks the dominant
pair to four digits and approximates the second, and the step-response
error falls ~60 % → ~13 % → ~2 % across orders 1/2/4 with a 35 % overshoot
(paper: 74 % → 22 % → < 1 %).  The element values were chosen for this
error trajectory; see DESIGN.md on value substitution.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit

FIG25_OUTPUT = "3"
FIG25_RS = 30.0
FIG25_R_SECTION = 6.0
FIG25_L = (8e-9, 12e-9, 15e-9)
FIG25_C = (1e-12, 2e-12, 5e-12)
FIG25_VDD = 5.0


def fig25_rlc_ladder(
    r_source: float = FIG25_RS,
    r_section: float = FIG25_R_SECTION,
    inductances: tuple[float, ...] = FIG25_L,
    capacitances: tuple[float, ...] = FIG25_C,
) -> Circuit:
    """Build the Fig. 25 underdamped RLC ladder."""
    if len(inductances) != len(capacitances):
        raise ValueError("need one capacitance per inductance")
    ckt = Circuit("paper Fig. 25 underdamped RLC circuit")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("Rs", "in", "a0", r_source)
    previous = "a0"
    for i, (inductance, capacitance) in enumerate(
        zip(inductances, capacitances), start=1
    ):
        node = str(i)
        ckt.add_resistor(f"Rl{i}", previous, f"m{i}", r_section)
        ckt.add_inductor(f"L{i}", f"m{i}", node, inductance)
        ckt.add_capacitor(f"C{i}", node, "0", capacitance)
        previous = node
    return ckt
