"""Parameterised circuit generators for tests, benchmarks, and scaling runs.

Everything here produces the interconnect families the paper's
introduction motivates: on-chip RC trees (random, for property-based
testing), RC ladders (distributed wire segments), RC meshes (resistor
loops — the Lin–Mead extension of Sec. 2.3), lossy LC transmission-line
ladders (the PCB-level models of Sec. I), and capacitively coupled
parallel lines (the coupling-capacitor motivation of Sec. 5.3).

Generators take explicit numeric parameters plus, where randomised, a
``seed`` so every test is reproducible.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


def _require_positive(value: float, what: str) -> None:
    """Generators validate their numeric parameters *before* building
    anything: a non-positive or non-finite element value would otherwise
    surface much later as a singular MNA system (or, for a randomised
    range, only on the unlucky seeds that draw the bad value)."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise CircuitError(f"{what} must be a number, got {value!r}")
    if not (math.isfinite(value) and value > 0):
        raise CircuitError(f"{what} must be positive and finite, got {value!r}")


def _require_positive_range(bounds: tuple[float, float], what: str) -> None:
    try:
        low, high = bounds
    except (TypeError, ValueError):
        raise CircuitError(f"{what} must be a (low, high) pair, got {bounds!r}") from None
    _require_positive(low, f"{what} lower bound")
    _require_positive(high, f"{what} upper bound")
    if high < low:
        raise CircuitError(f"{what} bounds are reversed: {low!r} > {high!r}")


def _require_sections(count: int, what: str) -> None:
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise CircuitError(f"{what}, got {count!r}")


def rc_ladder(
    sections: int,
    resistance: float = 100.0,
    capacitance: float = 50e-15,
    name: str = "rc ladder",
) -> Circuit:
    """A uniform RC ladder: the classic distributed-wire model.

    ``Vin — R — 1 — R — 2 … — R — <sections>``, a capacitor at every node.
    """
    _require_sections(sections, "an RC ladder needs at least one section")
    _require_positive(resistance, "rc_ladder resistance")
    _require_positive(capacitance, "rc_ladder capacitance")
    ckt = Circuit(name)
    ckt.add_voltage_source("Vin", "in", "0")
    previous = "in"
    for i in range(1, sections + 1):
        node = str(i)
        ckt.add_resistor(f"R{i}", previous, node, resistance)
        ckt.add_capacitor(f"C{i}", node, "0", capacitance)
        previous = node
    return ckt


def random_rc_tree(
    nodes: int,
    seed: int,
    r_range: tuple[float, float] = (50.0, 500.0),
    c_range: tuple[float, float] = (10e-15, 500e-15),
) -> Circuit:
    """A random RC tree with ``nodes`` internal nodes.

    Each new node attaches by a resistor to a uniformly chosen existing
    node (a random recursive tree), with a grounded capacitor everywhere —
    exactly the structure the RC-tree methods of Sec. II require, so the
    property-based tests can compare the Elmore tree walk, tree/link
    analysis, and first-order AWE on arbitrary instances.
    """
    _require_sections(nodes, "a tree needs at least one node")
    _require_positive_range(r_range, "random_rc_tree r_range")
    _require_positive_range(c_range, "random_rc_tree c_range")
    rng = np.random.default_rng(seed)
    ckt = Circuit(f"random RC tree (n={nodes}, seed={seed})")
    ckt.add_voltage_source("Vin", "in", "0")
    parents = ["in"]
    for i in range(1, nodes + 1):
        node = str(i)
        parent = parents[rng.integers(0, len(parents))]
        resistance = float(rng.uniform(*r_range))
        capacitance = float(rng.uniform(*c_range))
        ckt.add_resistor(f"R{i}", parent, node, resistance)
        ckt.add_capacitor(f"C{i}", node, "0", capacitance)
        parents.append(node)
    return ckt


def rc_mesh(
    rows: int,
    cols: int,
    resistance: float = 100.0,
    capacitance: float = 50e-15,
) -> Circuit:
    """A rows×cols grid of resistors with grounded caps at every junction.

    Resistor *loops* take this outside the RC-tree class (paper Sec. 2.2 /
    Lin–Mead); AWE handles it where the tree walk cannot.  The source
    drives the (0, 0) corner.
    """
    _require_sections(rows, "mesh needs at least one row")
    _require_sections(cols, "mesh needs at least one column")
    _require_positive(resistance, "rc_mesh resistance")
    _require_positive(capacitance, "rc_mesh capacitance")
    ckt = Circuit(f"{rows}x{cols} RC mesh")
    ckt.add_voltage_source("Vin", "in", "0")

    def node(r: int, c: int) -> str:
        return f"n{r}_{c}"

    ckt.add_resistor("Rdrv", "in", node(0, 0), resistance)
    for r in range(rows):
        for c in range(cols):
            ckt.add_capacitor(f"C{r}_{c}", node(r, c), "0", capacitance)
            if c + 1 < cols:
                ckt.add_resistor(f"Rh{r}_{c}", node(r, c), node(r, c + 1), resistance)
            if r + 1 < rows:
                ckt.add_resistor(f"Rv{r}_{c}", node(r, c), node(r + 1, c), resistance)
    return ckt


def rlc_transmission_ladder(
    sections: int,
    r_per_section: float = 1.0,
    l_per_section: float = 2e-9,
    c_per_section: float = 1e-12,
    r_source: float = 25.0,
    name: str = "rlc transmission ladder",
) -> Circuit:
    """A lossy LC ladder — the lumped PCB-trace model of the paper's intro.

    Each section is series R+L followed by a shunt C; ``r_source`` is the
    driver impedance that sets the damping.
    """
    _require_sections(sections, "a transmission ladder needs at least one section")
    _require_positive(r_per_section, "rlc ladder r_per_section")
    _require_positive(l_per_section, "rlc ladder l_per_section")
    _require_positive(c_per_section, "rlc ladder c_per_section")
    _require_positive(r_source, "rlc ladder r_source")
    ckt = Circuit(name)
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("Rs", "in", "a0", r_source)
    previous = "a0"
    for i in range(1, sections + 1):
        mid, node = f"m{i}", str(i)
        ckt.add_resistor(f"R{i}", previous, mid, r_per_section)
        ckt.add_inductor(f"L{i}", mid, node, l_per_section)
        ckt.add_capacitor(f"C{i}", node, "0", c_per_section)
        previous = node
    return ckt


def clock_h_tree(
    levels: int,
    r_segment: float = 150.0,
    c_segment: float = 60e-15,
    leaf_load: float = 30e-15,
    taper: float = 0.7,
    imbalance_seed: int | None = None,
    imbalance: float = 0.0,
) -> Circuit:
    """A binary clock-distribution tree (H-tree abstraction).

    ``levels`` branchings give ``2**levels`` leaves named ``leaf0…``.
    Each level's segment resistance grows by ``1/taper`` (wires narrow
    toward the leaves) while segment capacitance shrinks by ``taper``.
    A perfectly balanced tree has identical leaf delays; ``imbalance``
    (with a seed) perturbs segment values uniformly by ±that fraction to
    create the skew a clock designer must bound.
    """
    _require_sections(levels, "a clock tree needs at least one branching level")
    _require_positive(r_segment, "clock_h_tree r_segment")
    _require_positive(c_segment, "clock_h_tree c_segment")
    _require_positive(leaf_load, "clock_h_tree leaf_load")
    _require_positive(taper, "clock_h_tree taper")
    if not (isinstance(imbalance, (int, float)) and 0.0 <= imbalance < 1.0):
        # At imbalance >= 1 a jitter draw can reach zero or below, turning a
        # segment resistance non-positive — a singular deck, not a skewed one.
        raise CircuitError(
            f"clock_h_tree imbalance must be in [0, 1), got {imbalance!r}"
        )
    rng = np.random.default_rng(imbalance_seed) if imbalance_seed is not None else None

    def jitter() -> float:
        if rng is None or imbalance == 0.0:
            return 1.0
        return float(1.0 + rng.uniform(-imbalance, imbalance))

    ckt = Circuit(f"clock H-tree ({levels} levels, {2**levels} leaves)")
    ckt.add_voltage_source("Vclk", "in", "0")
    frontier = ["in"]
    internal_counter = 0
    leaf_counter = 0
    for level in range(levels):
        resistance = r_segment / (taper ** level)
        capacitance = c_segment * (taper ** level)
        is_leaf_level = level == levels - 1
        next_frontier = []
        for parent in frontier:
            for _ in range(2):
                if is_leaf_level:
                    node = f"leaf{leaf_counter}"
                    leaf_counter += 1
                else:
                    node = f"n{internal_counter}"
                    internal_counter += 1
                ckt.add_resistor(f"R{node}", parent, node, resistance * jitter())
                ckt.add_capacitor(f"C{node}", node, "0", capacitance * jitter())
                next_frontier.append(node)
        frontier = next_frontier
        if is_leaf_level:
            for leaf in frontier:
                ckt.add_capacitor(f"Cload_{leaf}", leaf, "0", leaf_load)
    return ckt


def magnetically_coupled_lines(
    sections: int,
    r_per_section: float = 1.0,
    l_per_section: float = 2e-9,
    c_per_section: float = 1e-12,
    r_source: float = 25.0,
    r_victim_term: float = 50.0,
    inductive_k: float = 0.35,
    c_coupling: float = 100e-15,
) -> Circuit:
    """Two lossy LC lines with per-section mutual inductance + coupling caps.

    The PCB crosstalk scenario the paper's introduction motivates ("to
    enable timing verification at the printed circuit board level also
    requires general RLC interconnect models"): an aggressor driven by
    ``Vagg``, a victim line terminated at both ends, each section's
    inductors magnetically coupled with coefficient ``inductive_k`` and
    bridged by a coupling capacitor.  Aggressor nodes ``a1…aN``, victim
    nodes ``v1…vN``.
    """
    _require_sections(sections, "coupled lines need at least one section")
    for value, what in (
        (r_per_section, "r_per_section"), (l_per_section, "l_per_section"),
        (c_per_section, "c_per_section"), (r_source, "r_source"),
        (r_victim_term, "r_victim_term"), (c_coupling, "c_coupling"),
    ):
        _require_positive(value, f"magnetically_coupled_lines {what}")
    if not (isinstance(inductive_k, (int, float)) and 0.0 < abs(inductive_k) < 1.0):
        raise CircuitError(
            f"magnetically_coupled_lines inductive_k must satisfy 0 < |k| < 1, "
            f"got {inductive_k!r}"
        )
    ckt = Circuit(f"magnetically coupled lines ({sections} sections)")
    ckt.add_voltage_source("Vagg", "ain", "0")
    ckt.add_resistor("Rsa", "ain", "a0", r_source)
    ckt.add_resistor("Rtv0", "v0", "0", r_victim_term)  # near-end termination
    prev_a, prev_v = "a0", "v0"
    for i in range(1, sections + 1):
        a, v = f"a{i}", f"v{i}"
        ckt.add_resistor(f"Rla{i}", prev_a, f"ma{i}", r_per_section)
        ckt.add_inductor(f"La{i}", f"ma{i}", a, l_per_section)
        ckt.add_capacitor(f"Ca{i}", a, "0", c_per_section)
        ckt.add_resistor(f"Rlv{i}", prev_v, f"mv{i}", r_per_section)
        ckt.add_inductor(f"Lv{i}", f"mv{i}", v, l_per_section)
        ckt.add_capacitor(f"Cv{i}", v, "0", c_per_section)
        ckt.add_mutual_inductance(f"K{i}", f"La{i}", f"Lv{i}", inductive_k)
        ckt.add_capacitor(f"Cc{i}", a, v, c_coupling)
        prev_a, prev_v = a, v
    ckt.add_resistor("Rtv1", prev_v, "0", r_victim_term)  # far-end termination
    return ckt


def coupled_rc_lines(
    sections: int,
    resistance: float = 100.0,
    capacitance: float = 50e-15,
    coupling: float = 25e-15,
) -> Circuit:
    """Two parallel RC lines with distributed coupling capacitance.

    The aggressor line is driven by ``Vagg``; the victim line is held by
    ``Vvic`` at its own driver.  Crosstalk charge arrives through the
    floating coupling caps — the Sec. 5.3 scenario at net scale.  Victim
    nodes are named ``v1…vN``, aggressor nodes ``a1…aN``.
    """
    _require_sections(sections, "coupled lines need at least one section")
    _require_positive(resistance, "coupled_rc_lines resistance")
    _require_positive(capacitance, "coupled_rc_lines capacitance")
    _require_positive(coupling, "coupled_rc_lines coupling")
    ckt = Circuit(f"coupled RC lines ({sections} sections)")
    ckt.add_voltage_source("Vagg", "ain", "0")
    ckt.add_voltage_source("Vvic", "vin", "0")
    prev_a, prev_v = "ain", "vin"
    for i in range(1, sections + 1):
        a, v = f"a{i}", f"v{i}"
        ckt.add_resistor(f"Ra{i}", prev_a, a, resistance)
        ckt.add_resistor(f"Rv{i}", prev_v, v, resistance)
        ckt.add_capacitor(f"Ca{i}", a, "0", capacitance)
        ckt.add_capacitor(f"Cv{i}", v, "0", capacitance)
        ckt.add_capacitor(f"Cc{i}", a, v, coupling)
        prev_a, prev_v = a, v
    return ckt
