"""The paper's Fig. 22: the Fig. 16 tree plus a floating coupling capacitor.

A floating capacitor C₁₁ couples the output node (7) to a side node (12)
carrying its own grounded capacitor C₁₂.  Charge dumped through C₁₁ onto
C₁₂ (the Fig. 24 waveform) slows the output — the paper reports the
4.0 V-threshold delay moving from 1.6 ns to 1.7 ns — and makes the
second-order approximation markedly worse (error 15 % vs 0.15 %,
recovering to 0.14 % at third order).

The original component values are unrecoverable from the paper's image.
Two variants are provided:

* the default (``leak_resistance = 1 kΩ``): the victim node also carries a
  resistor to ground (a held gate input).  The side path then contributes
  a comparably slow third pole to the output response, which is what
  degrades the second-order fit the way the paper reports (our errors:
  ~6 % at second order recovering to ~0.03 % at third, vs the paper's
  15 % → 0.14 %), and the 4 V threshold delay visibly grows.
* ``leak_resistance=None``: node 12 is reachable only through capacitors —
  the strict charge-conservation case of Sec. III.  The trapped-charge
  machinery determines its final value; used by the Fig. 24 exact-charge
  benchmark and the floating-node tests.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.papercircuits.fig16 import _CAP_SCALE, fig16_stiff_rc_tree

#: The side node that receives dumped charge (Fig. 24 plots its voltage).
FIG22_COUPLING_NODE = "12"

#: Coupling and victim capacitances (before the global Fig. 16 scale).
FIG22_C11 = 500e-15
FIG22_C12 = 4000e-15

#: Victim-node load of the default variant.
FIG22_R12 = 1000.0


def fig22_floating_cap(
    c_coupling: float = FIG22_C11,
    c_victim: float = FIG22_C12,
    leak_resistance: float | None = FIG22_R12,
) -> Circuit:
    """Build Fig. 22: Fig. 16 plus C₁₁ (7→12, floating) and C₁₂ (12→0),
    optionally with the victim-node resistor (see module docstring)."""
    ckt = fig16_stiff_rc_tree()
    ckt.title = "paper Fig. 22 RC tree with floating capacitor"
    ckt.add_capacitor("C11", "7", FIG22_COUPLING_NODE, c_coupling * _CAP_SCALE)
    ckt.add_capacitor("C12", FIG22_COUPLING_NODE, "0", c_victim * _CAP_SCALE)
    if leak_resistance is not None:
        ckt.add_resistor("R12", FIG22_COUPLING_NODE, "0", leak_resistance)
    return ckt
