"""The paper's Fig. 16: an RC tree with widely varying time constants.

This is the MOS-interconnect workhorse of Section V: a 10-capacitor tree
whose exact poles span four decades (Table I), the output taken at C₇, and
C₆ the capacitor whose 5 V initial condition produces the nonmonotone
charge-sharing response of Figs. 20–21.

Values.  The original figure's values are not in the text, but Table I
*is*: the exact dominant pole is −1.7818×10⁹ s⁻¹ with the second pole at
−1.3830×10¹⁰ (ratio 7.76).  This reproduction's resistances were chosen to
give a plausible on-chip topology (a 7-segment trunk with three side
branches) and the capacitances were then globally scaled so that the exact
dominant pole equals the table's −1.7818×10⁹ with the second pole at
−1.3855×10¹⁰ (0.2 % from the table) — see DESIGN.md.  The remaining poles
reach −8.4×10¹³, a wider spread than the original's −1.64×10¹³, preserving
the "stiff circuit" property the section is about.

Topology::

    Vin ─R1─ 1 ─R2─ 2 ─R3─ 3 ─R4─ 4 ─R5─ 5 ─R6─ 6 ─R7─ 7 (output, C7)
                         │              │
                        R8              R9─ 9 ─R10─ 10
                         8              (C9)      (C10)
                        (C8)
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit

#: Output node (the voltage across C7, as in Figs. 17/18/20/21).
FIG16_OUTPUT = "7"

#: The capacitor given a 5 V initial condition in the Sec. 5.2 experiment.
FIG16_SHARING_CAP = "C6"

FIG16_VDD = 5.0

#: Global capacitance scale that pins the dominant pole to −1.7818e9 s⁻¹.
_CAP_SCALE = 0.47774395768531197

_RESISTORS = {
    "R1": ("in", "1", 100.0),
    "R2": ("1", "2", 80.0),
    "R3": ("2", "3", 120.0),
    "R4": ("3", "4", 60.0),
    "R5": ("4", "5", 150.0),
    "R6": ("5", "6", 90.0),
    "R7": ("6", "7", 200.0),
    "R8": ("3", "8", 300.0),
    "R9": ("5", "9", 70.0),
    "R10": ("9", "10", 40.0),
}

_CAPACITORS_RAW = {
    "C1": ("1", 60e-15),
    "C2": ("2", 40e-15),
    "C3": ("3", 80e-15),
    "C4": ("4", 30e-15),
    "C5": ("5", 300e-15),
    "C6": ("6", 400e-15),
    "C7": ("7", 1000e-15),
    "C8": ("8", 300e-15),
    "C9": ("9", 2e-15),
    "C10": ("10", 1e-15),
}


def fig16_stiff_rc_tree(sharing_voltage: float | None = None) -> Circuit:
    """Build the Fig. 16 tree.

    ``sharing_voltage`` sets the initial condition of C₆ (the paper's
    Sec. 5.2 uses 5.0 V; ``None`` leaves equilibrium initial conditions).
    """
    ckt = Circuit("paper Fig. 16 stiff RC tree")
    ckt.add_voltage_source("Vin", "in", "0")
    for name, (a, b, value) in _RESISTORS.items():
        ckt.add_resistor(name, a, b, value)
    for name, (node, value) in _CAPACITORS_RAW.items():
        ic = sharing_voltage if name == FIG16_SHARING_CAP else None
        ckt.add_capacitor(name, node, "0", value * _CAP_SCALE, initial_voltage=ic)
    if sharing_voltage is not None:
        # Nonequilibrium on one capacitor only: the rest start at the
        # pre-switching equilibrium (0 V for a grounded-input tree), which
        # resolve_initial_storage_state() computes; nothing more to do.
        pass
    return ckt
