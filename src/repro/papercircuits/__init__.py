"""Constructors for every circuit in the paper's examples (Figs. 4–25).

The paper's figures are images; the original element values are not
recoverable from the text.  Each module here documents the canonical values
this reproduction fixes and what published quantity they were tuned to
match (see DESIGN.md §2).  Most notably :func:`fig16_stiff_rc_tree` is
scaled so its exact dominant pole is −1.7818×10⁹ s⁻¹, the value the paper's
Table I reports, with the second pole within 0.2 % of the table's
−1.3830×10¹⁰.
"""

from repro.papercircuits.fig4 import fig4_elmore_delays, fig4_rc_tree
from repro.papercircuits.fig9 import fig9_grounded_resistor
from repro.papercircuits.fig16 import (
    FIG16_OUTPUT,
    FIG16_SHARING_CAP,
    fig16_stiff_rc_tree,
)
from repro.papercircuits.fig22 import FIG22_COUPLING_NODE, fig22_floating_cap
from repro.papercircuits.fig25 import FIG25_OUTPUT, fig25_rlc_ladder
from repro.papercircuits.generators import (
    clock_h_tree,
    coupled_rc_lines,
    magnetically_coupled_lines,
    random_rc_tree,
    rc_ladder,
    rc_mesh,
    rlc_transmission_ladder,
)

__all__ = [
    "FIG16_OUTPUT",
    "FIG16_SHARING_CAP",
    "FIG22_COUPLING_NODE",
    "FIG25_OUTPUT",
    "clock_h_tree",
    "coupled_rc_lines",
    "fig16_stiff_rc_tree",
    "fig22_floating_cap",
    "fig25_rlc_ladder",
    "fig4_elmore_delays",
    "fig4_rc_tree",
    "fig9_grounded_resistor",
    "magnetically_coupled_lines",
    "random_rc_tree",
    "rc_ladder",
    "rc_mesh",
    "rlc_transmission_ladder",
]
