"""The :class:`Circuit` container: a named collection of elements and nodes.

A circuit is built either programmatically (``ckt.add_resistor("R1", "1",
"2", 100.0)``) or by parsing a SPICE-style deck
(:func:`repro.circuit.parser.parse_netlist`).  The container assigns a
stable integer index to every non-ground node in insertion order, tracks
which elements carry MNA branch-current unknowns, and offers convenience
queries used throughout the analysis layers.

The container itself performs only local validation (duplicate names,
self-loops via the element constructors); global structural checks live in
:mod:`repro.circuit.validation` and are run by the analysis entry points.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.circuit.elements import (
    CCCS,
    CCVS,
    GROUND,
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
    canonical_node,
)
from repro.errors import CircuitError


class Circuit:
    """An ordered collection of linear circuit elements.

    Parameters
    ----------
    title:
        Free-form description used in reports and benchmark output.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: dict[str, Element] = {}
        self._node_index: dict[str, int] = {}
        self._couplings: dict[str, "MutualInductance"] = {}
        self._frozen = False

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __getitem__(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise KeyError(f"no element named {name!r} in circuit {self.title!r}") from None

    def __repr__(self) -> str:
        return (
            f"Circuit({self.title!r}, {len(self._elements)} elements, "
            f"{self.node_count} nodes)"
        )

    # ------------------------------------------------------------------
    # Element insertion
    # ------------------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add a pre-built element; returns it for chaining.

        Raises :class:`~repro.errors.CircuitError` on a duplicate name.
        """
        self._ensure_mutable()
        if element.name in self._elements:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._register_node(element.positive)
        self._register_node(element.negative)
        for attr in ("ctrl_positive", "ctrl_negative"):
            node = getattr(element, attr, None)
            if node is not None:
                self._register_node(node)
        self._elements[element.name] = element
        return element

    def extend(self, elements: Iterable[Element]) -> None:
        """Add several elements in order."""
        for element in elements:
            self.add(element)

    def _register_node(self, name: str) -> None:
        if name != GROUND and name not in self._node_index:
            self._node_index[name] = len(self._node_index)

    # Convenience constructors ------------------------------------------------

    def add_resistor(self, name: str, positive, negative, resistance: float) -> Resistor:
        """Add a resistor of ``resistance`` ohms between two nodes."""
        return self.add(Resistor(name, positive, negative, resistance))

    def add_capacitor(
        self,
        name: str,
        positive,
        negative,
        capacitance: float,
        initial_voltage: float | None = None,
    ) -> Capacitor:
        """Add a capacitor of ``capacitance`` farads; optionally set its
        t = 0 voltage for nonequilibrium (charge-sharing) analyses."""
        return self.add(Capacitor(name, positive, negative, capacitance, initial_voltage))

    def add_inductor(
        self,
        name: str,
        positive,
        negative,
        inductance: float,
        initial_current: float | None = None,
    ) -> Inductor:
        """Add an inductor of ``inductance`` henries."""
        return self.add(Inductor(name, positive, negative, inductance, initial_current))

    def add_voltage_source(
        self, name: str, positive, negative, dc: float = 0.0, dc0: float = 0.0
    ) -> VoltageSource:
        """Add an independent voltage source (``dc`` = value for t >= 0,
        ``dc0`` = value before switching, for the pre-transition state)."""
        return self.add(VoltageSource(name, positive, negative, dc, dc0))

    def add_current_source(
        self, name: str, positive, negative, dc: float = 0.0, dc0: float = 0.0
    ) -> CurrentSource:
        """Add an independent current source."""
        return self.add(CurrentSource(name, positive, negative, dc, dc0))

    def add_vccs(self, name, positive, negative, ctrl_positive, ctrl_negative, gain) -> VCCS:
        """Add a voltage-controlled current source with transconductance ``gain``."""
        return self.add(VCCS(name, positive, negative, gain, ctrl_positive, ctrl_negative))

    def add_vcvs(self, name, positive, negative, ctrl_positive, ctrl_negative, gain) -> VCVS:
        """Add a voltage-controlled voltage source with voltage gain ``gain``."""
        return self.add(VCVS(name, positive, negative, gain, ctrl_positive, ctrl_negative))

    def add_cccs(self, name, positive, negative, control_element, gain) -> CCCS:
        """Add a current-controlled current source (control element must carry
        a branch current: a voltage source or inductor)."""
        return self.add(CCCS(name, positive, negative, gain, control_element))

    def add_ccvs(self, name, positive, negative, control_element, gain) -> CCVS:
        """Add a current-controlled voltage source (transresistance ``gain``)."""
        return self.add(CCVS(name, positive, negative, gain, control_element))

    def add_mutual_inductance(
        self, name: str, inductor_a: str, inductor_b: str, coupling: float
    ) -> "MutualInductance":
        """Magnetically couple two inductors with coefficient ``coupling``
        (|k| < 1; M = k·√(L_a·L_b))."""
        from repro.circuit.elements import Inductor, MutualInductance

        self._ensure_mutable()
        if name in self._elements or name in self._couplings:
            raise CircuitError(f"duplicate element name {name!r}")
        for inductor_name in (inductor_a, inductor_b):
            if inductor_name not in self._elements or not isinstance(
                self._elements[inductor_name], Inductor
            ):
                raise CircuitError(
                    f"mutual inductance {name!r}: {inductor_name!r} is not an "
                    "inductor in this circuit"
                )
        coupling_element = MutualInductance(name, inductor_a, inductor_b, coupling)
        self._couplings[name] = coupling_element
        return coupling_element

    @property
    def mutual_inductances(self) -> list["MutualInductance"]:
        """The magnetic couplings (not part of the element iteration)."""
        return list(self._couplings.values())

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_index)

    @property
    def nodes(self) -> list[str]:
        """Non-ground node names in index order."""
        return sorted(self._node_index, key=self._node_index.__getitem__)

    def node_index(self, name: str | int) -> int:
        """Index of a non-ground node in the MNA vector ordering."""
        canonical = canonical_node(name)
        if canonical == GROUND:
            raise CircuitError("the ground node has no index")
        try:
            return self._node_index[canonical]
        except KeyError:
            raise CircuitError(f"unknown node {name!r}") from None

    def has_node(self, name: str | int) -> bool:
        """True if the node appears in the circuit (ground always does)."""
        canonical = canonical_node(name)
        return canonical == GROUND or canonical in self._node_index

    # ------------------------------------------------------------------
    # Typed element views
    # ------------------------------------------------------------------

    def elements_of_type(self, *types: type) -> list[Element]:
        """All elements whose type is one of ``types``, in insertion order."""
        return [e for e in self._elements.values() if isinstance(e, types)]

    @property
    def resistors(self) -> list[Resistor]:
        return self.elements_of_type(Resistor)

    @property
    def capacitors(self) -> list[Capacitor]:
        return self.elements_of_type(Capacitor)

    @property
    def inductors(self) -> list[Inductor]:
        return self.elements_of_type(Inductor)

    @property
    def voltage_sources(self) -> list[VoltageSource]:
        return self.elements_of_type(VoltageSource)

    @property
    def current_sources(self) -> list[CurrentSource]:
        return self.elements_of_type(CurrentSource)

    @property
    def storage_elements(self) -> list[Element]:
        """Capacitors and inductors — the state-defining elements."""
        return self.elements_of_type(Capacitor, Inductor)

    @property
    def state_count(self) -> int:
        """Dimension of the circuit's natural state (caps + inductors)."""
        return len(self.storage_elements)

    def current_variable_elements(self) -> list[Element]:
        """Elements carrying an MNA branch-current unknown, in insertion
        order.  This ordering defines the tail of the MNA unknown vector."""
        return [e for e in self._elements.values() if e.needs_current_variable]

    # ------------------------------------------------------------------
    # Mutation helpers used by experiments
    # ------------------------------------------------------------------

    def replace(self, element: Element) -> None:
        """Replace the same-named element in place (order preserved)."""
        self._ensure_mutable()
        if element.name not in self._elements:
            raise CircuitError(f"cannot replace unknown element {element.name!r}")
        old = self._elements[element.name]
        if old.nodes != element.nodes:
            raise CircuitError(
                f"replace() may not rewire {element.name!r}; remove and re-add instead"
            )
        self._elements[element.name] = element

    def set_initial_voltage(self, capacitor_name: str, voltage: float | None) -> None:
        """Set the t = 0 voltage of a capacitor (charge-sharing setups)."""
        element = self[capacitor_name]
        if not isinstance(element, Capacitor):
            raise CircuitError(f"{capacitor_name!r} is not a capacitor")
        self.replace(element.with_initial_voltage(voltage))

    def set_initial_current(self, inductor_name: str, current: float | None) -> None:
        """Set the t = 0 current of an inductor."""
        element = self[inductor_name]
        if not isinstance(element, Inductor):
            raise CircuitError(f"{inductor_name!r} is not an inductor")
        self.replace(element.with_initial_current(current))

    def copy(self, title: str | None = None) -> "Circuit":
        """A shallow copy (elements are immutable, so sharing them is safe).

        The copy is always mutable, even when the source is frozen — it is
        the sanctioned way to derive a perturbed variant of a shared
        (memoized) circuit.
        """
        duplicate = Circuit(self.title if title is None else title)
        duplicate.extend(self._elements.values())
        duplicate._couplings = dict(self._couplings)
        return duplicate

    # ------------------------------------------------------------------
    # Freezing (shared-circuit safety)
    # ------------------------------------------------------------------

    def freeze(self) -> "Circuit":
        """Permanently reject further mutation of this circuit.

        Caches that hand one :class:`Circuit` object to many consumers
        (:class:`repro.reduce.ReductionMemo`, analyzer reuse in the batch
        engine) rely on the object never changing after it is shared; a
        downstream ``replace()`` would silently corrupt every other
        holder's results *and* the content key the cache stored it under.
        Freezing turns that corruption into an immediate
        :class:`~repro.errors.CircuitError`; use :meth:`copy` to derive a
        mutable variant.  Returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has been called."""
        return self._frozen

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise CircuitError(
                f"circuit {self.title!r} is frozen (shared via a cache); "
                "use copy() to derive a mutable variant"
            )

    def canonical_key(self, stimuli=None) -> str:
        """Content hash of the circuit (and optional source stimuli).

        SHA-256 over the canonical deck serialisation
        (:func:`repro.circuit.writer.write_netlist` with
        ``canonical=True`` and the title blanked), so the key depends
        only on the element set — not on title, comments, whitespace,
        insertion order, or how values were spelled in a source deck
        (``1000`` vs ``1k``).  Any change to an element value, node, or
        the topology produces a different key.  This is the identity the
        service result cache (:mod:`repro.service`) is addressed by.
        """
        import hashlib

        from repro.circuit.writer import write_netlist

        text = write_netlist(self, stimuli, title="", canonical=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def has_initial_conditions(self) -> bool:
        """True when any storage element carries an explicit t = 0 value."""
        for element in self.storage_elements:
            if isinstance(element, Capacitor) and element.initial_voltage is not None:
                return True
            if isinstance(element, Inductor) and element.initial_current is not None:
                return True
        return False
