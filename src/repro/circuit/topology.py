"""Topology queries: RC-tree recognition, spanning trees, tree/link partition.

The classical delay methods of the paper's Sec. II are only defined on
*RC trees*: "RC circuits with capacitors from all nodes to ground, no
floating capacitors, no resistor loops, and no resistors to ground"
(with the driving source at the root).  :func:`analyze_rc_tree` checks the
definition and, when it holds, returns the rooted tree structure the
Elmore tree-walk needs.

:func:`tree_link_partition` implements the general tree/link split of the
paper's Sec. IV: a spanning tree of the circuit graph is chosen preferring
voltage sources, then resistors, then inductors (so capacitors — the
current-source-like branches — become links whenever possible, which is
what makes the RC-tree moment solution explicit, Fig. 6).  Elements that
do not fit in the tree become links; a resistor forced into the links
(e.g. the grounded resistor of Fig. 9/10) signals that the DC solution is
not explicit and a small linear solve is required.
"""

from __future__ import annotations

import dataclasses

import networkx as nx

from repro.circuit.elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import TopologyError


@dataclasses.dataclass(frozen=True)
class RcTree:
    """A validated RC tree rooted at the driving source.

    ``parent[node]`` gives (parent_node, resistor) walking toward the
    root; ``children[node]`` the inverse adjacency; ``capacitance[node]``
    the grounded capacitance at each node (0.0 where none); ``root`` the
    node driven by the source resistance path.
    """

    root: str
    source_name: str
    parent: dict[str, tuple[str, Resistor]]
    children: dict[str, tuple[str, ...]]
    capacitance: dict[str, float]

    @property
    def nodes(self) -> list[str]:
        """All tree nodes in breadth-first order from the root."""
        order = [self.root]
        frontier = [self.root]
        while frontier:
            node = frontier.pop(0)
            for child in self.children.get(node, ()):
                order.append(child)
                frontier.append(child)
        return order

    def path_to_root(self, node: str) -> list[tuple[str, Resistor]]:
        """The resistor chain from ``node`` up to the root."""
        path = []
        current = node
        while current != self.root:
            parent, resistor = self.parent[current]
            path.append((current, resistor))
            current = parent
        return path

    def path_resistance(self, node_a: str, node_b: str) -> float:
        """Total resistance of the shared path to the root, ``R_{ab}`` in
        the Penfield–Rubinstein/Elmore formulas: the resistance common to
        the root→a and root→b paths."""
        ancestors_a = {}
        total = 0.0
        current = node_a
        chain = []
        while current != self.root:
            parent, resistor = self.parent[current]
            chain.append((current, resistor))
            current = parent
        resistance_to_root = {}
        running = 0.0
        for node, resistor in reversed(chain):
            running += resistor.resistance
            resistance_to_root[node] = running
        # Walk b's path; the deepest node also on a's path closes the shared part.
        current = node_b
        shared = 0.0
        while current != self.root:
            if current in resistance_to_root:
                shared = resistance_to_root[current]
                break
            parent, _ = self.parent[current]
            current = parent
        return shared if current != self.root else shared

    def path_nodes(self, node: str) -> list[str]:
        """Nodes from the root down to ``node`` inclusive."""
        chain = [node]
        current = node
        while current != self.root:
            parent, _ = self.parent[current]
            chain.append(parent)
            current = parent
        return list(reversed(chain))


def analyze_rc_tree(circuit: Circuit) -> RcTree:
    """Validate the RC-tree restrictions and build the rooted structure.

    Requirements (paper Sec. II): exactly one voltage source whose negative
    terminal is ground; resistors form a tree rooted at the source's
    positive node; every capacitor is grounded; no other element types.
    """
    sources = circuit.voltage_sources
    if len(sources) != 1:
        raise TopologyError(f"an RC tree needs exactly one source, found {len(sources)}")
    source = sources[0]
    if source.negative != GROUND:
        raise TopologyError("the RC-tree source must return to ground")
    root = source.positive

    for element in circuit:
        if isinstance(element, (VoltageSource, Resistor)):
            continue
        if isinstance(element, Capacitor):
            if element.is_floating:
                raise TopologyError(
                    f"floating capacitor {element.name!r}: not an RC tree "
                    "(use AWE, paper Sec. 5.3)"
                )
            continue
        raise TopologyError(
            f"{type(element).__name__} {element.name!r} is not admissible in an RC tree"
        )

    graph = nx.Graph()
    for resistor in circuit.resistors:
        if GROUND in resistor.nodes:
            raise TopologyError(
                f"resistor {resistor.name!r} to ground: not an RC tree "
                "(use the grounded-resistor extension, paper Sec. 2.2)"
            )
        if graph.has_edge(*resistor.nodes):
            raise TopologyError("parallel resistors form a loop; not an RC tree")
        graph.add_edge(resistor.positive, resistor.negative, resistor=resistor)
    if root not in graph:
        raise TopologyError(f"no resistor connects to the driving node {root!r}")
    if not nx.is_tree(graph):
        raise TopologyError("resistors form loops or a disconnected graph; not an RC tree")

    parent: dict[str, tuple[str, Resistor]] = {}
    children: dict[str, list[str]] = {node: [] for node in graph.nodes}
    for node_from, node_to in nx.bfs_edges(graph, root):
        parent[node_to] = (node_from, graph.edges[node_from, node_to]["resistor"])
        children[node_from].append(node_to)

    capacitance = {node: 0.0 for node in graph.nodes}
    for cap in circuit.capacitors:
        node = cap.positive if cap.negative == GROUND else cap.negative
        if node not in capacitance:
            raise TopologyError(
                f"capacitor {cap.name!r} hangs on node {node!r} outside the resistor tree"
            )
        capacitance[node] += cap.capacitance

    return RcTree(
        root=root,
        source_name=source.name,
        parent=parent,
        children={node: tuple(kids) for node, kids in children.items()},
        capacitance=capacitance,
    )


def is_rc_tree(circuit: Circuit) -> bool:
    """True when :func:`analyze_rc_tree` accepts the circuit."""
    try:
        analyze_rc_tree(circuit)
    except TopologyError:
        return False
    return True


@dataclasses.dataclass(frozen=True)
class TreeLinkPartition:
    """A spanning-tree / link split of the circuit graph (paper Sec. IV).

    ``tree`` holds the spanning-tree elements; ``links`` the rest.  When
    ``explicit_dc`` is true, every link is a capacitor or current source
    and the DC/moment solutions are explicit (solvable by one tree walk,
    paper Figs. 6/8); otherwise resistive links (Fig. 10) force a reduced
    linear solve of one equation per resistive link.
    """

    tree: tuple[Element, ...]
    links: tuple[Element, ...]

    @property
    def explicit_dc(self) -> bool:
        return all(
            isinstance(link, (Capacitor, CurrentSource)) for link in self.links
        )


#: Spanning-tree preference order: voltage-defining branches first so that
#: capacitors land in the links (paper Sec. IV).
_TREE_PRIORITY = {VoltageSource: 0, Resistor: 1, Inductor: 2, Capacitor: 3, CurrentSource: 4}


def tree_link_partition(circuit: Circuit) -> TreeLinkPartition:
    """Partition elements into a spanning tree and links.

    Elements are offered to a union-find in priority order (sources,
    resistors, inductors, then capacitors, then current sources); an
    element joining two already-connected nodes becomes a link.  Controlled
    sources are always links.
    """
    parent_of: dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent_of.get(root, root) != root:
            root = parent_of[root]
        while parent_of.get(node, node) != node:
            parent_of[node], node = root, parent_of[node]
        return root

    def union(a: str, b: str) -> bool:
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent_of[ra] = rb
        return True

    ordered = sorted(
        circuit,
        key=lambda e: _TREE_PRIORITY.get(type(e), 9),
    )
    tree: list[Element] = []
    links: list[Element] = []
    for element in ordered:
        if _TREE_PRIORITY.get(type(element), 9) > 4:
            links.append(element)
            continue
        if union(element.positive, element.negative):
            tree.append(element)
        else:
            links.append(element)
    return TreeLinkPartition(tuple(tree), tuple(links))


# ----------------------------------------------------------------------
# Series RC chain detection (the topology side of repro.reduce)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SeriesRcChain:
    """A maximal run of collapsible degree-2 series RC nodes.

    ``anchor_a``/``anchor_b`` are the retained end nodes (either may be
    ground); ``interior`` lists the removable nodes in walking order from
    ``anchor_a``; ``resistors`` the ``len(interior) + 1`` series
    resistors in the same order; ``capacitors`` one tuple per interior
    node holding that node's grounded capacitors (possibly empty).
    """

    anchor_a: str
    anchor_b: str
    interior: tuple[str, ...]
    resistors: tuple[Resistor, ...]
    capacitors: tuple[tuple[Capacitor, ...], ...]

    @property
    def total_resistance(self) -> float:
        return sum(r.resistance for r in self.resistors)

    @property
    def total_capacitance(self) -> float:
        return sum(c.capacitance for caps in self.capacitors for c in caps)


def series_rc_chains(circuit: Circuit, keep: tuple = ()) -> tuple[SeriesRcChain, ...]:
    """Maximal series RC chains whose interior nodes can be collapsed.

    An interior node is *removable* when its entire connection to the
    circuit is exactly two series resistors plus (optionally) grounded
    capacitors with no initial condition, and it is neither ground, a
    ``keep`` node (analysis tap), nor touched by any source, inductor,
    controlled source, control port, or floating capacitor.  Chains whose
    two anchors coincide (a loop hanging off one node) are not reported:
    collapsing them would create a self-loop element.

    Detection is purely topological; the collapse arithmetic lives in
    :mod:`repro.reduce`.
    """
    from repro.circuit.elements import canonical_node

    kept = {canonical_node(node) for node in keep}
    resistor_adjacency: dict[str, list[Resistor]] = {}
    grounded_caps: dict[str, list[Capacitor]] = {}
    blocked: set[str] = set(kept)

    def block(*names):
        for name in names:
            if name is not None and name != GROUND:
                blocked.add(name)

    for element in circuit:
        if isinstance(element, Resistor):
            for end in (element.positive, element.negative):
                if end != GROUND:
                    resistor_adjacency.setdefault(end, []).append(element)
        elif isinstance(element, Capacitor):
            if element.is_grounded and element.initial_voltage is None:
                node = (element.positive
                        if element.positive != GROUND else element.negative)
                grounded_caps.setdefault(node, []).append(element)
            else:
                block(element.positive, element.negative)
        else:
            block(element.positive, element.negative)
            block(getattr(element, "ctrl_positive", None),
                  getattr(element, "ctrl_negative", None))

    removable = set()
    for node in circuit.nodes:
        if node in blocked:
            continue
        incident = resistor_adjacency.get(node, ())
        if len(incident) != 2:
            continue
        removable.add(node)

    def other_end(resistor: Resistor, node: str) -> str:
        return resistor.negative if resistor.positive == node else resistor.positive

    chains: list[SeriesRcChain] = []
    visited: set[str] = set()
    for seed in circuit.nodes:
        if seed not in removable or seed in visited:
            continue
        first, second = resistor_adjacency[seed]
        # Walk outward in both directions until a non-removable anchor.
        left: list[str] = []
        left_resistors: list[Resistor] = []
        is_cycle = False
        node, res = seed, first
        while True:
            nxt = other_end(res, node)
            left_resistors.append(res)
            if nxt not in removable:
                anchor_a = nxt
                break
            if nxt == seed or nxt in left:
                is_cycle = True
                break
            left.append(nxt)
            a, b = resistor_adjacency[nxt]
            node, res = nxt, (b if a is res else a)
        right: list[str] = []
        right_resistors: list[Resistor] = []
        if not is_cycle:
            node, res = seed, second
            while True:
                nxt = other_end(res, node)
                right_resistors.append(res)
                if nxt not in removable:
                    anchor_b = nxt
                    break
                if nxt == seed or nxt in left or nxt in right:
                    is_cycle = True
                    break
                right.append(nxt)
                a, b = resistor_adjacency[nxt]
                node, res = nxt, (b if a is res else a)
        interior = list(reversed(left)) + [seed] + right
        visited.update(interior)
        if is_cycle or anchor_a == anchor_b:
            continue
        ordered_resistors = list(reversed(left_resistors)) + right_resistors
        chains.append(SeriesRcChain(
            anchor_a=anchor_a,
            anchor_b=anchor_b,
            interior=tuple(interior),
            resistors=tuple(ordered_resistors),
            capacitors=tuple(
                tuple(grounded_caps.get(node, ())) for node in interior
            ),
        ))
    return tuple(chains)
