"""Circuit element definitions.

Every element the paper's RLC interconnect models need is represented here:
resistors, capacitors (grounded or floating), inductors, independent voltage
and current sources, and the four linear controlled-source types that
Sec. III admits ("may contain ... even linear controlled sources").

Elements are lightweight frozen dataclasses holding node *names*; numeric
node indices are assigned by :class:`repro.circuit.netlist.Circuit` when the
element is added.  Each element knows how to report the MNA resources it
needs (whether it introduces an extra branch-current unknown) but the actual
matrix stamping lives in :mod:`repro.analysis.mna` so that the element layer
stays a pure description.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import CircuitError

#: Name of the reference node.  Both SPICE spellings are accepted on input;
#: internally everything is normalised to "0".
GROUND = "0"

_GROUND_ALIASES = {"0", "gnd", "GND", "Gnd"}


def canonical_node(name: str | int) -> str:
    """Normalise a node name: ints become strings, ground aliases become "0"."""
    text = str(name).strip()
    if not text:
        raise CircuitError("node name must be non-empty")
    if text in _GROUND_ALIASES:
        return GROUND
    return text


def _require_positive(value: float, what: str, name: str) -> None:
    if not value > 0:
        raise CircuitError(f"{what} {name!r} must have a positive value, got {value!r}")


def _require_finite(value: float, what: str, name: str) -> None:
    import math

    if not math.isfinite(value):
        raise CircuitError(f"{what} {name!r} must have a finite value, got {value!r}")


@dataclass(frozen=True)
class Element:
    """Common base: a named element connected to two nodes.

    ``positive``/``negative`` follow the SPICE convention: for sources the
    voltage/current is directed from ``positive`` to ``negative``; for
    passive elements the orientation only fixes current-sign bookkeeping.
    """

    name: str
    positive: str
    negative: str

    def __post_init__(self):
        if not self.name:
            raise CircuitError("element name must be non-empty")
        object.__setattr__(self, "positive", canonical_node(self.positive))
        object.__setattr__(self, "negative", canonical_node(self.negative))
        if self.positive == self.negative:
            raise CircuitError(
                f"element {self.name!r} connects node {self.positive!r} to itself"
            )

    @property
    def nodes(self) -> tuple[str, str]:
        """The two terminal node names, positive first."""
        return (self.positive, self.negative)

    #: True when the element adds a branch-current unknown to the MNA system.
    needs_current_variable: ClassVar[bool] = False

    def renamed(self, new_name: str) -> "Element":
        """A copy of this element with a different name."""
        return dataclasses.replace(self, name=new_name)


@dataclass(frozen=True)
class Resistor(Element):
    """Linear resistor, value in ohms."""

    resistance: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.resistance, "resistor", self.name)
        _require_finite(self.resistance, "resistor", self.name)

    @property
    def conductance(self) -> float:
        """1 / R, the value actually stamped into the MNA G matrix."""
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor(Element):
    """Linear capacitor, value in farads.

    ``initial_voltage`` is the voltage across the capacitor (positive node
    minus negative node) at t = 0; ``None`` means "take the DC steady state
    of the unexcited circuit", i.e. equilibrium initial conditions.  The
    nonequilibrium charge-sharing experiments (paper Sec. 5.2) set this
    explicitly.
    """

    capacitance: float = 0.0
    initial_voltage: float | None = None

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.capacitance, "capacitor", self.name)
        _require_finite(self.capacitance, "capacitor", self.name)
        if self.initial_voltage is not None:
            _require_finite(self.initial_voltage, "capacitor IC of", self.name)

    @property
    def is_grounded(self) -> bool:
        """True when one terminal is the reference node (an "RC tree" cap)."""
        return GROUND in self.nodes

    @property
    def is_floating(self) -> bool:
        """True for a coupling capacitor between two non-ground nodes."""
        return not self.is_grounded

    def with_initial_voltage(self, voltage: float | None) -> "Capacitor":
        """A copy with a different initial condition."""
        return dataclasses.replace(self, initial_voltage=voltage)


@dataclass(frozen=True)
class Inductor(Element):
    """Linear inductor, value in henries.

    ``initial_current`` is the branch current flowing from ``positive`` to
    ``negative`` at t = 0 (``None`` = equilibrium).  Inductors always carry
    a branch-current unknown in the MNA formulation.
    """

    inductance: float = 0.0
    initial_current: float | None = None
    needs_current_variable = True

    def __post_init__(self):
        super().__post_init__()
        _require_positive(self.inductance, "inductor", self.name)
        _require_finite(self.inductance, "inductor", self.name)
        if self.initial_current is not None:
            _require_finite(self.initial_current, "inductor IC of", self.name)

    def with_initial_current(self, current: float | None) -> "Inductor":
        """A copy with a different initial condition."""
        return dataclasses.replace(self, initial_current=current)


@dataclass(frozen=True)
class VoltageSource(Element):
    """Independent voltage source.

    ``dc`` is the source value at and after t = 0 (the input signal shape —
    step, ramp, PWL — is supplied separately at analysis time and scales /
    replaces this value; see :mod:`repro.analysis.sources`).  ``dc0`` is the
    value for t < 0 used when computing the pre-switching steady state.
    """

    dc: float = 0.0
    dc0: float = 0.0
    needs_current_variable = True

    def __post_init__(self):
        super().__post_init__()
        _require_finite(self.dc, "voltage source", self.name)
        _require_finite(self.dc0, "voltage source", self.name)


@dataclass(frozen=True)
class CurrentSource(Element):
    """Independent current source; current flows from ``positive`` terminal
    through the source to ``negative`` (SPICE convention).
    """

    dc: float = 0.0
    dc0: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        _require_finite(self.dc, "current source", self.name)
        _require_finite(self.dc0, "current source", self.name)


@dataclass(frozen=True)
class ControlledSource(Element):
    """Base for the four linear controlled sources."""

    gain: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        _require_finite(self.gain, "controlled source", self.name)


@dataclass(frozen=True)
class VCCS(ControlledSource):
    """Voltage-controlled current source (SPICE G element).

    Output current ``gain * (V(ctrl_positive) - V(ctrl_negative))`` flows
    from ``positive`` through the source to ``negative``.
    """

    ctrl_positive: str = GROUND
    ctrl_negative: str = GROUND

    def __post_init__(self):
        super().__post_init__()
        object.__setattr__(self, "ctrl_positive", canonical_node(self.ctrl_positive))
        object.__setattr__(self, "ctrl_negative", canonical_node(self.ctrl_negative))


@dataclass(frozen=True)
class VCVS(ControlledSource):
    """Voltage-controlled voltage source (SPICE E element)."""

    ctrl_positive: str = GROUND
    ctrl_negative: str = GROUND
    needs_current_variable = True

    def __post_init__(self):
        super().__post_init__()
        object.__setattr__(self, "ctrl_positive", canonical_node(self.ctrl_positive))
        object.__setattr__(self, "ctrl_negative", canonical_node(self.ctrl_negative))


@dataclass(frozen=True)
class CCCS(ControlledSource):
    """Current-controlled current source (SPICE F element).

    The controlling current is the branch current of the named element,
    which must itself carry a current variable (a voltage source or an
    inductor).
    """

    control_element: str = ""

    def __post_init__(self):
        super().__post_init__()
        if not self.control_element:
            raise CircuitError(f"CCCS {self.name!r} needs a controlling element name")


@dataclass(frozen=True)
class CCVS(ControlledSource):
    """Current-controlled voltage source (SPICE H element)."""

    control_element: str = ""
    needs_current_variable = True

    def __post_init__(self):
        super().__post_init__()
        if not self.control_element:
            raise CircuitError(f"CCVS {self.name!r} needs a controlling element name")


@dataclass(frozen=True)
class MutualInductance:
    """Magnetic coupling between two named inductors (SPICE K element).

    Not a two-terminal element: it references the coupled inductors by
    name and adds the off-diagonal terms ``M = k·√(L₁L₂)`` to the
    inductance matrix.  ``|coupling| < 1`` is required for a passive
    (positive-definite) inductance matrix.
    """

    name: str
    inductor_a: str = ""
    inductor_b: str = ""
    coupling: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise CircuitError("mutual inductance name must be non-empty")
        if not self.inductor_a or not self.inductor_b:
            raise CircuitError(f"mutual inductance {self.name!r} needs two inductor names")
        if self.inductor_a == self.inductor_b:
            raise CircuitError(f"mutual inductance {self.name!r} couples an inductor to itself")
        _require_finite(self.coupling, "mutual inductance", self.name)
        if not -1.0 < self.coupling < 1.0:
            raise CircuitError(
                f"mutual inductance {self.name!r}: |k| must be < 1 for a "
                f"passive inductance matrix, got {self.coupling!r}"
            )

    def mutual(self, l_a: float, l_b: float) -> float:
        """The mutual inductance value M = k·√(L_a·L_b)."""
        import math

        return self.coupling * math.sqrt(l_a * l_b)


#: All storage (energy) element types — these define the circuit's state.
STORAGE_TYPES = (Capacitor, Inductor)

#: Elements that stamp only into the conductance matrix.
RESISTIVE_TYPES = (Resistor, VCCS, VCVS, CCCS, CCVS)

#: Independent sources.
SOURCE_TYPES = (VoltageSource, CurrentSource)
