"""Netlist writer: serialise a :class:`Circuit` back to a SPICE-style deck.

The inverse of :mod:`repro.circuit.parser`.  Useful for exporting
programmatically built or modified circuits (e.g. after sensitivity-driven
resizing), for golden files in regression suites, and for moving test
cases to an external SPICE.  Round-tripping is covered by property tests:
``parse(write(circuit))`` reproduces every element value exactly
(values are emitted in full ``repr`` precision, not engineering-rounded).

``write_netlist(..., canonical=True)`` emits the elements in a
deterministic order (natural sort on the case-folded name, so ``R2``
precedes ``R10``) instead of insertion order.  Canonical output is a
fixed point: ``write(parse(write(c, canonical=True)), canonical=True)``
is byte-identical, which makes deck diffs reproducible and gives
:meth:`repro.circuit.netlist.Circuit.canonical_key` and the service
cache (:mod:`repro.service.canon`) a stable text to hash.
"""

from __future__ import annotations

import re

from repro.analysis.sources import DC, PWL, Pulse, Ramp, Step, Stimulus
from repro.circuit.elements import (
    CCCS,
    CCVS,
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError


def _value(x: float) -> str:
    """Full-precision value text (parses back bit-exact)."""
    return repr(float(x))


def _source_card(element, stimulus: Stimulus | None) -> str:
    base = f"{element.name} {element.positive} {element.negative}"
    if stimulus is None:
        return f"{base} DC {_value(element.dc)}"
    if isinstance(stimulus, DC):
        return f"{base} DC {_value(stimulus.level)}"
    if isinstance(stimulus, Step):
        return f"{base} STEP({_value(stimulus.v0)} {_value(stimulus.v1)} {_value(stimulus.delay)})"
    if isinstance(stimulus, Ramp):
        # A ramp is PWL with three breakpoints.
        t0, t1 = stimulus.delay, stimulus.delay + stimulus.rise_time
        return (f"{base} PWL(0 {_value(stimulus.v0)} {_value(t0)} {_value(stimulus.v0)} "
                f"{_value(t1)} {_value(stimulus.v1)})")
    if isinstance(stimulus, Pulse):
        return (f"{base} PULSE({_value(stimulus.v0)} {_value(stimulus.v1)} "
                f"{_value(stimulus.delay)} {_value(stimulus.rise)} "
                f"{_value(stimulus.fall)} {_value(stimulus.width)})")
    if isinstance(stimulus, PWL):
        points = " ".join(f"{_value(t)} {_value(v)}" for t, v in stimulus.points)
        return f"{base} PWL({points})"
    raise CircuitError(f"cannot serialise stimulus type {type(stimulus).__name__}")


def _natural_key(name: str) -> tuple:
    """Case-insensitive natural sort key: ``R2`` before ``R10``."""
    return tuple(
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", name.lower())
        if part
    )


def write_netlist(
    circuit: Circuit,
    stimuli: dict[str, Stimulus] | None = None,
    title: str | None = None,
    canonical: bool = False,
) -> str:
    """Serialise ``circuit`` (and optional source stimuli) to deck text.

    The first line is the title (the circuit's own unless overridden);
    element cards follow in insertion order, magnetic couplings last
    (the parser requires their inductors to exist first), then ``.end``.

    ``canonical=True`` sorts element cards (and couplings) by
    :func:`_natural_key` of their names instead, so any two circuits
    with the same elements serialise to the same text regardless of
    construction order.  Re-parsing canonical output and writing it
    again reproduces the text byte for byte: the sorted order *is* the
    new insertion order.  (Controlled sources may legally precede their
    control elements in a deck — cross-references are resolved by
    :func:`repro.circuit.validation.validate_for_analysis`, not the
    parser — so sorting never produces an unparseable deck.)
    """
    stimuli = stimuli or {}
    _check_card_letters(circuit)
    lines = [title if title is not None else (circuit.title or "untitled circuit")]
    elements = sorted(circuit, key=lambda e: _natural_key(e.name)) if canonical else circuit
    for element in elements:
        if isinstance(element, Resistor):
            lines.append(
                f"{element.name} {element.positive} {element.negative} "
                f"{_value(element.resistance)}"
            )
        elif isinstance(element, Capacitor):
            card = (f"{element.name} {element.positive} {element.negative} "
                    f"{_value(element.capacitance)}")
            if element.initial_voltage is not None:
                card += f" IC={_value(element.initial_voltage)}"
            lines.append(card)
        elif isinstance(element, Inductor):
            card = (f"{element.name} {element.positive} {element.negative} "
                    f"{_value(element.inductance)}")
            if element.initial_current is not None:
                card += f" IC={_value(element.initial_current)}"
            lines.append(card)
        elif isinstance(element, (VoltageSource, CurrentSource)):
            lines.append(_source_card(element, stimuli.get(element.name)))
        elif isinstance(element, (VCCS, VCVS)):
            lines.append(
                f"{element.name} {element.positive} {element.negative} "
                f"{element.ctrl_positive} {element.ctrl_negative} {_value(element.gain)}"
            )
        elif isinstance(element, (CCCS, CCVS)):
            lines.append(
                f"{element.name} {element.positive} {element.negative} "
                f"{element.control_element} {_value(element.gain)}"
            )
        else:  # pragma: no cover - future element types
            raise CircuitError(f"cannot serialise element type {type(element).__name__}")
    couplings = circuit.mutual_inductances
    if canonical:
        couplings = sorted(couplings, key=lambda c: _natural_key(c.name))
    for coupling in couplings:
        lines.append(
            f"{coupling.name} {coupling.inductor_a} {coupling.inductor_b} "
            f"{_value(coupling.coupling)}"
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"


_CARD_LETTER = {
    Resistor: "r",
    Capacitor: "c",
    Inductor: "l",
    VoltageSource: "v",
    CurrentSource: "i",
    VCCS: "g",
    VCVS: "e",
    CCCS: "f",
    CCVS: "h",
}


def _check_card_letters(circuit: Circuit) -> None:
    """SPICE decks encode the element type in the name's first letter; a
    mismatched name would parse back as a different element."""
    problems = []
    for element in circuit:
        expected = _CARD_LETTER.get(type(element))
        if expected and not element.name.lower().startswith(expected):
            problems.append(
                f"{type(element).__name__} {element.name!r} must start with "
                f"{expected.upper()!r}"
            )
    for coupling in circuit.mutual_inductances:
        if not coupling.name.lower().startswith("k"):
            problems.append(f"MutualInductance {coupling.name!r} must start with 'K'")
    if problems:
        raise CircuitError(
            "circuit is not deck-serialisable: " + "; ".join(problems)
        )


def write_netlist_file(path, circuit: Circuit, stimuli=None, title=None,
                       canonical: bool = False) -> None:
    """Write the deck to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_netlist(circuit, stimuli, title, canonical=canonical))
