"""Engineering-notation parsing and formatting for element values.

SPICE decks write element values with scale suffixes (``10k``, ``2.5n``,
``1meg``).  :func:`parse_value` converts such strings to floats and
:func:`format_engineering` renders floats back with an SI prefix, which the
examples and benchmark tables use for readable output.
"""

from __future__ import annotations

import math
import re

from repro.errors import NetlistParseError

# SPICE scale suffixes.  ``meg`` must be matched before ``m`` (milli); the
# regex below captures the longest alphabetic run so ordering is handled in
# the dict lookup by trying the full suffix first.
_SUFFIX_SCALE = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_VALUE_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<suffix>[a-zA-Z]*)\s*$""",
    re.VERBOSE,
)

#: SI prefixes for formatting, ordered from largest to smallest.
_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style value string into a float.

    Accepts plain numbers (``"4.7"``, ``"1e-9"``), numbers with a scale
    suffix (``"10k"``, ``"3.3n"``, ``"1meg"``), and numbers with trailing
    unit letters after the suffix, which SPICE ignores (``"10kohm"``,
    ``"5pF"``).  Floats and ints pass through unchanged.

    >>> parse_value("10k")
    10000.0
    >>> parse_value("1meg")
    1000000.0
    >>> parse_value("5pF")
    5e-12
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _VALUE_RE.match(text)
    if match is None:
        raise NetlistParseError(f"cannot parse value {text!r}")
    number = float(match.group("number"))
    suffix = match.group("suffix").lower()
    if not suffix:
        return number
    # SPICE semantics: the scale factor is the longest recognised prefix of
    # the trailing letters; any remaining letters are a unit and ignored.
    if suffix.startswith("meg"):
        return number * _SUFFIX_SCALE["meg"]
    scale = _SUFFIX_SCALE.get(suffix[0])
    if scale is None:
        # Unknown first letter: the whole suffix is a unit name (e.g. "ohm").
        return number
    return number * scale


def format_engineering(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_engineering(2.2e-9, "s")
    == "2.2ns"``.

    ``digits`` is the number of significant digits retained.  Zero, NaN and
    infinities are rendered without a prefix.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g}{prefix}{unit}"
    # Smaller than the smallest prefix: fall back to scientific notation.
    return f"{value:.{digits}g}{unit}"
