"""SPICE-style netlist deck parser.

Interconnect models usually arrive as extracted SPICE decks, so the
library accepts the familiar format::

    * RC tree example (first non-comment line may be a title)
    Vin in 0 PWL(0 0 1n 5)
    R1 in 1 10k
    C1 1 0 1p IC=2.5
    G1 2 0 1 0 1m      ; VCCS
    .end

Supported cards: R, C (``IC=`` initial voltage), L (``IC=`` initial
current), V/I (``DC v``, ``STEP(v0 v1 [delay])``, ``PULSE(v1 v2 td tr tf
pw)``, ``PWL(t1 v1 t2 v2 …)``), G/E (VCCS/VCVS: ``name n+ n- nc+ nc-
gain``), F/H (CCCS/CCVS: ``name n+ n- vname gain``).  Lines starting with
``*`` or empty are skipped; ``;`` and ``$`` introduce trailing comments;
``+`` continues the previous card; ``.end`` stops parsing; other dot cards
are ignored with a record in :attr:`ParsedDeck.ignored_directives`.

Engineering suffixes (``10k``, ``2.5n``, ``1meg``) are handled by
:mod:`repro.circuit.units`.
"""

from __future__ import annotations

import dataclasses
import re

from repro.analysis.sources import DC, PWL, Pulse, Step, Stimulus
from repro.circuit.netlist import Circuit
from repro.circuit.units import parse_value
from repro.errors import NetlistParseError


@dataclasses.dataclass(frozen=True)
class ParsedDeck:
    """The result of parsing: the circuit plus source stimuli and metadata."""

    circuit: Circuit
    stimuli: dict[str, Stimulus]
    title: str
    ignored_directives: tuple[str, ...]


def parse_netlist(text: str, title_line: bool = True) -> ParsedDeck:
    """Parse a deck from a string.

    ``title_line=True`` treats the first non-blank line as the SPICE title
    (unless it starts with a recognised card letter followed by whitespace,
    in which case it is parsed as an element for convenience).
    """
    lines = _physical_to_logical(text)
    circuit = Circuit()
    stimuli: dict[str, Stimulus] = {}
    ignored: list[str] = []
    title = ""

    first = True
    for line_number, line in lines:
        if first and title_line:
            first = False
            # SPICE treats the first line as a title.  For convenience a
            # first line that *parses* as a valid card is kept as one
            # (decks written without a title still work); anything else —
            # including prose that merely starts with an element letter —
            # becomes the title.
            if not line.startswith(".") and not _parses_as_card(line):
                title = line
                circuit.title = title
                continue
        first = False
        if line.startswith("."):
            directive = line.split()[0].lower()
            if directive == ".end":
                break
            if directive == ".title":
                title = line[len(".title"):].strip()
                circuit.title = title
                continue
            if directive == ".ic":
                _apply_ic_directive(circuit, line, line_number)
                continue
            ignored.append(line)
            continue
        _parse_card(circuit, stimuli, line, line_number)
    return ParsedDeck(circuit, stimuli, title, tuple(ignored))


def parse_netlist_file(path) -> ParsedDeck:
    """Parse a deck from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_netlist(handle.read())


_CARD_RE = re.compile(r"^[rclvigefhk]\w*\s", re.IGNORECASE)


def _parses_as_card(line: str) -> bool:
    """True when the line is a syntactically valid element card."""
    if not _CARD_RE.match(line):
        return False
    probe = Circuit()
    try:
        _parse_card(probe, {}, line, 0)
    except NetlistParseError:
        return False
    return True


def _physical_to_logical(text: str) -> list[tuple[int, str]]:
    """Strip comments/blanks and fold ``+`` continuations."""
    logical: list[tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = re.split(r"[;$]", raw, maxsplit=1)[0].rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not logical:
                raise NetlistParseError("continuation with nothing to continue", number)
            prev_number, prev = logical[-1]
            logical[-1] = (prev_number, prev + " " + stripped[1:].strip())
        else:
            logical.append((number, stripped))
    return logical


def _parse_card(circuit: Circuit, stimuli: dict, line: str, number: int) -> None:
    tokens = _tokenize(line, number)
    name = tokens[0]
    letter = name[0].lower()
    try:
        if letter == "r":
            _need(tokens, 4, number)
            circuit.add_resistor(name, tokens[1], tokens[2], parse_value(tokens[3]))
        elif letter == "c":
            _need(tokens, 4, number)
            ic = _extract_ic(tokens[4:], number)
            circuit.add_capacitor(name, tokens[1], tokens[2], parse_value(tokens[3]), ic)
        elif letter == "l":
            _need(tokens, 4, number)
            ic = _extract_ic(tokens[4:], number)
            circuit.add_inductor(name, tokens[1], tokens[2], parse_value(tokens[3]), ic)
        elif letter in ("v", "i"):
            _parse_source(circuit, stimuli, letter, tokens, number)
        elif letter == "g":
            _need(tokens, 6, number)
            circuit.add_vccs(name, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5]))
        elif letter == "e":
            _need(tokens, 6, number)
            circuit.add_vcvs(name, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5]))
        elif letter == "f":
            _need(tokens, 5, number)
            circuit.add_cccs(name, tokens[1], tokens[2], tokens[3], parse_value(tokens[4]))
        elif letter == "h":
            _need(tokens, 5, number)
            circuit.add_ccvs(name, tokens[1], tokens[2], tokens[3], parse_value(tokens[4]))
        elif letter == "k":
            _need(tokens, 4, number)
            circuit.add_mutual_inductance(
                name, tokens[1], tokens[2], parse_value(tokens[3])
            )
        else:
            raise NetlistParseError(f"unknown element card {name!r}", number)
    except NetlistParseError:
        raise
    except Exception as exc:  # element-layer validation errors get line info
        raise NetlistParseError(str(exc), number) from exc


def _tokenize(line: str, number: int) -> list[str]:
    """Split a card into tokens, keeping ``FUNC( … )`` groups together."""
    spaced = re.sub(r"\(\s*", "(", line)
    tokens: list[str] = []
    depth = 0
    current = ""
    for ch in spaced:
        if ch == "(":
            depth += 1
            current += ch
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise NetlistParseError("unbalanced parentheses", number)
            current += ch
        elif ch.isspace() and depth == 0:
            if current:
                tokens.append(current)
                current = ""
        else:
            current += ch
    if depth != 0:
        raise NetlistParseError("unbalanced parentheses", number)
    if current:
        tokens.append(current)
    return tokens


def _need(tokens: list[str], count: int, number: int) -> None:
    if len(tokens) < count:
        raise NetlistParseError(
            f"card {tokens[0]!r} needs at least {count - 1} fields", number
        )


_IC_DIRECTIVE_RE = re.compile(r"v\(\s*([^)\s]+)\s*\)\s*=\s*(\S+)", re.IGNORECASE)


def _apply_ic_directive(circuit: Circuit, line: str, number: int) -> None:
    """``.ic V(node)=value …`` — set the initial voltage of the grounded
    capacitor(s) at each named node (the SPICE node-voltage semantics
    mapped onto our per-capacitor initial conditions)."""
    from repro.circuit.elements import GROUND, canonical_node

    assignments = _IC_DIRECTIVE_RE.findall(line)
    if not assignments:
        raise NetlistParseError(".ic needs V(node)=value assignments", number)
    for node_text, value_text in assignments:
        node = canonical_node(node_text)
        value = parse_value(value_text)
        matched = False
        for cap in circuit.capacitors:
            if not cap.is_grounded:
                continue
            cap_node = cap.positive if cap.negative == GROUND else cap.negative
            if cap_node == node:
                sign = 1.0 if cap.negative == GROUND else -1.0
                circuit.set_initial_voltage(cap.name, sign * value)
                matched = True
        if not matched:
            raise NetlistParseError(
                f".ic V({node_text})={value_text}: no grounded capacitor at "
                f"node {node_text!r} to carry the initial condition "
                "(state it on the capacitor card with IC= instead)",
                number,
            )


_IC_RE = re.compile(r"^ic=(.+)$", re.IGNORECASE)


def _extract_ic(extras: list[str], number: int) -> float | None:
    for token in extras:
        match = _IC_RE.match(token)
        if match:
            return parse_value(match.group(1))
    return None


_FUNC_RE = re.compile(r"^(?P<func>[a-zA-Z]+)\((?P<args>.*)\)$")


def _parse_source(circuit, stimuli, letter, tokens, number) -> None:
    _need(tokens, 4, number)
    name, positive, negative = tokens[0], tokens[1], tokens[2]
    rest = tokens[3:]

    stimulus: Stimulus | None = None
    dc_value = 0.0
    i = 0
    while i < len(rest):
        token = rest[i]
        func = _FUNC_RE.match(token)
        if func:
            stimulus = _parse_function(func.group("func"), func.group("args"), number)
            i += 1
        elif token.lower() == "dc":
            if i + 1 >= len(rest):
                raise NetlistParseError("DC keyword without a value", number)
            dc_value = parse_value(rest[i + 1])
            i += 2
        else:
            dc_value = parse_value(token)
            i += 1

    if stimulus is None:
        stimulus = DC(dc_value)
    adder = circuit.add_voltage_source if letter == "v" else circuit.add_current_source
    adder(name, positive, negative, dc=stimulus.initial_value, dc0=stimulus.initial_value)
    stimuli[name] = stimulus


def _parse_function(func: str, args_text: str, number: int) -> Stimulus:
    args = [parse_value(a) for a in re.split(r"[\s,]+", args_text.strip()) if a]
    func = func.lower()
    if func == "pwl":
        if len(args) < 2 or len(args) % 2:
            raise NetlistParseError("PWL needs an even number of values", number)
        points = list(zip(args[0::2], args[1::2]))
        return PWL(points)
    if func == "pulse":
        if len(args) < 6:
            raise NetlistParseError(
                "PULSE needs v1 v2 delay rise fall width", number
            )
        v1, v2, delay, rise, fall, width = args[:6]
        return Pulse(v0=v1, v1=v2, delay=delay, rise=rise, width=width, fall=fall)
    if func == "step":
        if len(args) < 2:
            raise NetlistParseError("STEP needs v0 v1 [delay]", number)
        delay = args[2] if len(args) > 2 else 0.0
        return Step(v0=args[0], v1=args[1], delay=delay)
    raise NetlistParseError(f"unknown source function {func.upper()!r}", number)
