"""Global structural validation of circuits before analysis.

The element and netlist layers enforce local sanity (positive values, no
self-loops, unique names); this module checks the whole-circuit properties
the analyses assume:

* every controlled source's controlling element exists and (for CCCS/CCVS)
  carries a branch current,
* no loop consisting purely of voltage-defining branches (voltage sources,
  VCVS/CCVS outputs, and — at DC — inductors), which would make the DC
  system singular,
* no node whose connections are exclusively current sources (a
  current-source cutset), which has no DC solution,
* the circuit has a ground reference somewhere.

Capacitive-only ("floating") nodes are deliberately *not* rejected — the
paper's Sec. III handles them by charge conservation and so does
:class:`repro.analysis.mna.MnaSystem`.
"""

from __future__ import annotations

import networkx as nx

from repro.circuit.elements import (
    CCCS,
    CCVS,
    GROUND,
    VCVS,
    CurrentSource,
    Inductor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import CircuitError, SingularCircuitError, TopologyError


def validate_for_analysis(circuit: Circuit) -> None:
    """Run every structural check; raises on the first violation."""
    if len(circuit) == 0:
        raise CircuitError("circuit is empty")
    _check_ground_reference(circuit)
    _check_controlled_sources(circuit)
    _check_voltage_loops(circuit)
    _check_current_source_cutsets(circuit)


def _check_ground_reference(circuit: Circuit) -> None:
    if not any(GROUND in element.nodes for element in circuit):
        raise TopologyError(
            "no element connects to ground; node voltages are undefined"
        )


def _check_controlled_sources(circuit: Circuit) -> None:
    for element in circuit:
        control = getattr(element, "control_element", None)
        if control is None:
            continue
        if control not in circuit:
            raise CircuitError(
                f"{element.name!r} controlled by nonexistent element {control!r}"
            )
        controller = circuit[control]
        if not controller.needs_current_variable:
            raise CircuitError(
                f"{element.name!r} must be controlled by a branch that carries "
                f"a current (voltage source or inductor), not "
                f"{type(controller).__name__} {control!r}"
            )
        if isinstance(element, (CCCS, CCVS)) and control == element.name:
            raise CircuitError(f"{element.name!r} cannot control itself")


def _check_voltage_loops(circuit: Circuit) -> None:
    """Loops of voltage-defining branches make the DC system singular
    (the paper's capacitance-voltage-source-loop caveat, Sec. 3.2)."""
    graph = nx.MultiGraph()
    for element in circuit:
        if isinstance(element, (VoltageSource, VCVS, CCVS, Inductor)):
            graph.add_edge(element.positive, element.negative, name=element.name)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return
    names = sorted({graph.edges[edge]["name"] for edge in cycle})
    raise SingularCircuitError(
        "voltage-defining branches form a loop (no unique DC solution): "
        + ", ".join(names)
    )


def _check_current_source_cutsets(circuit: Circuit) -> None:
    """A node fed only by current sources has no DC solution."""
    touched_by_other: set[str] = {GROUND}
    touched_at_all: set[str] = set()
    for element in circuit:
        for node in element.nodes:
            touched_at_all.add(node)
            if not isinstance(element, CurrentSource):
                touched_by_other.add(node)
    isolated = sorted(touched_at_all - touched_by_other)
    if isolated:
        raise SingularCircuitError(
            f"node(s) {isolated} connect only to current sources; "
            "KCL cannot be satisfied at DC"
        )
