"""Circuit representation: elements, netlists, parsing, topology."""

from repro.circuit.elements import (
    CCCS,
    CCVS,
    GROUND,
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
    canonical_node,
)
from repro.circuit.netlist import Circuit
from repro.circuit.parser import ParsedDeck, parse_netlist, parse_netlist_file
from repro.circuit.topology import (
    RcTree,
    SeriesRcChain,
    TreeLinkPartition,
    analyze_rc_tree,
    is_rc_tree,
    series_rc_chains,
    tree_link_partition,
)
from repro.circuit.units import format_engineering, parse_value
from repro.circuit.validation import validate_for_analysis
from repro.circuit.writer import write_netlist, write_netlist_file

__all__ = [
    "CCCS",
    "CCVS",
    "GROUND",
    "VCCS",
    "VCVS",
    "Capacitor",
    "Circuit",
    "CurrentSource",
    "Element",
    "Inductor",
    "MutualInductance",
    "ParsedDeck",
    "RcTree",
    "Resistor",
    "SeriesRcChain",
    "TreeLinkPartition",
    "VoltageSource",
    "analyze_rc_tree",
    "canonical_node",
    "format_engineering",
    "is_rc_tree",
    "parse_netlist",
    "parse_netlist_file",
    "parse_value",
    "series_rc_chains",
    "tree_link_partition",
    "validate_for_analysis",
    "write_netlist",
    "write_netlist_file",
]
