"""Deterministic fault injection: seeded probes for chaos-style testing.

The serving stack (daemon, cache, batch engine, client) claims to
*degrade, retry, recover, and never silently drop a job* — the same
graceful-degradation standard the paper applies to the approximation
itself (order escalation with an error bound, Sec. 3.4).  That claim is
only testable if the faults are reproducible, so this module provides a
**seeded, counted, spec-driven** fault plan instead of ad-hoc
monkeypatching:

* a :class:`FaultProbe` is one named failure mode with a firing
  probability, an optional numeric argument (a delay, a Retry-After
  hint), and an optional cap on how many times it may fire;
* a :class:`FaultPlan` is a named set of probes parsed from a compact
  spec string (``"worker_crash=1:x1,http_429=0.1:0.05"``), seeded so the
  same spec + seed yields the same firing sequence;
* production code consults :func:`active`, which returns the shared
  :data:`NO_FAULTS` no-op unless a plan was installed explicitly
  (:func:`install`, e.g. from ``python -m repro serve --faults``) or via
  the ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` environment variables —
  with no plan configured the hooks cost one attribute check and nothing
  else, so production code paths stay untouched.

Probe names the stack hooks today (see the call sites):

===================  ====================================================
``worker_crash``     a :class:`~repro.engine.batch.BatchEngine` pool task
                     hard-kills its worker process (``os._exit``) —
                     drawn in the *parent* per submitted chunk so a
                     ``:xN`` cap survives pool rebuilds
``slow_job``         a batch job sleeps ``arg`` seconds (default 0.25)
                     before running
``cache_io_store``   :meth:`~repro.service.cache.ResultCache.put`'s disk
                     write-through raises :class:`OSError`
``cache_io_load``    the cache's disk read raises :class:`OSError`
``http_429``         the server refuses the request with an injected 429
                     (``Retry-After: arg``, default 0.05 s)
``http_503``         the server refuses with an injected 503
``http_timeout``     the server sleeps ``arg`` seconds (default 1.0)
                     before handling — long enough to trip a client
                     socket timeout when ``arg`` exceeds it
``shard_crash``      the gateway hard-kills the target shard process
                     (``SIGKILL``) just before forwarding a request to
                     it, exercising the respawn-and-retry path
===================  ====================================================

Spec grammar: comma-separated ``name=rate`` terms, each optionally
suffixed with ``:<float>`` (the probe argument) and/or ``:xN`` (fire at
most N times), in either order.  ``rate`` is a probability in [0, 1];
``1`` fires on every check (until an ``xN`` cap exhausts it).
"""

from __future__ import annotations

import dataclasses
import os
import random
import threading
import time

__all__ = [
    "NO_FAULTS",
    "FaultPlan",
    "FaultProbe",
    "NoFaults",
    "active",
    "install",
    "reset",
]

#: Environment variables the lazy :func:`active` lookup reads.
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"

KNOWN_PROBES = frozenset({
    "worker_crash",
    "slow_job",
    "cache_io_store",
    "cache_io_load",
    "http_429",
    "http_503",
    "http_timeout",
    "shard_crash",
})


@dataclasses.dataclass
class FaultProbe:
    """One named failure mode: probability, optional arg, optional cap.

    ``checks`` / ``fires`` count every :meth:`fire` consultation and
    every time it returned True — the plan's :meth:`FaultPlan.stats`
    snapshot exposes both so a test (or ``/metrics``) can verify that an
    injection campaign actually injected.
    """

    name: str
    rate: float
    arg: float | None = None
    times: int | None = None
    seed: int = 0
    checks: int = 0
    fires: int = 0

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"fault probe {self.name!r}: rate must be in [0, 1], "
                f"got {self.rate!r}")
        if self.times is not None and self.times < 0:
            raise ValueError(
                f"fault probe {self.name!r}: xN cap must be >= 0, "
                f"got {self.times!r}")
        # One independent stream per (seed, name): adding a probe to a
        # spec never perturbs the draws of the others.
        self._rng = random.Random(f"{self.seed}:{self.name}")

    def fire(self) -> bool:
        """One draw (not thread-safe; the plan serialises calls)."""
        self.checks += 1
        if self.times is not None and self.fires >= self.times:
            return False
        if self.rate >= 1.0:
            fired = True
        elif self.rate <= 0.0:
            fired = False
        else:
            fired = self._rng.random() < self.rate
        if fired:
            self.fires += 1
        return fired


class FaultPlan:
    """A named set of seeded probes; the object production hooks consult.

    Thread-safe: the daemon's handler threads, its worker threads, and
    the batch engine's parent-side draws all share one plan.
    """

    enabled = True

    def __init__(self, probes=(), seed: int = 0):
        self.seed = seed
        self._probes: dict[str, FaultProbe] = {}
        self._lock = threading.Lock()
        for probe in probes:
            if probe.name in self._probes:
                raise ValueError(f"duplicate fault probe {probe.name!r}")
            self._probes[probe.name] = probe

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the compact spec grammar (see module doc).

        Raises :class:`ValueError` naming the offending term on any
        malformed input or unknown probe name.
        """
        probes = []
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            name, sep, rest = term.partition("=")
            name = name.strip()
            if not sep or not name:
                raise ValueError(f"fault spec term {term!r}: expected name=rate")
            if name not in KNOWN_PROBES:
                raise ValueError(
                    f"unknown fault probe {name!r}; known: "
                    f"{', '.join(sorted(KNOWN_PROBES))}")
            parts = [p.strip() for p in rest.split(":")]
            try:
                rate = float(parts[0])
            except ValueError:
                raise ValueError(
                    f"fault spec term {term!r}: rate {parts[0]!r} is not "
                    "a number") from None
            arg = None
            times = None
            for extra in parts[1:]:
                if extra.startswith("x"):
                    try:
                        times = int(extra[1:])
                    except ValueError:
                        raise ValueError(
                            f"fault spec term {term!r}: bad fire cap "
                            f"{extra!r}") from None
                else:
                    try:
                        arg = float(extra)
                    except ValueError:
                        raise ValueError(
                            f"fault spec term {term!r}: bad argument "
                            f"{extra!r}") from None
            probes.append(FaultProbe(name, rate, arg=arg, times=times, seed=seed))
        return cls(probes, seed=seed)

    # -- the hook API --------------------------------------------------

    def fire(self, name: str) -> bool:
        """True when the named probe fires now (False for absent probes)."""
        with self._lock:
            probe = self._probes.get(name)
            return probe.fire() if probe is not None else False

    def arg(self, name: str, default: float) -> float:
        """The probe's argument (the spec's ``:<float>``), or ``default``."""
        with self._lock:
            probe = self._probes.get(name)
            if probe is None or probe.arg is None:
                return default
            return probe.arg

    def sleep(self, name: str, default_s: float) -> bool:
        """Sleep the probe's argument when it fires; returns whether it did."""
        if not self.fire(name):
            return False
        time.sleep(self.arg(name, default_s))
        return True

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """Per-probe check/fire counters (feeds ``/metrics``)."""
        with self._lock:
            return {
                name: {"rate": probe.rate, "checks": probe.checks,
                       "fires": probe.fires}
                for name, probe in sorted(self._probes.items())
            }

    def spec(self) -> str:
        """A parseable spec round trip (for handing to subprocesses)."""
        terms = []
        with self._lock:
            for name, probe in self._probes.items():
                term = f"{name}={probe.rate:g}"
                if probe.arg is not None:
                    term += f":{probe.arg:g}"
                if probe.times is not None:
                    term += f":x{probe.times}"
                terms.append(term)
        return ",".join(terms)

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec()!r}, seed={self.seed})"


class NoFaults:
    """The production default: every hook is an immediate no.

    ``enabled`` is False so hot paths can skip building probe arguments
    entirely; ``fire``/``sleep`` always answer False without locking.
    """

    enabled = False
    __slots__ = ()

    def fire(self, name: str) -> bool:
        return False

    def arg(self, name: str, default: float) -> float:
        return default

    def sleep(self, name: str, default_s: float) -> bool:
        return False

    def stats(self) -> dict:
        return {}

    def spec(self) -> str:
        return ""

    def __contains__(self, name: str) -> bool:
        return False


#: The shared no-op plan (use this, don't instantiate your own).
NO_FAULTS = NoFaults()

_active: FaultPlan | NoFaults | None = None
_active_lock = threading.Lock()


def active() -> "FaultPlan | NoFaults":
    """The process-wide fault plan.

    Resolved once, lazily: an installed plan wins; otherwise the
    ``REPRO_FAULTS`` environment variable (seeded by
    ``REPRO_FAULTS_SEED``) is parsed; otherwise :data:`NO_FAULTS`.
    Forked pool workers inherit the parent's resolved plan; spawned ones
    re-resolve from the environment.
    """
    global _active
    plan = _active
    if plan is not None:
        return plan
    with _active_lock:
        if _active is None:
            spec = os.environ.get(ENV_SPEC, "")
            if spec:
                seed = int(os.environ.get(ENV_SEED, "0") or 0)
                _active = FaultPlan.parse(spec, seed=seed)
            else:
                _active = NO_FAULTS
        return _active


def install(plan: "FaultPlan | NoFaults") -> "FaultPlan | NoFaults":
    """Make ``plan`` the process-wide active plan (returns it)."""
    global _active
    with _active_lock:
        _active = plan
    return plan


def reset() -> None:
    """Forget the active plan; the next :func:`active` re-resolves."""
    global _active
    with _active_lock:
        _active = None
