"""Sweep report documents: build, validate, and render to Markdown.

Mirrors :mod:`repro.report.sta` for the incremental what-if sweep
pipeline: a :class:`~repro.sweep.SweepResult` (plus an optional trace
record) turns into one versioned JSON document, a hand-rolled structural
validator guards the schema, and a Markdown renderer produces the
human-facing table.  The document is what ``POST /sweep`` returns and
what the cache stores bit for bit.
"""

from __future__ import annotations

from repro.trace import iter_events, phase_seconds

#: Version tag stamped into (and required from) every sweep report.
SWEEP_REPORT_SCHEMA = "repro.sweep-report/1"

_NUMBER = (int, float)

_POINT_MODES = ("base", "first_order", "rank1", "exact")


def build_sweep_report(result, trace: dict | None = None,
                       parse_s: float | None = None,
                       title: str | None = None,
                       include_trace: bool = False) -> dict:
    """Assemble the versioned sweep report document.

    Parameters
    ----------
    result:
        The :class:`~repro.sweep.SweepResult` to serialise.
    trace:
        Optional :meth:`~repro.trace.Tracer.to_record` output of the
        tracer passed to the engine; span times and the per-point
        ``sweep_point`` / ``sweep_fallback`` events are folded in.
    parse_s:
        Optional front-end parse time, merged into the phase table.
    title:
        Optional human title.
    include_trace:
        Embed the full trace record (can be large).
    """
    from repro import __version__

    phases = phase_seconds(trace)
    if trace is not None:
        root_name = trace.get("name")
        if root_name in phases:
            phases["other"] = phases.pop(root_name)
    if parse_s is not None:
        phases["parse"] = float(parse_s)

    payload = result.to_payload()
    document = {
        "schema": SWEEP_REPORT_SCHEMA,
        "generator": f"repro {__version__}",
        "kind": "sweep",
        "node": payload["node"],
        "base": payload["base"],
        "points": payload["points"],
        "stats": payload["stats"],
        "incremental_points": int(result.incremental_points),
        "phase_seconds": {name: float(s) for name, s in phases.items()},
        "events": [
            {"span": span_name, **event}
            for span_name, event in iter_events(trace)
        ],
        "traced": trace is not None,
    }
    if title:
        document["title"] = title
    if include_trace:
        document["trace"] = trace
    return document


def validate_sweep_report(document) -> dict:
    """Check a sweep report against :data:`SWEEP_REPORT_SCHEMA`.

    Raises :class:`ValueError` listing every structural problem found;
    returns the document unchanged when valid.
    """
    problems: list[str] = []

    def need(condition, path, message):
        if not condition:
            problems.append(f"{path}: {message}")
        return condition

    def number(container, path, name):
        v = container.get(name)
        need(isinstance(v, _NUMBER) and not isinstance(v, bool),
             f"{path}.{name}", "must be a number")

    def point(container, path, *, base=False):
        if not need(isinstance(container, dict), path, "must be an object"):
            return
        need(isinstance(container.get("element"), str), f"{path}.element",
             "must be a string")
        need(isinstance(container.get("label"), str), f"{path}.label",
             "must be a string")
        allowed = ("base",) if base else _POINT_MODES[1:]
        need(container.get("mode") in allowed, f"{path}.mode",
             f"must be one of {', '.join(allowed)}")
        for field in ("value", "dc", "m1", "elmore_delay"):
            number(container, path, field)
        estimate = container.get("error_estimate")
        need(estimate is None
             or (isinstance(estimate, _NUMBER) and not isinstance(estimate, bool)),
             f"{path}.error_estimate", "must be a number or null")
        need(isinstance(container.get("fallback"), bool), f"{path}.fallback",
             "must be a bool")

    if not need(isinstance(document, dict), "$", "report must be an object"):
        raise ValueError("invalid sweep report:\n  " + "\n  ".join(problems))
    need(document.get("schema") == SWEEP_REPORT_SCHEMA, "$.schema",
         f"must be {SWEEP_REPORT_SCHEMA!r}, got {document.get('schema')!r}")
    need(isinstance(document.get("generator"), str), "$.generator",
         "must be a string")
    need(document.get("kind") == "sweep", "$.kind", "must be 'sweep'")
    need(isinstance(document.get("node"), str) and document.get("node"),
         "$.node", "must be a non-empty string")
    need(isinstance(document.get("traced"), bool), "$.traced",
         "must be a bool")
    point(document.get("base"), "$.base", base=True)

    points = document.get("points")
    if need(isinstance(points, list) and points, "$.points",
            "must be a non-empty list"):
        for index, entry in enumerate(points):
            point(entry, f"$.points[{index}]")

    stats = document.get("stats")
    if need(isinstance(stats, dict), "$.stats", "must be an object"):
        for field in ("first_order", "rank1", "exact", "fallbacks",
                      "factorizations"):
            value = stats.get(field)
            need(isinstance(value, int) and not isinstance(value, bool)
                 and value >= 0,
                 f"$.stats.{field}", "must be a non-negative int")
        if isinstance(points, list) and all(
                isinstance(field, int) for field in
                (stats.get("first_order"), stats.get("rank1"),
                 stats.get("exact"))):
            need(stats["first_order"] + stats["rank1"] + stats["exact"]
                 == len(points),
                 "$.stats", "tier counts must sum to the point count")
    incremental = document.get("incremental_points")
    need(isinstance(incremental, int) and not isinstance(incremental, bool)
         and incremental >= 0,
         "$.incremental_points", "must be a non-negative int")

    phases = document.get("phase_seconds")
    if need(isinstance(phases, dict), "$.phase_seconds", "must be an object"):
        for name, seconds in phases.items():
            need(isinstance(seconds, _NUMBER) and not isinstance(seconds, bool),
                 f"$.phase_seconds[{name!r}]", "must be a number")
    need(isinstance(document.get("events"), list), "$.events",
         "must be a list")

    if problems:
        raise ValueError("invalid sweep report:\n  " + "\n  ".join(problems))
    return document


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------


def _seconds(value) -> str:
    return f"{value * 1e12:.3f} ps"


def render_sweep_markdown(document: dict) -> str:
    """Human-facing Markdown for a validated sweep report."""
    lines: list[str] = []
    title = document.get("title") or f"Sweep report — node {document['node']}"
    lines.append(f"# {title}")
    lines.append("")
    base = document["base"]
    stats = document["stats"]
    lines.append(f"- generator: `{document['generator']}`")
    lines.append(f"- base Elmore delay: {_seconds(base['elmore_delay'])} "
                 f"(dc {base['dc']:g})")
    lines.append(f"- points: {len(document['points'])} "
                 f"({document['incremental_points']} incremental, "
                 f"{stats['factorizations']} extra factorizations, "
                 f"{stats['fallbacks']} fallbacks)")
    lines.append(f"- tier mix: first_order {stats['first_order']}, "
                 f"rank1 {stats['rank1']}, exact {stats['exact']}")
    lines.append("")
    lines.append("| element | value | mode | dc | Elmore delay | est. error |")
    lines.append("|---|---|---|---|---|---|")
    for entry in document["points"]:
        estimate = entry["error_estimate"]
        mode = entry["mode"] + (" (fallback)" if entry["fallback"] else "")
        lines.append(
            f"| `{entry['element']}` | {entry['value']:g} | {mode} "
            f"| {entry['dc']:g} | {_seconds(entry['elmore_delay'])} "
            f"| {'—' if estimate is None else f'{estimate:.3g}'} |")
    lines.append("")
    phases = document.get("phase_seconds") or {}
    if phases:
        lines.append("## Where the time went")
        lines.append("")
        lines.append("| phase | seconds |")
        lines.append("|---|---|")
        for name in sorted(phases, key=lambda n: -phases[n]):
            lines.append(f"| {name} | {phases[name]:.6f} |")
        lines.append("")
    return "\n".join(lines)
