"""Run-report document builder + schema validator.

:func:`build_report` turns a list of
:class:`~repro.engine.batch.BatchResult`\\ s (usually from
``BatchEngine.run(..., trace=True)``) into one machine-readable document
— plain dicts/lists/numbers, ready for ``json.dump`` — that captures
everything the paper's economic argument needs per response: where the
wall time went (per-phase breakdown from the trace spans), what the
solver did (counter totals, achieved batching factor), which poles and
residues each response ended up with, and the full order-escalation
trajectory with its error estimates.

The document shape is versioned by :data:`REPORT_SCHEMA` and enforced by
:func:`validate_report` (a hand-rolled structural check — no external
schema library).  The field-by-field description lives in
``docs/observability.md``.
"""

from __future__ import annotations

from repro.errors import ApproximationError, ReproError
from repro.trace import iter_events, phase_seconds

#: Version tag stamped into (and required from) every report document.
REPORT_SCHEMA = "repro.run-report/1"

#: Phases the Markdown renderer orders first; anything else (custom span
#: names, the root's own time as ``other``) follows alphabetically.
PHASE_ORDER = (
    "parse", "mna_assembly", "lu", "operating_points", "moment_recursion",
    "response", "pade_escalation", "pade", "residues", "waveform", "other",
)


def _complex_record(value) -> dict:
    return {"re": float(value.real), "im": float(value.imag)}


def response_record(node: str, response, threshold: float | None = None) -> dict:
    """One response's report entry: order, accuracy, poles/residues, delays.

    ``response`` is an :class:`~repro.core.driver.AweResponse`.  Delay and
    final-value fields degrade to ``None`` where the quantity does not
    exist (a victim node with no transition, an unstable fixed-order fit).
    """
    estimate = response.error_estimate
    record: dict = {
        "node": node,
        "order": int(response.order),
        "error_estimate": None if estimate is None else float(estimate),
        "poles": [_complex_record(p) for p in response.poles],
        "terms": [
            {
                "model": model.name,
                "t0_s": float(model.t0),
                "pole": _complex_record(pole),
                "power": int(power),
                "residue": _complex_record(residue),
            }
            for model in response.waveform.models
            for pole, power, residue in model.terms
        ],
        "components": [
            {
                "label": component.label,
                "order": int(component.order),
                "error_estimate": (
                    None if component.error_estimate is None
                    else float(component.error_estimate)
                ),
                "escalations": list(component.escalations),
            }
            for component in response.components
        ],
    }
    try:
        record["final_value"] = float(response.waveform.final_value())
    except ApproximationError:
        record["final_value"] = None
    for name, compute in (
        ("delay_50_s", response.delay_50),
        ("delay_threshold_s",
         (lambda: response.delay(threshold)) if threshold is not None else None),
    ):
        if compute is None:
            continue
        try:
            value = compute()
            record[name] = None if value != value else float(value)  # NaN → None
        except (ReproError, ValueError):
            # "never crosses the threshold" and friends: the delay simply
            # does not exist for this response.
            record[name] = None
    return record


def job_record(result, parse_s: float | None = None,
               threshold: float | None = None,
               include_trace: bool = False) -> dict:
    """One :class:`~repro.engine.batch.BatchResult` as a report entry."""
    phases = phase_seconds(result.trace)
    if result.trace is not None:
        # The root span's own (exclusive) time is inter-phase overhead.
        root_name = result.trace.get("name")
        if root_name in phases:
            phases["other"] = phases.pop(root_name)
    if parse_s is not None:
        phases["parse"] = float(parse_s)
    record: dict = {
        "index": int(result.index),
        "label": result.label,
        "ok": result.ok,
        "error": result.error,
        "error_type": result.error_type,
        "elapsed_s": float(result.elapsed_s),
        "responses": [
            response_record(node, response, threshold)
            for node, response in (result.responses or {}).items()
        ],
        "phase_seconds": {name: float(s) for name, s in phases.items()},
        "events": [
            {"span": span_name, **event}
            for span_name, event in iter_events(result.trace)
        ],
        "traced": result.trace is not None,
    }
    if include_trace:
        record["trace"] = result.trace
    return record


def build_report(
    results,
    engine_stats: dict | None = None,
    parse_seconds: dict | None = None,
    threshold: float | None = None,
    title: str | None = None,
    include_traces: bool = False,
) -> dict:
    """Assemble the versioned run-report document.

    Parameters
    ----------
    results:
        Ordered :class:`~repro.engine.batch.BatchResult` list (one job's
        worth is fine — ``kind`` becomes ``"analysis"`` for a single job,
        ``"batch"`` otherwise).
    engine_stats:
        :meth:`BatchEngine.stats` output, recorded under
        ``totals.counters`` and used for the achieved batching factor.
    parse_seconds:
        Optional ``{job label: seconds}`` of front-end parse time (the
        CLI measures it; the engine never sees the deck file), merged
        into each job's phase table as the ``parse`` phase.
    threshold:
        Optional voltage for an extra per-response threshold delay.
    include_traces:
        Embed each job's full trace record (can be large).
    """
    from repro import __version__

    results = list(results)
    parse_seconds = parse_seconds or {}
    jobs = [
        job_record(result, parse_seconds.get(result.label), threshold,
                   include_traces)
        for result in results
    ]

    phase_totals: dict = {}
    for job in jobs:
        for name, seconds in job["phase_seconds"].items():
            phase_totals[name] = phase_totals.get(name, 0.0) + seconds

    counters = dict(engine_stats or {})
    solves = counters.get("triangular_solves", 0)
    batching_factor = (
        counters["solve_columns"] / solves
        if solves and "solve_columns" in counters else None
    )
    escalation_count = sum(
        1 for job in jobs for event in job["events"]
        if event["name"] == "order_escalation"
    )

    document = {
        "schema": REPORT_SCHEMA,
        "generator": f"repro {__version__}",
        "kind": "analysis" if len(jobs) == 1 else "batch",
        "jobs": jobs,
        "totals": {
            "jobs": len(jobs),
            "jobs_failed": sum(1 for job in jobs if not job["ok"]),
            "wall_time_s": sum(job["elapsed_s"] for job in jobs),
            "phase_seconds": phase_totals,
            "counters": counters,
            "batching_factor": batching_factor,
            "order_escalations_traced": escalation_count,
        },
    }
    if title:
        document["title"] = title
    return document


# ----------------------------------------------------------------------
# Structural validation (the "schema check")
# ----------------------------------------------------------------------

_NUMBER = (int, float)


def validate_report(document) -> dict:
    """Check a run-report document against :data:`REPORT_SCHEMA`.

    Raises :class:`ValueError` listing *every* structural problem found;
    returns the document unchanged when it is valid.  This is the check
    the CLI runs before writing and the tests run on what it wrote.
    """
    problems: list[str] = []

    def need(condition, path, message):
        if not condition:
            problems.append(f"{path}: {message}")
        return condition

    def number_or_none(container, path, name):
        v = container.get(name)
        need(v is None or (isinstance(v, _NUMBER) and not isinstance(v, bool)),
             f"{path}.{name}", "must be a number or null")

    if not need(isinstance(document, dict), "$", "report must be an object"):
        raise ValueError("invalid run report:\n  " + "\n  ".join(problems))
    need(document.get("schema") == REPORT_SCHEMA, "$.schema",
         f"must be {REPORT_SCHEMA!r}, got {document.get('schema')!r}")
    need(isinstance(document.get("generator"), str), "$.generator",
         "must be a string")
    need(document.get("kind") in ("analysis", "batch"), "$.kind",
         "must be 'analysis' or 'batch'")

    jobs = document.get("jobs")
    if need(isinstance(jobs, list) and jobs, "$.jobs", "must be a non-empty list"):
        for j, job in enumerate(jobs):
            path = f"$.jobs[{j}]"
            if not need(isinstance(job, dict), path, "must be an object"):
                continue
            need(isinstance(job.get("index"), int), f"{path}.index", "must be an int")
            need(isinstance(job.get("label"), str), f"{path}.label", "must be a string")
            need(isinstance(job.get("ok"), bool), f"{path}.ok", "must be a bool")
            need(isinstance(job.get("elapsed_s"), _NUMBER), f"{path}.elapsed_s",
                 "must be a number")
            need(isinstance(job.get("traced"), bool), f"{path}.traced", "must be a bool")
            responses = job.get("responses")
            if not need(isinstance(responses, list), f"{path}.responses",
                        "must be a list"):
                responses = []
            if job.get("ok"):
                need(bool(responses), f"{path}.responses",
                     "a successful job must carry at least one response")
                need(job.get("error") is None, f"{path}.error",
                     "must be null on success")
            else:
                need(isinstance(job.get("error"), str), f"{path}.error",
                     "must describe the failure")
                need(isinstance(job.get("error_type"), str), f"{path}.error_type",
                     "must name the exception type")
            for r, response in enumerate(responses):
                rpath = f"{path}.responses[{r}]"
                if not need(isinstance(response, dict), rpath, "must be an object"):
                    continue
                need(isinstance(response.get("node"), str), f"{rpath}.node",
                     "must be a string")
                need(isinstance(response.get("order"), int)
                     and response.get("order", -1) >= 0,
                     f"{rpath}.order", "must be a non-negative int")
                number_or_none(response, rpath, "error_estimate")
                number_or_none(response, rpath, "final_value")
                for listname, fields in (("poles", ("re", "im")),
                                         ("terms", ("pole", "power", "residue"))):
                    items = response.get(listname)
                    if not need(isinstance(items, list), f"{rpath}.{listname}",
                                "must be a list"):
                        continue
                    for i, item in enumerate(items):
                        need(isinstance(item, dict)
                             and all(field in item for field in fields),
                             f"{rpath}.{listname}[{i}]",
                             f"must be an object with {fields}")
                need(isinstance(response.get("components"), list),
                     f"{rpath}.components", "must be a list")
            phases = job.get("phase_seconds")
            if need(isinstance(phases, dict), f"{path}.phase_seconds",
                    "must be an object"):
                for name, seconds in phases.items():
                    need(isinstance(seconds, _NUMBER) and seconds >= 0.0,
                         f"{path}.phase_seconds[{name!r}]",
                         "must be a non-negative number")
            events = job.get("events")
            if need(isinstance(events, list), f"{path}.events", "must be a list"):
                for e, event in enumerate(events):
                    epath = f"{path}.events[{e}]"
                    if not need(isinstance(event, dict), epath, "must be an object"):
                        continue
                    need(isinstance(event.get("name"), str), f"{epath}.name",
                         "must be a string")
                    need(isinstance(event.get("span"), str), f"{epath}.span",
                         "must name the owning span")
                    need(isinstance(event.get("t_s"), _NUMBER), f"{epath}.t_s",
                         "must be a number")
                    need(isinstance(event.get("data"), dict), f"{epath}.data",
                         "must be an object")
                    if event.get("name") == "order_escalation":
                        data = event.get("data") or {}
                        need("order" in data and "reason" in data
                             and "error_estimate" in data,
                             f"{epath}.data",
                             "order_escalation needs order/reason/error_estimate")

    totals = document.get("totals")
    if need(isinstance(totals, dict), "$.totals", "must be an object"):
        need(totals.get("jobs") == len(jobs or []), "$.totals.jobs",
             "must equal the number of job entries")
        need(isinstance(totals.get("jobs_failed"), int), "$.totals.jobs_failed",
             "must be an int")
        need(isinstance(totals.get("phase_seconds"), dict),
             "$.totals.phase_seconds", "must be an object")
        need(isinstance(totals.get("counters"), dict), "$.totals.counters",
             "must be an object")
        number_or_none(totals, "$.totals", "batching_factor")

    if problems:
        raise ValueError("invalid run report:\n  " + "\n  ".join(problems))
    return document
