"""STA report documents: build, validate, and render to Markdown.

Mirrors :mod:`repro.report.build` for the STA pipeline: an
:class:`~repro.sta.engine.StaRun` (plus an optional trace record) turns
into one JSON-ready document, a hand-rolled structural validator guards
the schema, and a Markdown renderer produces the human-facing tables.
Unconstrained quantities (``±inf`` arrivals/slacks — endpoints no launch
point reaches) serialise as ``null``.
"""

from __future__ import annotations

import math

from repro.trace import iter_events, phase_seconds

#: Version tag stamped into (and required from) every STA report.
STA_REPORT_SCHEMA = "repro.sta-report/1"

_NUMBER = (int, float)


def _finite_or_none(value: float) -> float | None:
    return None if not math.isfinite(value) else float(value)


def _path_record(rank: int, path) -> dict:
    return {
        "rank": rank,
        "endpoint": path.endpoint,
        "start": path.start,
        "slack_s": float(path.slack),
        "arrival_s": float(path.arrival),
        "required_s": float(path.required),
        "nodes": list(path.nodes),
        "edges": [
            {"src": edge.src, "dst": edge.dst, "kind": edge.kind,
             "label": edge.label, "delay_s": float(edge.delay)}
            for edge in path.edges
        ],
    }


def _corner_record(analysis) -> dict:
    corner = analysis.corner
    result = analysis.result
    worst = analysis.worst_slack
    return {
        "name": corner.name,
        "factors": {"wire_r": corner.wire_r, "wire_c": corner.wire_c,
                    "cell": corner.cell},
        "nodes": analysis.built.graph.node_count,
        "edges": analysis.built.graph.edge_count,
        "worst_slack_s": None if worst is None else float(worst),
        "endpoints": [
            {
                "endpoint": endpoint,
                "arrival_s": _finite_or_none(result.arrival[endpoint]),
                "required_s": float(result.required_time[endpoint]),
                "slack_s": _finite_or_none(result.slack[endpoint]),
            }
            for endpoint in result.endpoints
        ],
        "paths": [_path_record(rank, path)
                  for rank, path in enumerate(analysis.paths, start=1)],
    }


def build_sta_report(run, trace: dict | None = None,
                     parse_s: float | None = None,
                     title: str | None = None,
                     include_trace: bool = False) -> dict:
    """Assemble the versioned STA report document.

    Parameters
    ----------
    run:
        The :class:`~repro.sta.engine.StaRun` to serialise.
    trace:
        Optional :meth:`~repro.trace.Tracer.to_record` output of the
        tracer passed to :func:`~repro.sta.engine.run_sta`; its span
        times and events are folded in like the run-report does.
    parse_s:
        Optional front-end parse time, merged into the phase table.
    title:
        Optional human title.
    include_trace:
        Embed the full trace record (can be large).
    """
    from repro import __version__

    phases = phase_seconds(trace)
    if trace is not None:
        root_name = trace.get("name")
        if root_name in phases:
            phases["other"] = phases.pop(root_name)
    if parse_s is not None:
        phases["parse"] = float(parse_s)

    worst = run.worst_slack
    document = {
        "schema": STA_REPORT_SCHEMA,
        "generator": f"repro {__version__}",
        "kind": "sta",
        "design": run.design.name,
        "interconnect": run.interconnect,
        "k": int(run.k),
        "worst_slack_s": None if worst is None else float(worst),
        "corners": [_corner_record(analysis) for analysis in run.corners],
        "phase_seconds": {name: float(s) for name, s in phases.items()},
        "events": [
            {"span": span_name, **event}
            for span_name, event in iter_events(trace)
        ],
        "traced": trace is not None,
    }
    if title:
        document["title"] = title
    if include_trace:
        document["trace"] = trace
    return document


def validate_sta_report(document) -> dict:
    """Check an STA report against :data:`STA_REPORT_SCHEMA`.

    Raises :class:`ValueError` listing every structural problem found;
    returns the document unchanged when valid.
    """
    problems: list[str] = []

    def need(condition, path, message):
        if not condition:
            problems.append(f"{path}: {message}")
        return condition

    def number_or_none(container, path, name):
        v = container.get(name)
        need(v is None or (isinstance(v, _NUMBER) and not isinstance(v, bool)),
             f"{path}.{name}", "must be a number or null")

    def number(container, path, name):
        v = container.get(name)
        need(isinstance(v, _NUMBER) and not isinstance(v, bool),
             f"{path}.{name}", "must be a number")

    if not need(isinstance(document, dict), "$", "report must be an object"):
        raise ValueError("invalid STA report:\n  " + "\n  ".join(problems))
    need(document.get("schema") == STA_REPORT_SCHEMA, "$.schema",
         f"must be {STA_REPORT_SCHEMA!r}, got {document.get('schema')!r}")
    need(isinstance(document.get("generator"), str), "$.generator",
         "must be a string")
    need(document.get("kind") == "sta", "$.kind", "must be 'sta'")
    need(isinstance(document.get("design"), str), "$.design",
         "must be a string")
    need(document.get("interconnect") in ("awe", "elmore"), "$.interconnect",
         "must be 'awe' or 'elmore'")
    need(isinstance(document.get("k"), int)
         and not isinstance(document.get("k"), bool)
         and document.get("k") >= 0, "$.k", "must be a non-negative int")
    number_or_none(document, "$", "worst_slack_s")
    need(isinstance(document.get("traced"), bool), "$.traced",
         "must be a bool")
    phases = document.get("phase_seconds")
    if need(isinstance(phases, dict), "$.phase_seconds", "must be an object"):
        for name, seconds in phases.items():
            need(isinstance(seconds, _NUMBER) and not isinstance(seconds, bool),
                 f"$.phase_seconds[{name!r}]", "must be a number")
    need(isinstance(document.get("events"), list), "$.events",
         "must be a list")

    corners = document.get("corners")
    if need(isinstance(corners, list) and corners, "$.corners",
            "must be a non-empty list"):
        for c, corner in enumerate(corners):
            path = f"$.corners[{c}]"
            if not need(isinstance(corner, dict), path, "must be an object"):
                continue
            need(isinstance(corner.get("name"), str) and corner.get("name"),
                 f"{path}.name", "must be a non-empty string")
            factors = corner.get("factors")
            if need(isinstance(factors, dict), f"{path}.factors",
                    "must be an object"):
                for field in ("wire_r", "wire_c", "cell"):
                    number(factors, f"{path}.factors", field)
            for field in ("nodes", "edges"):
                need(isinstance(corner.get(field), int),
                     f"{path}.{field}", "must be an int")
            number_or_none(corner, path, "worst_slack_s")
            endpoints = corner.get("endpoints")
            if need(isinstance(endpoints, list) and endpoints,
                    f"{path}.endpoints", "must be a non-empty list"):
                for e, endpoint in enumerate(endpoints):
                    epath = f"{path}.endpoints[{e}]"
                    if not need(isinstance(endpoint, dict), epath,
                                "must be an object"):
                        continue
                    need(isinstance(endpoint.get("endpoint"), str),
                         f"{epath}.endpoint", "must be a string")
                    number_or_none(endpoint, epath, "arrival_s")
                    number(endpoint, epath, "required_s")
                    number_or_none(endpoint, epath, "slack_s")
            paths = corner.get("paths")
            if not need(isinstance(paths, list), f"{path}.paths",
                        "must be a list"):
                continue
            for p, entry in enumerate(paths):
                ppath = f"{path}.paths[{p}]"
                if not need(isinstance(entry, dict), ppath,
                            "must be an object"):
                    continue
                need(entry.get("rank") == p + 1, f"{ppath}.rank",
                     f"must be {p + 1} (1-based, dense)")
                for field in ("endpoint", "start"):
                    need(isinstance(entry.get(field), str), f"{ppath}.{field}",
                         "must be a string")
                for field in ("slack_s", "arrival_s", "required_s"):
                    number(entry, ppath, field)
                nodes = entry.get("nodes")
                need(isinstance(nodes, list) and len(nodes) >= 1
                     and all(isinstance(n, str) for n in nodes),
                     f"{ppath}.nodes", "must be a non-empty string list")
                edges = entry.get("edges")
                if need(isinstance(edges, list), f"{ppath}.edges",
                        "must be a list"):
                    need(isinstance(nodes, list)
                         and len(edges) == max(0, len(nodes) - 1),
                         f"{ppath}.edges",
                         "must have exactly len(nodes) - 1 entries")
                    for g, edge in enumerate(edges):
                        gpath = f"{ppath}.edges[{g}]"
                        if not need(isinstance(edge, dict), gpath,
                                    "must be an object"):
                            continue
                        for field in ("src", "dst", "kind", "label"):
                            need(isinstance(edge.get(field), str),
                                 f"{gpath}.{field}", "must be a string")
                        number(edge, gpath, "delay_s")

    if problems:
        raise ValueError("invalid STA report:\n  " + "\n  ".join(problems))
    return document


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------


def _seconds(value) -> str:
    if value is None:
        return "—"
    return f"{value * 1e12:.3f} ps"


def render_sta_markdown(document: dict) -> str:
    """Human-facing Markdown for a validated STA report."""
    lines: list[str] = []
    title = document.get("title") or f"STA report — {document['design']}"
    lines.append(f"# {title}")
    lines.append("")
    lines.append(f"- generator: `{document['generator']}`")
    lines.append(f"- interconnect: `{document['interconnect']}`")
    lines.append(f"- paths requested per corner: {document['k']}")
    lines.append(f"- worst slack: {_seconds(document['worst_slack_s'])}")
    lines.append("")
    for corner in document["corners"]:
        factors = corner["factors"]
        lines.append(
            f"## Corner `{corner['name']}` "
            f"(wire_r ×{factors['wire_r']:g}, wire_c ×{factors['wire_c']:g}, "
            f"cell ×{factors['cell']:g})")
        lines.append("")
        lines.append(f"Timing graph: {corner['nodes']} nodes, "
                     f"{corner['edges']} edges. Worst slack: "
                     f"{_seconds(corner['worst_slack_s'])}.")
        lines.append("")
        lines.append("| endpoint | arrival | required | slack |")
        lines.append("|---|---|---|---|")
        for endpoint in corner["endpoints"]:
            lines.append(
                f"| `{endpoint['endpoint']}` "
                f"| {_seconds(endpoint['arrival_s'])} "
                f"| {_seconds(endpoint['required_s'])} "
                f"| {_seconds(endpoint['slack_s'])} |")
        lines.append("")
        if corner["paths"]:
            lines.append("| # | slack | endpoint | path |")
            lines.append("|---|---|---|---|")
            for entry in corner["paths"]:
                chain = " → ".join(f"`{n}`" for n in entry["nodes"])
                lines.append(
                    f"| {entry['rank']} | {_seconds(entry['slack_s'])} "
                    f"| `{entry['endpoint']}` | {chain} |")
        else:
            lines.append("No reportable paths (no endpoint is reached "
                         "by any launch point).")
        lines.append("")
    phases = document.get("phase_seconds") or {}
    if phases:
        lines.append("## Where the time went")
        lines.append("")
        lines.append("| phase | seconds |")
        lines.append("|---|---|")
        for name in sorted(phases, key=lambda n: -phases[n]):
            lines.append(f"| {name} | {phases[name]:.6f} |")
        lines.append("")
    return "\n".join(lines)
