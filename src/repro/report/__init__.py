"""Run reports: traced analyses rendered to JSON documents and Markdown.

The pipeline is ``BatchEngine.run(jobs, trace=True)`` →
:func:`build_report` → :func:`validate_report` → ``json.dump`` and/or
:func:`render_markdown`; ``python -m repro report`` drives the same
functions from the command line.  The document schema is described in
``docs/observability.md``.
"""

from repro.report.build import (
    PHASE_ORDER,
    REPORT_SCHEMA,
    build_report,
    job_record,
    response_record,
    validate_report,
)
from repro.report.render import render_markdown
from repro.report.sta import (
    STA_REPORT_SCHEMA,
    build_sta_report,
    render_sta_markdown,
    validate_sta_report,
)
from repro.report.sweep import (
    SWEEP_REPORT_SCHEMA,
    build_sweep_report,
    render_sweep_markdown,
    validate_sweep_report,
)

__all__ = [
    "PHASE_ORDER",
    "REPORT_SCHEMA",
    "STA_REPORT_SCHEMA",
    "SWEEP_REPORT_SCHEMA",
    "build_report",
    "build_sta_report",
    "build_sweep_report",
    "job_record",
    "render_markdown",
    "render_sta_markdown",
    "render_sweep_markdown",
    "response_record",
    "validate_report",
    "validate_sta_report",
    "validate_sweep_report",
]
