"""Sampled waveforms and the delay/error metrics computed on them.

Timing analysis ultimately asks questions *of waveforms*: when does the
output cross 50 % of its swing (the classic delay definition, paper
Fig. 2), when does it cross a logic threshold (Sec. 5.3 uses 4.0 V), how
large is the overshoot of an underdamped RLC response (Fig. 26), and how
far apart are two waveforms in the L2 sense (the accuracy measure of
Sec. 3.4, eq. 35).  :class:`Waveform` is the shared currency between the
exact reference simulator, the trapezoidal simulator, and the evaluated
AWE models.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class Waveform:
    """A scalar signal sampled on a strictly increasing time grid."""

    times: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self):
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.ndim != 1 or values.shape != times.shape:
            raise AnalysisError("waveform times and values must be equal-length 1-D arrays")
        if len(times) < 2:
            raise AnalysisError("a waveform needs at least two samples")
        if not np.all(np.diff(times) > 0):
            raise AnalysisError("waveform time grid must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    # -- basic accessors -------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    @property
    def initial(self) -> float:
        return float(self.values[0])

    @property
    def final(self) -> float:
        return float(self.values[-1])

    def __call__(self, t) -> np.ndarray:
        """Linear interpolation (clamped at the ends)."""
        return np.interp(np.asarray(t, dtype=float), self.times, self.values)

    # -- algebra ----------------------------------------------------------

    def resampled(self, times: np.ndarray) -> "Waveform":
        """This waveform linearly interpolated onto a new grid."""
        times = np.asarray(times, dtype=float)
        return Waveform(times, self(times), self.name)

    def _binary(self, other, op, name: str) -> "Waveform":
        if isinstance(other, Waveform):
            other_values = other(self.times)
        else:
            other_values = np.asarray(other, dtype=float)
        return Waveform(self.times, op(self.values, other_values), name)

    def __add__(self, other):
        return self._binary(other, np.add, self.name)

    def __sub__(self, other):
        return self._binary(other, np.subtract, self.name)

    def __mul__(self, scalar):
        return Waveform(self.times, self.values * float(scalar), self.name)

    __rmul__ = __mul__

    def __neg__(self):
        return Waveform(self.times, -self.values, self.name)

    def shifted(self, dt: float) -> "Waveform":
        """The same signal delayed by ``dt`` (time axis moved right)."""
        return Waveform(self.times + dt, self.values, self.name)

    def renamed(self, name: str) -> "Waveform":
        return dataclasses.replace(self, name=name)

    # -- timing metrics ----------------------------------------------------

    def crossings(self, level: float, rising: bool | None = None) -> list[float]:
        """All times at which the waveform crosses ``level``.

        ``rising=True``/``False`` filters by direction; ``None`` keeps both.
        Linear interpolation between samples; exact-on-sample hits count.
        Nonmonotone waveforms (charge sharing, RLC ringing) naturally return
        several crossings.
        """
        v = self.values - level
        crossings: list[float] = []
        for i in range(len(v) - 1):
            a, b = v[i], v[i + 1]
            if a == 0.0:
                direction = b > 0
                if rising is None or rising == direction:
                    crossings.append(float(self.times[i]))
            if (a < 0 < b) or (b < 0 < a):
                t_cross = self.times[i] + (self.times[i + 1] - self.times[i]) * (-a) / (b - a)
                direction = b > a
                if rising is None or rising == direction:
                    crossings.append(float(t_cross))
        if v[-1] == 0.0 and (rising is None):
            crossings.append(float(self.times[-1]))
        return crossings

    def threshold_delay(self, level: float, rising: bool | None = None) -> float:
        """First crossing of ``level`` — the logic-threshold delay of
        Sec. 5.3.  Raises when the waveform never reaches the level."""
        crossings = self.crossings(level, rising)
        if not crossings:
            raise AnalysisError(
                f"waveform {self.name!r} never crosses {level} "
                f"(range {self.values.min():g} .. {self.values.max():g})"
            )
        return crossings[0]

    def delay_50(self, v_start: float | None = None, v_end: float | None = None) -> float:
        """Time to reach 50 % of the transition (paper Fig. 2).

        The swing defaults to initial → final sample values; pass the
        intended levels explicitly for waveforms that have not settled.
        """
        v0 = self.initial if v_start is None else v_start
        v1 = self.final if v_end is None else v_end
        if v0 == v1:
            raise AnalysisError("zero voltage swing; 50% delay undefined")
        return self.threshold_delay(0.5 * (v0 + v1), rising=v1 > v0)

    def rise_time(self, low: float = 0.1, high: float = 0.9) -> float:
        """10–90 % (by default) transition time of the first swing."""
        v0, v1 = self.initial, self.final
        if v0 == v1:
            raise AnalysisError("zero voltage swing; rise time undefined")
        t_low = self.threshold_delay(v0 + low * (v1 - v0), rising=v1 > v0)
        t_high = self.threshold_delay(v0 + high * (v1 - v0), rising=v1 > v0)
        return t_high - t_low

    def overshoot(self) -> float:
        """Peak excursion beyond the final value, as a fraction of the
        swing (0 for monotone settling; > 0 for RLC ringing, Fig. 26)."""
        swing = self.final - self.initial
        if swing == 0:
            raise AnalysisError("zero voltage swing; overshoot undefined")
        if swing > 0:
            peak = self.values.max() - self.final
        else:
            peak = self.final - self.values.min()
        return max(0.0, float(peak / abs(swing)))

    def is_monotone(self, tolerance: float = 0.0) -> bool:
        """True when the samples never back up by more than ``tolerance``
        times the total swing (RC trees with equilibrium ICs are monotone;
        charge sharing and inductance break this, paper Sec. III)."""
        diffs = np.diff(self.values)
        swing = abs(self.final - self.initial)
        slack = tolerance * swing
        return bool(np.all(diffs >= -slack) or np.all(diffs <= slack))

    # -- integrals ---------------------------------------------------------

    def integral(self) -> float:
        """Trapezoidal ∫ v dt over the sampled span."""
        return float(np.trapezoid(self.values, self.times))

    def settled_area(self, final: float | None = None) -> float:
        """∫ (v(∞) − v(t)) dt — the quantity whose scaled version is the
        grounded-resistor Elmore delay, paper eq. 3."""
        v_inf = self.final if final is None else final
        return float(np.trapezoid(v_inf - self.values, self.times))


def l2_error(reference: Waveform, approximation: Waveform, relative: bool = True) -> float:
    """The paper's accuracy measure (Sec. 3.4, eqs. 35/37).

    ``sqrt(∫ (ref − approx)² dt)``, normalised — as the paper normalises —
    by ``sqrt(∫ ref_transient² dt)`` where the *transient* is the reference
    minus its final value (the error expressions of eqs. 39–45 integrate
    pure decaying exponentials, i.e. the transient part of the response).
    Both waveforms are compared on the union grid of their samples.
    """
    times = np.union1d(reference.times, approximation.times)
    times = times[(times >= max(reference.t_start, approximation.t_start))
                  & (times <= min(reference.t_stop, approximation.t_stop))]
    if len(times) < 2:
        raise AnalysisError("waveforms do not overlap in time")
    diff = reference(times) - approximation(times)
    error = np.sqrt(np.trapezoid(diff * diff, times))
    if not relative:
        return float(error)
    transient = reference(times) - reference.values[-1]
    norm = np.sqrt(np.trapezoid(transient * transient, times))
    if norm == 0.0:
        raise AnalysisError("reference waveform has no transient; relative error undefined")
    return float(error / norm)


def superpose(waveforms: list[Waveform], times: np.ndarray, name: str = "") -> Waveform:
    """Sum waveforms (each treated as 0 before its own start) on ``times`` —
    the ramp-superposition evaluation of paper Fig. 13."""
    times = np.asarray(times, dtype=float)
    total = np.zeros_like(times)
    for waveform in waveforms:
        contribution = np.where(times >= waveform.t_start, waveform(times), 0.0)
        total += contribution
    return Waveform(times, total, name)
