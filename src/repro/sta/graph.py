"""Timing DAG + arrival/required/slack propagation + top-K critical paths.

The graph vocabulary of every static timing analyzer (the Galois
``TimingEngine`` / csguth ``TimingAnalysis`` shape): nodes are pins and
ports, edges are frozen delays (cell arcs or interconnect), and one
forward topological pass computes worst-case *arrival* times while one
backward pass computes *required* times; ``slack = required - arrival``.

Conventions
-----------
* Arrival defaults to ``-inf`` (a node no launch point reaches never
  constrains anything); required defaults to ``+inf`` (a node that
  reaches no endpoint is unconstrained).  Slack at an unconstrained
  node is therefore ``+inf``.
* A *path* starts at a node with an external arrival time and ends at a
  node with a required time.  Its arrival is the left-to-right float
  sum ``arrivals[start] + d1 + d2 + ...`` and its slack is
  ``required[end] - arrival`` — the exact accumulation order the
  brute-force oracle in the test battery uses, so engine and oracle
  agree bit for bit on every path.

``report_top_k_critical_paths`` enumerates the K smallest-slack paths
*exactly* (ties broken lexicographically on the node sequence) with a
best-first search over path prefixes: each prefix is ranked by an
admissible completion bound precomputed in one reverse topological pass,
so prefixes that cannot reach the top K are never expanded — the
"peeling" scheme of k-shortest-path enumeration specialised to DAGs.
"""

from __future__ import annotations

import dataclasses
import heapq
import math

from repro.errors import StaError

NEG_INF = float("-inf")
POS_INF = float("inf")

#: Defensive bound on best-first heap pops; real designs enumerate a few
#: hundred prefixes per requested path — only a pathological all-ties
#: graph could approach this.
_MAX_POPS = 2_000_000


@dataclasses.dataclass(frozen=True)
class TimingEdge:
    """One frozen delay arc: ``src -> dst`` takes ``delay`` seconds.

    ``kind`` distinguishes cell arcs (``"cell"``) from interconnect
    (``"net"``); ``label`` carries the cell or net name for reports.
    """

    src: str
    dst: str
    delay: float
    kind: str = "edge"
    label: str = ""


@dataclasses.dataclass(frozen=True)
class CriticalPath:
    """One enumerated path, endpoint slack included.

    ``arrival`` is the launch arrival plus every edge delay accumulated
    left to right; ``required`` the endpoint's required time;
    ``slack = required - arrival``.
    """

    nodes: tuple[str, ...]
    edges: tuple[TimingEdge, ...]
    arrival: float
    required: float
    slack: float

    @property
    def start(self) -> str:
        return self.nodes[0]

    @property
    def endpoint(self) -> str:
        return self.nodes[-1]


class TimingGraph:
    """A mutable timing DAG with deterministic iteration order.

    Nodes and edges keep insertion order; duplicate edges, self loops,
    and non-finite or negative delays are rejected up front so every
    later pass can assume a clean graph.
    """

    def __init__(self, name: str = "timing graph"):
        self.name = name
        self._nodes: list[str] = []
        self._succ: dict[str, dict[str, TimingEdge]] = {}
        self._pred: dict[str, dict[str, TimingEdge]] = {}
        self._edge_count = 0
        self._order: tuple[str, ...] | None = None

    # -- construction --------------------------------------------------

    def add_node(self, name: str) -> str:
        if not isinstance(name, str) or not name:
            raise StaError(f"node name must be a non-empty string, got {name!r}")
        if name not in self._succ:
            self._nodes.append(name)
            self._succ[name] = {}
            self._pred[name] = {}
            self._order = None
        return name

    def add_edge(self, src: str, dst: str, delay: float,
                 kind: str = "edge", label: str = "") -> TimingEdge:
        delay = float(delay)
        if not math.isfinite(delay) or delay < 0.0:
            raise StaError(
                f"edge {src!r} -> {dst!r} needs a finite delay >= 0, "
                f"got {delay!r}")
        if src == dst:
            raise StaError(f"self loop on node {src!r}")
        self.add_node(src)
        self.add_node(dst)
        if dst in self._succ[src]:
            raise StaError(f"duplicate edge {src!r} -> {dst!r}")
        edge = TimingEdge(src, dst, delay, kind=kind, label=label)
        self._succ[src][dst] = edge
        self._pred[dst][src] = edge
        self._edge_count += 1
        self._order = None
        return edge

    def copy(self) -> "TimingGraph":
        clone = TimingGraph(self.name)
        for node in self._nodes:
            clone.add_node(node)
        for edge in self.edges():
            clone.add_edge(edge.src, edge.dst, edge.delay,
                           kind=edge.kind, label=edge.label)
        return clone

    # -- inspection ----------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def __contains__(self, name: str) -> bool:
        return name in self._succ

    def has_node(self, name: str) -> bool:
        return name in self._succ

    def out_edges(self, name: str) -> tuple[TimingEdge, ...]:
        return tuple(self._succ[name].values())

    def in_edges(self, name: str) -> tuple[TimingEdge, ...]:
        return tuple(self._pred[name].values())

    def edges(self):
        """Every edge in insertion order of the source node."""
        for node in self._nodes:
            yield from self._succ[node].values()

    # -- topology ------------------------------------------------------

    def topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm, FIFO over insertion order (deterministic).

        Raises :class:`StaError` naming one cycle when the graph has one.
        """
        if self._order is not None:
            return self._order
        indegree = {node: len(self._pred[node]) for node in self._nodes}
        ready = [node for node in self._nodes if indegree[node] == 0]
        order: list[str] = []
        head = 0
        while head < len(ready):
            node = ready[head]
            head += 1
            order.append(node)
            for edge in self._succ[node].values():
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._nodes):
            placed = set(order)
            remaining = {node for node in self._nodes if node not in placed}
            raise StaError(
                "timing graph has a cycle: "
                + " -> ".join(self._find_cycle(remaining)))
        self._order = tuple(order)
        return self._order

    def _find_cycle(self, remaining: set) -> list[str]:
        # Every node Kahn could not place keeps >= 1 predecessor inside
        # the unplaced set; walking those predecessors must repeat a node,
        # and the repeat closes a cycle.
        start = next(node for node in self._nodes if node in remaining)
        seen: dict[str, int] = {}
        trail = [start]
        node = start
        while node not in seen:
            seen[node] = len(trail) - 1
            node = next(src for src in self._pred[node] if src in remaining)
            trail.append(node)
        cycle = trail[seen[node]:]
        return list(reversed(cycle))


@dataclasses.dataclass(frozen=True)
class StaResult:
    """Full analysis of one frozen timing graph.

    ``arrival`` / ``required_time`` / ``slack`` cover every node (with
    the ``-inf`` / ``+inf`` defaults); ``endpoints`` lists the
    constrained endpoints sorted worst slack first (ties by name).
    """

    graph: TimingGraph
    arrivals: dict[str, float]
    required: dict[str, float]
    arrival: dict[str, float]
    required_time: dict[str, float]
    slack: dict[str, float]

    @property
    def endpoints(self) -> tuple[str, ...]:
        return tuple(sorted(self.required, key=lambda e: (self.slack[e], e)))

    @property
    def worst_slack(self) -> float | None:
        """The smallest endpoint slack, or ``None`` when no endpoint is
        reached by any launch point."""
        finite = [self.slack[e] for e in self.required
                  if self.slack[e] != POS_INF]
        return min(finite) if finite else None

    def top_paths(self, k: int) -> list[CriticalPath]:
        return report_top_k_critical_paths(
            self.graph, self.arrivals, self.required, k)


def _check_times(graph: TimingGraph, times: dict, role: str) -> dict[str, float]:
    if not isinstance(times, dict) or not times:
        raise StaError(f"{role} must be a non-empty dict of node -> seconds")
    checked: dict[str, float] = {}
    for name, value in times.items():
        if name not in graph:
            raise StaError(f"{role} names unknown node {name!r}")
        value = float(value)
        if not math.isfinite(value):
            raise StaError(f"{role}[{name!r}] must be finite, got {value!r}")
        checked[name] = value
    return checked


def analyze(graph: TimingGraph, arrivals: dict[str, float],
            required: dict[str, float]) -> StaResult:
    """Forward arrival / backward required / slack over one topological
    order.

    ``arrivals`` are the external launch times (input ports); a node
    with both an external arrival and in-edges takes the max of the two.
    ``required`` are the endpoint constraints; a node with both takes
    the min against what its successors demand.
    """
    arrivals = _check_times(graph, arrivals, "arrivals")
    required = _check_times(graph, required, "required")
    order = graph.topological_order()

    arrival: dict[str, float] = {}
    for node in order:
        best = arrivals.get(node, NEG_INF)
        for edge in graph.in_edges(node):
            candidate = arrival[edge.src] + edge.delay
            if candidate > best:
                best = candidate
        arrival[node] = best

    required_time: dict[str, float] = {}
    for node in reversed(order):
        best = required.get(node, POS_INF)
        for edge in graph.out_edges(node):
            candidate = required_time[edge.dst] - edge.delay
            if candidate < best:
                best = candidate
        required_time[node] = best

    # -inf arrival or +inf required both mean "unconstrained": slack +inf.
    slack = {
        node: (required_time[node] - arrival[node]
               if arrival[node] != NEG_INF and required_time[node] != POS_INF
               else POS_INF)
        for node in order
    }
    return StaResult(graph=graph, arrivals=arrivals, required=required,
                     arrival=arrival, required_time=required_time, slack=slack)


def report_top_k_critical_paths(
    graph: TimingGraph,
    arrivals: dict[str, float],
    required: dict[str, float],
    k: int,
) -> list[CriticalPath]:
    """The ``k`` smallest-slack paths, exactly ordered.

    Emission order is global: ascending slack, ties broken by the full
    node sequence lexicographically — i.e. exactly ``sorted(all_paths,
    key=lambda p: (p.slack, p.nodes))[:k]``, without enumerating
    ``all_paths``.

    The search keeps a heap of path prefixes keyed by
    ``(best-achievable slack, node sequence)``.  The completion bound
    ``f[v]`` — the largest remaining (delay sum − required) from ``v``
    to any endpoint — comes from one reverse topological pass, so a
    popped *complete* entry is guaranteed no better path is still
    hidden inside the heap.
    """
    if int(k) != k or k < 0:
        raise StaError(f"k must be a non-negative integer, got {k!r}")
    k = int(k)
    if k == 0:
        return []
    arrivals = _check_times(graph, arrivals, "arrivals")
    required = _check_times(graph, required, "required")
    order = graph.topological_order()

    # f[v]: the best (largest) completion potential from v — remaining
    # delay sum minus the endpoint's required time.  -inf where no
    # endpoint is reachable.
    f: dict[str, float] = {}
    for node in reversed(order):
        best = -required[node] if node in required else NEG_INF
        for edge in graph.out_edges(node):
            candidate = edge.delay + f[edge.dst]
            if candidate > best:
                best = candidate
        f[node] = best

    # Heap entries: (priority, nodes, flag, arrival, edges).
    # priority = exact slack for complete paths (flag 0), the admissible
    # bound -(g + f[v]) for prefixes (flag 1).  (priority, nodes, flag)
    # is unique per entry, so the non-comparable payload is never reached.
    heap: list[tuple] = []
    for start in sorted(arrivals):
        if f[start] == NEG_INF:
            continue  # reaches no endpoint; no path begins here
        g = arrivals[start]
        heapq.heappush(heap, (-(g + f[start]), (start,), 1, g, ()))

    results: list[CriticalPath] = []
    pops = 0
    while heap and len(results) < k:
        pops += 1
        if pops > _MAX_POPS:  # pragma: no cover - defensive bound
            raise StaError(
                f"path enumeration exceeded {_MAX_POPS} heap pops; "
                "the graph has a pathological number of slack ties")
        priority, nodes, flag, g, edges = heapq.heappop(heap)
        node = nodes[-1]
        if flag == 0:
            results.append(CriticalPath(
                nodes=nodes, edges=edges, arrival=g,
                required=required[node], slack=priority))
            continue
        if node in required:
            # Re-key with the exact left-to-right slack: the bound above
            # already equals it at an endpoint, but going through the
            # heap keeps complete entries totally ordered with prefixes.
            heapq.heappush(heap, (required[node] - g, nodes, 0, g, edges))
        for edge in graph.out_edges(node):
            if f[edge.dst] == NEG_INF:
                continue
            g_next = g + edge.delay
            heapq.heappush(heap, (-(g_next + f[edge.dst]),
                                  nodes + (edge.dst,), 1, g_next,
                                  edges + (edge,)))
    return results
