"""Design + library -> frozen timing DAG, with AWE-driven net delays.

This is where the STA layer meets the paper: every net becomes a small
driver + RC-wire circuit (exactly the Fig. 1 stage model in
:mod:`repro.timing.stage`) and its pin-to-pin interconnect delays come
from AWE waveforms.  The driver's own charging time is *excluded* — the
net delay is ``t50(sink) - t50(driver output)`` so the resistive part of
the gate's response stays in the cell table where the library put it,
and the net edge carries pure interconnect delay (with full resistive
shielding, which a lumped-C model would miss).

Two interconnect modes:

``"awe"``
    Per-sink delay and output slew measured on the AWE waveform; the
    load each driver sees is the total capacitance of the O'Brien -
    Savarino pi-model fitted at the driving point.

``"elmore"``
    First-moment only: delay ``ln 2 * T_elmore``, slew degradation
    ``sqrt(slew_in^2 + (ln 9 * T_elmore)^2)``, load = sum of wire and
    pin capacitance.  Fast, pessimism-free of AWE cost — the baseline
    the paper improves on.

A :class:`Corner` scales wire parasitics (``wire_r``, ``wire_c``) and
derates the cells (``cell`` multiplies delay/slew tables and drive
resistance), giving per-corner frozen graphs from one design.
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.sources import Ramp, Step
from repro.circuit.netlist import Circuit
from repro.core.driver import AweAnalyzer
from repro.errors import ReproError, StaError
from repro.rctree.elmore import elmore_delays
from repro.sta.design import ROOT, Design, Net, PortIn
from repro.sta.graph import TimingGraph
from repro.sta.library import CellLibrary, default_library
from repro.timing.pi_model import pi_model
from repro.trace import NULL_TRACER

_LN2 = math.log(2.0)
_LN9 = math.log(9.0)

#: Recognised interconnect evaluation modes.
INTERCONNECT_MODES = ("awe", "elmore")


@dataclasses.dataclass(frozen=True)
class Corner:
    """One analysis corner: wire scaling + cell derating factors."""

    name: str = "nominal"
    wire_r: float = 1.0
    wire_c: float = 1.0
    cell: float = 1.0

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise StaError("corner needs a non-empty name")
        for field in ("wire_r", "wire_c", "cell"):
            value = getattr(self, field)
            try:
                value = float(value)
            except (TypeError, ValueError):
                raise StaError(
                    f"corner {self.name!r} {field} must be a number, "
                    f"got {value!r}") from None
            if not math.isfinite(value) or value <= 0.0:
                raise StaError(
                    f"corner {self.name!r} {field} must be finite and > 0, "
                    f"got {value!r}")
            object.__setattr__(self, field, value)

    def to_dict(self) -> dict:
        return {"name": self.name, "wire_r": self.wire_r,
                "wire_c": self.wire_c, "cell": self.cell}

    @classmethod
    def from_dict(cls, payload: dict) -> "Corner":
        if not isinstance(payload, dict):
            raise StaError(f"corner must be an object, got {payload!r}")
        unknown = set(payload) - {"name", "wire_r", "wire_c", "cell"}
        if unknown:
            raise StaError(
                f"corner has unknown fields: {', '.join(sorted(unknown))}")
        return cls(name=payload.get("name", "nominal"),
                   wire_r=payload.get("wire_r", 1.0),
                   wire_c=payload.get("wire_c", 1.0),
                   cell=payload.get("cell", 1.0))


#: The default (unscaled) corner.
NOMINAL = Corner()


@dataclasses.dataclass(frozen=True)
class BuiltTiming:
    """A frozen per-corner timing problem, ready for :func:`analyze`."""

    design_name: str
    corner: Corner
    interconnect: str
    graph: TimingGraph
    arrivals: dict[str, float]
    required: dict[str, float]
    slews: dict[str, float]
    loads: dict[str, float]


@dataclasses.dataclass(frozen=True)
class _Sink:
    node: str        # timing-graph node (``inst.pin`` or output port)
    tap: str         # wire node where it connects
    capacitance: float


class _NetEval:
    """Per-sink interconnect timing of one evaluated net."""

    __slots__ = ("load", "delays", "slews")

    def __init__(self, load: float):
        self.load = load
        self.delays: dict[str, float] = {}
        self.slews: dict[str, float] = {}


def _wire_circuit(net: Net, corner: Corner, drive_resistance: float,
                  sinks: list) -> Circuit:
    """Driver + scaled wire + sink loads as one linear circuit.

    With a zero drive resistance the source sits directly on the
    driver node; otherwise the stage's ``in -> Rdrv -> drv`` ladder is
    used, mirroring :class:`repro.timing.stage.Stage`.
    """
    ckt = Circuit(f"net {net.name}")
    if drive_resistance > 0.0:
        ckt.add_voltage_source("Vdrv", "in", "0")
        ckt.add_resistor("Rdrv", "in", "drv", drive_resistance)
    else:
        ckt.add_voltage_source("Vdrv", "drv", "0")
    for i, seg in enumerate(net.segments):
        a = "drv" if seg.a == ROOT else seg.a
        b = "drv" if seg.b == ROOT else seg.b
        ckt.add_resistor(f"Rw{i}", a, b, seg.resistance * corner.wire_r)
        cap = seg.capacitance * corner.wire_c
        if cap > 0.0:
            ckt.add_capacitor(f"Cw{i}", b, "0", cap)
    for sink in sinks:
        tap = "drv" if sink.tap == ROOT else sink.tap
        if not ckt.has_node(tap):
            raise StaError(
                f"net {net.name!r} wire never reaches sink tap {sink.tap!r}")
        if sink.capacitance > 0.0:
            ckt.add_capacitor(f"Cs_{sink.node}", tap, "0", sink.capacitance)
    return ckt


def _evaluate_net_awe(net: Net, corner: Corner, drive_resistance: float,
                      input_slew: float, sinks: list, tracer) -> _NetEval:
    circuit = _wire_circuit(net, corner, drive_resistance, sinks)
    stimulus = (Step(0.0, 1.0) if input_slew <= 0.0
                else Ramp(0.0, 1.0, rise_time=input_slew))
    try:
        analyzer = AweAnalyzer(circuit, {"Vdrv": stimulus}, tracer=tracer)
        load = pi_model(analyzer.system, "Vdrv").total_capacitance
        if drive_resistance > 0.0:
            t50_drv = analyzer.response("drv").delay_50()
        else:
            # Source node: the ramp itself crosses 50 % at slew/2.
            t50_drv = 0.5 * input_slew if input_slew > 0.0 else 0.0
        result = _NetEval(load)
        for sink in sinks:
            tap = "drv" if sink.tap == ROOT else sink.tap
            response = analyzer.response(tap)
            v1 = response.waveform.final_value()
            t50 = response.delay_50()
            t10 = response.delay(0.1 * v1)
            t90 = response.delay(0.9 * v1)
            result.delays[sink.node] = max(0.0, t50 - t50_drv)
            result.slews[sink.node] = max(0.0, t90 - t10)
        return result
    except ReproError as exc:
        raise StaError(
            f"AWE evaluation of net {net.name!r} failed: {exc}") from exc


def _evaluate_net_elmore(net: Net, corner: Corner, drive_resistance: float,
                         input_slew: float, sinks: list) -> _NetEval:
    circuit = _wire_circuit(net, corner, drive_resistance, sinks)
    try:
        delays = elmore_delays(circuit)
    except ReproError as exc:
        raise StaError(
            f"Elmore evaluation of net {net.name!r} failed (the wire must "
            f"be an RC tree; use interconnect='awe' otherwise): {exc}"
        ) from exc
    load = sum(seg.capacitance * corner.wire_c for seg in net.segments)
    load += sum(sink.capacitance for sink in sinks)
    result = _NetEval(load)
    t_drv = delays.get("drv", 0.0)
    for sink in sinks:
        tap = "drv" if sink.tap == ROOT else sink.tap
        t_wire = max(0.0, delays[tap] - t_drv)
        result.delays[sink.node] = _LN2 * t_wire
        result.slews[sink.node] = math.hypot(input_slew, _LN9 * t_wire)
    return result


def _evaluate_net(net: Net, corner: Corner, drive_resistance: float,
                  input_slew: float, sinks: list, interconnect: str,
                  tracer) -> _NetEval:
    if not net.segments:
        # Ideal wire: zero interconnect delay, the slew passes through,
        # and the driver sees exactly the pin loads.
        result = _NetEval(sum(sink.capacitance for sink in sinks))
        for sink in sinks:
            result.delays[sink.node] = 0.0
            result.slews[sink.node] = input_slew
        return result
    if interconnect == "awe":
        return _evaluate_net_awe(net, corner, drive_resistance, input_slew,
                                 sinks, tracer)
    return _evaluate_net_elmore(net, corner, drive_resistance, input_slew,
                                sinks)


def build_timing_graph(
    design: Design,
    library: CellLibrary | None = None,
    corner: Corner = NOMINAL,
    interconnect: str = "awe",
    tracer=None,
) -> BuiltTiming:
    """Freeze ``design`` into a delay-annotated timing DAG at ``corner``.

    One forward pass over the structural topological order computes, at
    every node, the worst arrival and the slew of the edge that set it;
    each net is AWE-evaluated exactly once, when its driver's slew is
    known.  The returned :class:`BuiltTiming` carries the frozen graph
    plus the arrival/required boundary conditions for
    :func:`repro.sta.graph.analyze`.
    """
    if interconnect not in INTERCONNECT_MODES:
        raise StaError(
            f"unknown interconnect mode {interconnect!r}; "
            f"expected one of {', '.join(INTERCONNECT_MODES)}")
    if not isinstance(corner, Corner):
        raise StaError(f"corner must be a Corner, got {corner!r}")
    library = default_library() if library is None else library
    tracer = NULL_TRACER if tracer is None else tracer
    design.validate(library)

    structural = design.structural_graph(library)
    order = structural.topological_order()

    # Index the netlist around the structural node names.
    port_in: dict[str, PortIn] = {p.name: p for p in design.inputs}
    required = {p.name: float(p.required) for p in design.outputs}
    arrivals = {p.name: float(p.arrival) for p in design.inputs}
    instance_of: dict[str, tuple] = {}
    for inst in design.instances:
        cell = library[inst.cell]
        for pin in cell.input_pins:
            instance_of[inst.pin_node(pin)] = (inst, cell, pin, "in")
        for pin in cell.output_pins:
            instance_of[inst.pin_node(pin)] = (inst, cell, pin, "out")

    net_sinks: dict[str, list] = {net.name: [] for net in design.nets}
    for port in design.outputs:
        net = design.net(port.net)
        tap = port.name if net.segments else ROOT
        net_sinks[port.net].append(_Sink(port.name, tap, float(port.load)))
    for inst in design.instances:
        cell = library[inst.cell]
        for pin in cell.input_pins:
            node = inst.pin_node(pin)
            net = design.net(inst.connections[pin])
            tap = node if net.segments else ROOT
            net_sinks[inst.connections[pin]].append(
                _Sink(node, tap, float(cell.input_capacitance[pin])))

    graph = TimingGraph(name=f"{design.name} @ {corner.name}")
    for node in order:
        graph.add_node(node)

    arrival_at: dict[str, float] = {}
    slew_at: dict[str, float] = {}
    loads: dict[str, float] = {}

    def incoming_worst(node: str) -> tuple[float, float]:
        """(arrival, slew) carried by the worst in-edge of ``node``."""
        best_arrival = arrivals.get(node, -math.inf)
        best_slew = slew_at.get(node, 0.0)
        found = best_arrival > -math.inf
        for edge in graph.in_edges(node):
            candidate = arrival_at[edge.src] + edge.delay
            if not found or candidate > best_arrival:
                best_arrival = candidate
                best_slew = edge_slew[(edge.src, edge.dst)]
                found = True
        return best_arrival, best_slew

    edge_slew: dict[tuple, float] = {}

    def freeze_net(net_name: str, driver_node: str, drive_resistance: float,
                   input_slew: float) -> None:
        net = design.net(net_name)
        sinks = net_sinks[net_name]
        evaluation = _evaluate_net(net, corner, drive_resistance, input_slew,
                                   sinks, interconnect, tracer)
        loads[driver_node] = evaluation.load
        tracer.event("sta_net", net=net_name, driver=driver_node,
                     mode="ideal" if not net.segments else interconnect,
                     load_f=evaluation.load, sinks=len(sinks))
        for sink in sinks:
            graph.add_edge(driver_node, sink.node,
                           evaluation.delays[sink.node], kind="net",
                           label=net_name)
            edge_slew[(driver_node, sink.node)] = evaluation.slews[sink.node]

    with tracer.span("sta_build", design=design.name, corner=corner.name,
                     interconnect=interconnect):
        for node in order:
            if node in port_in:
                port = port_in[node]
                arrival_at[node] = float(port.arrival)
                slew_at[node] = float(port.slew)
                freeze_net(port.net, node, float(port.drive_resistance),
                           slew_at[node])
                continue
            info = instance_of.get(node)
            if info is None:
                # Output port: a pure endpoint.
                arrival_at[node], slew_at[node] = incoming_worst(node)
                continue
            inst, cell, pin, role = info
            if role == "in":
                arrival_at[node], slew_at[node] = incoming_worst(node)
                continue
            # Instance output pin: the driven net's load gates the cell
            # arcs, so freeze the arcs first, then the net.
            net_name = inst.connections[pin]
            net = design.net(net_name)
            sinks = net_sinks[net_name]
            drive_resistance = cell.drive_resistance[pin] * corner.cell
            # The load is slew-independent; probe it cheaply for the
            # arc lookups (the net evaluation recomputes the same value).
            if net.segments and interconnect == "awe":
                probe = _wire_circuit(net, corner, drive_resistance, sinks)
                try:
                    load = pi_model(AweAnalyzer(probe).system,
                                    "Vdrv").total_capacitance
                except ReproError as exc:
                    raise StaError(
                        f"load extraction for net {net_name!r} failed: "
                        f"{exc}") from exc
            elif net.segments:
                load = sum(s.capacitance * corner.wire_c
                           for s in net.segments)
                load += sum(s.capacitance for s in sinks)
            else:
                load = sum(s.capacitance for s in sinks)
            for arc in cell.arcs_to(pin):
                src = inst.pin_node(arc.input)
                in_slew = slew_at[src]
                delay = arc.delay.lookup(in_slew, load) * corner.cell
                out_slew = arc.output_slew.lookup(in_slew, load) * corner.cell
                graph.add_edge(src, node, delay, kind="cell",
                               label=f"{inst.cell}:{arc.input}->{arc.output}")
                edge_slew[(src, node)] = out_slew
            arrival_at[node], slew_at[node] = incoming_worst(node)
            freeze_net(net_name, node, drive_resistance, slew_at[node])
        tracer.event("sta_frozen", design=design.name, corner=corner.name,
                     nodes=graph.node_count, edges=graph.edge_count)

    return BuiltTiming(
        design_name=design.name,
        corner=corner,
        interconnect=interconnect,
        graph=graph,
        arrivals=arrivals,
        required=required,
        slews=dict(slew_at),
        loads=dict(loads),
    )
