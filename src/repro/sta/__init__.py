"""Static timing analysis on top of AWE-evaluated interconnect.

The package turns the paper's one-net delay machinery into whole-design
traffic: a cell-library-lite (:mod:`repro.sta.library`), a gate-level
design model (:mod:`repro.sta.design`), a per-corner timing-DAG builder
whose net edges carry AWE-driven delays (:mod:`repro.sta.build`), the
graph algorithms — forward/backward propagation, slack, best-first
top-K critical paths (:mod:`repro.sta.graph`) — and the one-call
:func:`~repro.sta.engine.run_sta` orchestrator.
"""

from repro.sta.build import (
    INTERCONNECT_MODES,
    NOMINAL,
    BuiltTiming,
    Corner,
    build_timing_graph,
)
from repro.sta.design import (
    RESERVED_NODES,
    ROOT,
    Design,
    Instance,
    Net,
    PortIn,
    PortOut,
    WireSegment,
)
from repro.sta.engine import CornerAnalysis, StaRun, run_sta
from repro.sta.graph import (
    CriticalPath,
    StaResult,
    TimingEdge,
    TimingGraph,
    analyze,
    report_top_k_critical_paths,
)
from repro.sta.library import (
    Cell,
    CellLibrary,
    DelayTable,
    TimingArc,
    default_library,
)

__all__ = [
    "INTERCONNECT_MODES",
    "NOMINAL",
    "RESERVED_NODES",
    "ROOT",
    "BuiltTiming",
    "Cell",
    "CellLibrary",
    "Corner",
    "CornerAnalysis",
    "CriticalPath",
    "DelayTable",
    "Design",
    "Instance",
    "Net",
    "PortIn",
    "PortOut",
    "StaResult",
    "StaRun",
    "TimingArc",
    "TimingEdge",
    "TimingGraph",
    "WireSegment",
    "analyze",
    "build_timing_graph",
    "default_library",
    "report_top_k_critical_paths",
    "run_sta",
]
