"""Design model for the STA engine: ports, instances, nets, wires.

A :class:`Design` is the gate-level netlist the timing-graph builder
consumes.  It is deliberately structural — no delays live here.  Delay
comes from the cell library (pin-to-pin arcs) and from per-net AWE runs
over the wire segments.

Naming rules
------------
Timing-graph nodes are ``<port>`` for ports and ``<instance>.<pin>`` for
instance pins, so instance, port, and pin names must not contain ``"."``.
Wire nodes live inside a per-net circuit next to the builder's driver
nodes, so the names ``"0"``, ``"in"``, and ``"drv"`` are reserved; the
special wire node ``"root"`` is where the net's driver attaches.

Wire topology
-------------
Each :class:`WireSegment` is an RC L-section: ``resistance`` between
nodes ``a`` and ``b`` plus ``capacitance`` from ``b`` to ground.  A net
with no segments is an ideal wire (every sink sits at the driver).  When
a net has segments, every sink endpoint (``inst.pin`` or output port
name) must appear as a wire node so the builder knows where it taps in.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import StaError
from repro.sta.graph import TimingGraph
from repro.sta.library import CellLibrary

#: Wire node where a net's driver attaches.
ROOT = "root"

#: Wire-node names the per-net circuit builder claims for itself
#: (plus the netlist layer's ground aliases).
RESERVED_NODES = frozenset({"0", "in", "drv", "gnd", "GND", "Gnd"})


def _name(value, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise StaError(f"{what} must be a non-empty string, got {value!r}")
    return value


def _graph_name(value, what: str) -> str:
    _name(value, what)
    if "." in value:
        raise StaError(f"{what} must not contain '.', got {value!r}")
    if value in RESERVED_NODES:
        raise StaError(f"{what} must not be one of {sorted(RESERVED_NODES)}, "
                       f"got {value!r}")
    return value


def _finite(value, what: str, minimum: float | None = None) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise StaError(f"{what} must be a number, got {value!r}") from None
    if not math.isfinite(value):
        raise StaError(f"{what} must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise StaError(f"{what} must be >= {minimum:g}, got {value!r}")
    return value


def _no_unknown(payload: dict, allowed: set, what: str) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise StaError(
            f"{what} has unknown fields: {', '.join(sorted(unknown))}")


@dataclasses.dataclass(frozen=True)
class PortIn:
    """A primary input: arrival time, input slew, and drive strength.

    ``drive_resistance`` of 0 means an ideal (zero-impedance) source.
    """

    name: str
    net: str
    arrival: float = 0.0
    slew: float = 0.0
    drive_resistance: float = 0.0

    def __post_init__(self):
        _graph_name(self.name, "input port name")
        _name(self.net, f"input port {self.name!r} net")
        _finite(self.arrival, f"input port {self.name!r} arrival")
        _finite(self.slew, f"input port {self.name!r} slew", minimum=0.0)
        _finite(self.drive_resistance,
                f"input port {self.name!r} drive resistance", minimum=0.0)

    def to_dict(self) -> dict:
        return {"name": self.name, "net": self.net,
                "arrival": float(self.arrival), "slew": float(self.slew),
                "drive_resistance": float(self.drive_resistance)}

    @classmethod
    def from_dict(cls, payload: dict) -> "PortIn":
        if not isinstance(payload, dict):
            raise StaError(f"input port must be an object, got {payload!r}")
        _no_unknown(payload, {"name", "net", "arrival", "slew",
                              "drive_resistance"}, "input port")
        return cls(name=payload.get("name"), net=payload.get("net"),
                   arrival=payload.get("arrival", 0.0),
                   slew=payload.get("slew", 0.0),
                   drive_resistance=payload.get("drive_resistance", 0.0))


@dataclasses.dataclass(frozen=True)
class PortOut:
    """A primary output: required time and the load it presents."""

    name: str
    net: str
    required: float
    load: float = 5e-15

    def __post_init__(self):
        _graph_name(self.name, "output port name")
        _name(self.net, f"output port {self.name!r} net")
        _finite(self.required, f"output port {self.name!r} required time")
        _finite(self.load, f"output port {self.name!r} load", minimum=0.0)

    def to_dict(self) -> dict:
        return {"name": self.name, "net": self.net,
                "required": float(self.required), "load": float(self.load)}

    @classmethod
    def from_dict(cls, payload: dict) -> "PortOut":
        if not isinstance(payload, dict):
            raise StaError(f"output port must be an object, got {payload!r}")
        _no_unknown(payload, {"name", "net", "required", "load"},
                    "output port")
        if "required" not in payload:
            raise StaError(
                f"output port {payload.get('name')!r} needs a required time")
        return cls(name=payload.get("name"), net=payload.get("net"),
                   required=payload["required"],
                   load=payload.get("load", 5e-15))


@dataclasses.dataclass(frozen=True)
class WireSegment:
    """RC L-section: ``resistance`` a->b, ``capacitance`` at ``b``."""

    a: str
    b: str
    resistance: float
    capacitance: float

    def __post_init__(self):
        for node, which in ((self.a, "a"), (self.b, "b")):
            _name(node, f"wire segment node {which}")
            if node in RESERVED_NODES:
                raise StaError(
                    f"wire node {node!r} is reserved; rename it")
        if self.a == self.b:
            raise StaError(f"wire segment {self.a!r} -> {self.b!r} is a loop")
        if _finite(self.resistance, "wire segment resistance") <= 0.0:
            raise StaError(
                f"wire segment resistance must be > 0, got {self.resistance!r}")
        _finite(self.capacitance, "wire segment capacitance", minimum=0.0)

    def to_dict(self) -> dict:
        return {"a": self.a, "b": self.b,
                "resistance": float(self.resistance),
                "capacitance": float(self.capacitance)}

    @classmethod
    def from_dict(cls, payload: dict) -> "WireSegment":
        if not isinstance(payload, dict):
            raise StaError(f"wire segment must be an object, got {payload!r}")
        _no_unknown(payload, {"a", "b", "resistance", "capacitance"},
                    "wire segment")
        for field in ("resistance", "capacitance"):
            if field not in payload:
                raise StaError(f"wire segment needs a {field!r} value")
        return cls(a=payload.get("a"), b=payload.get("b"),
                   resistance=payload["resistance"],
                   capacitance=payload["capacitance"])


@dataclasses.dataclass(frozen=True)
class Net:
    """A named net with optional RC wire topology."""

    name: str
    segments: tuple[WireSegment, ...] = ()

    def __post_init__(self):
        _name(self.name, "net name")
        object.__setattr__(self, "segments", tuple(self.segments))

    @property
    def wire_nodes(self) -> set:
        nodes = set()
        for seg in self.segments:
            nodes.add(seg.a)
            nodes.add(seg.b)
        return nodes

    def to_dict(self) -> dict:
        return {"name": self.name,
                "segments": [seg.to_dict() for seg in self.segments]}

    @classmethod
    def from_dict(cls, payload: dict) -> "Net":
        if not isinstance(payload, dict):
            raise StaError(f"net must be an object, got {payload!r}")
        _no_unknown(payload, {"name", "segments"}, "net")
        segments = payload.get("segments", [])
        if not isinstance(segments, list):
            raise StaError(
                f"net {payload.get('name')!r} 'segments' must be a list")
        return cls(name=payload.get("name"),
                   segments=tuple(WireSegment.from_dict(seg)
                                  for seg in segments))


@dataclasses.dataclass(frozen=True)
class Instance:
    """One placed cell: every pin maps to a net name."""

    name: str
    cell: str
    connections: dict[str, str]

    def __post_init__(self):
        _graph_name(self.name, "instance name")
        _name(self.cell, f"instance {self.name!r} cell")
        if not isinstance(self.connections, dict) or not self.connections:
            raise StaError(
                f"instance {self.name!r} needs a pin -> net mapping")
        for pin, net in self.connections.items():
            _graph_name(pin, f"instance {self.name!r} pin")
            _name(net, f"instance {self.name!r} pin {pin!r} net")

    def pin_node(self, pin: str) -> str:
        return f"{self.name}.{pin}"

    def to_dict(self) -> dict:
        return {"name": self.name, "cell": self.cell,
                "connections": dict(sorted(self.connections.items()))}

    @classmethod
    def from_dict(cls, payload: dict) -> "Instance":
        if not isinstance(payload, dict):
            raise StaError(f"instance must be an object, got {payload!r}")
        _no_unknown(payload, {"name", "cell", "connections"}, "instance")
        connections = payload.get("connections")
        if not isinstance(connections, dict):
            raise StaError(
                f"instance {payload.get('name')!r} 'connections' must be "
                "an object")
        return cls(name=payload.get("name"), cell=payload.get("cell"),
                   connections=dict(connections))


@dataclasses.dataclass(frozen=True)
class Design:
    """A gate-level netlist: ports, instances, and wired nets."""

    name: str
    inputs: tuple[PortIn, ...]
    outputs: tuple[PortOut, ...]
    instances: tuple[Instance, ...] = ()
    nets: tuple[Net, ...] = ()

    def __post_init__(self):
        _name(self.name, "design name")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        object.__setattr__(self, "instances", tuple(self.instances))
        object.__setattr__(self, "nets", tuple(self.nets))
        if not self.inputs:
            raise StaError(f"design {self.name!r} needs at least one input")
        if not self.outputs:
            raise StaError(f"design {self.name!r} needs at least one output")
        names = [p.name for p in self.inputs] + [p.name for p in self.outputs]
        names += [inst.name for inst in self.instances]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise StaError(
                f"design {self.name!r} reuses names: "
                f"{', '.join(sorted(dupes))}")
        net_names = [net.name for net in self.nets]
        net_dupes = {n for n in net_names if net_names.count(n) > 1}
        if net_dupes:
            raise StaError(
                f"design {self.name!r} declares duplicate nets: "
                f"{', '.join(sorted(net_dupes))}")

    # -- lookups -------------------------------------------------------

    def net(self, name: str) -> Net:
        for net in self.nets:
            if net.name == name:
                return net
        raise StaError(f"design {self.name!r} has no net {name!r}")

    # -- validation ----------------------------------------------------

    def validate(self, library: CellLibrary) -> None:
        """Full semantic check against ``library``.

        Verifies that every referenced cell exists, every cell pin is
        connected, every net is driven exactly once and sinks at least
        once, wire topologies are connected and tap every sink, and the
        implied timing graph is acyclic.  Raises :class:`StaError` with
        a description of the first problem found.
        """
        declared = {net.name for net in self.nets}
        drivers: dict[str, str] = {}
        sinks: dict[str, list] = {name: [] for name in declared}

        def drive(net_name: str, who: str) -> None:
            if net_name not in declared:
                raise StaError(
                    f"{who} drives undeclared net {net_name!r}")
            if net_name in drivers:
                raise StaError(
                    f"net {net_name!r} is driven by both "
                    f"{drivers[net_name]} and {who}")
            drivers[net_name] = who

        def sink(net_name: str, endpoint: str, who: str) -> None:
            if net_name not in declared:
                raise StaError(f"{who} taps undeclared net {net_name!r}")
            sinks[net_name].append(endpoint)

        for port in self.inputs:
            drive(port.net, f"input port {port.name!r}")
        for port in self.outputs:
            sink(port.net, port.name, f"output port {port.name!r}")
        for inst in self.instances:
            cell = library[inst.cell]
            pins = set(cell.input_pins) | set(cell.output_pins)
            missing = pins - set(inst.connections)
            if missing:
                raise StaError(
                    f"instance {inst.name!r} ({inst.cell}) leaves pins "
                    f"unconnected: {', '.join(sorted(missing))}")
            extra = set(inst.connections) - pins
            if extra:
                raise StaError(
                    f"instance {inst.name!r} connects pins the cell "
                    f"{inst.cell!r} does not have: "
                    f"{', '.join(sorted(extra))}")
            for pin in cell.input_pins:
                sink(inst.connections[pin], inst.pin_node(pin),
                     f"instance {inst.name!r} pin {pin!r}")
            for pin in cell.output_pins:
                drive(inst.connections[pin],
                      f"instance {inst.name!r} pin {pin!r}")

        for net in self.nets:
            if net.name not in drivers:
                raise StaError(f"net {net.name!r} has no driver")
            if not sinks[net.name]:
                raise StaError(f"net {net.name!r} has no sinks")
            if net.segments:
                self._check_wire(net, sinks[net.name])

        # Acyclicity: the zero-delay structural graph must sort.
        graph = self.structural_graph(library)
        graph.topological_order()

    @staticmethod
    def _check_wire(net: Net, endpoints) -> None:
        adjacency: dict[str, set] = {}
        for seg in net.segments:
            adjacency.setdefault(seg.a, set()).add(seg.b)
            adjacency.setdefault(seg.b, set()).add(seg.a)
        missing = [ep for ep in endpoints if ep not in adjacency]
        if missing:
            raise StaError(
                f"net {net.name!r} has wire segments but does not tap "
                f"sink(s): {', '.join(sorted(missing))}")
        if ROOT not in adjacency:
            raise StaError(
                f"net {net.name!r} wire does not reach the driver node "
                f"{ROOT!r}")
        seen = {ROOT}
        frontier = [ROOT]
        while frontier:
            node = frontier.pop()
            for other in adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        stranded = sorted(set(adjacency) - seen)
        if stranded:
            raise StaError(
                f"net {net.name!r} wire node(s) unreachable from "
                f"{ROOT!r}: {', '.join(stranded)}")

    def structural_graph(self, library: CellLibrary) -> TimingGraph:
        """The zero-delay timing DAG (topology only, no timing)."""
        graph = TimingGraph(name=f"{self.name} (structural)")
        for port in self.inputs:
            graph.add_node(port.name)
        for port in self.outputs:
            graph.add_node(port.name)
        for inst in self.instances:
            cell = library[inst.cell]
            for pin in cell.input_pins:
                graph.add_node(inst.pin_node(pin))
            for pin in cell.output_pins:
                graph.add_node(inst.pin_node(pin))

        driver_node: dict[str, str] = {}
        for port in self.inputs:
            driver_node[port.net] = port.name
        for inst in self.instances:
            cell = library[inst.cell]
            for pin in cell.output_pins:
                driver_node[inst.connections[pin]] = inst.pin_node(pin)

        def net_edge(net_name: str, dst: str) -> None:
            src = driver_node.get(net_name)
            if src is None:
                raise StaError(f"net {net_name!r} has no driver")
            graph.add_edge(src, dst, 0.0, kind="net", label=net_name)

        for port in self.outputs:
            net_edge(port.net, port.name)
        for inst in self.instances:
            cell = library[inst.cell]
            for arc in cell.arcs:
                graph.add_edge(inst.pin_node(arc.input),
                               inst.pin_node(arc.output), 0.0,
                               kind="cell", label=inst.cell)
        for inst in self.instances:
            cell = library[inst.cell]
            for pin in cell.input_pins:
                net_edge(inst.connections[pin], inst.pin_node(pin))
        return graph

    # -- serialisation -------------------------------------------------

    def to_canonical_dict(self) -> dict:
        """Deterministic dict form: members sorted by name."""
        return {
            "name": self.name,
            "inputs": [p.to_dict()
                       for p in sorted(self.inputs, key=lambda p: p.name)],
            "outputs": [p.to_dict()
                        for p in sorted(self.outputs, key=lambda p: p.name)],
            "instances": [i.to_dict()
                          for i in sorted(self.instances,
                                          key=lambda i: i.name)],
            "nets": [n.to_dict()
                     for n in sorted(self.nets, key=lambda n: n.name)],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Design":
        if not isinstance(payload, dict):
            raise StaError(f"design must be an object, got {payload!r}")
        _no_unknown(payload, {"name", "inputs", "outputs", "instances",
                              "nets"}, "design")
        for field in ("inputs", "outputs"):
            if not isinstance(payload.get(field), list):
                raise StaError(f"design {field!r} must be a list")
        for field in ("instances", "nets"):
            if not isinstance(payload.get(field, []), list):
                raise StaError(f"design {field!r} must be a list")
        return cls(
            name=payload.get("name"),
            inputs=tuple(PortIn.from_dict(p) for p in payload["inputs"]),
            outputs=tuple(PortOut.from_dict(p) for p in payload["outputs"]),
            instances=tuple(Instance.from_dict(i)
                            for i in payload.get("instances", [])),
            nets=tuple(Net.from_dict(n) for n in payload.get("nets", [])),
        )
