"""Top-level STA orchestration: design -> per-corner results + paths.

:func:`run_sta` is the one-call entry the CLI, the service, and the
examples share: validate, freeze one timing graph per corner, propagate
arrivals/requireds, and peel the top-K critical paths.
"""

from __future__ import annotations

import dataclasses

from repro.errors import StaError
from repro.sta.build import (
    INTERCONNECT_MODES,
    NOMINAL,
    BuiltTiming,
    Corner,
    build_timing_graph,
)
from repro.sta.design import Design
from repro.sta.graph import (
    CriticalPath,
    StaResult,
    analyze,
    report_top_k_critical_paths,
)
from repro.sta.library import CellLibrary, default_library
from repro.trace import NULL_TRACER


@dataclasses.dataclass(frozen=True)
class CornerAnalysis:
    """Everything the analysis produced at one corner."""

    corner: Corner
    built: BuiltTiming
    result: StaResult
    paths: tuple[CriticalPath, ...]

    @property
    def worst_slack(self) -> float | None:
        return self.result.worst_slack


@dataclasses.dataclass(frozen=True)
class StaRun:
    """One full STA run: the design plus every corner's analysis."""

    design: Design
    interconnect: str
    k: int
    corners: tuple[CornerAnalysis, ...]

    @property
    def worst_slack(self) -> float | None:
        """The most negative worst-slack across corners (None if no
        corner constrained any endpoint)."""
        slacks = [c.worst_slack for c in self.corners
                  if c.worst_slack is not None]
        return min(slacks) if slacks else None

    def corner(self, name: str) -> CornerAnalysis:
        for analysis in self.corners:
            if analysis.corner.name == name:
                return analysis
        raise StaError(
            f"run has no corner {name!r}; corners: "
            f"{', '.join(c.corner.name for c in self.corners)}")


def run_sta(
    design: Design,
    library: CellLibrary | None = None,
    k: int = 5,
    corners=(NOMINAL,),
    interconnect: str = "awe",
    tracer=None,
) -> StaRun:
    """Analyze ``design`` at every corner and peel ``k`` critical paths.

    Parameters
    ----------
    design:
        The gate-level netlist (validated against ``library``).
    library:
        Cell library; ``None`` uses the built-in
        :func:`~repro.sta.library.default_library`.
    k:
        How many critical paths to report per corner.
    corners:
        Iterable of :class:`~repro.sta.build.Corner`; each gets its own
        frozen graph and path report.
    interconnect:
        ``"awe"`` (waveform-accurate) or ``"elmore"`` (first moment).
    tracer:
        Optional :class:`repro.trace.Tracer`; spans/events cover the
        per-corner freeze and analysis phases.
    """
    if not isinstance(design, Design):
        raise StaError(f"design must be a Design, got {design!r}")
    if not isinstance(k, int) or isinstance(k, bool) or k < 0:
        raise StaError(f"k must be a non-negative integer, got {k!r}")
    if interconnect not in INTERCONNECT_MODES:
        raise StaError(
            f"unknown interconnect mode {interconnect!r}; "
            f"expected one of {', '.join(INTERCONNECT_MODES)}")
    corners = tuple(corners)
    if not corners:
        raise StaError("run_sta needs at least one corner")
    names = [c.name for c in corners if isinstance(c, Corner)]
    if len(names) != len(corners):
        bad = next(c for c in corners if not isinstance(c, Corner))
        raise StaError(f"corners must be Corner values, got {bad!r}")
    if len(set(names)) != len(names):
        raise StaError(f"corner names must be unique, got {names}")
    library = default_library() if library is None else library
    tracer = NULL_TRACER if tracer is None else tracer

    analyses = []
    for corner in corners:
        built = build_timing_graph(design, library, corner=corner,
                                   interconnect=interconnect, tracer=tracer)
        with tracer.span("sta_analyze", corner=corner.name):
            result = analyze(built.graph, built.arrivals, built.required)
            paths = tuple(report_top_k_critical_paths(
                built.graph, built.arrivals, built.required, k))
        tracer.event(
            "sta_corner_done", corner=corner.name,
            worst_slack_s=result.worst_slack, paths=len(paths))
        analyses.append(CornerAnalysis(corner=corner, built=built,
                                       result=result, paths=paths))
    return StaRun(design=design, interconnect=interconnect, k=k,
                  corners=tuple(analyses))
