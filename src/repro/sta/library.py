"""Cell-library-lite: pin-to-pin arcs with slew/load delay tables.

A deliberately small slice of a Liberty-style library — exactly what the
timing-graph builder needs and nothing more: per-input-pin capacitance,
per-output-pin drive resistance (the paper's switched-resistor gate
model, Fig. 1), and per-arc bilinear ``(input slew × output load)``
lookup tables for delay and output slew.  Everything round-trips through
plain dicts so libraries can ride inside ``POST /sta`` request bodies.
"""

from __future__ import annotations

import bisect
import dataclasses
import math

from repro.errors import StaError


def _finite(value, what: str, minimum: float | None = None) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise StaError(f"{what} must be a number, got {value!r}") from None
    if not math.isfinite(value):
        raise StaError(f"{what} must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise StaError(f"{what} must be >= {minimum:g}, got {value!r}")
    return value


def _axis(values, what: str) -> tuple[float, ...]:
    axis = tuple(_finite(v, f"{what} value", minimum=0.0) for v in values)
    if not axis:
        raise StaError(f"{what} must not be empty")
    if any(b <= a for a, b in zip(axis, axis[1:])):
        raise StaError(f"{what} must be strictly increasing, got {axis}")
    return axis


class DelayTable:
    """Bilinear ``(slew, load)`` interpolation with edge clamping.

    Lookups outside the characterised grid clamp to the nearest axis
    value — the standard table semantics, which also keeps every lookup
    finite no matter what load the net builder computes.
    """

    __slots__ = ("slews", "loads", "values")

    def __init__(self, slews, loads, values):
        self.slews = _axis(slews, "slew axis")
        self.loads = _axis(loads, "load axis")
        rows = tuple(tuple(_finite(v, "table value", minimum=0.0) for v in row)
                     for row in values)
        if len(rows) != len(self.slews) or any(
                len(row) != len(self.loads) for row in rows):
            raise StaError(
                f"table shape must be {len(self.slews)}x{len(self.loads)} "
                "(slews x loads)")
        self.values = rows

    @classmethod
    def from_linear(cls, intercept: float, slew_factor: float,
                    load_factor: float, slews, loads) -> "DelayTable":
        """Tabulate the affine model ``intercept + slew_factor*slew +
        load_factor*load`` on the given axes (bilinear interpolation
        reproduces it exactly inside the grid)."""
        slews = _axis(slews, "slew axis")
        loads = _axis(loads, "load axis")
        values = [[intercept + slew_factor * s + load_factor * c
                   for c in loads] for s in slews]
        return cls(slews, loads, values)

    def _bracket(self, axis: tuple[float, ...], x: float):
        if x <= axis[0]:
            return 0, 0, 0.0
        if x >= axis[-1]:
            return len(axis) - 1, len(axis) - 1, 0.0
        hi = bisect.bisect_right(axis, x)
        lo = hi - 1
        t = (x - axis[lo]) / (axis[hi] - axis[lo])
        return lo, hi, t

    def lookup(self, slew: float, load: float) -> float:
        slew = _finite(slew, "slew", minimum=0.0)
        load = _finite(load, "load", minimum=0.0)
        i0, i1, ts = self._bracket(self.slews, slew)
        j0, j1, tl = self._bracket(self.loads, load)
        v = self.values
        top = v[i0][j0] + tl * (v[i0][j1] - v[i0][j0])
        bottom = v[i1][j0] + tl * (v[i1][j1] - v[i1][j0])
        return top + ts * (bottom - top)

    def scaled(self, factor: float) -> "DelayTable":
        """Every table value multiplied by ``factor`` (corner derating)."""
        factor = _finite(factor, "scale factor", minimum=0.0)
        return DelayTable(self.slews, self.loads,
                          [[v * factor for v in row] for row in self.values])

    def to_dict(self) -> dict:
        return {"slews": list(self.slews), "loads": list(self.loads),
                "values": [list(row) for row in self.values]}

    @classmethod
    def from_dict(cls, payload: dict) -> "DelayTable":
        if not isinstance(payload, dict):
            raise StaError(f"delay table must be an object, got {payload!r}")
        unknown = set(payload) - {"slews", "loads", "values"}
        if unknown:
            raise StaError(
                f"delay table has unknown fields: {', '.join(sorted(unknown))}")
        return cls(payload.get("slews", ()), payload.get("loads", ()),
                   payload.get("values", ()))

    def __eq__(self, other) -> bool:
        return (isinstance(other, DelayTable)
                and self.slews == other.slews
                and self.loads == other.loads
                and self.values == other.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DelayTable({len(self.slews)}x{len(self.loads)}, "
                f"slews {self.slews[0]:g}..{self.slews[-1]:g} s, "
                f"loads {self.loads[0]:g}..{self.loads[-1]:g} F)")


@dataclasses.dataclass(frozen=True)
class TimingArc:
    """One pin-to-pin arc: input pin -> output pin with its two tables."""

    input: str
    output: str
    delay: DelayTable
    output_slew: DelayTable

    def to_dict(self) -> dict:
        return {"input": self.input, "output": self.output,
                "delay": self.delay.to_dict(),
                "output_slew": self.output_slew.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "TimingArc":
        if not isinstance(payload, dict):
            raise StaError(f"timing arc must be an object, got {payload!r}")
        unknown = set(payload) - {"input", "output", "delay", "output_slew"}
        if unknown:
            raise StaError(
                f"timing arc has unknown fields: {', '.join(sorted(unknown))}")
        for field in ("input", "output"):
            if not isinstance(payload.get(field), str) or not payload[field]:
                raise StaError(f"timing arc {field!r} must be a pin name")
        return cls(payload["input"], payload["output"],
                   DelayTable.from_dict(payload.get("delay")),
                   DelayTable.from_dict(payload.get("output_slew")))


@dataclasses.dataclass(frozen=True)
class Cell:
    """One library cell: input caps, output drive resistances, arcs."""

    name: str
    input_capacitance: dict[str, float]
    drive_resistance: dict[str, float]
    arcs: tuple[TimingArc, ...]

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise StaError("cell needs a non-empty name")
        if not self.input_capacitance:
            raise StaError(f"cell {self.name!r} needs at least one input pin")
        if not self.drive_resistance:
            raise StaError(f"cell {self.name!r} needs at least one output pin")
        for pin, cap in self.input_capacitance.items():
            _finite(cap, f"cell {self.name!r} input cap of pin {pin!r}",
                    minimum=0.0)
        for pin, res in self.drive_resistance.items():
            if _finite(res, f"cell {self.name!r} drive resistance of pin "
                       f"{pin!r}") <= 0.0:
                raise StaError(
                    f"cell {self.name!r} drive resistance of pin {pin!r} "
                    "must be > 0")
        if not self.arcs:
            raise StaError(f"cell {self.name!r} needs at least one timing arc")
        seen = set()
        for arc in self.arcs:
            if arc.input not in self.input_capacitance:
                raise StaError(
                    f"cell {self.name!r} arc references unknown input pin "
                    f"{arc.input!r}")
            if arc.output not in self.drive_resistance:
                raise StaError(
                    f"cell {self.name!r} arc references unknown output pin "
                    f"{arc.output!r}")
            if (arc.input, arc.output) in seen:
                raise StaError(
                    f"cell {self.name!r} has a duplicate arc "
                    f"{arc.input!r} -> {arc.output!r}")
            seen.add((arc.input, arc.output))

    @property
    def input_pins(self) -> tuple[str, ...]:
        return tuple(self.input_capacitance)

    @property
    def output_pins(self) -> tuple[str, ...]:
        return tuple(self.drive_resistance)

    def arcs_to(self, output: str) -> tuple[TimingArc, ...]:
        return tuple(arc for arc in self.arcs if arc.output == output)

    def to_dict(self) -> dict:
        return {
            "input_capacitance": dict(self.input_capacitance),
            "drive_resistance": dict(self.drive_resistance),
            "arcs": [arc.to_dict() for arc in self.arcs],
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Cell":
        if not isinstance(payload, dict):
            raise StaError(f"cell {name!r} must be an object, got {payload!r}")
        unknown = set(payload) - {"input_capacitance", "drive_resistance",
                                  "arcs"}
        if unknown:
            raise StaError(
                f"cell {name!r} has unknown fields: {', '.join(sorted(unknown))}")
        arcs = payload.get("arcs")
        if not isinstance(arcs, list):
            raise StaError(f"cell {name!r} 'arcs' must be a list")
        return cls(
            name=name,
            input_capacitance=dict(payload.get("input_capacitance") or {}),
            drive_resistance=dict(payload.get("drive_resistance") or {}),
            arcs=tuple(TimingArc.from_dict(arc) for arc in arcs),
        )


class CellLibrary:
    """A named collection of :class:`Cell`\\ s."""

    def __init__(self, name: str, cells):
        if not isinstance(name, str) or not name:
            raise StaError("library needs a non-empty name")
        self.name = name
        self._cells: dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise StaError(f"duplicate cell {cell.name!r} in library")
            self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise StaError(
                f"unknown cell {name!r}; library {self.name!r} has: "
                f"{', '.join(sorted(self._cells))}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._cells))

    def to_dict(self) -> dict:
        return {"name": self.name,
                "cells": {name: cell.to_dict()
                          for name, cell in sorted(self._cells.items())}}

    @classmethod
    def from_dict(cls, payload: dict) -> "CellLibrary":
        if not isinstance(payload, dict):
            raise StaError(f"library must be an object, got {payload!r}")
        unknown = set(payload) - {"name", "cells"}
        if unknown:
            raise StaError(
                f"library has unknown fields: {', '.join(sorted(unknown))}")
        cells = payload.get("cells")
        if not isinstance(cells, dict) or not cells:
            raise StaError("library 'cells' must be a non-empty object")
        return cls(payload.get("name") or "library",
                   [Cell.from_dict(name, cell)
                    for name, cell in cells.items()])


# ----------------------------------------------------------------------
# The built-in demo library
# ----------------------------------------------------------------------

#: Characterisation axes shared by every built-in cell.
_SLEW_AXIS = (5e-12, 2e-11, 8e-11, 3.2e-10)
_LOAD_AXIS = (1e-15, 4e-15, 1.6e-14, 6.4e-14)


def _combinational(name: str, inputs: dict[str, float], output: str,
                   resistance: float, intrinsic: float,
                   slew_factor: float = 0.15) -> Cell:
    """An affine-model cell: delay ``intrinsic + 0.69*R*load +
    slew_factor*slew`` and output slew ``2.2*R*load + 0.25*slew`` — the
    single-pole RC response the paper's switched-resistor gate implies."""
    delay = DelayTable.from_linear(intrinsic, slew_factor, 0.69 * resistance,
                                   _SLEW_AXIS, _LOAD_AXIS)
    slew = DelayTable.from_linear(2e-12, 0.25, 2.2 * resistance,
                                  _SLEW_AXIS, _LOAD_AXIS)
    arcs = tuple(TimingArc(pin, output, delay, slew) for pin in inputs)
    return Cell(name=name, input_capacitance=dict(inputs),
                drive_resistance={output: resistance}, arcs=arcs)


def default_library() -> CellLibrary:
    """The built-in five-cell demo library (identical on every call)."""
    return CellLibrary("repro-lite", [
        _combinational("INV_X1", {"A": 3e-15}, "Y", 4000.0, 12e-12),
        _combinational("INV_X4", {"A": 9e-15}, "Y", 1100.0, 10e-12),
        _combinational("BUF_X2", {"A": 4e-15}, "Y", 2200.0, 25e-12),
        _combinational("NAND2_X1", {"A": 3.5e-15, "B": 3.5e-15}, "Y",
                       4500.0, 16e-12),
        _combinational("NOR2_X1", {"A": 4e-15, "B": 4e-15}, "Y",
                       5200.0, 19e-12),
    ])
