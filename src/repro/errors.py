"""Exception hierarchy for the AWEsim reproduction.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch everything from one root.  The hierarchy mirrors the
pipeline: circuit construction problems, analysis (matrix) problems, and
AWE approximation problems each have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the package exception hierarchy."""


class CircuitError(ReproError):
    """A circuit is malformed or an element is invalid."""


class NetlistParseError(CircuitError):
    """A SPICE-style netlist deck could not be parsed.

    Attributes
    ----------
    line_number:
        1-based line number in the deck where the error occurred, or
        ``None`` when the error is not tied to one line.
    """

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class TopologyError(CircuitError):
    """The circuit topology violates a structural requirement.

    Raised, for example, when an RC-tree-only algorithm (tree walk Elmore
    delay) is applied to a circuit that is not an RC tree, or when a
    spanning tree cannot be built.
    """


class SingularCircuitError(ReproError):
    """The DC system is singular: no unique DC solution exists.

    The paper (Sec. III) requires the circuit to have a well-defined DC
    solution when capacitors are opened and inductors shorted.  Floating
    nodes (connected only through capacitors) or voltage-source loops
    trigger this error.
    """


class AnalysisError(ReproError):
    """A linear-analysis computation failed (DC, AC, or transient)."""


class ConvergenceError(AnalysisError):
    """The transient integrator could not meet its tolerance."""


class ApproximationError(ReproError):
    """The AWE approximation could not be constructed."""


class UnstableApproximationError(ApproximationError):
    """Moment matching produced a right-half-plane (unstable) pole.

    Section 3.3 of the paper: a low-order approximation of a nonmonotone
    response may have no stable solution; the remedy is to increase the
    approximation order.  :class:`~repro.core.driver.AweDriver` does this
    automatically; this error escapes only when the maximum order is
    reached without a stable model.
    """

    def __init__(self, message: str, order: int | None = None):
        super().__init__(message)
        self.order = order


class MomentMatrixError(ApproximationError):
    """The Hankel moment matrix is singular or too ill-conditioned.

    This is the failure mode that frequency scaling (paper Sec. 3.5) is
    designed to push out to higher orders; when it still occurs the
    requested order cannot be extracted from the available moments.
    """


class OrderLimitError(ApproximationError):
    """Automatic order escalation hit its cap without meeting the target."""


class BatchTimeoutError(ReproError):
    """A batch job exceeded its per-job wall-clock timeout.

    Raised inside a :class:`~repro.engine.batch.BatchEngine` worker and
    captured there into the job's failure record; it never aborts the
    batch as a whole.
    """


class StaError(ReproError):
    """A static-timing-analysis input or computation is invalid.

    Raised by :mod:`repro.sta` for malformed timing graphs (cycles,
    duplicate arcs, non-finite delays), design/library mismatches, and
    unsatisfiable analysis requests.  The service layer maps it to
    HTTP 400 when it occurs while parsing a ``POST /sta`` body.
    """


class WorkerCrashError(ReproError):
    """A pool worker process died and the one rebuild retry failed too.

    The :class:`~repro.engine.batch.BatchEngine` treats a broken process
    pool as recoverable: it rebuilds the pool once and re-runs only the
    jobs that were lost in flight.  Jobs that are lost *again* after the
    rebuild become failure records with this ``error_type`` — the signal
    the service layer counts toward its degraded state.
    """
