"""Command-line interface: deck in, timing/pole/waveform report out.

Installed as ``python -m repro``.  The subcommands:

``report``
    AWE timing report for one or more decks and nodes: order (fixed or
    automatic), poles, error estimate, final value, 50 %/threshold
    delays.  With ``--json`` / ``--markdown`` it runs the decks through
    the batch engine with tracing on and emits the machine-readable run
    report and/or the human-readable Markdown report (per-phase wall
    time, pole/residue tables, order-escalation trajectory — see
    ``docs/observability.md``); ``-`` writes to stdout.

``poles``
    Exact natural frequencies of the deck (the reference AWE approximates)
    and, optionally, the AWE poles at a given order for comparison.

``simulate``
    Run the SPICE-style transient reference and dump CSV samples — the
    escape hatch for inspecting any waveform exactly.

``batch``
    Run several decks through the :class:`~repro.engine.batch.BatchEngine`
    in one shot: per-deck timing rows, structured failure reporting (a bad
    deck never aborts the batch), optional process-pool fan-out
    (``--workers``), per-job timeouts, and ``--stats`` solver
    instrumentation (LU factorisations, triangular solves, moments, wall
    time) emitted as one JSON object on stderr — machine-parseable, never
    interleaved with the per-job table on stdout (``--stats-json PATH``
    writes it to a file instead).

``fuzz``
    Run the conformance fuzzer: seed-reproducible random circuits from
    every generator family pushed through the whole stack (parser →
    canonical writer → AWE → TR-BDF2 oracle → service cache key) and
    checked against the metamorphic-invariant registry (linearity,
    impedance/time/frequency-scaling covariance, Elmore equivalence,
    round-trip idempotence, batch-vs-sequential bit-identity,
    differential L2).  ``--shrink`` delta-debugs each failure to a
    minimal netlist; ``--report`` writes the deterministic JSON crash
    report (byte-identical across re-runs of the same seed range).  See
    ``docs/testing.md``.

``sta``
    Static timing analysis of a gate-level design (JSON): freeze a
    timing DAG whose net delays come from per-net AWE runs (or Elmore
    with ``--interconnect elmore``), propagate arrivals/requireds, and
    report per-endpoint slack plus the top-K critical paths — per
    corner (``--corner slow:wire_r=1.5,cell=1.3``, repeatable).  Runs
    locally by default or against a daemon with ``--server URL``
    (``POST /sta``); ``--json`` / ``--markdown`` emit the
    ``repro.sta-report/1`` document and its rendering.  See
    ``docs/sta.md``.

``serve``
    Run the long-lived analysis daemon: a JSON HTTP API (``POST
    /analyze``, ``POST /sta``, ``GET /healthz``, ``GET /metrics``) over
    a persistent worker pool with a content-addressed result cache,
    bounded-queue admission control (429 when full), and graceful
    SIGTERM drain.  See ``docs/service.md``.

``analyze``
    Client for a running daemon: send one deck to ``--server URL`` and
    print the timing table (or the raw run-report JSON with ``--json``).

``gateway``
    Run the sharded async gateway: an asyncio front end that spawns N
    single-engine ``serve`` children and routes ``/analyze`` / ``/sta``
    requests to them by canonical cache key, with a gateway-tier result
    cache, in-flight request coalescing, per-shard health with
    shed-load, and graceful drain.  Speaks the same protocol as
    ``serve``, so ``analyze --server`` and ``loadgen`` work against
    either.  See ``docs/service.md``.

``sweep``
    Incremental what-if sweep: parse and factor a deck once, then
    evaluate many perturbation points (scale or replace an R/C value,
    retune a source level) by recomputing only what each delta touches
    — adjoint first-order updates, Sherman–Morrison rank-1 updates, or
    a bit-exact re-stamp fallback.  Runs locally by default or against
    a daemon/gateway with ``--server URL`` (``POST /sweep``).  See
    ``docs/sweep.md``.

``loadgen``
    Drive a seeded, replayable request mix against a daemon or gateway
    at fixed concurrency and print p50/p99 latency, RPS, cache hits,
    and failures (JSON with ``--json``) — the measurement harness
    behind ``BENCH_scaling.json``'s ``gateway_scaling`` entry.

Examples::

    python -m repro report net.sp --node out --target 0.01 --threshold 2.5
    python -m repro report net1.sp net2.sp --node out --json run.json --markdown run.md
    python -m repro poles net.sp --order 2 --node out --source Vin
    python -m repro simulate net.sp --node out --t-stop 5e-9 --csv out.csv
    python -m repro batch net1.sp net2.sp --node out --workers 4 --stats
    python -m repro fuzz --seeds 200 --shrink --report crashes.json
    python -m repro sta design.json --k 5 --corner slow:wire_r=1.5,cell=1.3
    python -m repro serve --port 8040 --workers 4 --cache-dir /var/cache/repro
    python -m repro analyze net.sp --server http://127.0.0.1:8040 --node out
    python -m repro gateway --port 8050 --shards 4 --cache-dir /var/cache/repro
    python -m repro sweep net.sp --node out --point R1:scale=1.2 --point C3:value=40f
    python -m repro loadgen --server http://127.0.0.1:8050 --mix hot --requests 128
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__
from repro.analysis.mna import MnaSystem
from repro.analysis.poles import circuit_poles
from repro.analysis.transient import simulate
from repro.circuit.parser import parse_netlist_file
from repro.circuit.units import format_engineering as fmt
from repro.core.driver import AweAnalyzer
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AWE (Asymptotic Waveform Evaluation) timing analysis",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="AWE timing / run report")
    report.add_argument("decks", nargs="+", metavar="deck",
                        help="SPICE-style netlist file(s)")
    report.add_argument("--node", action="append", required=True,
                        help="output node, applied to every deck (repeatable)")
    group = report.add_mutually_exclusive_group()
    group.add_argument("--order", type=int, help="fixed AWE order")
    group.add_argument("--target", type=float, default=0.01,
                       help="error target for automatic order (default 0.01)")
    report.add_argument("--threshold", type=float,
                        help="logic threshold for an extra delay column (V)")
    report.add_argument("--max-order", type=int, default=8)
    report.add_argument("--workers", type=int, default=1,
                        help="process-pool width (default 1 = in-process)")
    report.add_argument("--timeout", type=float,
                        help="per-job wall-clock timeout in seconds")
    report.add_argument("--reduce", action="store_true",
                        help="collapse series RC chains before analysis "
                             "(docs/scaling.md)")
    report.add_argument("--json", metavar="PATH",
                        help="write the machine-readable run report "
                             "(schema repro.run-report/1) here; '-' = stdout")
    report.add_argument("--markdown", metavar="PATH",
                        help="write the human-readable Markdown run report "
                             "here; '-' = stdout")

    poles = commands.add_parser("poles", help="exact (and AWE) poles")
    poles.add_argument("deck")
    poles.add_argument("--order", type=int,
                       help="also print AWE poles of this order")
    poles.add_argument("--node", help="output node for the AWE poles")
    poles.add_argument("--source", help="driving source (default: first)")

    transient = commands.add_parser("simulate", help="transient reference run")
    transient.add_argument("deck")
    transient.add_argument("--node", action="append", required=True)
    transient.add_argument("--t-stop", type=float, required=True)
    transient.add_argument("--csv", help="write samples to this CSV file")
    transient.add_argument("--tolerance", type=float, default=1e-4)

    sens = commands.add_parser(
        "sensitivity",
        help="adjoint delay gradient: which R/C to change to fix a path",
    )
    sens.add_argument("deck")
    sens.add_argument("--node", required=True, help="output node")
    sens.add_argument("--top", type=int, default=8,
                      help="number of contributors to list (default 8)")

    batch = commands.add_parser(
        "batch", help="batch AWE timing across several decks"
    )
    batch.add_argument("decks", nargs="+", help="SPICE-style netlist files")
    batch.add_argument("--node", action="append", required=True,
                       help="output node, applied to every deck (repeatable)")
    batch_group = batch.add_mutually_exclusive_group()
    batch_group.add_argument("--order", type=int, help="fixed AWE order")
    batch_group.add_argument("--target", type=float, default=0.01,
                             help="error target for automatic order (default 0.01)")
    batch.add_argument("--max-order", type=int, default=8)
    batch.add_argument("--workers", type=int, default=1,
                       help="process-pool width (default 1 = in-process)")
    batch.add_argument("--timeout", type=float,
                       help="per-job wall-clock timeout in seconds")
    batch.add_argument("--reduce", action="store_true",
                       help="collapse series RC chains before analysis "
                            "(docs/scaling.md)")
    batch.add_argument("--stats", action="store_true",
                       help="emit solver instrumentation counters as one "
                            "JSON object on stderr")
    batch.add_argument("--stats-json", metavar="PATH",
                       help="write the instrumentation JSON to this file "
                            "instead of stderr")

    fuzz = commands.add_parser(
        "fuzz", help="conformance fuzzing campaign (docs/testing.md)"
    )
    fuzz.add_argument("--seeds", type=int, default=50,
                      help="number of seeds to run (default 50)")
    fuzz.add_argument("--seed-start", type=int, default=0,
                      help="first seed of the range (default 0)")
    fuzz.add_argument("--family", choices=None,
                      help="pin every seed to one generator family")
    fuzz.add_argument("--check", action="append", metavar="NAME",
                      help="run only this invariant check (repeatable; "
                           "default: all)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="delta-debug each failure to a minimal netlist")
    fuzz.add_argument("--report", metavar="PATH",
                      help="write the JSON crash report here; '-' = stdout")
    fuzz.add_argument("--ablate-scaling", action="store_true",
                      help="disable eq. 47 frequency scaling in every AWE "
                           "solve — an injected bug for exercising the "
                           "fuzzer itself")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress the per-failure progress lines")

    sta = commands.add_parser(
        "sta", help="static timing analysis of a design (docs/sta.md)"
    )
    sta.add_argument("design", help="design JSON file ('-' = stdin)")
    sta.add_argument("--k", type=int, default=5,
                     help="critical paths to report per corner (default 5)")
    sta.add_argument("--interconnect", choices=["awe", "elmore"],
                     default="awe",
                     help="net-delay model: AWE waveforms (default) or "
                          "first-moment Elmore")
    sta.add_argument("--corner", action="append", metavar="SPEC",
                     help="analysis corner as NAME[:wire_r=F,wire_c=F,"
                          "cell=F] (repeatable; default: nominal)")
    sta.add_argument("--library", metavar="PATH",
                     help="cell-library JSON (default: the built-in "
                          "five-cell library)")
    sta.add_argument("--server", metavar="URL",
                     help="run on a daemon via POST /sta instead of locally")
    sta.add_argument("--timeout", type=float,
                     help="server-side per-request budget in seconds "
                          "(with --server)")
    sta.add_argument("--retries", type=int, default=2,
                     help="extra attempts for transient failures "
                          "(with --server; default 2)")
    sta.add_argument("--json", metavar="PATH",
                     help="write the repro.sta-report/1 JSON here; "
                          "'-' = stdout")
    sta.add_argument("--markdown", metavar="PATH",
                     help="write the Markdown report here; '-' = stdout")

    serve = commands.add_parser(
        "serve", help="run the long-lived analysis daemon (docs/service.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8040,
                       help="listening port; 0 picks a free one (default 8040)")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent analysis worker threads (default 2)")
    serve.add_argument("--queue-size", type=int, default=16,
                       help="admission bound: waiting requests beyond this "
                            "are refused with HTTP 429 (default 16)")
    serve.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                       help="in-memory result-cache budget (default 64 MiB)")
    serve.add_argument("--cache-dir", metavar="PATH",
                       help="persist cached reports here (restart-warm cache)")
    serve.add_argument("--timeout", type=float,
                       help="default per-request wall-clock budget in seconds")
    serve.add_argument("--reduce", action="store_true",
                       help="collapse series RC chains by default for "
                            "requests that don't say (docs/scaling.md)")
    serve.add_argument("--engine-workers", type=int, default=1,
                       help="analysis processes per worker thread's engine; "
                            ">1 enables the self-healing process pool "
                            "(default 1, in-process)")
    serve.add_argument("--degraded-threshold", type=int, default=3,
                       help="consecutive worker-crash requests before "
                            "/healthz flips to degraded (default 3)")
    serve.add_argument("--faults", metavar="SPEC",
                       help="install a fault-injection plan for this process, "
                            "e.g. 'worker_crash=1:x1,http_503=0.1' "
                            "(testing only; see docs/service.md)")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault plan's probability draws "
                            "(default 0)")

    analyze = commands.add_parser(
        "analyze", help="send one deck to a running daemon"
    )
    analyze.add_argument("deck", help="SPICE-style netlist file")
    analyze.add_argument("--server", required=True, metavar="URL",
                         help="daemon base URL, e.g. http://127.0.0.1:8040")
    analyze.add_argument("--node", action="append", required=True,
                         help="output node (repeatable)")
    analyze_group = analyze.add_mutually_exclusive_group()
    analyze_group.add_argument("--order", type=int, help="fixed AWE order")
    analyze_group.add_argument("--target", type=float, default=0.01,
                               help="error target for automatic order "
                                    "(default 0.01)")
    analyze.add_argument("--max-order", type=int, default=8)
    analyze.add_argument("--threshold", type=float,
                         help="logic threshold for an extra delay column (V)")
    analyze.add_argument("--timeout", type=float,
                         help="server-side per-request budget in seconds")
    analyze.add_argument("--reduce", action="store_true",
                         help="ask the server to collapse series RC chains "
                              "before analysis (docs/scaling.md)")
    analyze.add_argument("--retries", type=int, default=2,
                         help="extra attempts for transient failures "
                              "(429/503/connection errors; default 2)")
    analyze.add_argument("--json", metavar="PATH",
                         help="write the raw run-report JSON here; '-' = stdout")

    gateway = commands.add_parser(
        "gateway",
        help="run the sharded async gateway over N serve children "
             "(docs/service.md)",
    )
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=8050,
                         help="listening port; 0 picks a free one "
                              "(default 8050)")
    gateway.add_argument("--shards", type=int, default=4,
                         help="single-engine worker daemons to spawn "
                              "(default 4)")
    gateway.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                         help="gateway-tier in-memory result-cache budget "
                              "(default 64 MiB)")
    gateway.add_argument("--cache-dir", metavar="PATH",
                         help="shared disk cache directory — the gateway "
                              "and every shard write through to it")
    gateway.add_argument("--timeout", type=float,
                         help="default per-request wall-clock budget in "
                              "seconds")
    gateway.add_argument("--degraded-threshold", type=int, default=3,
                         help="consecutive forward failures before a shard "
                              "is shed (default 3)")
    gateway.add_argument("--reduce", action="store_true",
                         help="collapse series RC chains by default (the "
                              "shards inherit the setting)")
    gateway.add_argument("--shard-engine-workers", type=int, default=1,
                         help="process-pool width inside each shard "
                              "(default 1)")
    gateway.add_argument("--shard-queue-size", type=int, default=64,
                         help="admission bound of each shard daemon "
                              "(default 64)")
    gateway.add_argument("--faults", metavar="SPEC",
                         help="install a fault plan in the gateway process, "
                              "e.g. 'shard_crash=1:x3' (testing only)")
    gateway.add_argument("--fault-seed", type=int, default=0,
                         help="seed for the fault plan (default 0)")

    sweep = commands.add_parser(
        "sweep",
        help="incremental what-if sweep: one factorization, many points "
             "(docs/sweep.md)",
    )
    sweep.add_argument("deck", help="SPICE-style netlist file")
    sweep.add_argument("--node", required=True,
                       help="output node the swept moments belong to")
    sweep.add_argument("--point", action="append", metavar="SPEC",
                       help="one perturbation as ELEMENT:scale=F or "
                            "ELEMENT:value=V[,label=TEXT] — engineering "
                            "suffixes welcome (repeatable)")
    sweep.add_argument("--plan", metavar="PATH",
                       help="JSON plan file: a list of point objects or a "
                            "full plan payload ('-' = stdin); combined "
                            "with --point specs in that order")
    sweep.add_argument("--mode", choices=["auto", "first_order", "rank1",
                                          "exact"], default="auto",
                       help="pin every point to one tier (default auto: "
                            "cheapest valid tier per point)")
    sweep.add_argument("--first-order-threshold", type=float, default=0.05,
                       help="largest relative value change the gradient "
                            "tier may serve in auto mode (default 0.05)")
    sweep.add_argument("--error-bound", type=float, default=1e-3,
                       help="largest estimated relative error before a "
                            "point escalates a tier (default 1e-3)")
    sweep.add_argument("--server", metavar="URL",
                       help="run on a daemon/gateway via POST /sweep "
                            "instead of locally")
    sweep.add_argument("--timeout", type=float,
                       help="server-side per-request budget in seconds "
                            "(with --server)")
    sweep.add_argument("--retries", type=int, default=2,
                       help="extra attempts for transient failures "
                            "(with --server; default 2)")
    sweep.add_argument("--json", metavar="PATH",
                       help="write the repro.sweep-report/1 JSON here; "
                            "'-' = stdout")
    sweep.add_argument("--markdown", metavar="PATH",
                       help="write the Markdown report here; '-' = stdout")

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a seeded request mix against a daemon or gateway",
    )
    loadgen.add_argument("--server", required=True, metavar="URL",
                         help="target base URL (daemon or gateway)")
    loadgen.add_argument("--mix", choices=["miss", "hot", "mixed"],
                         default="miss",
                         help="request mix: distinct decks (miss), rounds "
                              "of identical decks (hot), or alternating "
                              "(mixed; default miss)")
    loadgen.add_argument("--requests", type=int, default=64,
                         help="total requests to send (default 64)")
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="worker threads / herd width (default 8)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="mix seed — same seed, same byte-identical "
                              "request stream (default 0)")
    loadgen.add_argument("--sections", type=int, default=4,
                         help="RC-ladder sections per generated deck "
                              "(default 4; more = heavier requests)")
    loadgen.add_argument("--retries", type=int, default=2,
                         help="client retries for transient failures "
                              "(default 2)")
    loadgen.add_argument("--json", metavar="PATH",
                         help="write the measurement document here; "
                              "'-' = stdout")
    return parser


def _load(deck_path: str):
    deck = parse_netlist_file(deck_path)
    if deck.title:
        print(f"deck: {deck.title}")
    print(f"  {len(deck.circuit)} elements, {deck.circuit.node_count} nodes, "
          f"{deck.circuit.state_count} state variables")
    return deck


def _write_text(target: str, text: str) -> None:
    """Write ``text`` to a path, or to stdout when the path is ``-``."""
    if target == "-":
        sys.stdout.write(text)
        return
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {target}", file=sys.stderr)


def cmd_report(args) -> int:
    import json
    import time

    from repro.engine import AweJob, BatchEngine
    from repro.report import build_report, render_markdown, validate_report

    # Document mode emits machine/human reports; the classic text table is
    # reserved for plain invocations so `--json -` stays valid JSON.
    document_mode = args.json is not None or args.markdown is not None

    jobs = []
    parse_seconds: dict[str, float] = {}
    for path in args.decks:
        started = time.perf_counter()
        deck = parse_netlist_file(path) if document_mode else _load(path)
        label = deck.title or path
        parse_seconds[label] = (
            parse_seconds.get(label, 0.0) + time.perf_counter() - started
        )
        jobs.append(
            AweJob(
                deck.circuit,
                tuple(args.node),
                stimuli=deck.stimuli,
                order=args.order,
                error_target=args.target,
                max_order=args.max_order,
                label=label,
                reduce=args.reduce,
            )
        )

    engine = BatchEngine(workers=args.workers, timeout=args.timeout)
    results = engine.run(jobs, trace=document_mode)
    failures = [result for result in results if not result.ok]

    if document_mode:
        document = validate_report(
            build_report(
                results,
                engine_stats=engine.stats(),
                parse_seconds=parse_seconds,
                threshold=args.threshold,
            )
        )
        if args.json is not None:
            _write_text(args.json, json.dumps(document, indent=2) + "\n")
        if args.markdown is not None:
            _write_text(args.markdown, render_markdown(document))
        for result in failures:
            print(f"error: {result.label}: [{result.error_type}] {result.error}",
                  file=sys.stderr)
        return 1 if failures else 0

    header = f"  {'node':<8} {'order':>5} {'estimate':>9} {'final':>9} {'50% delay':>11}"
    if args.threshold is not None:
        header += f" {'thr delay':>11}"
    for result in results:
        if not result.ok:
            continue
        title = ("AWE timing report:" if len(results) == 1
                 else f"AWE timing report: {result.label}")
        print(f"\n{title}")
        print(header)
        for node, response in result.responses.items():
            estimate = response.error_estimate
            estimate_text = (f"{estimate:.3%}"
                             if estimate is not None and np.isfinite(estimate)
                             else "n/a")
            final = response.waveform.final_value()
            initial = float(response.waveform.evaluate(0.0))
            if abs(final - initial) < 1e-6 * max(abs(final), abs(initial), 1.0):
                delay_text = "n/a"  # no net transition (e.g. a victim node)
            else:
                delay_text = fmt(response.delay_50(), "s")
            line = (f"  {node:<8} {response.order:>5} {estimate_text:>9} "
                    f"{final:>8.4f}V {delay_text:>11}")
            if args.threshold is not None:
                line += f" {fmt(response.delay(args.threshold), 's'):>11}"
            print(line)
    for result in failures:
        print(f"error: {result.label}: [{result.error_type}] {result.error}",
              file=sys.stderr)
    return 1 if failures else 0


def cmd_poles(args) -> int:
    deck = _load(args.deck)
    system = MnaSystem(deck.circuit)
    decomposition = circuit_poles(system)
    print(f"\nexact poles ({decomposition.order}), dominant first:")
    for pole in decomposition.sorted_by_dominance():
        imag = f" {pole.imag:+.6e}j" if pole.imag else ""
        print(f"  {pole.real:+.6e}{imag}")
    if args.order is not None:
        if not args.node:
            print("error: --order needs --node", file=sys.stderr)
            return 2
        analyzer = AweAnalyzer(deck.circuit, deck.stimuli)
        response = analyzer.response(args.node, order=args.order)
        print(f"\nAWE poles, order {args.order} at node {args.node}:")
        for pole in response.poles:
            imag = f" {pole.imag:+.6e}j" if pole.imag else ""
            print(f"  {pole.real:+.6e}{imag}")
    return 0


def cmd_simulate(args) -> int:
    deck = _load(args.deck)
    result = simulate(deck.circuit, deck.stimuli, args.t_stop,
                      refine_tolerance=args.tolerance)
    waveforms = {node: result.voltage(node) for node in args.node}
    print(f"\ntransient: {len(result.times)} points, "
          f"{result.refinements} refinement(s)")
    for node, waveform in waveforms.items():
        print(f"  v({node}): {waveform.values[0]:.4f} V -> "
              f"{waveform.values[-1]:.4f} V, extrema "
              f"[{waveform.values.min():.4f}, {waveform.values.max():.4f}]")
    if args.csv:
        header = "time," + ",".join(f"v({n})" for n in args.node)
        table = np.column_stack(
            [result.times] + [waveforms[n].values for n in args.node]
        )
        np.savetxt(args.csv, table, delimiter=",", header=header, comments="")
        print(f"wrote {args.csv}")
    return 0


def cmd_sensitivity(args) -> int:
    from repro.core.sensitivity import delay_sensitivities

    deck = _load(args.deck)
    # The gradient is defined on the post-switch levels: each stimulus's
    # final value (the parser stores the *pre*-switch level on the element).
    levels = {name: stim.final_value for name, stim in deck.stimuli.items()}
    sens = delay_sensitivities(deck.circuit, args.node, levels)
    print(f"\nfirst-moment (Elmore) delay at {args.node}: "
          f"{fmt(sens.elmore_delay, 's')}")
    print(f"top {args.top} contributors (x·dT/dx — delay bought per unit "
          "relative change):")
    for name, value in sens.top_contributors(args.top):
        element = deck.circuit[name]
        nominal = getattr(element, "resistance", None)
        unit = "ohm"
        if nominal is None:
            nominal, unit = element.capacitance, "F"
        print(f"  {name:<10} {fmt(value, 's'):>10}   (nominal {fmt(nominal, unit)})")
    return 0


def cmd_batch(args) -> int:
    import json

    from repro.engine import AweJob, BatchEngine
    from repro.errors import ReproError as _ReproError

    jobs = []
    parse_failures: list[tuple[str, str]] = []
    for path in args.decks:
        try:
            deck = parse_netlist_file(path)
        except (FileNotFoundError, _ReproError) as exc:
            parse_failures.append((path, str(exc)))
            continue
        jobs.append(
            AweJob(
                deck.circuit,
                tuple(args.node),
                stimuli=deck.stimuli,
                order=args.order,
                error_target=args.target,
                max_order=args.max_order,
                label=deck.title or path,
                reduce=args.reduce,
            )
        )

    engine = BatchEngine(workers=args.workers, timeout=args.timeout)
    results = engine.run(jobs)

    print(f"batch: {len(jobs)} job(s), {args.workers} worker(s)")
    print(f"  {'deck':<24} {'node':<8} {'order':>5} {'final':>9} {'50% delay':>11}")
    failed = len(parse_failures)
    for result in results:
        if not result.ok:
            failed += 1
            print(f"  {result.label:<24} FAILED [{result.error_type}] {result.error}")
            continue
        for node, response in result.responses.items():
            final = response.waveform.final_value()
            initial = float(response.waveform.evaluate(0.0))
            if abs(final - initial) < 1e-6 * max(abs(final), abs(initial), 1.0):
                delay_text = "n/a"
            else:
                delay_text = fmt(response.delay_50(), "s")
            print(f"  {result.label:<24} {node:<8} {response.order:>5} "
                  f"{final:>8.4f}V {delay_text:>11}")
    for path, message in parse_failures:
        print(f"  {path:<24} FAILED [parse] {message}")

    if args.stats or args.stats_json:
        # One JSON object, kept off stdout so the per-job table stays
        # clean and the stats block stays machine-parseable.
        stats_text = json.dumps(engine.stats(), sort_keys=True)
        if args.stats_json:
            with open(args.stats_json, "w", encoding="utf-8") as handle:
                handle.write(stats_text + "\n")
            print(f"wrote {args.stats_json}", file=sys.stderr)
        else:
            print(stats_text, file=sys.stderr)
    if failed:
        print(f"\n{failed} of {len(jobs) + len(parse_failures)} job(s) failed")
    return 1 if failed else 0


def cmd_fuzz(args) -> int:
    import json

    from repro.conformance import FAMILIES, CHECKS, FuzzConfig, run_fuzz

    if args.family is not None and args.family not in FAMILIES:
        print(f"error: unknown family {args.family!r}; known: "
              f"{', '.join(sorted(FAMILIES))}", file=sys.stderr)
        return 2
    for name in args.check or ():
        if name not in CHECKS:
            print(f"error: unknown check {name!r}; known: "
                  f"{', '.join(CHECKS)}", file=sys.stderr)
            return 2

    config = FuzzConfig(checks=tuple(args.check or ()),
                        use_scaling=not args.ablate_scaling)

    def progress(event: dict) -> None:
        if args.quiet or not event["failures"]:
            return
        print(f"  seed {event['seed']} ({event['family']}): "
              f"{event['failures']} failing check(s)", file=sys.stderr)

    report = run_fuzz(
        range(args.seed_start, args.seed_start + args.seeds),
        config=config,
        family=args.family,
        shrink=args.shrink,
        progress=progress,
    )
    if args.report is not None:
        _write_text(args.report, json.dumps(report, indent=2, sort_keys=True) + "\n")

    # With `--report -` the JSON owns stdout; the human summary moves to
    # stderr so the output stays parseable.
    out = sys.stderr if args.report == "-" else sys.stdout
    totals = report["totals"]
    print(f"fuzz: {totals['cases']} case(s), {totals['checks']} check run(s): "
          f"{totals['passes']} passed, {totals['skips']} skipped, "
          f"{totals['violations']} violation(s), {totals['crashes']} crash(es)",
          file=out)
    for record in report["failures"]:
        what = (record["error"]["type"] + ": " + record["error"]["message"]
                if record["kind"] == "crash"
                else "; ".join(record["violations"]))
        shrunk = record.get("shrunk")
        suffix = (f" [shrunk to {shrunk['elements']} elements]"
                  if shrunk and "elements" in shrunk else "")
        print(f"  FAIL seed {record['seed']} {record['check']}: {what}{suffix}",
              file=out)
    return 0 if report["ok"] else 1


def _parse_corner_spec(spec: str):
    """``NAME[:wire_r=F,wire_c=F,cell=F]`` → :class:`repro.sta.Corner`."""
    from repro.sta import Corner

    name, _, rest = spec.partition(":")
    if not name:
        raise ReproError(f"corner spec {spec!r} needs a name")
    factors = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep or key not in ("wire_r", "wire_c", "cell"):
                raise ReproError(
                    f"corner spec {spec!r}: expected wire_r=, wire_c= or "
                    f"cell= assignments, got {item!r}")
            try:
                factors[key] = float(value)
            except ValueError:
                raise ReproError(
                    f"corner spec {spec!r}: {key} must be a number, "
                    f"got {value!r}") from None
    return Corner(name=name, **factors)


def cmd_sta(args) -> int:
    import json
    import time

    from repro.report import (build_sta_report, render_sta_markdown,
                              validate_sta_report)
    from repro.sta import CellLibrary, Design, run_sta
    from repro.trace import Tracer

    started = time.perf_counter()
    if args.design == "-":
        design_payload = json.load(sys.stdin)
    else:
        with open(args.design, "r", encoding="utf-8") as handle:
            design_payload = json.load(handle)
    design = Design.from_dict(design_payload)
    library = None
    if args.library is not None:
        with open(args.library, "r", encoding="utf-8") as handle:
            library = CellLibrary.from_dict(json.load(handle))
    corners = None
    if args.corner:
        corners = [_parse_corner_spec(spec) for spec in args.corner]
    parse_s = time.perf_counter() - started

    if args.server is not None:
        from repro.service import AnalysisClient

        client = AnalysisClient(args.server, retries=args.retries)
        outcome = client.sta(design, k=args.k, corners=corners,
                             interconnect=args.interconnect,
                             library=library, timeout=args.timeout)
        document = outcome.document
        body_text = outcome.body.decode("utf-8")
        print(f"server: {args.server} "
              f"[{'cache hit' if outcome.cached else 'computed'}, "
              f"{outcome.server_elapsed_s * 1e3:.2f} ms server-side]",
              file=sys.stderr)
    else:
        from repro.sta import NOMINAL

        tracer = Tracer(name="sta", design=design.name)
        run = run_sta(design, library=library, k=args.k,
                      corners=tuple(corners) if corners else (NOMINAL,),
                      interconnect=args.interconnect, tracer=tracer)
        document = validate_sta_report(
            build_sta_report(run, trace=tracer.to_record(), parse_s=parse_s))
        body_text = json.dumps(document, indent=2) + "\n"

    if args.json is not None:
        _write_text(args.json, body_text)
    if args.markdown is not None:
        _write_text(args.markdown, render_sta_markdown(document))
    if args.json is None and args.markdown is None:
        worst = document["worst_slack_s"]
        worst_text = "unconstrained" if worst is None else fmt(worst, "s")
        print(f"STA: {document['design']} "
              f"[{document['interconnect']}] worst slack {worst_text}")
        for corner in document["corners"]:
            print(f"\ncorner {corner['name']}: {corner['nodes']} nodes, "
                  f"{corner['edges']} edges")
            print(f"  {'#':>2} {'slack':>12} {'endpoint':<18} path")
            for entry in corner["paths"]:
                chain = " > ".join(entry["nodes"])
                print(f"  {entry['rank']:>2} {fmt(entry['slack_s'], 's'):>12} "
                      f"{entry['endpoint']:<18} {chain}")
    return 0


def cmd_serve(args) -> int:
    from repro.service import serve

    def announce(server):
        # The parseable "where am I" line smoke tests and wrappers key on;
        # flushed immediately so a --port 0 caller can read the real port.
        print(f"repro service listening on {server.url}", flush=True)
        print(f"  workers={args.workers} queue_size={args.queue_size} "
              f"cache_bytes={args.cache_bytes}"
              + (f" cache_dir={args.cache_dir}" if args.cache_dir else "")
              + (f" engine_workers={args.engine_workers}"
                 if args.engine_workers != 1 else "")
              + (f" faults={args.faults!r}" if args.faults else ""),
              flush=True)

    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache_bytes=args.cache_bytes,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        default_reduce=args.reduce,
        engine_workers=args.engine_workers,
        degraded_threshold=args.degraded_threshold,
        fault_spec=args.faults,
        fault_seed=args.fault_seed,
        announce=announce,
    )


def cmd_analyze(args) -> int:
    import json

    from repro.service import AnalysisClient

    client = AnalysisClient(args.server, retries=args.retries)
    outcome = client.analyze_file(
        args.deck,
        args.node,
        order=args.order,
        error_target=None if args.order is not None else args.target,
        max_order=args.max_order,
        threshold=args.threshold,
        timeout=args.timeout,
        reduce=True if args.reduce else None,
    )
    print(f"server: {args.server} "
          f"[{'cache hit' if outcome.cached else 'computed'}, "
          f"{outcome.server_elapsed_s * 1e3:.2f} ms server-side]",
          file=sys.stderr)

    if args.json is not None:
        _write_text(args.json, outcome.body.decode("utf-8"))
    else:
        for job in outcome.document["jobs"]:
            title = f"AWE timing report: {job['label']}"
            print(f"\n{title}")
            header = f"  {'node':<8} {'order':>5} {'estimate':>9} {'final':>9} {'50% delay':>11}"
            if args.threshold is not None:
                header += f" {'thr delay':>11}"
            print(header)
            for response in job["responses"]:
                estimate = response["error_estimate"]
                estimate_text = (f"{estimate:.3%}" if estimate is not None
                                 else "n/a")
                final = response["final_value"]
                final_text = f"{final:>8.4f}V" if final is not None else "      n/a"
                delay = response.get("delay_50_s")
                delay_text = fmt(delay, "s") if delay is not None else "n/a"
                line = (f"  {response['node']:<8} {response['order']:>5} "
                        f"{estimate_text:>9} {final_text} {delay_text:>11}")
                if args.threshold is not None:
                    thr = response.get("delay_threshold_s")
                    line += f" {fmt(thr, 's') if thr is not None else 'n/a':>11}"
                print(line)
    failures = [job for job in outcome.document["jobs"] if not job["ok"]]
    for job in failures:
        print(f"error: {job['label']}: [{job['error_type']}] {job['error']}",
              file=sys.stderr)
    return 1 if failures else 0


def cmd_gateway(args) -> int:
    from repro.gateway import serve_gateway

    def announce(server):
        # Same parseable shape as serve's announce line, s/service/gateway/.
        print(f"repro gateway listening on {server.url}", flush=True)
        shard_urls = " ".join(
            shard.url for shard in server.service.shards)
        print(f"  shards={args.shards} cache_bytes={args.cache_bytes}"
              + (f" cache_dir={args.cache_dir}" if args.cache_dir else "")
              + (f" faults={args.faults!r}" if args.faults else ""),
              flush=True)
        print(f"  shard urls: {shard_urls}", flush=True)

    return serve_gateway(
        host=args.host,
        port=args.port,
        shards=args.shards,
        cache_bytes=args.cache_bytes,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        degraded_threshold=args.degraded_threshold,
        default_reduce=args.reduce,
        shard_engine_workers=args.shard_engine_workers,
        shard_queue_size=args.shard_queue_size,
        fault_spec=args.faults,
        fault_seed=args.fault_seed,
        announce=announce,
    )


def _parse_point_spec(spec: str) -> dict:
    """``ELEMENT:scale=F`` / ``ELEMENT:value=V[,label=TEXT]`` → point dict."""
    from repro.circuit.units import parse_value

    element, sep, rest = spec.partition(":")
    if not element or not sep or not rest:
        raise ReproError(
            f"malformed point spec {spec!r}; expected "
            "ELEMENT:scale=F or ELEMENT:value=V[,label=TEXT]")
    point: dict = {"element": element}
    for assignment in rest.split(","):
        name, sep, raw = assignment.partition("=")
        name = name.strip()
        if not sep or name not in ("scale", "value", "label"):
            raise ReproError(
                f"malformed point spec {spec!r}: bad field {assignment!r}")
        point[name] = raw if name == "label" else parse_value(raw.strip())
    if ("scale" in point) == ("value" in point):
        raise ReproError(
            f"point spec {spec!r} needs exactly one of scale= or value=")
    return point


def cmd_sweep(args) -> int:
    import json
    import time

    from repro.report import (build_sweep_report, render_sweep_markdown,
                              validate_sweep_report)
    from repro.sweep import SweepEngine, SweepPlan
    from repro.trace import Tracer

    points = [_parse_point_spec(spec) for spec in (args.point or [])]
    plan_defaults: dict = {}
    if args.plan is not None:
        if args.plan == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.plan, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        if isinstance(payload, list):
            points.extend(payload)
        elif isinstance(payload, dict):
            points.extend(payload.get("points", []))
            plan_defaults = {name: payload[name]
                             for name in ("mode", "first_order_threshold",
                                          "error_bound")
                             if name in payload}
        else:
            raise ReproError("--plan must be a JSON list or object")
    if not points:
        raise ReproError("no sweep points: give --point and/or --plan")

    plan_payload = {
        "node": args.node,
        "points": points,
        "mode": plan_defaults.get("mode", args.mode),
        "first_order_threshold": plan_defaults.get(
            "first_order_threshold", args.first_order_threshold),
        "error_bound": plan_defaults.get("error_bound", args.error_bound),
    }

    if args.server is not None:
        from repro.service import AnalysisClient

        with open(args.deck, "r", encoding="utf-8") as handle:
            deck_text = handle.read()
        client = AnalysisClient(args.server, retries=args.retries)
        outcome = client.sweep(
            deck_text, args.node, plan_payload["points"],
            mode=plan_payload["mode"],
            first_order_threshold=plan_payload["first_order_threshold"],
            error_bound=plan_payload["error_bound"],
            timeout=args.timeout)
        document = outcome.document
        body_text = outcome.body.decode("utf-8")
        print(f"server: {args.server} "
              f"[{'cache hit' if outcome.cached else 'computed'}, "
              f"{outcome.server_elapsed_s * 1e3:.2f} ms server-side]",
              file=sys.stderr)
    else:
        started = time.perf_counter()
        deck = parse_netlist_file(args.deck)
        plan = SweepPlan.from_payload(plan_payload)
        parse_s = time.perf_counter() - started
        tracer = Tracer(name="sweep", deck=deck.title or args.deck,
                        points=len(plan.points))
        engine = SweepEngine(deck.circuit, deck.stimuli, tracer=tracer)
        result = engine.evaluate(plan)
        document = validate_sweep_report(
            build_sweep_report(result, trace=tracer.to_record(),
                               parse_s=parse_s))
        body_text = json.dumps(document, indent=2) + "\n"

    if args.json is not None:
        _write_text(args.json, body_text)
    if args.markdown is not None:
        _write_text(args.markdown, render_sweep_markdown(document))
    if args.json is None and args.markdown is None:
        base = document["base"]
        stats = document["stats"]
        print(f"sweep: node {document['node']}, "
              f"base Elmore delay {fmt(base['elmore_delay'], 's')}")
        print(f"  {len(document['points'])} point(s): "
              f"{document['incremental_points']} incremental "
              f"(first_order {stats['first_order']}, rank1 {stats['rank1']}), "
              f"{stats['exact']} exact, {stats['fallbacks']} fallback(s), "
              f"{stats['factorizations']} extra factorization(s)")
        print(f"  {'element':<10} {'value':>12} {'mode':<13} "
              f"{'dc':>9} {'Elmore delay':>13} {'est. err':>9}")
        for entry in document["points"]:
            estimate = entry["error_estimate"]
            mode = entry["mode"] + ("*" if entry["fallback"] else "")
            print(f"  {entry['element']:<10} {entry['value']:>12.6g} "
                  f"{mode:<13} {entry['dc']:>9.4g} "
                  f"{fmt(entry['elmore_delay'], 's'):>13} "
                  f"{'n/a' if estimate is None else f'{estimate:.2g}':>9}")
        if any(entry["fallback"] for entry in document["points"]):
            print("  (* demoted tier; see the sweep_fallback trace events)")
    return 0


def cmd_loadgen(args) -> int:
    import json

    from repro.gateway import build_mix, coalesced_delta, run_loadgen
    from repro.service import AnalysisClient, ServiceError

    payloads = build_mix(args.mix, args.requests,
                         concurrency=args.concurrency, seed=args.seed,
                         sections=args.sections)
    probe = AnalysisClient(args.server, retries=0)
    try:
        before = probe.metrics()
    except (ServiceError, OSError) as exc:
        print(f"error: cannot reach {args.server}: {exc}", file=sys.stderr)
        return 2
    document = run_loadgen(args.server, payloads,
                           concurrency=args.concurrency,
                           retries=args.retries)
    document["mix"] = args.mix
    document["seed"] = args.seed
    document["coalesced"] = coalesced_delta(before, probe.metrics())

    if args.json is not None:
        _write_text(args.json, json.dumps(document, indent=2,
                                          sort_keys=True) + "\n")
    out = sys.stderr if args.json == "-" else sys.stdout
    print(f"loadgen: {document['requests']} request(s) "
          f"[{args.mix}] x{args.concurrency} against {args.server}", file=out)
    print(f"  {document['rps']:.1f} RPS, p50 {document['p50_ms']:.2f} ms, "
          f"p99 {document['p99_ms']:.2f} ms, "
          f"{document['cache_hits']} cache hit(s), "
          f"{document['coalesced']} coalesced, "
          f"{document['failed']} failure(s)", file=out)
    for failure in document["failures"][:5]:
        print(f"  FAIL request {failure['index']}: {failure['error']}",
              file=out)
    return 1 if document["failed"] else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "report": cmd_report,
        "poles": cmd_poles,
        "simulate": cmd_simulate,
        "sensitivity": cmd_sensitivity,
        "batch": cmd_batch,
        "fuzz": cmd_fuzz,
        "sta": cmd_sta,
        "serve": cmd_serve,
        "analyze": cmd_analyze,
        "gateway": cmd_gateway,
        "sweep": cmd_sweep,
        "loadgen": cmd_loadgen,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
