"""Batch AWE analysis: many (circuit, stimuli, nodes) jobs, one engine.

The paper's throughput pitch (Sec. IV, Fig. 19) is that AWE reduces each
net's timing to "a succession of dc solutions" — cheap enough to run on
thousands of nets.  This module supplies the missing fan-out layer: an
:class:`AweJob` describes one net's analysis, and :class:`BatchEngine`
runs many of them with

* **analyzer reuse** — jobs on the same circuit object share one
  :class:`~repro.core.driver.AweAnalyzer`, so the expensive
  output-independent work (MNA assembly, LU factorisation, the batched
  moment recursion) is paid once per distinct circuit, not once per job;
* **process-pool parallelism** — ``run(jobs, workers=N)`` fans circuit
  groups out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``workers <= 1`` runs inline with zero IPC overhead);
* **per-job isolation** — a failing or timed-out job yields a structured
  failure :class:`BatchResult`; it never aborts the batch;
* **self-healing pool** — a worker-process death (``BrokenProcessPool``)
  triggers one pool rebuild that re-runs only the jobs lost in flight;
  jobs lost twice become ``WorkerCrashError`` failure records and the
  rebuild is counted in ``stats()["pool_rebuilds"]``;
* **instrumentation** — per-worker
  :class:`~repro.instrumentation.SolverStats` are merged into the
  engine's :meth:`BatchEngine.stats` view (also surfaced by
  ``python -m repro batch --stats``).

Determinism: the numbers a job produces are independent of ``workers``,
of how jobs are grouped, and of the order the pool completes them — every
job runs the same :class:`AweAnalyzer` code path, and results are
reordered to match the input job order.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import signal
import threading
import time
import traceback
from contextlib import contextmanager

from repro import faults
from repro.analysis.sources import Stimulus
from repro.circuit.netlist import Circuit
from repro.core.driver import AweAnalyzer, AweResponse
from repro.errors import BatchTimeoutError, CircuitError, WorkerCrashError
from repro.instrumentation import SolverStats
from repro.reduce import reduce_circuit
from repro.trace import Tracer


@dataclasses.dataclass(frozen=True)
class AweJob:
    """One unit of batch work: a circuit, its stimuli, and output nodes.

    Parameters
    ----------
    circuit:
        The circuit to analyse.  Jobs sharing the *same object* share one
        analyzer (and therefore one factorisation and moment recursion).
    nodes:
        Output node name(s); a bare string is promoted to a 1-tuple.
    stimuli:
        Source stimuli, as for :class:`~repro.core.driver.AweAnalyzer`.
    order / error_target / max_order:
        Forwarded to :meth:`AweAnalyzer.response` / the analyzer.
    label:
        Display name in results and reports; defaults to the circuit
        title plus the node list.
    response_options:
        Extra keyword arguments for :meth:`AweAnalyzer.response`
        (``stabilize``, ``match_initial_slope``, ...).
    reduce:
        Collapse series RC chains (:func:`repro.reduce.reduce_circuit`)
        before analysis, keeping this job's output nodes as taps.  Jobs
        that share a circuit share one reduced copy (reduced with the
        union of their taps), so analyzer reuse is preserved.
    """

    circuit: Circuit
    nodes: tuple[str, ...]
    stimuli: dict[str, Stimulus] | None = None
    order: int | None = None
    error_target: float = 0.01
    max_order: int = 8
    label: str = ""
    response_options: dict = dataclasses.field(default_factory=dict)
    reduce: bool = False

    def __post_init__(self):
        nodes = (self.nodes,) if isinstance(self.nodes, str) else tuple(self.nodes)
        if not nodes:
            raise CircuitError("an AweJob needs at least one output node")
        object.__setattr__(self, "nodes", nodes)
        if not self.label:
            title = self.circuit.title if self.circuit is not None else "job"
            object.__setattr__(self, "label", f"{title} @ {','.join(nodes)}")


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Outcome of one :class:`AweJob` — success or structured failure.

    ``responses`` maps each requested node to its
    :class:`~repro.core.driver.AweResponse` on success and is ``None`` on
    failure, in which case ``error``/``error_type`` describe what went
    wrong (``error_type`` is the exception class name, e.g.
    ``"BatchTimeoutError"`` for a per-job timeout).

    ``trace`` is the job's serialized trace record (the plain-dict tree
    of :meth:`repro.trace.Tracer.to_record` — it crosses the process pool
    as data) when the run was started with ``trace=True``, else ``None``.
    Rebuild the object form with
    :meth:`repro.trace.TraceSpan.from_record`, or feed it straight to
    :mod:`repro.report`.
    """

    index: int
    label: str
    responses: dict[str, AweResponse] | None
    error: str | None = None
    error_type: str | None = None
    elapsed_s: float = 0.0
    trace: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _stimuli_key(stimuli: dict[str, Stimulus] | None):
    """Hashable cache key for a stimuli mapping (stimuli are frozen
    dataclasses, so their reprs are canonical)."""
    if stimuli is None:
        return None
    return tuple(sorted((name, repr(stim)) for name, stim in stimuli.items()))


@contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`BatchTimeoutError` if the block runs past ``seconds``.

    Uses ``SIGALRM``/``setitimer``, so it is preemptive — a job stuck in
    a long LAPACK call is still interrupted at the next bytecode
    boundary.  Silently degrades to a no-op where real-time signals are
    unavailable (non-main thread, non-Unix platforms).

    Nesting-safe: on exit the previous handler is restored *and* an
    enclosing ``_deadline``'s timer is re-armed with its remaining budget
    (arming our own timer cancels the outer one — without the re-arm, an
    inner block, timed out or not, would silently disarm the outer
    deadline for the rest of its group).  An outer budget that expired
    while the inner block ran is re-armed with a minimal delay so it
    still fires promptly.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise BatchTimeoutError(f"job exceeded its {seconds:g} s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    armed_at = time.monotonic()
    try:
        yield
    finally:
        # Disarm before touching the handler so a firing between the two
        # calls cannot hit a half-restored state; then hand control (and
        # any leftover budget) back to the enclosing deadline.
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining:
            elapsed = time.monotonic() - armed_at
            signal.setitimer(
                signal.ITIMER_REAL, max(outer_remaining - elapsed, 1e-6)
            )


def _execute_group(circuit, entries, timeout, trace=False, attempt=0):
    """Run one circuit group's jobs sequentially with analyzer reuse.

    ``entries`` is ``[(job_index, stripped_job), ...]`` where the jobs'
    ``circuit`` field has been cleared so the (possibly large) circuit
    pickles once per task instead of once per job.  Returns
    ``(results, stats_dict, analyzers_built)``.

    With ``trace=True`` each job gets its own
    :class:`~repro.trace.Tracer`, swapped onto the (shared) analyzer for
    the job's duration; the serialized record rides back on
    ``BatchResult.trace``.  Shared work (MNA assembly, LU, the batched
    moment recursion) lands in the trace of the job that triggered it.

    ``attempt`` is nonzero when this group is being re-run after a pool
    rebuild; traced jobs record it as a ``pool_rebuild_retry`` event so
    a report shows which results survived a worker crash.
    """
    plan = faults.active()
    analyzers: dict = {}
    results: list[BatchResult] = []
    for index, job in entries:
        tracer = Tracer(job.label, job_index=index) if trace else None
        if trace and attempt:
            tracer.event("pool_rebuild_retry", attempt=attempt)
        start = time.perf_counter()
        try:
            with _deadline(timeout):
                if plan.enabled:
                    # The slow-job probe burns budget *inside* the job's
                    # deadline, so an injected stall exercises the same
                    # timeout path a genuinely stuck solve would.
                    plan.sleep("slow_job", 0.25)
                key = (_stimuli_key(job.stimuli), job.max_order)
                analyzer = analyzers.get(key)
                if analyzer is None:
                    analyzer = AweAnalyzer(
                        circuit, job.stimuli, max_order=job.max_order,
                        tracer=tracer,
                    )
                    analyzers[key] = analyzer
                elif trace:
                    analyzer.use_tracer(tracer)
                responses = {
                    node: analyzer.response(
                        node,
                        order=job.order,
                        error_target=job.error_target,
                        **job.response_options,
                    )
                    for node in job.nodes
                }
            results.append(
                BatchResult(
                    index=index,
                    label=job.label,
                    responses=responses,
                    elapsed_s=time.perf_counter() - start,
                    trace=tracer.to_record() if trace else None,
                )
            )
        except Exception as exc:
            if trace:
                # Failures raised outside any span (e.g. an unknown node
                # rejected before the response span opens) would otherwise
                # leave the trace silent about why the job died.
                tracer.event("job_failed", error_type=type(exc).__name__,
                             error=str(exc))
            results.append(
                BatchResult(
                    index=index,
                    label=job.label,
                    responses=None,
                    error="".join(traceback.format_exception_only(exc)).strip(),
                    error_type=type(exc).__name__,
                    elapsed_s=time.perf_counter() - start,
                    trace=tracer.to_record() if trace else None,
                )
            )
    stats = SolverStats()
    for analyzer in analyzers.values():
        stats.merge(analyzer.system.stats)
    return results, stats.as_dict(), len(analyzers)


def _pool_task(payload):
    """Picklable pool entry point.

    ``payload`` is ``(circuit, entries, timeout, trace, attempt,
    inject_crash)``.  The crash decision is drawn in the *parent* (see
    :meth:`BatchEngine._run_pool`) so a capped ``worker_crash`` probe
    keeps its count across pool rebuilds; this side only executes it.
    """
    circuit, entries, timeout, trace, attempt, inject_crash = payload
    if inject_crash:
        # A hard worker death: no exception, no cleanup — exactly what a
        # segfault or OOM kill looks like to the parent (BrokenProcessPool).
        os._exit(13)
    return _execute_group(circuit, entries, timeout, trace, attempt)


def _crash_failures(entries, exc):
    """Failure records for a chunk whose worker died past the retry."""
    message = "".join(traceback.format_exception_only(exc)).strip()
    return [
        BatchResult(
            index=index,
            label=job.label,
            responses=None,
            error=f"worker died (pool already rebuilt once): {message}",
            error_type=WorkerCrashError.__name__,
        )
        for index, job in entries
    ]


class BatchEngine:
    """Run many :class:`AweJob`\\ s with analyzer reuse and fan-out.

    Parameters
    ----------
    workers:
        Default parallelism for :meth:`run`.  ``1`` (default) executes
        inline in the calling process; ``N > 1`` fans circuit groups out
        over an ``N``-worker process pool.
    timeout:
        Default per-job wall-clock timeout in seconds (``None`` = no
        limit).  A timed-out job becomes a failure record with
        ``error_type == "BatchTimeoutError"``.

    The engine is reusable; :meth:`stats` accumulates over every
    :meth:`run` since construction (:meth:`reset_stats` clears it).
    """

    def __init__(self, workers: int = 1, timeout: float | None = None):
        self.workers = workers
        self.timeout = timeout
        self._solver_stats = SolverStats()
        self._engine_stats: dict[str, float] = {
            "jobs": 0,
            "jobs_failed": 0,
            "distinct_circuits": 0,
            "analyzers_built": 0,
            "runs": 0,
            "pool_rebuilds": 0,
            "batch_wall_time_s": 0.0,
        }

    # -- public API ----------------------------------------------------

    def run(
        self,
        jobs,
        workers: int | None = None,
        timeout: float | None = None,
        trace: bool = False,
    ) -> list[BatchResult]:
        """Execute ``jobs`` and return one :class:`BatchResult` per job,
        in input order.  Failures (including per-job timeouts) are
        captured as failure records; this method only raises for
        malformed input, never for a failing job.

        ``trace=True`` records one hierarchical trace per job (wall-time
        spans, counter deltas, escalation events — see
        ``docs/observability.md``) and returns it on each result's
        ``trace`` field as a serialized record, including across the
        process pool."""
        jobs = list(jobs)
        for job in jobs:
            if not isinstance(job, AweJob):
                raise CircuitError(f"expected an AweJob, got {type(job).__name__}")
        if not jobs:
            return []
        workers = self.workers if workers is None else workers
        timeout = self.timeout if timeout is None else timeout
        jobs = self._apply_reduction(jobs)

        start = time.perf_counter()
        groups = self._group_by_circuit(jobs)
        chunks = self._chunk(groups, workers)
        rebuilds = 0
        if workers <= 1:
            outcomes = [_execute_group(*chunk, timeout, trace) for chunk in chunks]
        else:
            outcomes, rebuilds = self._run_pool(chunks, workers, timeout, trace)

        results: list[BatchResult | None] = [None] * len(jobs)
        builds = 0
        for chunk_results, stats_dict, chunk_builds in outcomes:
            self._solver_stats.merge(stats_dict)
            builds += chunk_builds
            for result in chunk_results:
                results[result.index] = result

        failed = sum(1 for r in results if not r.ok)
        self._engine_stats["jobs"] += len(jobs)
        self._engine_stats["jobs_failed"] += failed
        self._engine_stats["distinct_circuits"] += len(groups)
        self._engine_stats["analyzers_built"] += builds
        self._engine_stats["runs"] += 1
        self._engine_stats["pool_rebuilds"] += rebuilds
        self._engine_stats["batch_wall_time_s"] += time.perf_counter() - start
        return results

    def stats(self) -> dict[str, float]:
        """Engine-level counters plus the merged per-circuit solver
        instrumentation (see :mod:`repro.instrumentation`)."""
        out = dict(self._engine_stats)
        out.update(self._solver_stats.as_dict())
        return out

    def reset_stats(self) -> None:
        for key in self._engine_stats:
            self._engine_stats[key] = 0.0 if key.endswith("_s") else 0
        self._solver_stats.reset()

    # -- internals -----------------------------------------------------

    @staticmethod
    def _apply_reduction(jobs):
        """Pre-reduce the circuits of ``reduce=True`` jobs.

        Reduction runs once per distinct circuit object with the union
        of those jobs' output nodes as taps, and every such job is
        rewritten onto the *same* reduced circuit — so
        :meth:`_group_by_circuit`'s identity grouping (and therefore
        analyzer reuse and once-per-task pickling) still applies after
        reduction.  A no-op reduction keeps the original object.
        """
        if not any(job.reduce for job in jobs):
            return jobs
        taps: dict[int, tuple[Circuit, set]] = {}
        for job in jobs:
            if job.reduce:
                circuit, nodes = taps.setdefault(id(job.circuit),
                                                 (job.circuit, set()))
                nodes.update(job.nodes)
        reduced = {
            key: reduce_circuit(circuit, keep=tuple(sorted(nodes))).circuit
            for key, (circuit, nodes) in taps.items()
        }
        return [
            dataclasses.replace(
                job, circuit=reduced[id(job.circuit)], reduce=False)
            if job.reduce else job
            for job in jobs
        ]

    @staticmethod
    def _group_by_circuit(jobs):
        """Group jobs by circuit *identity*, preserving first-seen order,
        stripping the circuit out of each job so it pickles once."""
        groups: dict[int, tuple[Circuit, list]] = {}
        for index, job in enumerate(jobs):
            key = id(job.circuit)
            if key not in groups:
                groups[key] = (job.circuit, [])
            groups[key][1].append(
                (index, dataclasses.replace(job, circuit=None, label=job.label))
            )
        return list(groups.values())

    @staticmethod
    def _chunk(groups, workers):
        """Split circuit groups into pool tasks.

        One task per group when there are at least as many groups as
        workers; otherwise each group is split into up to
        ``ceil(workers / n_groups)`` slices so a few large groups can
        still use every worker (at the cost of re-analysing the shared
        circuit once per slice)."""
        per_group = max(1, -(-max(workers, 1) // len(groups)))
        chunks = []
        for circuit, entries in groups:
            slices = min(per_group, len(entries))
            size = -(-len(entries) // slices)
            for at in range(0, len(entries), size):
                chunks.append((circuit, entries[at:at + size]))
        return chunks

    @staticmethod
    def _run_pool(chunks, workers, timeout, trace=False):
        """Fan chunks out over a self-healing process pool.

        A dead worker breaks the whole ``ProcessPoolExecutor`` (every
        in-flight and queued future raises ``BrokenProcessPool``), so a
        single crash must not cost every unfinished job: the chunks that
        were lost in flight are collected, the pool is rebuilt **once**,
        and only those chunks are re-run.  Chunks lost a second time
        become structured failure records (``error_type ==
        "WorkerCrashError"``) — the engine degrades, it never raises.

        Returns ``(outcomes, pool_rebuilds)``.
        """
        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = None
        plan = faults.active()
        outcomes = []
        rebuilds = 0
        pending = [(circuit, entries, 0) for circuit, entries in chunks]
        while pending:
            lost = []
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(pending)), mp_context=context
            ) as pool:
                futures = {}
                for circuit, entries, attempt in pending:
                    # Drawn here, parent side, so a capped probe (x1)
                    # stays exhausted across rebuilds — the retry then
                    # demonstrably recovers instead of re-crashing.
                    crash = plan.enabled and plan.fire("worker_crash")
                    future = pool.submit(
                        _pool_task,
                        (circuit, entries, timeout, trace, attempt, crash))
                    futures[future] = (circuit, entries, attempt)
                for future in concurrent.futures.as_completed(futures):
                    circuit, entries, attempt = futures[future]
                    try:
                        outcomes.append(future.result())
                    except concurrent.futures.BrokenExecutor as exc:
                        if attempt == 0:
                            lost.append((circuit, entries))
                        else:
                            outcomes.append((_crash_failures(entries, exc), {}, 0))
                    except Exception as exc:  # e.g. an unpicklable result
                        failures = [
                            BatchResult(
                                index=index,
                                label=job.label,
                                responses=None,
                                error=f"worker failed: {exc}",
                                error_type=type(exc).__name__,
                            )
                            for index, job in entries
                        ]
                        outcomes.append((failures, {}, 0))
            if not lost:
                break
            rebuilds += 1
            pending = [(circuit, entries, 1) for circuit, entries in lost]
        return outcomes, rebuilds
