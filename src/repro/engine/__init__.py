"""Batch analysis engine: job fan-out, analyzer reuse, instrumentation.

This is the throughput layer over the single-circuit
:class:`~repro.core.driver.AweAnalyzer` — see :mod:`repro.engine.batch`
for the job/result/engine types and :mod:`repro.instrumentation` for the
counter semantics surfaced by ``BatchEngine.stats()``.
"""

from repro.engine.batch import AweJob, BatchEngine, BatchResult
from repro.instrumentation import SolverStats, format_stats

__all__ = [
    "AweJob",
    "BatchEngine",
    "BatchResult",
    "SolverStats",
    "format_stats",
]
