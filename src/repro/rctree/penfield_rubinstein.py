"""The Penfield–Rubinstein single-exponential model and delay bounds.

Paper Sec. 2.1: the Elmore delay ``T_D`` is used as a dominant time
constant, approximating the monotone step response by

.. math::

    v(t) \\approx v(\\infty)\\,(1 - e^{-t / T_D})        \\qquad (paper eq. 2)

which Sec. IV shows to be exactly the first-order AWE model for an RC tree
driven by a step.  This module provides that model as an explicit baseline
plus two rigorous (if loose) step-response bounds:

* an **upper bound on any threshold-crossing time**,
  ``t_cross(x) ≤ T_D / (1 − x)`` for normalised threshold ``x``, which
  follows from monotonicity: ``1 − v(t)/v∞`` is non-increasing and
  integrates to ``T_D``, so ``t · (1 − v(t)/v∞) ≤ T_D``;
* a **lower bound**, ``t_cross(x) ≥ T_D − (1 − x)·T_max`` where
  ``T_max = Σ_k R_{kk} C_k`` (the Rubinstein–Penfield–Horowitz ``T_P``):
  the slowest any node can settle is with every capacitor seeing its full
  path resistance, giving ``∫_t^∞ (1 − v/v∞) ≤ (1 − v(t)/v∞)·T_max`` and
  hence the stated bound at the crossing.

These are simplified (but valid) forms of the bounds in Rubinstein,
Penfield and Horowitz [14]; the reproduction uses them for the baseline
comparison benchmarks, not for accuracy claims.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.topology import analyze_rc_tree
from repro.errors import AnalysisError
from repro.rctree.elmore import elmore_delays
from repro.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class PenfieldRubinsteinModel:
    """The single-pole step-response estimate at one node."""

    node: str
    elmore_delay: float
    v_final: float
    t_max: float

    def evaluate(self, t) -> np.ndarray:
        """The eq. 2 waveform ``v∞ (1 − e^{−t/T_D})``."""
        t = np.asarray(t, dtype=float)
        return self.v_final * (1.0 - np.exp(-t / self.elmore_delay))

    def to_waveform(self, times) -> Waveform:
        times = np.asarray(times, dtype=float)
        return Waveform(times, self.evaluate(times), f"v({self.node}) [PR model]")

    def crossing_time(self, threshold: float) -> float:
        """Crossing-time estimate from the single-exponential model."""
        x = threshold / self.v_final
        if not 0.0 < x < 1.0:
            raise AnalysisError(f"threshold {threshold} outside the swing")
        return -self.elmore_delay * np.log1p(-x)

    def crossing_bounds(self, threshold: float) -> tuple[float, float]:
        """(lower, upper) rigorous bounds on the crossing time."""
        x = threshold / self.v_final
        if not 0.0 < x < 1.0:
            raise AnalysisError(f"threshold {threshold} outside the swing")
        upper = self.elmore_delay / (1.0 - x)
        lower = max(0.0, self.elmore_delay - (1.0 - x) * self.t_max)
        return lower, upper


def penfield_rubinstein_model(
    circuit: Circuit, node: str, v_final: float
) -> PenfieldRubinsteinModel:
    """Build the single-pole model at ``node`` for a ``v_final`` step."""
    tree = analyze_rc_tree(circuit)
    delays = elmore_delays(tree)
    if node not in delays:
        raise AnalysisError(f"node {node!r} is not in the RC tree")
    # T_max = Σ_k R(root→k) · C_k  — every cap through its full path.
    t_max = 0.0
    for k in tree.nodes:
        if k == tree.root:
            continue
        path_resistance = sum(r.resistance for _, r in tree.path_to_root(k))
        t_max += path_resistance * tree.capacitance[k]
    return PenfieldRubinsteinModel(
        node=node, elmore_delay=delays[node], v_final=v_final, t_max=t_max
    )


def crossing_time_upper_bound(elmore: float, normalized_threshold: float) -> float:
    """``T_D / (1 − x)`` — the Markov-style worst-case crossing time."""
    if not 0.0 < normalized_threshold < 1.0:
        raise AnalysisError("normalised threshold must be in (0, 1)")
    return elmore / (1.0 - normalized_threshold)
