"""Classical RC-tree delay methods (paper Sec. II) — the baselines AWE
generalises: the Elmore tree walk, the Penfield–Rubinstein single-pole
model with bounds, the two-pole (Chu–Horowitz style) model, and the
tree/link analysis of Sec. IV."""

from repro.rctree.elmore import elmore_delay, elmore_delays
from repro.rctree.generalized_elmore import generalized_elmore_delay, settling_areas
from repro.rctree.penfield_rubinstein import (
    PenfieldRubinsteinModel,
    crossing_time_upper_bound,
    penfield_rubinstein_model,
)
from repro.rctree.sensitivity import delay_gradient_by_node, tree_delay_gradient
from repro.rctree.two_pole import TwoPoleModel, two_pole_model
from repro.rctree.treelink import (
    TreeLinkAnalysis,
    treelink_elmore_delays,
    treelink_moments,
    treelink_steady_state,
)

__all__ = [
    "PenfieldRubinsteinModel",
    "TreeLinkAnalysis",
    "TwoPoleModel",
    "crossing_time_upper_bound",
    "delay_gradient_by_node",
    "elmore_delay",
    "elmore_delays",
    "generalized_elmore_delay",
    "settling_areas",
    "tree_delay_gradient",
    "penfield_rubinstein_model",
    "treelink_elmore_delays",
    "treelink_moments",
    "treelink_steady_state",
    "two_pole_model",
]
