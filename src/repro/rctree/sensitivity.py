"""Closed-form Elmore-delay sensitivities on RC trees.

For an RC tree, ``T_D(i) = Σ_{e ∈ path(i)} R_e · C(S_e)`` (paper eq. 50),
so the gradient has textbook closed forms computable by tree walks:

* ``∂T_D(i)/∂R_e = C(S_e)`` when edge ``e`` lies on the root→i path,
  0 otherwise — the downstream capacitance the resistor must charge;
* ``∂T_D(i)/∂C_j = R_shared(i, j)`` — the resistance common to the
  root→i and root→j paths (the coupling resistance of the
  Penfield–Rubinstein formulas).

These serve as the independent reference for the general adjoint
machinery in :mod:`repro.core.sensitivity` (the two must agree exactly on
trees) and as the O(n)-per-output fast path for tree-shaped nets.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.topology import RcTree, analyze_rc_tree
from repro.errors import AnalysisError


def tree_delay_gradient(
    circuit_or_tree: Circuit | RcTree, node: str
) -> tuple[dict[str, float], dict[str, float]]:
    """``(dT/dR, dT/dC)`` of the Elmore delay at ``node``; keys are element
    names.  Resistors off the root→node path have zero sensitivity and are
    included explicitly (a gradient consumer should see every knob)."""
    tree = (
        circuit_or_tree
        if isinstance(circuit_or_tree, RcTree)
        else analyze_rc_tree(circuit_or_tree)
    )
    if node not in tree.capacitance:
        raise AnalysisError(f"node {node!r} is not in the RC tree")

    order = tree.nodes
    subtree_cap = dict(tree.capacitance)
    for current in reversed(order):
        for child in tree.children.get(current, ()):
            subtree_cap[current] += subtree_cap[child]

    path_nodes = set(tree.path_nodes(node))
    d_resistance: dict[str, float] = {}
    for child in order:
        if child == tree.root:
            continue
        _, resistor = tree.parent[child]
        on_path = child in path_nodes
        d_resistance[resistor.name] = subtree_cap[child] if on_path else 0.0

    # dT/dC_j = shared path resistance R(node, j) for the node j owns.
    d_capacitance: dict[str, float] = {}
    resistance_to_root: dict[str, float] = {tree.root: 0.0}
    for current in order:
        if current == tree.root:
            continue
        parent, resistor = tree.parent[current]
        resistance_to_root[current] = resistance_to_root[parent] + resistor.resistance

    for cap_node in order:
        if tree.capacitance.get(cap_node, 0.0) == 0.0 and cap_node == tree.root:
            continue
        shared = tree.path_resistance(node, cap_node)
        # Attribute per capacitor element at that node.
        for cap in _caps_at(tree, cap_node):
            d_capacitance[cap] = shared
    return d_resistance, d_capacitance


def _caps_at(tree: RcTree, node: str) -> list[str]:
    # RcTree stores only summed capacitance; element names are recovered
    # lazily by the caller that owns the circuit.  To keep this module
    # self-contained, the summed-capacitance key is the node name itself.
    return [f"@{node}"] if tree.capacitance.get(node, 0.0) > 0.0 else []


def delay_gradient_by_node(
    circuit: Circuit, node: str
) -> tuple[dict[str, float], dict[str, float]]:
    """Like :func:`tree_delay_gradient` but with the capacitance gradient
    keyed by *capacitor element name* (resolved against the circuit)."""
    tree = analyze_rc_tree(circuit)
    d_resistance, by_node = tree_delay_gradient(tree, node)
    d_capacitance: dict[str, float] = {}
    for cap in circuit.capacitors:
        cap_node = cap.positive if cap.negative == "0" else cap.negative
        d_capacitance[cap.name] = by_node.get(f"@{cap_node}", 0.0)
    return d_resistance, d_capacitance
