"""A standalone two-pole step-response model (paper Sec. 2.3).

Chu and Horowitz [12] improved on the single-time-constant estimate with a
two-pole model for RC meshes with charge sharing.  Within this
reproduction the natural formulation is the moment-matched one — which is
precisely what the paper means by "for the case of an RC tree model a
first-order AWE approximation reduces to the RC tree methods": the
two-pole model is second-order AWE with the same four moment values
(m₋₁ … m₂) the Chu–Horowitz construction consumes.

This module implements the two-pole fit directly from those four scalars,
with explicit closed-form quadratic root extraction — independent of the
general Padé machinery in :mod:`repro.core.pade` — so the benchmarks can
compare the two code paths and the tests can verify they agree.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.circuit.netlist import Circuit
from repro.analysis.mna import MnaSystem
from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.core.moments import homogeneous_moments
from repro.errors import ApproximationError
from repro.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class TwoPoleModel:
    """``v(t) = v∞ + k₁ e^{p₁ t} + k₂ e^{p₂ t}`` (real or conjugate poles)."""

    node: str
    v_final: float
    poles: tuple[complex, complex]
    residues: tuple[complex, complex]

    def evaluate(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        total = np.full(t.shape, complex(self.v_final))
        for pole, residue in zip(self.poles, self.residues):
            total = total + residue * np.exp(pole * t)
        return total.real

    def to_waveform(self, times) -> Waveform:
        times = np.asarray(times, dtype=float)
        return Waveform(times, self.evaluate(times), f"v({self.node}) [2-pole]")

    @property
    def is_stable(self) -> bool:
        return all(p.real < 0 for p in self.poles)


def two_pole_model(circuit: Circuit, node: str, v_step: float) -> TwoPoleModel:
    """Fit the two-pole model for a 0→``v_step`` input at t = 0.

    Computes m₋₁, m₀, m₁, m₂ of the homogeneous response and solves the
    2×2 moment-recurrence system in closed form (the q = 2 case of the
    paper's eq. 24, solved by the quadratic formula rather than a general
    eigenroutine).
    """
    system = MnaSystem(circuit)
    source_values = {name: 0.0 for name in system.index.source_names}
    # The step goes on the first source, SPICE-style single-input stage.
    if not system.index.source_names:
        raise ApproximationError("circuit has no source to step")
    stepped = dict(source_values)
    stepped[system.index.source_names[0]] = v_step

    storage0 = resolve_initial_storage_state(system, source_values)
    x0 = initial_operating_point(circuit, system, storage0, stepped)
    x_final = dc_operating_point(
        system,
        stepped,
        system.group_charge(x0) if system.floating_groups else None,
    )
    y0 = x0 - x_final
    moments = homogeneous_moments(system, y0, 4)
    row = system.index.node(node)
    m = moments.sequence_for(row)  # [m₋₁, m₀, m₁, m₂, m₃]

    # Uniform recurrence sequence (note the sign of the initial value, see
    # repro.core.pade.hankel_sequence): μ = [−m₋₁, m₀, m₁, m₂].
    mu = np.array([-m[0], m[1], m[2], m[3]])
    det = mu[0] * mu[2] - mu[1] * mu[1]
    if det == 0.0:
        raise ApproximationError(
            "two-pole moment matrix is singular (response is first-order)"
        )
    # [μ0 μ1; μ1 μ2] [−a0, −a1]ᵀ = [μ2, μ3]ᵀ, solved by Cramer's rule.
    minus_a0 = (mu[2] * mu[2] - mu[1] * mu[3]) / det
    minus_a1 = (mu[0] * mu[3] - mu[1] * mu[2]) / det
    a0, a1 = -minus_a0, -minus_a1

    # z² + a1 z + a0 = 0 with z = 1/p — explicit quadratic roots.
    disc = a1 * a1 - 4.0 * a0
    sqrt_disc = complex(math.sqrt(disc)) if disc >= 0 else 1j * math.sqrt(-disc)
    z1 = (-a1 + sqrt_disc) / 2.0
    z2 = (-a1 - sqrt_disc) / 2.0
    if z1 == 0 or z2 == 0:
        raise ApproximationError("degenerate two-pole characteristic polynomial")
    p1, p2 = 1.0 / z1, 1.0 / z2

    # Residues from m₋₁ and m₀:  k₁+k₂ = m₋₁,  −k₁/p₁ − k₂/p₂ = m₀.
    if p1 == p2:
        raise ApproximationError("repeated pole; use the general AWE driver")
    k2 = (m[1] + m[0] / p1) / (1.0 / p1 - 1.0 / p2)
    k1 = m[0] - k2
    v_final = float(x_final[row])
    return TwoPoleModel(node=node, v_final=v_final,
                        poles=(complex(p1), complex(p2)),
                        residues=(complex(k1), complex(k2)))
