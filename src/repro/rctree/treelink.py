"""Tree/link analysis (paper Sec. IV).

The paper computes moments not from assembled matrices but by *tree/link*
partitioning [28–30]: choose a spanning tree of the circuit graph from the
voltage sources and resistors; the capacitors become links, which — once
replaced by current sources (Fig. 5) — makes every moment a dc solve that
reduces to walks over the tree (eq. 53):

.. math::

    v_l = -F^T R F\\, I + F^T V_s

For a true RC tree every link is a capacitor and the solve is explicit
(Fig. 6); a grounded resistor forces one resistor into the links (Fig. 10)
and costs one extra scalar equation per resistive link (eq. 61) — still
O(n) overall, which is the section's point.

This module implements exactly that machinery for R/C/V/I circuits.  It is
deliberately independent of the MNA engine: the test suite checks that the
two produce identical steady states, moments, and Elmore delays, which is
the reproduction of the paper's Sec. IV equivalence claims (eqs. 50 vs 56).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import networkx as nx

from repro.circuit.elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, TopologyError


@dataclasses.dataclass(frozen=True)
class _LoopStep:
    """One tree branch traversed by a fundamental loop: +1 when the loop
    follows the branch's positive→negative orientation."""

    branch: str
    sign: float


class TreeLinkAnalysis:
    """Tree/link solver for R/C/V/I circuits.

    On construction the circuit graph is split into a spanning tree
    (voltage sources first, then resistors — so capacitors become links
    whenever possible) and links; the fundamental loop of each link is
    recorded as tree-branch traversals.  Every subsequent solve is linear
    in circuit size plus one dense solve of dimension = number of
    *resistive* links (zero for RC trees, per the paper).
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        for element in circuit:
            if not isinstance(element, (Resistor, Capacitor, VoltageSource, CurrentSource)):
                raise TopologyError(
                    f"tree/link analysis supports R/C/V/I only, got "
                    f"{type(element).__name__} {element.name!r}"
                )
        self._build()

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        graph = nx.Graph()
        graph.add_node(GROUND)
        tree_elements: dict[str, object] = {}
        links: list = []
        # Priority: voltage sources, then resistors, into the tree.
        for bucket in (VoltageSource, Resistor):
            for element in self.circuit.elements_of_type(bucket):
                if graph.has_node(element.positive) and graph.has_node(element.negative):
                    if nx.has_path(graph, element.positive, element.negative):
                        links.append(element)
                        continue
                graph.add_edge(element.positive, element.negative, name=element.name)
                tree_elements[element.name] = element
        for element in self.circuit.elements_of_type(Capacitor, CurrentSource):
            links.append(element)

        # Every node must be reachable through the tree for the port solves
        # to be defined (capacitor-only nodes are out of scope here — the
        # paper handles them with charge conservation in the general AWE
        # formulation, not in the tree/link walk).
        for node in self.circuit.nodes:
            if node not in graph or not nx.has_path(graph, node, GROUND):
                raise TopologyError(
                    f"node {node!r} is not reachable through tree branches; "
                    "tree/link analysis needs a conductive spanning tree"
                )

        self.graph = graph
        self.tree_elements = tree_elements
        self.links = links
        self.resistive_links = [l for l in links if isinstance(l, Resistor)]
        self.capacitor_links = [l for l in links if isinstance(l, Capacitor)]
        self.current_source_links = [l for l in links if isinstance(l, CurrentSource)]
        self._loops = {link.name: self._fundamental_loop(link) for link in links}
        self._resistive_matrix = self._build_resistive_matrix()

    def _fundamental_loop(self, link) -> list[_LoopStep]:
        """Tree path from the link's negative node back to its positive
        node — the return path of the loop current."""
        path = nx.shortest_path(self.graph, link.negative, link.positive)
        steps: list[_LoopStep] = []
        for a, b in zip(path[:-1], path[1:]):
            element = self.tree_elements[self.graph.edges[a, b]["name"]]
            # Traversing a→b follows the branch orientation when a is the
            # branch's positive terminal.
            sign = 1.0 if element.positive == a else -1.0
            steps.append(_LoopStep(element.name, sign))
        return steps

    def _build_resistive_matrix(self) -> np.ndarray | None:
        """(I + G·FᵀRF) for the resistive-link unknowns (paper eq. 61)."""
        n = len(self.resistive_links)
        if n == 0:
            return None
        A = np.eye(n)
        for j, source_link in enumerate(self.resistive_links):
            # Voltage seen by every resistive link when this one carries
            # unit current and all other injections are zero.
            voltages = self._link_voltages({source_link.name: 1.0}, {})
            for i, target_link in enumerate(self.resistive_links):
                A[i, j] -= voltages[target_link.name] / target_link.resistance
        return A

    # -- elementary solves -------------------------------------------------

    def _branch_currents(self, link_currents: dict[str, float]) -> dict[str, float]:
        """Tree branch currents from the link currents (loop superposition)."""
        currents = {name: 0.0 for name in self.tree_elements}
        for link_name, current in link_currents.items():
            if current == 0.0:
                continue
            for step in self._loops[link_name]:
                currents[step.branch] += step.sign * current
        return currents

    def _link_voltages(
        self, link_currents: dict[str, float], source_values: dict[str, float]
    ) -> dict[str, float]:
        """Voltage across every link (positive minus negative terminal).

        The drop along the loop return path is accumulated from branch
        voltages: ``R·i`` for tree resistors, the source value for tree
        voltage sources.
        """
        branch_currents = self._branch_currents(link_currents)
        branch_voltage: dict[str, float] = {}
        for name, element in self.tree_elements.items():
            if isinstance(element, Resistor):
                branch_voltage[name] = element.resistance * branch_currents[name]
            else:
                branch_voltage[name] = source_values.get(name, 0.0)

        voltages: dict[str, float] = {}
        for link in self.links:
            # v(link) = v(positive) − v(negative) = +Σ drops along the
            # tree path negative→positive, against each branch orientation.
            total = 0.0
            for step in self._loops[link.name]:
                total += step.sign * branch_voltage[step.branch]
            # The path runs negative→positive, so the accumulated drop is
            # v(negative) − v(positive); negate.
            voltages[link.name] = -total
        return voltages

    def port_solve(
        self,
        capacitor_currents: dict[str, float],
        source_values: dict[str, float],
    ) -> dict[str, float]:
        """One dc solve: capacitors replaced by the given current sources.

        ``capacitor_currents[name]`` is the current *injected through the
        capacitor port* from its positive to its negative terminal (the
        ``I`` of the paper's Fig. 5).  Returns the voltage across every
        capacitor link.  Independent current sources in the circuit
        contribute their ``source_values`` entry (default 0).
        """
        injections = {}
        for cap in self.capacitor_links:
            injections[cap.name] = capacitor_currents.get(cap.name, 0.0)
        for isrc in self.current_source_links:
            injections[isrc.name] = source_values.get(isrc.name, 0.0)

        if self.resistive_links:
            # Solve eq. 61 for the resistive-link currents first.
            base = self._link_voltages(injections, source_values)
            rhs = np.array(
                [base[l.name] / l.resistance for l in self.resistive_links]
            )
            currents = np.linalg.solve(self._resistive_matrix, rhs)
            for link, current in zip(self.resistive_links, currents):
                injections[link.name] = float(current)

        voltages = self._link_voltages(injections, source_values)
        return {cap.name: voltages[cap.name] for cap in self.capacitor_links}


def treelink_steady_state(
    circuit: Circuit, source_values: dict[str, float]
) -> dict[str, float]:
    """DC steady state of every capacitor voltage (caps open) by tree/link."""
    analysis = TreeLinkAnalysis(circuit)
    return analysis.port_solve({}, source_values)


def treelink_moments(
    circuit: Circuit, source_values: dict[str, float], count: int
) -> dict[str, np.ndarray]:
    """Moments of the zero-IC step response's homogeneous part, per capacitor.

    Returns ``{cap: [m₋₁, m₀, …, m_{count−1}]}`` where ``m₋₁ = −v_ss`` (the
    homogeneous initial value for a circuit starting at rest) and each
    subsequent moment is one more port solve with the previous moment
    scaled by the capacitances as the injected current — the "succession
    of dc solutions" of paper Sec. IV.
    """
    analysis = TreeLinkAnalysis(circuit)
    v_ss = analysis.port_solve({}, source_values)
    caps = {cap.name: cap.capacitance for cap in analysis.capacitor_links}

    previous = {name: -v for name, v in v_ss.items()}  # m₋₁ = y(0) = −v_ss
    sequences = {name: [previous[name]] for name in caps}
    for k in range(count):
        # m₀ = G⁻¹C·y₀ but m_{k+1} = −G⁻¹C·m_k (paper eq. 34): through the
        # port-solve orientation this flips the injected-current sign after
        # the first step.
        sign = -1.0 if k == 0 else 1.0
        injection = {name: sign * caps[name] * previous[name] for name in caps}
        current = analysis.port_solve(injection, {})
        for name in caps:
            sequences[name].append(current[name])
        previous = current
    return {name: np.array(values) for name, values in sequences.items()}


def treelink_elmore_delays(circuit: Circuit, v_supply: float) -> dict[str, float]:
    """Elmore delays via tree/link moments (the paper's eq. 56 route):
    ``T_D = −m₀ / v_ss`` per capacitor, for a 0→``v_supply`` step on every
    voltage source."""
    source_values = {src.name: v_supply for src in circuit.voltage_sources}
    analysis = TreeLinkAnalysis(circuit)
    v_ss = analysis.port_solve({}, source_values)
    moments = treelink_moments(circuit, source_values, 1)
    delays = {}
    for name, sequence in moments.items():
        steady = v_ss[name]
        if steady == 0.0:
            raise AnalysisError(f"capacitor {name!r} sees no steady-state swing")
        delays[name] = -float(sequence[1]) / steady
    return delays
