"""Elmore delay by tree walk — O(n), paper Sec. II / eq. 50.

For an RC tree the Elmore delay (the first moment of the impulse
response, eq. 1) at node *i* is

.. math::

    T_D^i = \\sum_{e \\in path(root, i)} R_e \\cdot C(S_e)

where ``C(S_e)`` is the total capacitance in the subtree hanging below
tree edge ``e``.  Two linear passes compute it for *every* node at once:
a post-order pass accumulates subtree capacitances, then a pre-order pass
pushes path sums down — the "tree walk" of Penfield–Rubinstein [7] that
Sec. IV shows to be the first AWE moment in disguise.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.topology import RcTree, analyze_rc_tree


def elmore_delays(circuit_or_tree: Circuit | RcTree) -> dict[str, float]:
    """Elmore delay at every node of an RC tree, by one O(n) walk.

    Accepts either a circuit (validated as an RC tree first) or an
    already-analysed :class:`~repro.circuit.topology.RcTree`.
    """
    tree = (
        circuit_or_tree
        if isinstance(circuit_or_tree, RcTree)
        else analyze_rc_tree(circuit_or_tree)
    )
    order = tree.nodes  # breadth-first from the root

    # Post-order: subtree capacitance below each node (node's own cap
    # included).
    subtree_cap = dict(tree.capacitance)
    for node in reversed(order):
        for child in tree.children.get(node, ()):
            subtree_cap[node] += subtree_cap[child]

    # Pre-order: delay(child) = delay(parent) + R_edge * C(subtree(child)).
    delays = {tree.root: 0.0}
    for node in order:
        if node == tree.root:
            continue
        parent, resistor = tree.parent[node]
        delays[node] = delays[parent] + resistor.resistance * subtree_cap[node]
    return delays


def elmore_delay(circuit: Circuit, node: str) -> float:
    """Elmore delay at one node (still walks the whole tree — it is O(n))."""
    delays = elmore_delays(circuit)
    if node not in delays:
        raise KeyError(f"node {node!r} is not part of the RC tree")
    return delays[node]
