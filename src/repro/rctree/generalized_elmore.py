"""The generalized (area-based) Elmore delay — paper eqs. 1 and 3.

Sections 2.2–2.3 of the paper review the pre-AWE extensions of the Elmore
delay beyond strict RC trees:

* grounded resistors (O'Brien/Wyatt et al.): the final value is no longer
  the supply, so the delay is the *scaled settled area*

  .. math::

      T_D = \\frac{1}{v(\\infty) - v(0)}
            \\int_0^\\infty [v(\\infty) - v(t)]\\,dt
      \\qquad\\text{(paper eq. 3)}

* nonequilibrium initial conditions (Lin–Mead): the same expression with
  ``v(0)`` the charge-shared initial value — a *delay number* is produced
  even where the waveform is nonmonotone and no single-exponential model
  exists.

In moment language eq. 3 is one line: the numerator is ``−m₀`` of the
homogeneous response and the denominator its ``m₋₁``, so this module is a
thin, well-named wrapper over the same machinery AWE uses — which is the
paper's point: "for the case of an RC tree model a first-order AWE
approximation reduces to the RC tree methods."

For monotone responses the number approximates the 50 % delay; for
nonmonotone ones it is only a summary statistic (the limitation Sec. 2.4
calls out, and the reason AWE fits whole waveforms instead).
"""

from __future__ import annotations

from repro.analysis.dcop import (
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.analysis.mna import MnaSystem
from repro.circuit.elements import GROUND, canonical_node
from repro.circuit.netlist import Circuit
from repro.core.moments import homogeneous_moments
from repro.errors import AnalysisError


def generalized_elmore_delay(
    circuit: Circuit,
    node: str | int,
    source_values: dict[str, float] | None = None,
    pre_source_values: dict[str, float] | None = None,
) -> float:
    """Eq. 3 of the paper: the scaled settled area of the step response.

    ``source_values`` are the post-switch source levels (default: element
    ``dc`` values); ``pre_source_values`` the pre-switch levels (default:
    element ``dc0``), with capacitor/inductor explicit initial conditions
    honoured — so Lin–Mead-style charge-shared starting states work.

    Raises :class:`AnalysisError` when the node sees no net transition
    (the delay is undefined, eq. 3 divides by zero).
    """
    name = canonical_node(node)
    if name == GROUND:
        raise AnalysisError("ground does not move; no delay")
    system = MnaSystem(circuit)
    sources = {
        s.name: (s.dc, s.dc0) for s in circuit.voltage_sources
    }
    sources.update({s.name: (s.dc, s.dc0) for s in circuit.current_sources})
    post = {k: v[0] for k, v in sources.items()}
    pre = {k: v[1] for k, v in sources.items()}
    if source_values:
        post.update(source_values)
    if pre_source_values:
        pre.update(pre_source_values)

    storage = resolve_initial_storage_state(system, pre)
    x0 = initial_operating_point(circuit, system, storage, post)
    charges = system.group_charge(x0) if system.floating_groups else None
    x_final = dc_operating_point(system, post, charges)
    y0 = x0 - x_final
    moments = homogeneous_moments(system, y0, 1)
    row = system.index.node(name)
    swing = -float(y0[row])  # v(∞) − v(0)
    if swing == 0.0:
        raise AnalysisError(
            f"node {name!r} has no net transition; eq. 3 is undefined"
        )
    area = -float(moments.vectors[0][row])  # ∫ (v∞ − v) dt = −m₀
    return area / swing


def settling_areas(
    circuit: Circuit,
    source_values: dict[str, float] | None = None,
    pre_source_values: dict[str, float] | None = None,
) -> dict[str, float]:
    """The eq. 3 numerator ``∫(v∞ − v)dt`` for every node at once.

    One moment solve serves all outputs (the vectorised version of the
    delay above; useful for full-net delay reports)."""
    system = MnaSystem(circuit)
    post = {s.name: s.dc for s in circuit.voltage_sources}
    post.update({s.name: s.dc for s in circuit.current_sources})
    pre = {s.name: s.dc0 for s in circuit.voltage_sources}
    pre.update({s.name: s.dc0 for s in circuit.current_sources})
    if source_values:
        post.update(source_values)
    if pre_source_values:
        pre.update(pre_source_values)
    storage = resolve_initial_storage_state(system, pre)
    x0 = initial_operating_point(circuit, system, storage, post)
    charges = system.group_charge(x0) if system.floating_groups else None
    x_final = dc_operating_point(system, post, charges)
    moments = homogeneous_moments(system, x0 - x_final, 1)
    return {
        node: -float(moments.vectors[0][system.index.node(node)])
        for node in circuit.nodes
    }
