"""AWE accuracy estimation (paper Sec. 3.4).

The error of a q-order model is estimated against the (q+1)-order model
built from two extra moments: both are sums of decaying exponentials, so
the L2 waveform distance (paper eq. 39) has a closed form.

Two estimators are provided:

* :func:`exact_l2_distance` — evaluates eq. 39 *exactly* via the bilinear
  identity ``∫₀^∞ t^a e^{αt} · t^b e^{βt} dt = (a+b)! / (−(α+β))^{a+b+1}``.
  For the model orders AWE uses (q ≤ 8) this is a handful of complex
  multiplies, so it is the default.

* :func:`cauchy_bound_distance` — the paper's upper bound (eqs. 40–46):
  terms of the two models are paired by pole/residue proximity, each pair's
  squared-difference integral ``E_i`` is evaluated with eq. 45 (complex
  pairs jointly, eq. 46), and the bound ``(q+1)·Σ E_i`` is returned.  The
  paper used this to dodge ~40 complex multiplies on 1989 hardware; we keep
  it for fidelity and to benchmark how pessimistic it is (it is exact when
  the paired terms line up, per the paper's remark).

Both report *relative* error, normalised by the L2 norm of the reference
transient (eq. 37 as applied to eq. 39), matching the percentages quoted
throughout the paper's Section V.  Models containing non-decaying poles
yield ``inf`` — the signal for the driver to escalate the order.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.model import PoleResidueModel, Term


def _bilinear_integral(terms_a: list[Term], terms_b: list[Term]) -> complex:
    """``∫₀^∞ f(t) g(t) dt`` for polynomial-exponential term lists.

    A term ``(p, j, k)`` denotes ``k · t^{j−1} e^{pt} / (j−1)!``.
    Returns complex; the caller decides whether an imaginary part is
    legitimate.  Requires every pairwise pole sum to decay.
    """
    total = 0.0 + 0.0j
    for pole_a, power_a, residue_a in terms_a:
        for pole_b, power_b, residue_b in terms_b:
            sigma = pole_a + pole_b
            if sigma.real >= 0.0:
                return complex(np.inf)
            a, b = power_a - 1, power_b - 1
            coefficient = (
                residue_a
                * residue_b
                / (math.factorial(a) * math.factorial(b))
            )
            total += coefficient * math.factorial(a + b) / (-sigma) ** (a + b + 1)
    return total


def transient_energy(model: PoleResidueModel) -> float:
    """``∫₀^∞ v̂(t)² dt`` of the transient part (the normaliser, eq. 37)."""
    if not model.is_stable:
        return float("inf")
    value = _bilinear_integral(list(model.terms), list(model.terms))
    return _as_energy(value)


def exact_l2_distance(reference: PoleResidueModel, candidate: PoleResidueModel) -> float:
    """Exact ``sqrt(∫ (v_ref − v̂)² dt)`` between two transient models."""
    if not (reference.is_stable and candidate.is_stable):
        return float("inf")
    difference = list(reference.terms) + [
        (pole, power, -residue) for pole, power, residue in candidate.terms
    ]
    return math.sqrt(_as_energy(_bilinear_integral(difference, difference)))


def relative_error(reference: PoleResidueModel, candidate: PoleResidueModel) -> float:
    """The paper's normalised error estimate (eq. 39): distance between the
    (q+1)-order reference and the q-order candidate, over the reference's
    transient norm."""
    norm_squared = transient_energy(reference)
    if not np.isfinite(norm_squared):
        return float("inf")
    if norm_squared == 0.0:
        # No transient at all: any candidate with a transient is wrong.
        return 0.0 if transient_energy(candidate) == 0.0 else float("inf")
    return exact_l2_distance(reference, candidate) / math.sqrt(norm_squared)


def _as_energy(value: complex) -> float:
    """Validate that a squared-norm integral came out real and non-negative."""
    if not np.isfinite(value.real):
        return float("inf")
    scale = abs(value)
    if scale > 0 and abs(value.imag) > 1e-8 * scale:
        raise ArithmeticError(
            f"energy integral has a non-negligible imaginary part ({value})"
        )
    return max(value.real, 0.0)


# ----------------------------------------------------------------------
# The paper's Cauchy-inequality bound (eqs. 40–46)
# ----------------------------------------------------------------------


def _conjugate_groups(terms: list[Term]) -> list[list[Term]]:
    """Group terms into real singletons and conjugate pairs so each group
    is a real-valued function (required for Cauchy's inequality, eq. 46)."""
    remaining = list(terms)
    groups: list[list[Term]] = []
    while remaining:
        term = remaining.pop(0)
        pole = term[0]
        if abs(pole.imag) <= 1e-12 * max(abs(pole), 1.0):
            groups.append([term])
            continue
        # Find the conjugate partner.
        partner_index = None
        for i, other in enumerate(remaining):
            if abs(other[0] - pole.conjugate()) <= 1e-6 * max(abs(pole), 1.0):
                partner_index = i
                break
        if partner_index is None:
            # Unpaired complex pole — treat alone; the bilinear integral
            # still converges, the bound just loses its realness guarantee.
            groups.append([term])
        else:
            groups.append([term, remaining.pop(partner_index)])
    return groups


def _group_difference_energy(group_a: list[Term], group_b: list[Term]) -> float:
    """``E_i = ∫ (f_a − f_b)² dt`` for two real term groups (eq. 45/46)."""
    difference = list(group_a) + [(p, j, -k) for p, j, k in group_b]
    return _as_energy(_bilinear_integral(difference, difference))


def cauchy_bound_distance(reference: PoleResidueModel, candidate: PoleResidueModel) -> float:
    """The paper's paired upper bound on the waveform distance (eq. 41).

    Groups of the (q+1)-order reference are matched to groups of the
    q-order candidate by dominant-pole proximity; the surplus reference
    group is matched by splitting the candidate's nearest group's residue
    (the paper's eqs. 42–43).  Returns
    ``sqrt((q+1) · Σ E_i)`` — an upper bound on eq. 39's numerator.
    """
    if not (reference.is_stable and candidate.is_stable):
        return float("inf")
    groups_ref = _conjugate_groups(list(reference.terms))
    groups_cand = _conjugate_groups(list(candidate.terms))

    def dominant(group: list[Term]) -> complex:
        return min((term[0] for term in group), key=lambda p: abs(p.real))

    # Greedy pairing by pole distance.
    unpaired_ref = list(range(len(groups_ref)))
    unpaired_cand = list(range(len(groups_cand)))
    pairs: list[tuple[list[Term], list[Term]]] = []
    while unpaired_ref and unpaired_cand:
        best = None
        for i in unpaired_ref:
            for j in unpaired_cand:
                distance = abs(dominant(groups_ref[i]) - dominant(groups_cand[j]))
                if best is None or distance < best[0]:
                    best = (distance, i, j)
        _, i, j = best
        pairs.append((groups_ref[i], groups_cand[j]))
        unpaired_ref.remove(i)
        unpaired_cand.remove(j)

    total = 0.0
    leftovers = [groups_ref[i] for i in unpaired_ref]
    if leftovers and pairs:
        # Eqs. 42–43: split the last paired candidate group between its
        # reference partner and the surplus reference group(s).
        ref_last, cand_last = pairs.pop()
        # Match v_q against the candidate group carrying the reference's
        # share of the residue ...
        shared = _scale_group(cand_last, _residue_ratio(ref_last, cand_last))
        total += _group_difference_energy(ref_last, shared)
        remainder = _subtract_groups(cand_last, shared)
        for leftover in leftovers:
            total += _group_difference_energy(leftover, remainder)
            remainder = [(p, j, 0.0) for p, j, _ in remainder]
    else:
        for leftover in leftovers:
            total += _group_difference_energy(leftover, [])
    for group_ref, group_cand in pairs:
        total += _group_difference_energy(group_ref, group_cand)
    count = len(groups_ref)
    return math.sqrt(max(count, 1) * total)


def _residue_ratio(reference_group: list[Term], candidate_group: list[Term]) -> float:
    """Fraction of the candidate group's residue assigned to the reference
    pairing in the eq. 42/43 split: use the reference residue magnitude."""
    ref_mag = sum(abs(k) for _, _, k in reference_group)
    cand_mag = sum(abs(k) for _, _, k in candidate_group)
    if cand_mag == 0.0:
        return 0.0
    return min(1.0, ref_mag / cand_mag)


def _scale_group(group: list[Term], factor: float) -> list[Term]:
    return [(p, j, k * factor) for p, j, k in group]


def _subtract_groups(group: list[Term], part: list[Term]) -> list[Term]:
    return [(p, j, k - kp) for (p, j, k), (_, _, kp) in zip(group, part)]


def cauchy_relative_error(reference: PoleResidueModel, candidate: PoleResidueModel) -> float:
    """Cauchy-bound counterpart of :func:`relative_error`."""
    norm_squared = transient_energy(reference)
    if not np.isfinite(norm_squared) or norm_squared == 0.0:
        return relative_error(reference, candidate)
    return cauchy_bound_distance(reference, candidate) / math.sqrt(norm_squared)


#: The named relative-error estimators selectable via
#: ``AweAnalyzer.response(error_method=...)`` — the single registry the
#: driver dispatches on and the ``order_escalation`` trace events cite.
ESTIMATORS = {
    "exact": relative_error,
    "cauchy": cauchy_relative_error,
}
