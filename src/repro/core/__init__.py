"""The AWE core: moments, Padé pole matching, residues, error, driver."""

from repro.core.driver import (
    AweAnalyzer,
    AweResponse,
    ComponentApproximation,
    Subproblem,
    awe_response,
)
from repro.core.error import (
    cauchy_bound_distance,
    cauchy_relative_error,
    exact_l2_distance,
    relative_error,
    transient_energy,
)
from repro.core.model import AweWaveform, PoleResidueModel
from repro.core.moments import (
    MomentSet,
    ParticularSolution,
    homogeneous_moments,
    particular_solution,
)
from repro.core.pade import (
    PadeResult,
    characteristic_polynomial,
    choose_scale,
    hankel_sequence,
    match_poles,
    poles_from_characteristic,
    scale_moments,
)
from repro.core.macromodel import FosterBranch, FosterNetwork, synthesize_rc_load
from repro.core.residues import cluster_poles, solve_residues
from repro.core.sensitivity import DelaySensitivities, delay_sensitivities
from repro.core.transfer import (
    TransferModel,
    exact_frequency_response,
    reduce_transfer,
    transfer_moments,
)

__all__ = [
    "AweAnalyzer",
    "AweResponse",
    "AweWaveform",
    "ComponentApproximation",
    "MomentSet",
    "PadeResult",
    "ParticularSolution",
    "PoleResidueModel",
    "Subproblem",
    "awe_response",
    "cauchy_bound_distance",
    "cauchy_relative_error",
    "characteristic_polynomial",
    "choose_scale",
    "cluster_poles",
    "exact_l2_distance",
    "hankel_sequence",
    "homogeneous_moments",
    "match_poles",
    "particular_solution",
    "poles_from_characteristic",
    "relative_error",
    "scale_moments",
    "solve_residues",
    "transient_energy",
    "TransferModel",
    "DelaySensitivities",
    "FosterBranch",
    "FosterNetwork",
    "delay_sensitivities",
    "synthesize_rc_load",
    "exact_frequency_response",
    "reduce_transfer",
    "transfer_moments",
]
