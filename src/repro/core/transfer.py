"""Transfer-function AWE: reduced-order models in the frequency domain.

The paper frames AWE around time-domain waveforms, but notes (Sec. 3.1)
that the same Hankel system "arises also in the model order reduction
problem much studied in linear control system theory" (its eq. 30).  This
module is that formulation — the one AWE's successors (RICE, PVL, PRIMA)
standardised:

.. math::

    H(s) = L^T (G + sC)^{-1} B\\,,\\qquad
    H(s) = \\sum_{k \\ge 0} m_k s^k,\\quad
    m_0 = L^T G^{-1} B,\\; m_{k+1} = -L^T G^{-1} C\\,(\\text{previous vector})

A ``q``-pole Padé model ``Ĥ(s) = d + Σ kᵢ/(s − pᵢ)`` matches
``m₀ … m_{2q−1}`` (2q moments; there is no initial-condition ``m₋₁`` row
in the transfer formulation — the optional direct term ``d`` takes one
more moment instead).

Uses: AC/frequency-response sweeps of the reduced model against the exact
transfer function, macromodel export for reuse in other tools, and the
frequency-domain view of the pole "creep-up" the paper's tables show in
the time domain.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.mna import MnaSystem
from repro.circuit.elements import GROUND, canonical_node
from repro.core.pade import characteristic_polynomial, choose_scale, poles_from_characteristic
from repro.errors import ApproximationError, MomentMatrixError


def transfer_moments(
    system: MnaSystem,
    source: str,
    node: str | int,
    count: int,
    expansion_point: float = 0.0,
) -> np.ndarray:
    """The first ``count`` Taylor coefficients of ``V(node)/U(source)``
    about ``s = expansion_point``.

    One LU solve per moment, exactly like the time-domain recursion
    (paper Sec. 3.2): ``v_0 = (G+s₀C)⁻¹ B e_src``,
    ``v_{k+1} = −(G+s₀C)⁻¹ C v_k``, ``m_k = v_k[node]``.

    ``expansion_point = 0`` is classical AWE.  A positive real ``s₀``
    shifts the matching point toward higher frequencies — the
    complex-frequency-hopping idea that fixes the s = 0 blind spot for
    well-damped high-frequency detail.  (Floating-group charge rows are
    only needed at s₀ = 0, where the shifted matrix would be singular.)
    """
    name = canonical_node(node)
    if name == GROUND:
        raise ApproximationError("transfer to ground is identically zero")
    row = system.index.node(name)
    column = system.index.source(source)
    rhs = system.b_column(column)
    if system.floating_groups and expansion_point == 0.0:
        injection = system.group_injection(
            np.eye(system.index.source_count)[column]
        )
        if np.any(np.abs(injection) > 0):
            raise ApproximationError(
                "source drives a floating capacitive group; no DC transfer "
                "function exists"
            )
    if expansion_point == 0.0:
        solve = system.solve_augmented
    else:
        if expansion_point < 0.0:
            raise ApproximationError(
                "the expansion point must lie in the right half plane "
                "(s₀ ≥ 0) to stay clear of the circuit's own poles"
            )
        import scipy.linalg

        if system.use_sparse:
            import scipy.sparse
            import scipy.sparse.linalg

            solve = scipy.sparse.linalg.splu(
                scipy.sparse.csc_matrix(
                    system.G + expansion_point * system.C
                )
            ).solve
        else:
            shifted = scipy.linalg.lu_factor(
                system.G + expansion_point * system.C
            )

            def solve(vector):
                return scipy.linalg.lu_solve(shifted, vector)

    moments = np.empty(count)
    vector = solve(rhs)
    moments[0] = vector[row]
    for k in range(1, count):
        vector = solve(-(system.C @ vector))
        moments[k] = vector[row]
    return moments


@dataclasses.dataclass(frozen=True)
class TransferModel:
    """A reduced rational model ``Ĥ(s) = d + Σ kᵢ/(s − pᵢ)``.

    ``direct`` (the [q/q] Padé feedthrough term, default 0 for the
    classical strictly proper [q−1/q] form) carries instantaneous
    coupling — e.g. the capacitive-divider limit of a crosstalk transfer.
    ``dc_gain`` is ``Ĥ(0)``; evaluation is vectorised over complex
    frequencies.
    """

    poles: np.ndarray
    residues: np.ndarray
    source: str
    node: str
    direct: float = 0.0

    @property
    def order(self) -> int:
        return len(self.poles)

    @property
    def is_stable(self) -> bool:
        return bool(np.all(self.poles.real < 0))

    def evaluate(self, s) -> np.ndarray:
        """``Ĥ(s)`` at complex frequency/ies ``s``."""
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        values = np.full(s.shape, complex(self.direct))
        for pole, residue in zip(self.poles, self.residues):
            values += residue / (s - pole)
        return values

    def frequency_response(self, omegas) -> np.ndarray:
        """``Ĥ(jω)`` for real angular frequencies."""
        return self.evaluate(1j * np.asarray(omegas, dtype=float))

    @property
    def dc_gain(self) -> float:
        value = complex(self.evaluate(0.0)[0])
        return value.real

    def step_response(self, times, amplitude: float = 1.0) -> np.ndarray:
        """Zero-state response to ``amplitude·H(t)`` — the inverse-Laplace
        of ``Ĥ(s)·A/s``: ``A·(d + Σ kᵢ (e^{pᵢt} − 1)/pᵢ)``."""
        times = np.asarray(times, dtype=float)
        total = np.full(times.shape, complex(self.direct))
        for pole, residue in zip(self.poles, self.residues):
            total += residue * (np.exp(pole * times) - 1.0) / pole
        if np.abs(total.imag).max(initial=0.0) > 1e-6 * max(
            np.abs(total.real).max(initial=0.0), 1e-300
        ):
            raise ApproximationError("unpaired complex poles in step response")
        return amplitude * total.real


def reduce_transfer(
    system: MnaSystem,
    source: str,
    node: str | int,
    order: int,
    moments: np.ndarray | None = None,
    expansion_point: float = 0.0,
    direct_term: bool = False,
) -> TransferModel:
    """Padé-reduce the transfer function to ``order`` poles.

    Matches the ``2q`` Taylor coefficients of ``H`` about
    ``expansion_point`` (``s₀ = 0`` — classical AWE — by default).
    The algebra is identical for any ``s₀``: writing ``u = p − s₀``, the
    coefficients satisfy ``m_k = −Σ kᵢ/uᵢ^{k+1}``, so the standard Hankel
    pipeline produces the shifted poles ``uᵢ`` and the true poles are
    ``s₀ + uᵢ``.  ``moments`` may be supplied to reuse a longer
    precomputed sequence (it must have been computed about the same
    ``expansion_point``).

    ``direct_term=True`` fits the [q/q] form ``d + Σkᵢ/(s−pᵢ)`` instead
    of the strictly proper [q−1/q]: the feedthrough constant ``d``
    captures instantaneous (capacitive-divider) coupling the proper form
    cannot, at the cost of one extra moment (``2q+1`` total).  The pole
    recurrence is unaffected by ``d`` (it cancels from all difference
    rows), so poles come from the Hankel over ``m₁ … m_{2q}``.
    """
    q = order
    needed = 2 * q + (1 if direct_term else 0)
    if moments is None:
        moments = transfer_moments(system, source, node, needed, expansion_point)
    if len(moments) < needed:
        raise MomentMatrixError(f"order {q} needs {needed} transfer moments")

    # The [q/q] fit runs the identical pipeline on the shifted-by-one
    # sequence m₁ … m_{2q}; d never enters those coefficients.
    working = moments[1 : 1 + 2 * q] if direct_term else moments[: 2 * q]

    # Scale exactly as in the time-domain path: m_k γ^k keeps the Hankel
    # entries O(1).  (γ from consecutive moment ratios.)
    gamma = choose_scale(working)
    scaled = working * gamma ** np.arange(2 * q)

    a, _ = characteristic_polynomial(scaled, q)
    shifted_poles = poles_from_characteristic(a) * gamma
    poles = shifted_poles + expansion_point

    # Residues from q consecutive coefficients: m_k = −Σ kᵢ uᵢ^{−(k+1)}
    # (k ≥ 1 in the direct-term form — those rows are d-free).
    offset = 1 if direct_term else 0
    A = np.empty((q, q), dtype=complex)
    for i in range(q):
        k = i + offset
        A[i, :] = -(shifted_poles ** -(k + 1))
    try:
        residues = np.linalg.solve(
            A, moments[offset : offset + q].astype(complex)
        )
    except np.linalg.LinAlgError as exc:
        raise ApproximationError(f"transfer residue system singular: {exc}") from exc

    direct = 0.0
    if direct_term:
        # m₀ = d − Σ kᵢ/uᵢ  ⇒  d = m₀ + Σ kᵢ/uᵢ.
        correction = complex(np.sum(residues / shifted_poles))
        direct = float(moments[0] + correction.real)
    return TransferModel(poles=poles, residues=residues,
                         source=source, node=canonical_node(node),
                         direct=direct)


def exact_frequency_response(
    system: MnaSystem, source: str, node: str | int, omegas
) -> np.ndarray:
    """``H(jω)`` solved exactly, one complex LU per frequency point.

    The brute-force reference the reduced model is judged against (and
    the reason reduced models exist: this is O(points · n³)).
    """
    name = canonical_node(node)
    row = system.index.node(name)
    column = system.index.source(source)
    # Dense brute-force reference: pull dense views regardless of backend.
    rhs = system.b_column(column)
    omegas = np.asarray(omegas, dtype=float)
    values = np.empty(omegas.shape, dtype=complex)
    C_effective = system.C_dense
    full_rhs = rhs
    if system.charge_rows:
        # Charge-augmented rows already carry the (frequency-independent)
        # total-charge equation ΣC·X = 0 — the s-divided form of the
        # replaced KCL row.  The storage matrix must not re-add s-terms on
        # those rows, and their RHS is zero.
        C_effective = C_effective.copy()
        C_effective[list(system.charge_rows), :] = 0.0
        full_rhs = rhs.copy()
        full_rhs[list(system.charge_rows)] = 0.0
    G_aug = system.G_aug_dense
    for i, omega in enumerate(omegas):
        matrix = G_aug + 1j * omega * C_effective
        values[i] = np.linalg.solve(matrix, full_rhs)[row]
    return values
