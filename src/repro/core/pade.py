"""Moment matching: from a scalar moment sequence to approximating poles.

Implements the direct (non-iterative) solution of the paper's Sec. 3.1:

1. Assemble the Hankel moment matrix (paper eq. 24) over the sequence
   ``μ₋₁, m₀, m₁, …, m_{2q−2}`` and solve for the characteristic
   coefficients ``a₀ … a_{q−1}``.
2. Root the characteristic polynomial (eq. 25) in the reciprocal-pole
   variable ``z = 1/p``; the approximating poles are ``1/z``.

Sign convention.  The fitted model is ``x̂(t) = Σ kₗ e^{pₗ t}`` whose
Laplace expansion gives ``m_k = −Σ kₗ pₗ^{−(k+1)}`` for ``k ≥ 0`` while the
initial value is ``x̂(0) = +Σ kₗ``.  The uniform Hankel recurrence therefore
uses ``μ₋₁ = −x̂(0)``: one extra minus sign relative to the raw initial
condition.  (The paper's eq. 24 elides this sign; its worked example,
eq. 55, carries it as ``v_ss = −m₋₁``.)  :func:`hankel_sequence` applies
the convention so callers only ever handle the physical values.

Frequency scaling (paper Sec. 3.5) is applied inside
:func:`match_poles`: moments are rescaled by ``γ = m₋₁/m₀`` so the Hankel
matrix entries are all O(1); the resulting poles are scaled back by ``γ``.
Without this the moment matrix overflows float range by third order for
nanosecond-scale circuits (see the ablation benchmark).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MomentMatrixError

#: Condition-number ceiling beyond which the Hankel solve is rejected.
_CONDITION_LIMIT = 1e13


def hankel_sequence(moments: np.ndarray) -> np.ndarray:
    """The uniform sequence ``[−m₋₁, m₀, m₁, …]`` used by the Hankel solve.

    ``moments`` is the physical sequence ``[m₋₁ (initial value), m₀, …]``.
    """
    sequence = np.array(moments, dtype=float, copy=True)
    sequence[0] = -sequence[0]
    return sequence


def choose_scale(moments: np.ndarray) -> float:
    """Frequency-scale factor γ (paper eq. 47): ``m₋₁ / m₀``.

    Falls back to later moment ratios when the leading entries vanish
    (e.g. a coupled node that starts exactly at its final value), and to
    1.0 when no informative ratio exists.  The returned γ is positive.
    """
    sequence = np.asarray(moments, dtype=float)
    for k in range(len(sequence) - 1):
        numerator, denominator = sequence[k], sequence[k + 1]
        if numerator != 0.0 and denominator != 0.0:
            gamma = abs(numerator / denominator)
            if np.isfinite(gamma) and gamma > 0.0:
                return gamma
    return 1.0


def scale_moments(moments: np.ndarray, gamma: float) -> np.ndarray:
    """Moments of the time-scaled response ``y(t/γ)``: ``m_k → m_k γ^{k+1}``
    for k ≥ 0, with the initial value (index 0 of the array) unchanged."""
    scaled = np.array(moments, dtype=float, copy=True)
    powers = gamma ** np.arange(1, len(scaled))
    scaled[1:] *= powers
    return scaled


@dataclasses.dataclass(frozen=True)
class PadeResult:
    """Approximating poles plus solver diagnostics."""

    poles: np.ndarray
    characteristic: np.ndarray
    condition_number: float
    scale: float

    @property
    def order(self) -> int:
        return len(self.poles)

    @property
    def is_stable(self) -> bool:
        """All poles strictly in the left half-plane (paper Sec. 3.3)."""
        return bool(np.all(self.poles.real < 0.0))


def characteristic_polynomial(sequence: np.ndarray, q: int) -> tuple[np.ndarray, float]:
    """Solve the Hankel system (paper eq. 24) for ``a₀ … a_{q−1}``.

    ``sequence`` is the uniform sequence from :func:`hankel_sequence`
    (length ≥ 2q).  Returns the coefficients and the Hankel condition
    number; raises :class:`MomentMatrixError` when the matrix is singular
    or worse-conditioned than the solver can support.
    """
    if len(sequence) < 2 * q:
        raise MomentMatrixError(
            f"order {q} needs {2 * q} moment values, got {len(sequence)}"
        )
    H = np.empty((q, q))
    for i in range(q):
        H[i, :] = sequence[i : i + q]
    rhs = sequence[q : 2 * q]
    condition = float(np.linalg.cond(H)) if q > 0 else 1.0
    if not np.isfinite(condition) or condition > _CONDITION_LIMIT:
        raise MomentMatrixError(
            f"moment matrix for order {q} is ill-conditioned "
            f"(cond ≈ {condition:.2e}); the response cannot support this "
            "order — use a lower one"
        )
    try:
        minus_a = np.linalg.solve(H, rhs)
    except np.linalg.LinAlgError as exc:
        raise MomentMatrixError(f"moment matrix for order {q} is singular: {exc}") from exc
    return -minus_a, condition


def poles_from_characteristic(a: np.ndarray) -> np.ndarray:
    """Roots of ``a₀ + a₁ z + … + a_{q−1} z^{q−1} + z^q`` mapped to poles
    ``p = 1/z`` (paper eq. 25), sorted dominant-first (smallest |Re|)."""
    q = len(a)
    coefficients = np.concatenate(([1.0], a[::-1]))  # z^q first for np.roots
    roots = np.roots(coefficients)
    if np.any(roots == 0.0):
        raise MomentMatrixError("characteristic polynomial has a root at z = 0")
    poles = 1.0 / roots
    # Dominant first: smallest |p| — the moment expansion about s = 0 is
    # controlled by the pole nearest the origin (the ordering the paper's
    # Tables I and II use).
    return poles[np.argsort(np.abs(poles))]


def match_poles(moments: np.ndarray, q: int, use_scaling: bool = True) -> PadeResult:
    """Full pipeline: physical moments ``[m₋₁, m₀, …]`` → ``q`` poles.

    ``use_scaling=False`` disables frequency scaling (exposed for the
    Sec. 3.5 ablation; production callers should leave it on).
    """
    moments = np.asarray(moments, dtype=float)
    gamma = choose_scale(moments) if use_scaling else 1.0
    scaled = scale_moments(moments, gamma)
    sequence = hankel_sequence(scaled)
    a, condition = characteristic_polynomial(sequence, q)
    poles = poles_from_characteristic(a) * gamma
    return PadeResult(poles=poles, characteristic=a, condition_number=condition, scale=gamma)
