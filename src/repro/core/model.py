"""Evaluable AWE waveform models.

An AWE analysis produces, per output variable, one
:class:`PoleResidueModel` per excitation event (plus one for the release of
the initial conditions).  Each model is

.. math::

    \\hat v(\\tau) = c_0 + c_1 \\tau +
        \\sum_i k_i \\frac{\\tau^{j_i - 1}}{(j_i - 1)!} e^{p_i \\tau},
    \\qquad \\tau = t - t_0,\\; t \\ge t_0,

— the particular (step/ramp-following) part plus the matched transient
(paper eqs. 14–15, with the repeated-pole generalisation of eq. 26).  An
:class:`AweWaveform` superposes the per-event models (paper Fig. 13 and
eqs. 65–66) into the complete response.

Models evaluate with complex arithmetic internally and return real values;
conjugate pole pairs produced by the Padé stage make the imaginary parts
cancel, which :func:`repro.analysis.poles._realise`-style checks enforce.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import ApproximationError
from repro.waveform import Waveform

#: A transient term: (pole, power, residue) — see solve_residues().
Term = tuple[complex, int, complex]


@dataclasses.dataclass(frozen=True)
class PoleResidueModel:
    """One step/ramp subproblem's approximate response (active for t ≥ t0)."""

    terms: tuple[Term, ...]
    offset: float = 0.0
    slope: float = 0.0
    t0: float = 0.0
    name: str = ""

    @property
    def order(self) -> int:
        return len(self.terms)

    @property
    def poles(self) -> np.ndarray:
        """The distinct transient poles, with multiplicity expanded."""
        return np.array([pole for pole, _, _ in self.terms])

    @property
    def residues(self) -> np.ndarray:
        return np.array([residue for _, _, residue in self.terms])

    @property
    def is_stable(self) -> bool:
        return bool(np.all(self.poles.real < 0.0)) if self.terms else True

    def transient_at(self, tau) -> np.ndarray:
        """The decaying part only, on local time ``τ = t − t0`` (τ ≥ 0)."""
        tau = np.asarray(tau, dtype=float)
        total = np.zeros(tau.shape, dtype=complex)
        for pole, power, residue in self.terms:
            term = residue * np.exp(pole * tau)
            if power > 1:
                term = term * tau ** (power - 1) / math.factorial(power - 1)
            total += term
        imag_scale = np.abs(total.imag).max(initial=0.0)
        real_scale = np.abs(total.real).max(initial=0.0)
        if imag_scale > 1e-6 * max(real_scale, 1e-300) and imag_scale > 1e-12:
            raise ApproximationError(
                "pole/residue model evaluates to a complex waveform; "
                "conjugate pairing was broken upstream"
            )
        return total.real

    def evaluate(self, t) -> np.ndarray:
        """Model value at absolute time(s) ``t``; zero before ``t0``."""
        t = np.asarray(t, dtype=float)
        tau = t - self.t0
        active = tau >= 0.0
        values = np.zeros(t.shape)
        if np.any(active):
            tau_active = tau[active] if tau.ndim else tau
            contribution = (
                self.offset + self.slope * tau_active + self.transient_at(tau_active)
            )
            if tau.ndim:
                values[active] = contribution
            else:
                values = np.asarray(contribution)
        return values

    def initial_value(self) -> float:
        """Model value at τ = 0⁺ (should equal ``m₋₁ + c₀`` by matching)."""
        return float(self.offset + self.transient_at(np.asarray(0.0)))

    def final_value(self) -> float:
        """Limit as τ → ∞ of the constant part (offset; slope must be 0)."""
        if self.slope != 0.0:
            raise ApproximationError("model ramps forever; no final value")
        if not self.is_stable:
            raise ApproximationError("unstable model has no final value")
        return self.offset

    def dominant_time_constant(self) -> float:
        """``1/|Re p|`` of the most dominant stable pole — the model's own
        settling scale, used to pick evaluation windows."""
        if not self.terms:
            return 0.0
        rates = np.abs(self.poles.real)
        rates = rates[rates > 0]
        if len(rates) == 0:
            raise ApproximationError("model has no decaying pole")
        return float(1.0 / rates.min())


@dataclasses.dataclass(frozen=True)
class AweWaveform:
    """The complete response of one output: superposed per-event models.

    ``baseline`` is the pre-switching DC level contribution that is not
    carried inside any model (models describe *changes* from their own
    event onward).
    """

    models: tuple[PoleResidueModel, ...]
    baseline: float = 0.0
    name: str = ""

    def evaluate(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        total = np.full(t.shape, self.baseline)
        for model in self.models:
            total = total + model.evaluate(t)
        return total

    def __call__(self, t):
        return self.evaluate(t)

    def final_value(self) -> float:
        """Settled value as t → ∞.

        Individual event models may carry nonzero particular slopes (the
        two halves of a finite-rise-time input each ramp forever, paper
        Fig. 13); what must vanish is their *sum*.
        """
        total_slope = sum(model.slope for model in self.models)
        scale = max((abs(model.slope) for model in self.models), default=0.0)
        if abs(total_slope) > 1e-9 * max(scale, 1.0):
            raise ApproximationError("response ramps forever; no final value")
        if not self.is_stable:
            raise ApproximationError("unstable response has no final value")
        return self.baseline + sum(
            model.offset - model.slope * model.t0 for model in self.models
        )

    def dominant_time_constant(self) -> float:
        taus = [m.dominant_time_constant() for m in self.models if m.terms]
        if not taus:
            return 0.0
        return max(taus)

    def suggested_window(self, settle_factor: float = 8.0) -> float:
        """A time span that comfortably contains the whole transient."""
        last_event = max((m.t0 for m in self.models), default=0.0)
        tau = self.dominant_time_constant()
        if tau == 0.0:
            raise ApproximationError("waveform has no transient; no natural window")
        return last_event + settle_factor * tau

    def to_waveform(self, times=None, samples: int = 1000) -> Waveform:
        """Sample into a :class:`~repro.waveform.Waveform` (auto window when
        ``times`` is omitted)."""
        if times is None:
            times = np.linspace(0.0, self.suggested_window(), samples)
        times = np.asarray(times, dtype=float)
        return Waveform(times, self.evaluate(times), self.name)

    @property
    def is_stable(self) -> bool:
        return all(model.is_stable for model in self.models)
