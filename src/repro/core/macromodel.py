"""Foster synthesis: turn moment-matched admittances back into circuits.

A reduced model is most useful when another tool can consume it.  For RC
driving-point admittances the classical Foster canonical form does exactly
that: any positive-real RC admittance can be written

.. math::

    Y(s) = y_0 + \\sum_i \\frac{r_i\\, s}{s - p_i},
    \\qquad y_0 \\ge 0,\\; r_i > 0,\\; p_i < 0,

and each term is literally a series R–C branch (``R_i = 1/r_i``,
``C_i = r_i/|p_i|``) in parallel with the DC conductance ``1/y_0``.  So:
match moments (the same Hankel machinery as everywhere else), solve for
``(p_i, r_i)``, check passivity, and emit a :class:`Circuit` — a physical
N-branch stand-in for an arbitrarily large net, usable in any SPICE.

The synthesis matches the admittance about s = 0 (delay-accurate); the
high-frequency limit of an N-branch Foster form saturates at ``y₀ + Σrᵢ``
rather than growing capacitively, which is the usual, documented trade of
low-order load macromodels.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.core.pade import characteristic_polynomial, choose_scale, poles_from_characteristic
from repro.errors import ApproximationError
from repro.timing.pi_model import driving_point_moments


@dataclasses.dataclass(frozen=True)
class FosterBranch:
    """One series R–C branch of the Foster form."""

    resistance: float
    capacitance: float

    @property
    def pole(self) -> float:
        return -1.0 / (self.resistance * self.capacitance)


@dataclasses.dataclass(frozen=True)
class FosterNetwork:
    """A synthesised RC one-port: DC conductance + parallel R–C branches."""

    y0: float
    branches: tuple[FosterBranch, ...]
    port: str = "p"

    @property
    def order(self) -> int:
        return len(self.branches)

    @property
    def total_capacitance(self) -> float:
        """The y₁ moment the synthesis preserves (= ΣC of the original net
        for a capacitive load)."""
        return sum(b.capacitance for b in self.branches)

    def admittance(self, s) -> np.ndarray:
        """Y(s) of the synthesised network, vectorised."""
        s = np.asarray(s, dtype=complex)
        total = np.full(s.shape, complex(self.y0))
        for branch in self.branches:
            total += s * branch.capacitance / (
                1.0 + s * branch.resistance * branch.capacitance
            )
        return total

    def as_circuit(self, port: str | None = None, prefix: str = "F") -> Circuit:
        """The network as a :class:`Circuit` hanging off node ``port``.

        A unit DC path to ground is included only when ``y₀ > 0``; the
        port node itself carries no source, so the circuit fragment can be
        merged into a larger deck (or exported via the netlist writer).
        """
        node = port or self.port
        ckt = Circuit(f"Foster load ({self.order} branches)")
        ckt.add_voltage_source(f"V{prefix}_probe", node, "0")
        if self.y0 > 0:
            ckt.add_resistor(f"R{prefix}0", node, "0", 1.0 / self.y0)
        for i, branch in enumerate(self.branches, start=1):
            mid = f"{node}_f{i}"
            ckt.add_resistor(f"R{prefix}{i}", node, mid, branch.resistance)
            ckt.add_capacitor(f"C{prefix}{i}", mid, "0", branch.capacitance)
        return ckt


def synthesize_rc_load(
    system: MnaSystem,
    source: str,
    order: int,
    moments: np.ndarray | None = None,
) -> FosterNetwork:
    """Foster-synthesise the driving-point admittance seen by ``source``.

    ``order`` is the number of R–C branches; ``2·order + 1`` admittance
    moments are consumed.  Raises :class:`ApproximationError` when the fit
    is not realisable (complex or positive poles, negative residues) —
    which for a genuine RC one-port only happens when the requested order
    exceeds what the moments support numerically.
    """
    if moments is None:
        moments = driving_point_moments(system, source, 2 * order + 1)
    if len(moments) < 2 * order + 1:
        raise ApproximationError(
            f"order {order} needs {2 * order + 1} admittance moments"
        )
    y0 = float(moments[0])

    # W(s) = (Y − y₀)/s has plain pole/residue form with the shifted
    # moment sequence w_k = y_{k+1}.
    w = np.asarray(moments[1:], dtype=float)
    gamma = choose_scale(w)
    scaled = w[: 2 * order] * gamma ** np.arange(2 * order)
    a, _ = characteristic_polynomial(scaled, order)
    poles = poles_from_characteristic(a) * gamma

    A = np.empty((order, order), dtype=complex)
    for k in range(order):
        A[k, :] = -(poles ** -(k + 1))
    residues = np.linalg.solve(A, w[:order].astype(complex))

    branches = []
    for pole, residue in zip(poles, residues):
        if abs(pole.imag) > 1e-9 * abs(pole.real) or pole.real >= 0:
            raise ApproximationError(
                f"non-RC pole {pole:g} in the admittance fit; "
                "lower the synthesis order"
            )
        r = residue.real
        if r <= 0 or abs(residue.imag) > 1e-9 * abs(r):
            raise ApproximationError(
                f"non-passive residue {residue:g}; lower the synthesis order"
            )
        branches.append(
            FosterBranch(resistance=1.0 / r, capacitance=r / abs(pole.real))
        )
    branches.sort(key=lambda b: abs(b.pole))
    # A purely capacitive load computes y₀ only up to solver roundoff
    # (either sign); don't synthesise a 10²⁰ Ω "resistor" — or reject the
    # whole network — over numerical dust.
    branch_conductance = sum(1.0 / b.resistance for b in branches)
    if abs(y0) < 1e-9 * branch_conductance:
        y0 = 0.0
    if y0 < 0:
        raise ApproximationError("negative DC conductance; not an RC one-port")
    return FosterNetwork(y0=y0, branches=tuple(branches))
