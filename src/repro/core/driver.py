"""The AWE analysis driver: circuit + stimuli → approximate waveforms.

This is the public entry point of the reproduction's core.  It performs
the full pipeline of the paper's Sections III–IV:

1. **Decomposition.**  The excitation is split into a *release* subproblem
   (the circuit relaxing from its t = 0 state under the pre-event source
   levels — this is where nonequilibrium initial conditions and charge
   sharing live) plus one *event* subproblem per distinct stimulus
   breakpoint (each a step+ramp applied to a relaxed circuit — paper
   Sec. 4.3 / Fig. 13 superposition).
2. **Particular solutions and homogeneous states** for each subproblem
   (paper eqs. 6–8), including floating-group trapped charge.
3. **Moments** by the LU recursion (eqs. 33–34), shared across output
   nodes and across orders (escalation only appends moments).
4. **Padé pole extraction** with frequency scaling (eqs. 24–25, 47),
   **residues** (eq. 20 / 29), per output.
5. **Stability screening and order escalation** (Sec. 3.3): unstable or
   unsolvable low orders are bumped until the (q+1)-vs-q error estimate
   (Sec. 3.4) meets the target.

Typical use::

    from repro import AweAnalyzer, Step

    analyzer = AweAnalyzer(circuit, {"Vin": Step(0.0, 5.0)})
    response = analyzer.response("7", order=2)      # fixed order, or
    response = analyzer.response("7", error_target=0.01)   # auto order
    response.waveform.evaluate(times)
    response.delay(threshold=4.0)
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

import numpy as np

from repro.analysis.dcop import (
    StorageState,
    dc_operating_point,
    initial_operating_point,
    resolve_initial_storage_state,
)
from repro.analysis.mna import MnaSystem
from repro.analysis.sources import Stimulus, complete_stimuli
from repro.circuit.elements import GROUND, canonical_node
from repro.circuit.netlist import Circuit
from repro.circuit.validation import validate_for_analysis
from repro.core.error import ESTIMATORS
from repro.core.model import AweWaveform, PoleResidueModel
from repro.core.moments import (
    MomentSet,
    homogeneous_moments,
    homogeneous_moments_batch,
    particular_solutions,
)
from repro.core.pade import match_poles
from repro.core.residues import solve_residues
from repro.errors import (
    ApproximationError,
    MomentMatrixError,
    OrderLimitError,
    UnstableApproximationError,
)
from repro.trace import NULL_TRACER

#: Homogeneous states smaller than this (relative to the particular scale)
#: are treated as "already at steady state" — no transient model is built.
_NEGLIGIBLE = 1e-12


@dataclasses.dataclass(frozen=True)
class Subproblem:
    """One step/ramp excitation instant with its moments.

    ``t0`` is the absolute event time; ``c0``/``c1`` the particular
    solution vectors; ``moments`` the shared homogeneous moment vectors;
    ``rates`` optional state-derivative data for slope matching.
    """

    label: str
    t0: float
    c0: np.ndarray
    c1: np.ndarray
    moments: MomentSet
    slope_reference: dict[str, float]
    trivial: bool


@dataclasses.dataclass(frozen=True)
class ComponentApproximation:
    """Diagnostics for one output on one subproblem."""

    label: str
    order: int
    poles: np.ndarray
    error_estimate: float | None
    condition_number: float
    scale: float
    escalations: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class AweResponse:
    """The result of one AWE output analysis."""

    node: str
    waveform: AweWaveform
    components: tuple[ComponentApproximation, ...]

    @property
    def order(self) -> int:
        """The largest order used across subproblems."""
        return max((c.order for c in self.components), default=0)

    @property
    def error_estimate(self) -> float | None:
        """The worst per-subproblem error estimate (paper Sec. 3.4)."""
        estimates = [c.error_estimate for c in self.components if c.error_estimate is not None]
        return max(estimates) if estimates else None

    @property
    def poles(self) -> np.ndarray:
        """Poles of the dominant (largest-order) subproblem model."""
        if not self.components:
            return np.array([])
        best = max(self.components, key=lambda c: c.order)
        return best.poles

    def delay(self, threshold: float, t_max: float | None = None, samples: int = 4000) -> float:
        """First time the response crosses ``threshold`` (Sec. 5.3)."""
        window = t_max if t_max is not None else self.waveform.suggested_window()
        sampled = self.waveform.to_waveform(np.linspace(0.0, window, samples))
        return sampled.threshold_delay(threshold)

    def delay_50(self, t_max: float | None = None, samples: int = 4000) -> float:
        """50 %-of-swing delay (paper Fig. 2) using initial/final values."""
        window = t_max if t_max is not None else self.waveform.suggested_window()
        sampled = self.waveform.to_waveform(np.linspace(0.0, window, samples))
        v0 = sampled.initial
        v1 = self.waveform.final_value()
        return sampled.threshold_delay(0.5 * (v0 + v1), rising=v1 > v0)


class AweAnalyzer:
    """Reusable AWE analysis of one circuit under one set of stimuli.

    The expensive, output-independent work — MNA assembly, LU
    factorisation, subproblem decomposition, moment recursion — happens
    once and is shared by every :meth:`response` call and every order.

    Parameters
    ----------
    circuit:
        The linear RLC(+controlled sources) circuit.
    stimuli:
        Mapping of independent-source names to stimulus waveforms; unnamed
        sources step from their ``dc0`` to ``dc`` element values at t = 0.
    max_order:
        Hard cap on the approximation order (moments are computed lazily up
        to ``2·max_order + 1``).
    sparse:
        Factorisation backend override, forwarded to
        :class:`~repro.analysis.mna.MnaSystem` (``None`` auto-selects by
        dimension).
    tracer:
        A :class:`~repro.trace.Tracer` recording the span hierarchy and
        the escalation/stabilisation events of every :meth:`response`
        (see ``docs/observability.md``); defaults to the no-op
        :data:`~repro.trace.NULL_TRACER`.
    """

    def __init__(
        self,
        circuit: Circuit,
        stimuli: dict[str, Stimulus] | None = None,
        max_order: int = 8,
        sparse: bool | None = None,
        tracer=None,
    ):
        validate_for_analysis(circuit)
        self.circuit = circuit
        self.max_order = max_order
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.system = MnaSystem(circuit, sparse=sparse, tracer=self.tracer)
        self.source_order = list(self.system.index.source_names)
        self.stimuli = complete_stimuli(circuit, stimuli or {}, self.source_order)
        self._subproblems: list[Subproblem] | None = None
        self.baseline = 0.0

    def use_tracer(self, tracer) -> None:
        """Swap the attached tracer (``None`` detaches → no-op tracer).

        The batch engine reuses one analyzer across jobs but wants one
        trace *per job*; it calls this between jobs.  Spans for work that
        already happened (assembly, LU, the shared moment recursion) stay
        in the trace of the job that first triggered them.
        """
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.system.tracer = self.tracer

    # -- decomposition ---------------------------------------------------

    def subproblems(self) -> list[Subproblem]:
        """The release + per-event subproblems (built lazily, cached)."""
        if self._subproblems is None:
            self._subproblems = self._decompose()
        return self._subproblems

    def _moment_count(self, order: int) -> int:
        """Moments m₀…m_{2q} are needed for order q plus its q+1 error
        reference (2q − 1 for the match, two more for the reference)."""
        return 2 * order + 1

    def _decompose(self) -> list[Subproblem]:
        system = self.system
        circuit = self.circuit
        n_sources = len(self.source_order)
        u_pre = np.array(
            [self.stimuli[name].initial_value for name in self.source_order]
        )

        # Group stimulus breakpoints by time.
        events_by_time: dict[float, tuple[np.ndarray, np.ndarray]] = defaultdict(
            lambda: (np.zeros(n_sources), np.zeros(n_sources))
        )
        for k, name in enumerate(self.source_order):
            for event in self.stimuli[name].events():
                steps, slopes = events_by_time[event.time]
                steps[k] += event.step
                slopes[k] += event.slope_delta
        step0 = np.zeros(n_sources)
        slope0 = np.zeros(n_sources)
        if 0.0 in events_by_time:
            step0, slope0 = events_by_time.pop(0.0)

        count = self._moment_count(self.max_order)

        # Phase 1 — per-subproblem excitations and initial states.
        #
        # Main subproblem at t = 0: exactly the paper's eqs. 6–8 — the
        # initial state (pre-switching equilibrium overridden by explicit
        # ICs) released into the post-switching excitation
        # u(t) = (u_pre + step₀) + slope₀·t.  Any step at t = 0 and any
        # nonequilibrium charge live in the same homogeneous problem, as in
        # the paper's combined x_h(0).
        u0_main = u_pre + step0
        with self.tracer.span("operating_points", stats=system.stats):
            storage0 = resolve_initial_storage_state(
                system, dict(zip(self.source_order, u_pre))
            )
            u0_dict = dict(zip(self.source_order, u0_main))
            x0, rates = initial_operating_point(
                circuit, system, storage0, u0_dict, with_rates=True
            )
            charges = system.group_charge(x0) if system.floating_groups else None
            if charges is not None:
                self.tracer.event(
                    "trapped_charge_resolved",
                    groups=len(system.floating_groups),
                    charges=[float(q) for q in charges],
                )

            #: (label, t0, u0, u1, x_initial, slope_reference, group_charges)
            specs: list[tuple] = [
                ("main", 0.0, u0_main, slope0, x0,
                 self._state_rates_by_node(rates, storage0), charges)
            ]

            # Later events: zero-state step+ramp responses superposed with
            # a time shift (paper Sec. 4.3 / Fig. 13).
            zero_storage = StorageState(
                {cap.name: 0.0 for cap in circuit.capacitors},
                {ind.name: 0.0 for ind in circuit.inductors},
            )
            for t_e in sorted(events_by_time):
                u_step, u_slope = events_by_time[t_e]
                if not np.any(u_step) and not np.any(u_slope):
                    continue
                u_jump = {name: float(u_step[k]) for k, name in enumerate(self.source_order)}
                x_jump, jump_rates = initial_operating_point(
                    circuit, system, zero_storage, u_jump, with_rates=True
                )
                specs.append(
                    (f"event@{t_e:g}", t_e, u_step, u_slope, x_jump,
                     self._state_rates_by_node(jump_rates, zero_storage), None)
                )

        with self.tracer.span("moment_recursion", stats=system.stats,
                              orders=count) as moment_span:
            # Phase 2 — all particular solutions in two multi-RHS solves.
            group_charge_columns = None
            if system.floating_groups:
                n_groups = len(system.floating_groups)
                group_charge_columns = np.column_stack(
                    [np.zeros(n_groups) if spec[6] is None else spec[6] for spec in specs]
                )
            particulars = particular_solutions(
                system,
                np.column_stack([spec[2] for spec in specs]),
                np.column_stack([spec[3] for spec in specs]),
                group_charge_columns,
            )

            # Phase 3 — one shared moment recursion for every non-trivial
            # subproblem: the chains advance together, one triangular-solve
            # call per order no matter how many subproblems there are.
            y0s = [spec[4] - particular.c0 for spec, particular in zip(specs, particulars)]
            trivial_flags = [
                _is_negligible(y0, spec[4], particular.c0)
                for y0, spec, particular in zip(y0s, specs, particulars)
            ]
            active = [i for i, trivial in enumerate(trivial_flags) if not trivial]
            batch = None
            if active:
                batch = homogeneous_moments_batch(
                    system, np.column_stack([y0s[i] for i in active]), count
                )
            if moment_span is not None:
                moment_span.meta["subproblems"] = len(specs)
                moment_span.meta["active_chains"] = len(active)

        subproblems: list[Subproblem] = []
        for i, (spec, particular) in enumerate(zip(specs, particulars)):
            label, t0, _, _, _, slope_reference, _ = spec
            if trivial_flags[i]:
                # Preserves the single-subproblem path's trapped-charge
                # validation without computing any moments.
                moments = homogeneous_moments(system, y0s[i], 0)
            else:
                moments = batch.column(active.index(i))
            subproblems.append(
                Subproblem(
                    label=label,
                    t0=t0,
                    c0=particular.c0,
                    c1=particular.c1,
                    moments=moments,
                    slope_reference=slope_reference,
                    trivial=trivial_flags[i],
                )
            )
        return subproblems

    def _state_rates_by_node(self, rates, storage: StorageState) -> dict[str, float]:
        """Map initial dV/dt onto node names for nodes that own a grounded
        capacitor (the only outputs slope matching supports).  Rates are
        unavailable (None) when capacitors form loops."""
        result: dict[str, float] = {}
        if rates is None:
            return result
        for cap in self.circuit.capacitors:
            if not cap.is_grounded:
                continue
            rate = rates.capacitor_voltage_rates[cap.name]
            if cap.negative == GROUND:
                result[cap.positive] = rate  # v_node = +v_cap
            else:
                result[cap.negative] = -rate  # v_node = −v_cap
        return result

    # -- approximation ---------------------------------------------------

    def response(
        self,
        node: str | int,
        order: int | None = None,
        error_target: float = 0.01,
        match_initial_slope: bool = False,
        use_scaling: bool = True,
        error_method: str = "exact",
        stabilize: bool = False,
    ) -> AweResponse:
        """Approximate the voltage waveform at ``node``.

        Parameters
        ----------
        order:
            Fixed approximation order ``q``; ``None`` escalates from 1
            until the Sec. 3.4 error estimate is below ``error_target``.
        match_initial_slope:
            Apply the paper's Sec. 4.3 ``m₋₂`` extension (requires the
            output node to carry a grounded capacitor and ``q ≥ 2``).
        use_scaling:
            Frequency scaling of the moments (Sec. 3.5); disable only for
            the ablation study.
        error_method:
            ``"exact"`` (closed-form eq. 39) or ``"cauchy"`` (the paper's
            eq. 40–46 upper bound).
        stabilize:
            Fixed-order only: when the Padé fit produces right-half-plane
            poles, discard them and refit the residues on the remaining
            stable poles (partial Padé).  The result matches fewer moments
            but is guaranteed evaluable; the discard is recorded in the
            component diagnostics.
        """
        name = canonical_node(node)
        if name == GROUND:
            raise ApproximationError("ground is identically zero; nothing to approximate")
        row = self.system.index.node(name)

        # Build the shared subproblems (and their trace spans) before the
        # per-response span opens, so decomposition cost is attributed to
        # the pipeline, not to whichever output happened to come first.
        subproblems = self.subproblems()

        stats = self.system.stats
        models: list[PoleResidueModel] = []
        diagnostics: list[ComponentApproximation] = []
        with self.tracer.span("response", stats=stats, node=name):
            with stats.timer("wall_time_s"):
                for sub in subproblems:
                    model, info = self._approximate_component(
                        sub, row, name, order, error_target,
                        match_initial_slope, use_scaling, error_method, stabilize,
                    )
                    models.append(model)
                    if info is not None:
                        diagnostics.append(info)
            stats.add("responses", 1)
            with self.tracer.span("waveform", node=name):
                waveform = AweWaveform(
                    tuple(models), baseline=0.0, name=f"v({name})"
                )
        return AweResponse(
            node=name,
            waveform=waveform,
            components=tuple(diagnostics),
        )

    def stats(self) -> dict[str, float]:
        """Snapshot of the solver instrumentation counters accumulated by
        this analyzer (and its :class:`~repro.analysis.mna.MnaSystem`) —
        see :mod:`repro.instrumentation` for field semantics."""
        return self.system.stats.as_dict()

    def _approximate_component(
        self, sub: Subproblem, row: int, node_name: str,
        order, error_target, match_initial_slope, use_scaling, error_method,
        stabilize=False,
    ):
        offset, slope = float(sub.c0[row]), float(sub.c1[row])
        if sub.trivial:
            return (
                PoleResidueModel((), offset=offset, slope=slope, t0=sub.t0,
                                 name=f"{sub.label}"),
                None,
            )
        sequence = sub.moments.sequence_for(row)
        scale = np.abs(sequence).max()
        if scale == 0.0 or _component_is_quiet(sequence, sub, row):
            return (
                PoleResidueModel((), offset=offset, slope=slope, t0=sub.t0,
                                 name=f"{sub.label}"),
                None,
            )

        slope_constraint = None
        if match_initial_slope:
            if node_name not in sub.slope_reference:
                raise ApproximationError(
                    f"slope matching needs a grounded capacitor at node {node_name!r}"
                )
            # Homogeneous initial slope = total initial slope − particular slope.
            slope_constraint = sub.slope_reference[node_name] - slope

        try:
            estimator = ESTIMATORS[error_method]
        except KeyError:
            raise ApproximationError(f"unknown error method {error_method!r}") from None

        with self.tracer.span("pade_escalation", subproblem=sub.label,
                              node=node_name):
            return self._escalate(
                sub, row, node_name, sequence, offset, slope, order,
                error_target, use_scaling, estimator, stabilize,
                slope_constraint,
            )

    def _escalate(
        self, sub: Subproblem, row: int, node_name: str, sequence, offset,
        slope, order, error_target, use_scaling, estimator, stabilize,
        slope_constraint,
    ):
        """The order-selection loops (fixed and automatic), instrumented:
        every rejected order emits an ``order_escalation`` trace event
        carrying its error estimate when one was computable."""
        tracer = self.tracer
        escalations: list[str] = []
        last_failure: Exception | None = None

        def escalated(q: int, reason: str, estimate=None, target=None) -> None:
            self.system.stats.add("order_escalations", 1)
            tracer.event(
                "order_escalation", subproblem=sub.label, node=node_name,
                order=q, reason=reason,
                error_estimate=None if estimate is None else float(estimate),
                target=target,
            )

        def accept(model: PoleResidueModel, q: int, estimate, fallback=False):
            tracer.event(
                "order_accepted", subproblem=sub.label, node=node_name,
                order=q,
                error_estimate=None if estimate is None else float(estimate),
                fallback=fallback,
            )
            info = ComponentApproximation(
                label=sub.label, order=q, poles=model.poles,
                error_estimate=estimate,
                condition_number=model_condition(sequence, q, use_scaling),
                scale=0.0, escalations=tuple(escalations),
            )
            return model, info

        if order is not None:
            # Fixed order: collapse downward when the moment matrix says the
            # response is of genuinely lower order, but — matching the
            # paper's use (its Fig. 20 plots a poor first-order fit) —
            # return whatever model the requested order yields, stable or
            # not, rather than silently escalating.
            for q in range(order, 0, -1):
                try:
                    model = self._fit(sequence, q, offset, slope, sub.t0, sub.label,
                                      use_scaling, slope_constraint)
                except (MomentMatrixError, ApproximationError) as exc:
                    escalations.append(f"order {q}: {exc}")
                    escalated(q, str(exc))
                    last_failure = exc
                    continue
                if stabilize and not model.is_stable:
                    model, dropped = _partial_pade(model, sequence, slope_constraint)
                    escalations.append(
                        f"order {q}: discarded {dropped} right-half-plane pole(s)"
                    )
                    tracer.event(
                        "partial_pade", subproblem=sub.label, node=node_name,
                        order=q, dropped=dropped,
                    )
                estimate = self._error_estimate(sequence, q, model, use_scaling, estimator)
                return accept(model, len(model.terms), estimate)
            raise last_failure if last_failure is not None else OrderLimitError(
                f"order {order} failed for {sub.label}"
            )

        # Automatic order escalation (paper Secs. 3.3–3.4): skip unstable
        # models, stop when the q+1-vs-q estimate meets the target AND the
        # (q+1) reference itself agrees with ITS next order.  A single
        # under-target estimate is not trusted on its own: near-degenerate
        # pole regimes produce a (q+1) reference that is as wrong as the
        # q model yet agrees with it, so the estimate undershoots the true
        # error by an order of magnitude (random_rc_tree(8, seed=3498)).
        # Requiring two consecutive orders under target and reporting the
        # wider of the two estimates makes the Sec. 3.4 check conservative.
        #
        # Stable models that cannot be fully verified are kept as
        # *fallbacks*, preferring an under-target-but-unconfirmed order
        # (estimate known) over a merely unverifiable one (estimate None);
        # escalation continues looking for a confirmed order and returns
        # the best fallback only if none is found.
        unconfirmed: tuple[PoleResidueModel, int, float] | None = None
        unverified: tuple[PoleResidueModel, int] | None = None
        for q in range(1, self.max_order + 1):
            try:
                model = self._fit(sequence, q, offset, slope, sub.t0, sub.label,
                                  use_scaling, slope_constraint)
            except (MomentMatrixError, ApproximationError) as exc:
                escalations.append(f"order {q}: {exc}")
                escalated(q, str(exc))
                last_failure = exc
                continue
            if not model.is_stable:
                escalations.append(f"order {q}: unstable pole")
                escalated(q, "unstable pole")
                last_failure = UnstableApproximationError(
                    f"order {q} produced a right-half-plane pole", order=q
                )
                continue
            estimate, reference = self._estimate_with_reference(
                sequence, q, model, use_scaling, estimator
            )
            if estimate is not None and estimate <= error_target:
                if reference is None:
                    # Exact-order response: the q-model reproduces the
                    # higher moments at roundoff, no confirmation needed.
                    return accept(model, q, estimate)
                confirmation = self._error_estimate(
                    sequence, q + 1, reference, use_scaling, estimator
                )
                if confirmation is not None:
                    widened = max(estimate, confirmation)
                    if widened <= error_target:
                        return accept(model, q, widened)
                    escalations.append(
                        f"order {q}: estimate {estimate:.3g} under target but "
                        f"order {q + 1} reference disagrees with order {q + 2} "
                        f"({confirmation:.3g})"
                    )
                    escalated(q, "next-order disagreement", widened, error_target)
                    continue
                # No usable (q+2) reference (moment budget exhausted near
                # max_order, or the higher fit is unstable): keep the
                # under-target order as the preferred fallback.
                escalations.append(
                    f"order {q}: estimate {estimate:.3g} under target but "
                    f"unconfirmed at order {q + 1}"
                )
                tracer.event(
                    "order_unverified", subproblem=sub.label, node=node_name,
                    order=q, error_estimate=float(estimate),
                )
                if unconfirmed is None or q > unconfirmed[1]:
                    unconfirmed = (model, q, estimate)
            elif estimate is None:
                escalations.append(f"order {q}: stable but unverifiable")
                tracer.event(
                    "order_unverified", subproblem=sub.label, node=node_name,
                    order=q,
                )
                unverified = (model, q)
            else:
                escalations.append(
                    f"order {q}: error {estimate:.3g} > target {error_target:g}"
                )
                escalated(q, "error above target", estimate, error_target)
        if unconfirmed is not None:
            model, q, estimate = unconfirmed
            escalations.append(f"returning unconfirmed order {q} fallback")
            return accept(model, q, estimate, fallback=True)
        if unverified is not None:
            model, q = unverified
            escalations.append(f"returning unverified order {q} fallback")
            return accept(model, q, None, fallback=True)
        raise OrderLimitError(
            f"no order ≤ {self.max_order} met error target {error_target:g} for "
            f"subproblem {sub.label} at node {row}: " + "; ".join(escalations)
        ) from last_failure

    def _fit(self, sequence, q, offset, slope, t0, label, use_scaling, slope_constraint):
        available = len(sequence) - 1  # number of m_k entries
        if 2 * q - 1 > available:
            raise MomentMatrixError(f"not enough moments for order {q}")
        with self.tracer.span("pade", order=q):
            pade = match_poles(sequence[: 2 * q], q, use_scaling=use_scaling)
        with self.tracer.span("residues", order=q):
            terms = solve_residues(pade.poles, sequence, initial_slope=slope_constraint)
        return PoleResidueModel(tuple(terms), offset=offset, slope=slope, t0=t0, name=label)

    def _error_estimate(self, sequence, q, model, use_scaling, estimator):
        """Error of the q-order model against the (q+1)-order reference.

        Returns ``None`` when no usable reference exists (insufficient
        moments, unstable (q+1) fit, or an ill-conditioned higher Hankel
        system that is *not* explained by the response being exactly
        order q) — the driver treats that as "unverified", not as "good".
        """
        estimate, _ = self._estimate_with_reference(
            sequence, q, model, use_scaling, estimator
        )
        return estimate

    def _estimate_with_reference(self, sequence, q, model, use_scaling, estimator):
        """Like :meth:`_error_estimate`, but also return the (q+1)-order
        reference model so the caller can confirm it against *its* next
        order (the two-consecutive-orders rule of the auto escalation).

        The reference is ``None`` both when no estimate exists and when the
        estimate is the exact-order 0.0 (the response IS order q — there is
        no distinct higher model to confirm)."""
        if 2 * (q + 1) > len(sequence):
            return None, None
        try:
            reference = self._fit(sequence, q + 1, model.offset, model.slope,
                                  model.t0, model.name, use_scaling, None)
        except (MomentMatrixError, ApproximationError):
            # Distinguish "the response IS order q" (the q-model already
            # reproduces the unmatched higher moments → error genuinely 0)
            # from mere ill-conditioning (unverifiable).
            if _reproduces_higher_moments(model, sequence, q):
                return 0.0, None
            return None, None
        if not reference.is_stable:
            return None, None
        return estimator(reference, model), reference


def _partial_pade(
    model: PoleResidueModel, sequence: np.ndarray, slope_constraint
) -> tuple[PoleResidueModel, int]:
    """Partial Padé stabilisation: discard right-half-plane poles and refit
    the residues of the surviving stable poles on the low-order moments.

    RHP poles from moment matching are almost always numerical artefacts
    with near-zero true weight; dropping them trades the highest matched
    moments for guaranteed evaluability.  Raises when nothing stable is
    left.
    """
    stable = np.array([p for p in model.poles if p.real < 0.0])
    dropped = model.order - len(stable)
    if len(stable) == 0:
        raise UnstableApproximationError(
            "every fitted pole is unstable; nothing to stabilise", order=model.order
        )
    constraint = slope_constraint if len(stable) >= 2 else None
    terms = solve_residues(stable, sequence[: len(stable) + 1], initial_slope=constraint)
    refit = PoleResidueModel(
        tuple(terms),
        offset=model.offset,
        slope=model.slope,
        t0=model.t0,
        name=model.name,
    )
    return refit, dropped


def _reproduces_higher_moments(
    model: PoleResidueModel, sequence: np.ndarray, q: int, rtol: float = 1e-9
) -> bool:
    """True when the q-order model already reproduces the available
    moments beyond its matched set — the signature of a response that is
    *exactly* order q (so the singular higher Hankel is structural, not
    numerical).

    The tolerance is deliberately near roundoff: s = 0 moments are nearly
    blind to well-damped high-frequency content, so loose agreement here
    does NOT imply waveform agreement (the classic single-expansion-point
    blind spot that multipoint successors of AWE addressed).  Only
    roundoff-level reproduction may claim exactness."""
    from repro.core.residues import _moment_coefficient

    for k in range(len(sequence) - 1):
        predicted = sum(
            residue * _moment_coefficient(pole, power, k)
            for pole, power, residue in model.terms
        )
        actual = sequence[k + 1]
        if abs(predicted.real - actual) > rtol * max(abs(actual), 1e-30):
            return False
    return True


def model_condition(sequence, q, use_scaling) -> float:
    """Condition number of the Hankel system actually solved (diagnostic)."""
    try:
        return match_poles(sequence[: 2 * q], q, use_scaling=use_scaling).condition_number
    except (MomentMatrixError, ApproximationError):
        return float("inf")


def _is_negligible(y0: np.ndarray, *references: np.ndarray) -> bool:
    scale = max((np.abs(r).max(initial=0.0) for r in references), default=0.0)
    return np.abs(y0).max(initial=0.0) <= _NEGLIGIBLE * max(scale, 1.0)


def _component_is_quiet(sequence: np.ndarray, sub: Subproblem, row: int) -> bool:
    """True when this output's homogeneous response is numerically zero even
    though the subproblem as a whole is active.

    Moments of different index carry different units (sⁿ), so each entry
    is compared against the same-index moment's magnitude across the whole
    MNA vector — a weakly coupled output (e.g. a mutual-inductance victim
    whose first nonzero moment is m₁) must NOT be misread as quiet by an
    index-blind comparison against the volt-scale initial vector.
    """
    if np.abs(sequence[0]) > 1e-13 * max(np.abs(sub.moments.initial).max(initial=0.0), 1e-300):
        return False
    for k, vector in enumerate(sub.moments.vectors):
        scale = np.abs(vector).max(initial=0.0)
        if scale > 0.0 and np.abs(sequence[k + 1]) > 1e-13 * scale:
            return False
    return True


def awe_response(
    circuit: Circuit,
    stimuli: dict[str, Stimulus] | None,
    node: str | int,
    order: int | None = None,
    **options,
) -> AweResponse:
    """One-shot convenience wrapper around :class:`AweAnalyzer`."""
    analyzer = AweAnalyzer(circuit, stimuli, max_order=options.pop("max_order", 8))
    return analyzer.response(node, order=order, **options)
