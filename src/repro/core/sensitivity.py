"""Adjoint sensitivities of the first moment (Elmore delay) to element values.

Where AWE computes delays from moments, a designer asks the next question:
*which resistor or capacitor do I shrink to fix this path?*  For a net
switching from rest (zero pre-state, step input ``u``) the first-moment
delay at output ``o`` is

.. math::

    T_D = -m_0 / v_\\infty, \\qquad
    m_0 = -e_o^T G^{-1} C\\, G^{-1} B u

and its gradient with respect to *every* element value follows from two
adjoint solves, independent of the number of elements:

* conductance stamp ``dG = w wᵀ dg`` (``w`` the incidence vector):
  ``dm₀ = (aᵀw)(wᵀ v₁)·dg + (cᵀw)(wᵀ x_∞)·dg``
* capacitance stamp ``dC = w wᵀ dC``:
  ``dm₀ = −(aᵀw)(wᵀ x_∞)·dC``

with ``x_∞ = G⁻¹Bu`` (the steady state), ``v₁ = G⁻¹C x_∞``
(``m₀ = −e_oᵀv₁``), ``a = G⁻ᵀe_o``, and ``c = G⁻ᵀCᵀa``.  Four solves
total, all with the already-factored ``G``.

Scope: linear R/C/V/I circuits with equilibrium (all-zero) pre-state —
the standard switching-net situation.  The tree-walk closed forms in
:mod:`repro.rctree.sensitivity` provide an independent check on RC trees;
finite differences check the general case in the test suite.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.analysis.mna import MnaSystem
from repro.circuit.elements import GROUND, Capacitor, CurrentSource, Resistor, VoltageSource, canonical_node
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class DelaySensitivities:
    """Elmore-delay gradient of one output node.

    ``d_resistance[name]`` = ∂T_D/∂R (s/Ω); ``d_capacitance[name]`` =
    ∂T_D/∂C (s/F).  ``element_values`` holds the nominal R/C values so the
    gradient can be expressed per relative change; ``elmore_delay`` is the
    nominal T_D the gradient belongs to.
    """

    node: str
    elmore_delay: float
    d_resistance: dict[str, float]
    d_capacitance: dict[str, float]
    element_values: dict[str, float]

    def scaled_gradient(self) -> dict[str, float]:
        """``x·∂T/∂x`` per element — the delay change per unit *relative*
        change in the element value."""
        gradient = {**self.d_resistance, **self.d_capacitance}
        return {
            name: self.element_values[name] * value
            for name, value in gradient.items()
        }

    def top_contributors(self, count: int = 5) -> list[tuple[str, float]]:
        """Elements ranked by |x·∂T/∂x| — where a relative change buys the
        most delay."""
        entries = sorted(self.scaled_gradient().items(), key=lambda p: -abs(p[1]))
        return entries[:count]


def _incidence(system: MnaSystem, element) -> np.ndarray:
    w = np.zeros(system.dimension)
    if element.positive != GROUND:
        w[system.index.node(element.positive)] = 1.0
    if element.negative != GROUND:
        w[system.index.node(element.negative)] = -1.0
    return w


def delay_sensitivities(
    circuit: Circuit,
    node: str | int,
    source_values: dict[str, float] | None = None,
) -> DelaySensitivities:
    """Gradient of the first-moment (Elmore) delay at ``node``.

    ``source_values`` are the post-step source levels (defaults to each
    voltage source's ``dc`` value); the pre-state is the all-zero
    equilibrium.
    """
    for element in circuit:
        if not isinstance(element, (Resistor, Capacitor, VoltageSource, CurrentSource)):
            raise AnalysisError(
                "delay sensitivities support R/C/V/I circuits; got "
                f"{type(element).__name__} {element.name!r}"
            )
    name = canonical_node(node)
    if name == GROUND:
        raise AnalysisError("ground has no delay")

    system = MnaSystem(circuit)
    if system.floating_groups:
        raise AnalysisError(
            "delay sensitivities are not defined for floating capacitive "
            "groups (their Elmore delay is not a simple first moment)"
        )
    if source_values is None:
        source_values = {
            source.name: source.dc
            for source in circuit
            if isinstance(source, (VoltageSource, CurrentSource))
        }
    u = system.source_vector(source_values)
    row = system.index.node(name)

    # Forward solves.
    x_inf = system.solve_augmented(system.B @ u)
    v1 = system.solve_augmented(system.C @ x_inf)  # m0 = -e_o^T v1
    swing = float(x_inf[row])
    if swing == 0.0:
        raise AnalysisError(f"node {name!r} sees no steady-state swing")
    m0 = -float(v1[row])
    elmore = -m0 / swing

    # Adjoint solves (G is symmetric for R/C/V/I MNA up to the branch rows,
    # but we solve with the transpose explicitly to stay general).
    import scipy.linalg

    if system.use_sparse:
        import scipy.sparse
        import scipy.sparse.linalg

        solve_t = scipy.sparse.linalg.splu(
            scipy.sparse.csc_matrix(system.G_aug.T)
        ).solve
    else:
        lu_t = scipy.linalg.lu_factor(system.G_aug.T)
        solve_t = functools.partial(scipy.linalg.lu_solve, lu_t)
    e_o = np.zeros(system.dimension)
    e_o[row] = 1.0
    a = solve_t(e_o)
    c = solve_t(np.asarray(system.C.T @ a).ravel())

    # T_D = -m0/swing where swing = e_o^T x_inf also depends on G:
    # d(swing) = -(a^T dG x_inf).  Assemble the full quotient rule.
    d_resistance: dict[str, float] = {}
    d_capacitance: dict[str, float] = {}
    for element in circuit:
        if isinstance(element, Resistor):
            w = _incidence(system, element)
            # dm0/dg and d(swing)/dg for conductance g.
            dm0_dg = float((a @ w) * (w @ v1) + (c @ w) * (w @ x_inf))
            dswing_dg = float(-(a @ w) * (w @ x_inf))
            g = element.conductance
            dm0_dR = dm0_dg * (-(g * g))
            dswing_dR = dswing_dg * (-(g * g))
            dT_dR = -(dm0_dR * swing - m0 * dswing_dR) / (swing * swing)
            d_resistance[element.name] = dT_dR
        elif isinstance(element, Capacitor):
            w = _incidence(system, element)
            dm0_dC = float(-(a @ w) * (w @ x_inf))
            d_capacitance[element.name] = -dm0_dC / swing
    values = {r.name: r.resistance for r in circuit.resistors}
    values.update({c.name: c.capacitance for c in circuit.capacitors})
    return DelaySensitivities(
        node=name,
        elmore_delay=elmore,
        d_resistance=d_resistance,
        d_capacitance=d_capacitance,
        element_values=values,
    )
