"""Residue computation for a fixed set of approximating poles.

Given ``q`` poles, the residues are fixed by the *low-order* moments: the
initial value ``m₋₁`` and ``m₀ … m_{q−2}`` (paper eqs. 17/20).  For a
simple (distinct) pole set this is a reciprocal-Vandermonde solve; for
repeated poles the Vandermonde matrix is singular by construction and the
confluent system of the paper's eq. 29 is used instead, in which a pole of
multiplicity ``r`` contributes the time-domain terms
``t^{j−1} e^{pt}/(j−1)!`` for ``j = 1 … r``.

The solved model is returned as a :class:`~repro.core.model.PoleResidueModel`
term list so evaluation code never needs to distinguish the two cases.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ApproximationError

#: Poles whose relative distance is below this are treated as one repeated
#: pole (numerical root-finding almost never returns exact duplicates).
_CLUSTER_RTOL = 1e-7


def cluster_poles(poles: np.ndarray, rtol: float = _CLUSTER_RTOL) -> list[tuple[complex, int]]:
    """Group nearly identical poles into (value, multiplicity) clusters.

    The representative value is the cluster mean; ordering follows the
    input (dominant-first when fed from :func:`repro.core.pade.match_poles`).
    """
    clusters: list[list[complex]] = []
    for pole in poles:
        for members in clusters:
            reference = members[0]
            if abs(pole - reference) <= rtol * max(abs(pole), abs(reference)):
                members.append(pole)
                break
        else:
            clusters.append([pole])
    return [(complex(np.mean(members)), len(members)) for members in clusters]


def _moment_coefficient(pole: complex, multiplicity_index: int, k: int) -> complex:
    """Coefficient of residue ``k_{c,j}`` in the equation for moment ``m_k``.

    From the expansion of ``1/(s−p)^j`` about s = 0 (paper eq. 27
    generalised): coefficient of ``s^k`` is ``(−1)^j · C(k+j−1, j−1) ·
    p^{−(j+k)}``.
    """
    j = multiplicity_index
    return ((-1.0) ** j) * math.comb(k + j - 1, j - 1) * pole ** (-(j + k))


def solve_residues(
    poles: np.ndarray,
    moments: np.ndarray,
    initial_slope: float | None = None,
) -> list[tuple[complex, int, complex]]:
    """Solve for residues matching ``m₋₁`` and ``m₀ … m_{q−2}``.

    Parameters
    ----------
    poles:
        The ``q`` approximating poles (may contain repeats/clusters).
    moments:
        Physical sequence ``[m₋₁, m₀, …]`` with at least ``q`` entries.
    initial_slope:
        When given, the paper's ``m₋₂`` extension (Sec. 4.3): the highest
        moment row is replaced by the constraint that the model's initial
        derivative equal this value, removing the initial-slope glitch of
        ramp responses.  Requires ``q ≥ 2`` (a single exponential cannot
        match value, area, and slope simultaneously).

    Returns
    -------
    list of ``(pole, power, residue)`` terms, where ``power`` ≥ 1 and the
    time-domain contribution of a term is
    ``residue · t^{power−1} e^{pole·t} / (power−1)!``.
    """
    q = len(poles)
    if q == 0:
        raise ApproximationError("no poles supplied")
    if len(moments) < q:
        raise ApproximationError(
            f"residues for {q} poles need {q} moment values, got {len(moments)}"
        )
    clusters = cluster_poles(np.asarray(poles, dtype=complex))
    columns: list[tuple[complex, int]] = []
    for pole, multiplicity in clusters:
        for j in range(1, multiplicity + 1):
            columns.append((pole, j))

    A = np.zeros((q, q), dtype=complex)
    rhs = np.zeros(q, dtype=complex)
    # Row 0: the initial value.  Only the j = 1 (pure exponential) terms are
    # nonzero at t = 0: Σ k_{c,1} = m₋₁.
    for col, (pole, j) in enumerate(columns):
        A[0, col] = 1.0 if j == 1 else 0.0
    rhs[0] = moments[0]
    # Rows 1 … q−1: moments m₀ … m_{q−2}.
    for row in range(1, q):
        k = row - 1
        for col, (pole, j) in enumerate(columns):
            A[row, col] = _moment_coefficient(pole, j, k)
        rhs[row] = moments[1 + k]

    if initial_slope is not None:
        if q < 2:
            raise ApproximationError(
                "initial-slope matching needs at least a second-order model"
            )
        # Replace the highest-moment row with the t = 0 derivative
        # constraint.  d/dt[t^{j−1} e^{pt}/(j−1)!] at 0 is p for j = 1,
        # 1 for j = 2, and 0 for j ≥ 3.
        row = q - 1
        for col, (pole, j) in enumerate(columns):
            A[row, col] = pole if j == 1 else (1.0 if j == 2 else 0.0)
        rhs[row] = initial_slope

    try:
        solution = np.linalg.solve(A, rhs)
    except np.linalg.LinAlgError as exc:
        raise ApproximationError(f"residue system is singular: {exc}") from exc
    return [(pole, j, residue) for (pole, j), residue in zip(columns, solution)]
