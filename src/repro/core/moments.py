r"""Moment computation — the workhorse of AWE (paper Secs. 3.1–3.2).

For the descriptor system ``G x + C ẋ = B u`` the homogeneous response
from an initial homogeneous state ``y₀`` is, in the Laplace domain,

.. math::

    Y(s) = (G + sC)^{-1} C\,y_0 = \\sum_{k \\ge 0} m_k s^k,
    \\qquad m_0 = G^{-1} C y_0, \\quad m_{k+1} = -G^{-1} C m_k,

which is exactly the paper's recursion (its eqs. 33–34) expressed on the
MNA matrices: every extra moment costs one forward/back substitution with
the LU factors of ``G`` — the "succession of dc solutions" of Sec. IV,
where the capacitors act as current sources valued by the previous moment.

This module also computes the *particular* (step + ramp following)
solution ``x_p(t) = c_0 + c_1 t`` for an excitation ``u(t) = u_0 + u_1 t``
(paper eq. 6) and the homogeneous initial state it leaves behind
(paper eq. 8).

Floating capacitive nodes are handled by the charge-augmented solves of
:class:`~repro.analysis.mna.MnaSystem`: the moment recursion supplies zero
for each group's total-charge row (the homogeneous response carries no
trapped charge once the particular solution absorbs it), and the
particular solution pins the trapped charge explicitly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.mna import MnaSystem
from repro.errors import AnalysisError

#: Relative tolerance for "a current source feeds a floating group" checks.
_CHARGE_TOL = 1e-9


@dataclasses.dataclass(frozen=True)
class MomentSet:
    """The initial state and moment vectors of one homogeneous problem.

    ``initial`` is the paper's ``m₋₁`` vector (the homogeneous response at
    t = 0⁺); ``vectors[k]`` is ``m_k``.  :meth:`sequence_for` extracts the
    scalar moment sequence ``[m₋₁, m₀, …]`` of a single MNA unknown, which
    is what the Padé stage consumes.
    """

    initial: np.ndarray
    vectors: tuple[np.ndarray, ...]

    @property
    def count(self) -> int:
        """Number of non-negative moments available (excludes ``m₋₁``)."""
        return len(self.vectors)

    def sequence_for(self, row: int) -> np.ndarray:
        """``[m₋₁, m₀, m₁, …]`` for one unknown, as a plain float array."""
        return np.array([self.initial[row], *[m[row] for m in self.vectors]])

    def extended(self, system: MnaSystem, extra: int) -> "MomentSet":
        """A new set with ``extra`` further moments appended (incremental
        order escalation reuses everything already computed)."""
        vectors = list(self.vectors)
        m = vectors[-1] if vectors else None
        for _ in range(extra):
            if m is None:
                m = system.solve_augmented(system.C @ self.initial)
            else:
                m = system.solve_augmented(-(system.C @ m))
            vectors.append(m)
            system.stats.add("moment_solves", 1)
            system.stats.add("moments_computed", 1)
        return MomentSet(self.initial, tuple(vectors))


@dataclasses.dataclass(frozen=True)
class MomentBatch:
    """Moment chains of several homogeneous problems, advanced together.

    ``initial`` stacks the problems' initial states as the columns of a
    ``(dim, k)`` matrix; ``vectors[j]`` is the ``(dim, k)`` matrix whose
    column ``i`` is moment ``m_j`` of problem ``i``.  Because every chain
    shares the same ``G`` factorisation, one multi-RHS
    :meth:`~repro.analysis.mna.MnaSystem.solve_augmented` call per order
    advances *all* of them — the batched form of the paper's
    "succession of dc solutions" (Sec. IV).

    :meth:`column` splits one problem back out as an ordinary
    :class:`MomentSet`; the per-column numbers are identical to what ``k``
    separate recursions would produce (the LU substitutions are applied
    column-by-column either way).
    """

    initial: np.ndarray
    vectors: tuple[np.ndarray, ...]

    @property
    def count(self) -> int:
        """Number of non-negative moment orders available."""
        return len(self.vectors)

    @property
    def width(self) -> int:
        """Number of stacked problems (columns)."""
        return self.initial.shape[1]

    def extended(self, system: MnaSystem, extra: int) -> "MomentBatch":
        """Append ``extra`` further moment orders — one shared multi-RHS
        solve per order regardless of :attr:`width`."""
        vectors = list(self.vectors)
        m = vectors[-1] if vectors else None
        for _ in range(extra):
            if m is None:
                m = system.solve_augmented(system.C @ self.initial)
            else:
                m = system.solve_augmented(-(system.C @ m))
            vectors.append(m)
            system.stats.add("moment_solves", 1)
            system.stats.add("moments_computed", self.width)
        return MomentBatch(self.initial, tuple(vectors))

    def column(self, i: int) -> MomentSet:
        """Problem ``i``'s chain as a standalone :class:`MomentSet`."""
        return MomentSet(
            np.ascontiguousarray(self.initial[:, i]),
            tuple(np.ascontiguousarray(m[:, i]) for m in self.vectors),
        )


def homogeneous_moments(system: MnaSystem, y0: np.ndarray, count: int) -> MomentSet:
    """The first ``count`` moments of the homogeneous response from ``y0``.

    ``y0`` must carry no trapped charge in any floating group (the caller
    subtracts a particular solution that absorbs it); this is asserted to
    one part in 10⁹ of the state scale.
    """
    y0 = np.asarray(y0, dtype=float)
    if system.floating_groups:
        charges = system.group_charge(y0)
        scale = float(np.abs(system.C @ y0).max()) + 1e-300
        if np.any(np.abs(charges) > _CHARGE_TOL * scale):
            raise AnalysisError(
                "homogeneous initial state carries trapped charge; the "
                "particular solution must absorb floating-group charge"
            )
    return MomentSet(y0, ()).extended(system, count)


def homogeneous_moments_batch(
    system: MnaSystem, y0_columns: np.ndarray, count: int
) -> MomentBatch:
    """Moment chains of several homogeneous problems in one batch.

    ``y0_columns`` is ``(dim, k)``; each column is checked for trapped
    floating-group charge exactly as :func:`homogeneous_moments` checks a
    single state, then all ``k`` chains are advanced with one multi-RHS
    solve per order.
    """
    y0_columns = np.asarray(y0_columns, dtype=float)
    if y0_columns.ndim != 2:
        raise AnalysisError("homogeneous_moments_batch expects column-stacked states")
    if system.floating_groups:
        for i in range(y0_columns.shape[1]):
            y0 = y0_columns[:, i]
            charges = system.group_charge(y0)
            scale = float(np.abs(system.C @ y0).max()) + 1e-300
            if np.any(np.abs(charges) > _CHARGE_TOL * scale):
                raise AnalysisError(
                    "homogeneous initial state carries trapped charge; the "
                    "particular solution must absorb floating-group charge"
                )
    return MomentBatch(y0_columns, ()).extended(system, count)


@dataclasses.dataclass(frozen=True)
class ParticularSolution:
    """``x_p(t) = c0 + c1·t`` for a step+ramp excitation (paper eq. 6)."""

    c0: np.ndarray
    c1: np.ndarray

    def at(self, t: float) -> np.ndarray:
        return self.c0 + self.c1 * t

    def row(self, row: int) -> tuple[float, float]:
        """The (offset, slope) pair of one unknown."""
        return float(self.c0[row]), float(self.c1[row])


def particular_solution(
    system: MnaSystem,
    u0: np.ndarray,
    u1: np.ndarray,
    group_charges: np.ndarray | None = None,
) -> ParticularSolution:
    """Particular solution for ``u(t) = u0 + u1·t`` applied for t ≥ 0.

    ``group_charges`` fixes each floating group's trapped charge (so that
    the homogeneous remainder decays); it defaults to zero, the correct
    value for the zero-initial-state event subproblems.

    Raises :class:`AnalysisError` when a ramp source feeds net current into
    a floating group — the trapped charge would grow quadratically and no
    linear particular solution exists.
    """
    b0 = system.B @ np.asarray(u0, dtype=float)
    b1 = system.B @ np.asarray(u1, dtype=float)

    charge_c1 = None
    if system.floating_groups:
        ramp_injection = system.group_injection(np.asarray(u1, dtype=float))
        scale = float(np.abs(b1).max()) + 1e-300
        if np.any(np.abs(ramp_injection) > _CHARGE_TOL * scale):
            raise AnalysisError(
                "a ramp source injects current into a floating node group; "
                "its charge grows without bound"
            )
        charge_c1 = system.group_injection(np.asarray(u0, dtype=float))

    c1 = system.solve_augmented(b1, charge_c1)
    c0 = system.solve_augmented(b0 - system.C @ c1, group_charges)
    return ParticularSolution(c0, c1)


def particular_solutions(
    system: MnaSystem,
    u0_columns: np.ndarray,
    u1_columns: np.ndarray,
    group_charges: np.ndarray | None = None,
) -> list[ParticularSolution]:
    """Particular solutions of ``k`` step+ramp excitations in one batch.

    ``u0_columns`` / ``u1_columns`` are ``(n_sources, k)``;
    ``group_charges`` is ``(n_groups, k)`` (default zero).  Each column is
    validated exactly as :func:`particular_solution` validates a single
    excitation; the ``2k`` linear systems then collapse into **two**
    multi-RHS triangular-solve calls against the shared factorisation.
    """
    u0_columns = np.asarray(u0_columns, dtype=float)
    u1_columns = np.asarray(u1_columns, dtype=float)
    if u0_columns.ndim != 2 or u1_columns.shape != u0_columns.shape:
        raise AnalysisError(
            "particular_solutions expects matching column-stacked excitations"
        )
    b0 = system.B @ u0_columns
    b1 = system.B @ u1_columns

    charge_c1 = None
    if system.floating_groups:
        for i in range(u1_columns.shape[1]):
            ramp_injection = system.group_injection(u1_columns[:, i])
            scale = float(np.abs(b1[:, i]).max()) + 1e-300
            if np.any(np.abs(ramp_injection) > _CHARGE_TOL * scale):
                raise AnalysisError(
                    "a ramp source injects current into a floating node group; "
                    "its charge grows without bound"
                )
        charge_c1 = np.column_stack(
            [system.group_injection(u0_columns[:, i])
             for i in range(u0_columns.shape[1])]
        )

    c1 = system.solve_augmented(b1, charge_c1)
    c0 = system.solve_augmented(b0 - system.C @ c1, group_charges)
    return [
        ParticularSolution(
            np.ascontiguousarray(c0[:, i]), np.ascontiguousarray(c1[:, i])
        )
        for i in range(u0_columns.shape[1])
    ]
