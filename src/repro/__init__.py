"""AWEsim reproduction — Asymptotic Waveform Evaluation for timing analysis.

A from-scratch Python implementation of

    L. T. Pillage and R. A. Rohrer, "Asymptotic Waveform Evaluation for
    Timing Analysis" (DAC 1989 / IEEE TCAD vol. 9 no. 4, 1990),

together with every substrate the paper relies on: circuit netlists and a
SPICE-deck parser, MNA-based DC/transient analysis (the SPICE stand-in),
exact pole/modal references, the classical RC-tree delay methods AWE
generalises (Elmore, Penfield–Rubinstein, two-pole, tree/link analysis),
and a stage-based timing-analyzer application layer.

Quickstart::

    from repro import Circuit, Step, AweAnalyzer

    ckt = Circuit("rc line")
    ckt.add_voltage_source("Vin", "in", "0")
    ckt.add_resistor("R1", "in", "1", 1e3)
    ckt.add_capacitor("C1", "1", "0", 1e-12)

    analyzer = AweAnalyzer(ckt, {"Vin": Step(0.0, 5.0)})
    response = analyzer.response("1", order=1)
    print(response.poles, response.delay(threshold=2.5))
"""

from repro.analysis import (
    DC,
    PWL,
    MnaSystem,
    Pulse,
    Ramp,
    Step,
    Stimulus,
    circuit_poles,
    simulate,
)
from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
    parse_netlist,
    parse_netlist_file,
)
from repro.core import (
    AweAnalyzer,
    AweResponse,
    AweWaveform,
    PoleResidueModel,
    awe_response,
)
from repro.engine import AweJob, BatchEngine, BatchResult
from repro.errors import (
    AnalysisError,
    ApproximationError,
    BatchTimeoutError,
    CircuitError,
    MomentMatrixError,
    NetlistParseError,
    OrderLimitError,
    ReproError,
    SingularCircuitError,
    StaError,
    TopologyError,
    UnstableApproximationError,
    WorkerCrashError,
)
from repro.instrumentation import SolverStats
from repro.reduce import Reduction, reduce_circuit
from repro.report import (
    build_report,
    build_sta_report,
    render_markdown,
    render_sta_markdown,
    validate_report,
    validate_sta_report,
)
from repro.service import AnalysisClient, AnalysisService, ResultCache, ServiceServer
from repro.sta import (
    CellLibrary,
    Corner,
    Design,
    StaRun,
    TimingGraph,
    analyze,
    build_timing_graph,
    default_library,
    report_top_k_critical_paths,
    run_sta,
)
from repro.sweep import SweepEngine, SweepPlan, SweepPoint, SweepResult, sweep
from repro.trace import NULL_TRACER, Tracer
from repro.waveform import Waveform, l2_error

__version__ = "1.0.0"

__all__ = [
    "AnalysisClient",
    "AnalysisError",
    "AnalysisService",
    "ApproximationError",
    "AweAnalyzer",
    "AweJob",
    "AweResponse",
    "AweWaveform",
    "BatchEngine",
    "BatchResult",
    "BatchTimeoutError",
    "Capacitor",
    "CellLibrary",
    "Circuit",
    "CircuitError",
    "Corner",
    "CurrentSource",
    "DC",
    "Design",
    "Inductor",
    "MnaSystem",
    "MomentMatrixError",
    "NULL_TRACER",
    "NetlistParseError",
    "OrderLimitError",
    "PWL",
    "PoleResidueModel",
    "Pulse",
    "Ramp",
    "Reduction",
    "ReproError",
    "Resistor",
    "ResultCache",
    "ServiceServer",
    "SingularCircuitError",
    "SolverStats",
    "StaError",
    "StaRun",
    "Step",
    "Stimulus",
    "SweepEngine",
    "SweepPlan",
    "SweepPoint",
    "SweepResult",
    "TimingGraph",
    "TopologyError",
    "Tracer",
    "UnstableApproximationError",
    "VoltageSource",
    "Waveform",
    "WorkerCrashError",
    "analyze",
    "awe_response",
    "build_report",
    "build_sta_report",
    "build_timing_graph",
    "circuit_poles",
    "default_library",
    "l2_error",
    "parse_netlist",
    "parse_netlist_file",
    "reduce_circuit",
    "render_markdown",
    "render_sta_markdown",
    "report_top_k_critical_paths",
    "run_sta",
    "simulate",
    "sweep",
    "validate_report",
    "validate_sta_report",
    "__version__",
]
