"""Tests for the sharded async gateway (`repro.gateway`).

Three layers, mirroring the daemon's own suite: `GatewayService.submit`
driven directly on an event loop (coalescing and shed-load need
controlled concurrency), `GatewayServer` + the stock `AnalysisClient`
over real HTTP against attached in-process daemons, and spawn mode with
real `repro serve` child processes — including the worker-crash
campaign the acceptance criterion names: injected shard kills, zero
client-visible failures.
"""

import asyncio
import json
import threading

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.gateway import (
    FORWARD_ATTEMPTS,
    GatewayServer,
    GatewayService,
    build_mix,
    run_loadgen,
    shard_for_key,
)
from repro.report import validate_report
from repro.service import AnalysisClient, ServiceError, ServiceServer
from repro.trace import Tracer, iter_events

FAST_DECK = """\
gateway fast deck
Vin in 0 STEP(0 5)
R1 in 1 1000
C1 1 0 1p
R2 1 2 2k
C2 2 0 0.5p
.end
"""

#: A deck slow enough (~100 ms) that concurrent identical requests
#: genuinely overlap the leader's computation.
SLOW_DECK = "slow chain\nVin in 0 STEP(0 5)\n" + "".join(
    f"R{i} {'in' if i == 1 else f'n{i-1}'} n{i} 1k\nC{i} n{i} 0 1p\n"
    for i in range(1, 60)
) + ".end\n"


def request_body(deck, nodes, **params):
    return json.dumps({"deck": deck, "nodes": list(nodes), **params}).encode()


def demo_design_dict(name="gw-demo"):
    return {
        "name": name,
        "inputs": [{"name": "i1", "net": "n_in", "arrival": 0.0,
                    "slew": 2e-11, "drive_resistance": 500.0}],
        "outputs": [{"name": "o1", "net": "n_out", "required": 5e-10,
                     "load": 4e-15}],
        "instances": [{"name": "u1", "cell": "INV_X1",
                       "connections": {"A": "n_in", "Y": "n_out"}}],
        "nets": [
            {"name": "n_in", "segments": []},
            {"name": "n_out", "segments": [
                {"a": "root", "b": "o1", "resistance": 200.0,
                 "capacitance": 15e-15}]},
        ],
    }


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def daemons():
    servers = [ServiceServer(port=0, workers=1).start() for _ in range(2)]
    yield servers
    for server in servers:
        server.close()


@pytest.fixture
def gateway(daemons):
    server = GatewayServer(
        shard_urls=[daemon.url for daemon in daemons]).start()
    yield server
    server.close()


def run_async(coroutine):
    return asyncio.run(coroutine)


# ----------------------------------------------------------------------
# GatewayService on a controlled event loop
# ----------------------------------------------------------------------


class TestCoalescing:
    def test_identical_concurrent_keys_run_exactly_one_engine_execution(
            self, daemons):
        """The tentpole invariant: a herd of identical requests costs one
        analysis.  Asserted three independent ways — the shard's own
        request/SolverStats counters, the gateway's coalescing counters,
        and the trace events."""
        herd = 8
        tracer = Tracer(name="gateway-test")
        target = daemons[0].service

        async def main():
            service = await GatewayService(
                shard_urls=[daemons[0].url], tracer=tracer).start()
            before = target.metrics()
            body = request_body(SLOW_DECK, ["n59"])
            results = await asyncio.gather(
                *[service.submit(body) for _ in range(herd)])
            after = target.metrics()
            return service.metrics(), before, after, results

        metrics, before, after, results = run_async(main())

        # One engine execution: the daemon saw exactly one request, its
        # cache missed exactly once, and the solver actually ran.
        assert after["requests_total"] - before["requests_total"] == 1
        assert after["cache_misses"] - before["cache_misses"] == 1
        assert (after["solver"]["lu_factorizations"]
                > before["solver"]["lu_factorizations"])

        # Every requester got the same 200 body, fanned out.
        statuses = [status for status, _, _ in results]
        bodies = {body for _, body, _ in results}
        assert statuses == [200] * herd
        assert len(bodies) == 1
        coalesced_headers = sorted(
            headers["X-Repro-Coalesced"] for _, _, headers in results)
        assert coalesced_headers == ["joined"] * (herd - 1) + ["leader"]

        assert metrics["coalesced_requests"] == herd - 1
        assert metrics["requests_ok"] == herd

        events = [event["name"]
                  for _span, event in iter_events(tracer.to_record())]
        assert events.count("coalesce_join") == herd - 1
        assert events.count("shard_route") == 1

    def test_coalesced_result_lands_in_gateway_cache(self, daemons):
        async def main():
            service = await GatewayService(
                shard_urls=[daemons[0].url]).start()
            body = request_body(FAST_DECK, ["2"])
            first = await service.submit(body)
            second = await service.submit(body)
            return first, second

        (s1, b1, h1), (s2, b2, h2) = run_async(main())
        assert s1 == s2 == 200
        assert h1["X-Repro-Cache"] == "miss"
        assert h2["X-Repro-Cache"] == "hit"
        assert b1 == b2  # bit-identical through the gateway tier

    def test_failed_reports_are_not_cached_by_gateway(self, daemons):
        """A report whose jobs failed (here: an impossible per-request
        timeout enforced by the shard) must stay a retryable miss."""
        async def main():
            service = await GatewayService(
                shard_urls=[daemons[0].url]).start()
            body = request_body(SLOW_DECK, ["n59"], timeout=1e-4)
            first = await service.submit(body)
            await service.wait_drained()
            return first, service.cache.stats()

        (status, body, _headers), cache_stats = run_async(main())
        # The shard returns 504 (budget exceeded) — not 200 — so nothing
        # may enter the gateway cache.
        assert status in (200, 504)
        if status == 200:
            assert json.loads(body)["totals"]["jobs_failed"] > 0
        assert cache_stats["cache_stores"] == 0


class TestShedLoad:
    def test_dead_shard_degrades_and_sheds_with_one_canary(self):
        """Routing to a black-holed shard: after `degraded_threshold`
        transport failures the shard sheds load — one canary probes,
        the rest get an immediate 503 + Retry-After."""
        dead = "http://127.0.0.1:9"  # discard port: connection refused

        async def main():
            service = await GatewayService(
                shard_urls=[dead], degraded_threshold=1).start()
            first = await service.submit(request_body(FAST_DECK, ["1"]))
            herd = await asyncio.gather(*[
                service.submit(request_body(FAST_DECK, ["2"], order=order))
                for order in (1, 2, 3)
            ])
            return first, herd, service.metrics()

        first, herd, metrics = run_async(main())
        assert first[0] == 503
        assert metrics["shard_health"][0]["degraded"]
        statuses = sorted(status for status, _, _ in herd)
        # One canary went through to fail on the wire; the others were
        # shed instantly without touching the dead socket.
        assert statuses == [503, 503, 503]
        shed = [body for status, body, _ in herd
                if b"shedding load" in body]
        assert len(shed) >= 1
        assert metrics["rejected_degraded"] >= 1
        assert metrics["shard_errors"] >= FORWARD_ATTEMPTS

    def test_recovery_clears_degraded(self, daemons):
        """An attached shard that starts answering again clears the
        degraded flag on the first clean response."""
        async def main():
            service = await GatewayService(
                shard_urls=[daemons[0].url], degraded_threshold=1).start()
            service._health[0]["degraded"] = True
            service._health[0]["consecutive_errors"] = 3
            status, _, _ = await service.submit(
                request_body(FAST_DECK, ["1"]))
            return status, service.metrics()

        status, metrics = run_async(main())
        assert status == 200
        assert not metrics["shard_health"][0]["degraded"]
        assert metrics["shard_health"][0]["consecutive_errors"] == 0


class TestDrain:
    def test_drain_refuses_new_work_but_serves_hits(self, daemons):
        async def main():
            service = await GatewayService(
                shard_urls=[daemons[0].url]).start()
            body = request_body(FAST_DECK, ["2"])
            warm = await service.submit(body)
            service.begin_drain()
            hit = await service.submit(body)
            refused = await service.submit(request_body(FAST_DECK, ["1"]))
            await service.wait_drained()
            return warm, hit, refused, service.healthz()

        warm, hit, refused, (health_status, health_body) = run_async(main())
        assert warm[0] == 200
        assert hit[0] == 200 and hit[2]["X-Repro-Cache"] == "hit"
        assert refused[0] == 503
        assert b"draining" in refused[1]
        assert health_status == 503
        assert json.loads(health_body)["status"] == "draining"

    def test_request_timeout_is_504(self, daemons):
        async def main():
            service = await GatewayService(
                shard_urls=[daemons[0].url]).start()
            status, body, _ = await service.submit(
                request_body(SLOW_DECK, ["n59"], timeout=0.001))
            await service.wait_drained()
            return status, body, service.metrics()

        status, body, metrics = run_async(main())
        assert status == 504
        assert b"budget" in body
        assert metrics["request_timeouts"] >= 1


class TestValidation:
    def test_bad_json_is_400_without_touching_a_shard(self):
        async def main():
            service = await GatewayService(
                shard_urls=["http://127.0.0.1:9"]).start()
            return await service.submit(b"{not json"), service.metrics()

        (status, body, _), metrics = run_async(main())
        assert status == 400
        assert "JSON" in json.loads(body)["error"]
        assert metrics["bad_requests"] == 1
        assert metrics["shard_errors"] == 0

    def test_unparseable_deck_is_400(self):
        async def main():
            service = await GatewayService(
                shard_urls=["http://127.0.0.1:9"]).start()
            return await service.submit(
                request_body("bad\nR1 lonely\n.end\n", ["1"]))

        status, body, _ = run_async(main())
        assert status == 400
        assert json.loads(body)["error_type"] == "NetlistParseError"


# ----------------------------------------------------------------------
# GatewayServer over real HTTP, stock client
# ----------------------------------------------------------------------


class TestHttpSurface:
    def test_analyze_round_trip_with_stock_client(self, gateway):
        client = AnalysisClient(gateway.url)
        cold = client.analyze(FAST_DECK, "2", threshold=2.5)
        assert cold.ok and not cold.cached
        validate_report(cold.document)

        warm = client.analyze(FAST_DECK, "2", threshold=2.5)
        assert warm.cached
        assert warm.body == cold.body
        assert warm.key == cold.key

    def test_equivalent_decks_share_key_and_shard(self, gateway):
        client = AnalysisClient(gateway.url)
        variant = ("* regenerated\n"
                   + FAST_DECK.replace("R2 1 2 2k", "R2  1  2  2000"))
        # Raw submits so the shard header is visible.
        import urllib.request
        responses = []
        for deck in (FAST_DECK, variant):
            request = urllib.request.Request(
                gateway.url + "/analyze",
                data=request_body(deck, ["2"]), method="POST")
            with urllib.request.urlopen(request) as reply:
                responses.append(dict(reply.headers))
        assert (responses[0]["X-Repro-Key"]
                == responses[1]["X-Repro-Key"])
        assert (responses[0]["X-Repro-Shard"]
                == responses[1]["X-Repro-Shard"])

    def test_sta_round_trip(self, gateway):
        from repro.sta import Design

        client = AnalysisClient(gateway.url)
        design = Design.from_dict(demo_design_dict())
        cold = client.sta(design, k=3)
        assert not cold.cached
        assert cold.document["design"] == "gw-demo"
        warm = client.sta(design, k=3)
        assert warm.cached and warm.body == cold.body

    def test_healthz_and_metrics_shape(self, gateway):
        client = AnalysisClient(gateway.url)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["shards"] == 2
        metrics = client.metrics()
        assert metrics["gateway"] is True
        assert len(metrics["shard_health"]) == 2
        assert "coalesced_requests" in metrics
        assert "cache_hits" in metrics

    def test_unknown_path_is_404_with_help(self, gateway):
        client = AnalysisClient(gateway.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert "/analyze" in str(excinfo.value)

    def test_routing_is_stable_across_gateway_restarts(self, daemons):
        """Same key → same shard, through a full gateway restart: the
        placement is a pure function of the content address."""
        urls = [daemon.url for daemon in daemons]
        observed = {}
        for generation in range(2):
            with GatewayServer(shard_urls=urls) as gateway:
                import urllib.request
                for index, node in enumerate(["1", "2"]):
                    request = urllib.request.Request(
                        gateway.url + "/analyze",
                        data=request_body(FAST_DECK, [node]), method="POST")
                    with urllib.request.urlopen(request) as reply:
                        key = reply.headers["X-Repro-Key"]
                        shard = reply.headers["X-Repro-Shard"]
                    assert observed.setdefault(key, shard) == shard
                    assert int(shard) == shard_for_key(key, len(urls))
        assert len(observed) == 2

    def test_gateway_boundary_faults_absorbed_by_client_retry(self, gateway):
        import random

        faults.install(FaultPlan.parse("http_503=1:0.01:x2", seed=0))
        patient = AnalysisClient(gateway.url, retries=4, backoff_base=0.01,
                                 rng=random.Random(0))
        outcome = patient.analyze(FAST_DECK, "2")
        assert outcome.ok
        assert patient.stats()["client_retries"] == 2
        metrics = patient.metrics()
        assert metrics["faults_injected"] == 2
        assert metrics["faults"]["http_503"]["fires"] == 2


# ----------------------------------------------------------------------
# Spawn mode: real child daemons, the crash campaign
# ----------------------------------------------------------------------


class TestSpawnMode:
    def test_crash_campaign_zero_client_visible_failures(self, tmp_path):
        """The acceptance criterion: seeded shard kills mid-campaign,
        every client request still answered 200.  `shard_crash` fires
        five times, each killing the target shard just before its
        forward; the gateway respawns and retries behind the client's
        back."""
        faults.install(FaultPlan.parse("shard_crash=0.5:x5", seed=7))
        gateway = GatewayServer(
            shards=2, cache_dir=str(tmp_path / "cache"),
            shard_queue_size=32).start()
        try:
            payloads = build_mix("mixed", 30, concurrency=6, seed=3,
                                 sections=2)
            outcome = run_loadgen(gateway.url, payloads, concurrency=6,
                                  retries=2)
            client = AnalysisClient(gateway.url)
            metrics = client.metrics()
        finally:
            gateway.close()
            faults.reset()

        assert outcome["failed"] == 0, outcome["failures"]
        assert outcome["requests"] == 30
        assert metrics["faults"]["shard_crash"]["fires"] == 5
        assert metrics["shard_restarts"] >= 1
        restarts = [h["restarts"] for h in metrics["shard_health"]]
        assert sum(restarts) >= 1
        assert all(h["alive"] for h in metrics["shard_health"])

    def test_spawned_shards_share_the_disk_cache_tier(self, tmp_path):
        """A result computed through one gateway generation is a disk
        hit for the next — the shared write-through tier."""
        cache_dir = str(tmp_path / "cache")
        with GatewayServer(shards=1, cache_dir=cache_dir) as gateway:
            client = AnalysisClient(gateway.url)
            cold = client.analyze(FAST_DECK, "2")
            assert cold.ok and not cold.cached
        with GatewayServer(shards=1, cache_dir=cache_dir) as gateway:
            client = AnalysisClient(gateway.url)
            warm = client.analyze(FAST_DECK, "2")
            assert warm.cached
            assert warm.body == cold.body
